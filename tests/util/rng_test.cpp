#include "util/rng.h"

#include <gtest/gtest.h>

namespace csca {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(x, 0.25);
    EXPECT_LT(x, 0.75);
  }
}

TEST(Rng, UniformRealDegenerateRange) {
  Rng rng(9);
  EXPECT_DOUBLE_EQ(rng.uniform_real(0.5, 0.5), 0.5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
}

TEST(Rng, SplitIsPureAndNonMutating) {
  Rng a(17);
  // split() must not consume parent state: the parent's stream is the
  // same whether or not splits happened, and split(i) gives the same
  // child regardless of how many draws the parent made before.
  const auto s3_first = a.split(3).uniform_int(0, 1 << 30);
  for (int i = 0; i < 25; ++i) a.uniform_int(0, 1 << 30);
  EXPECT_EQ(a.split(3).uniform_int(0, 1 << 30), s3_first);

  Rng b(17), c(17);
  (void)b.split(0);
  (void)b.split(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.uniform_int(0, 1 << 30), c.uniform_int(0, 1 << 30));
  }
}

TEST(Rng, SplitStreamsAreMutuallyDecorrelated) {
  // Adjacent stream indices (the multi-run harness uses 0, 1, 2, ...)
  // must not produce correlated sequences the way seed+i arithmetic on
  // mt19937_64 can. Check pairwise disagreement across a window.
  Rng base(2026);
  for (std::uint64_t s = 0; s < 4; ++s) {
    Rng lhs = base.split(s);
    Rng rhs = base.split(s + 1);
    int differing = 0;
    for (int i = 0; i < 50; ++i) {
      if (lhs.uniform_int(0, 1 << 30) != rhs.uniform_int(0, 1 << 30)) {
        ++differing;
      }
    }
    EXPECT_GT(differing, 40) << "streams " << s << " and " << s + 1;
  }
}

TEST(Rng, DeriveStreamSeedMatchesSplit) {
  Rng base(99);
  Rng direct(derive_stream_seed(99, 7));
  Rng via_split = base.split(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(via_split.uniform_int(0, 1 << 30),
              direct.uniform_int(0, 1 << 30));
  }
  EXPECT_EQ(via_split.seed(), derive_stream_seed(99, 7));
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  Rng a(5);
  Rng child = a.fork();
  // Parent keeps producing; child's stream was fixed at fork time.
  const auto c1 = child.uniform_int(0, 1 << 30);
  Rng b(5);
  Rng child2 = b.fork();
  EXPECT_EQ(child2.uniform_int(0, 1 << 30), c1);
}

}  // namespace
}  // namespace csca
