#include "util/require.h"

#include <gtest/gtest.h>

namespace csca {
namespace {

TEST(Require, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(require(true, "never"));
  EXPECT_NO_THROW(ensure(true, "never"));
}

TEST(Require, FailingRequireThrowsPreconditionError) {
  EXPECT_THROW(require(false, "bad argument"), PreconditionError);
}

TEST(Require, FailingEnsureThrowsInvariantError) {
  EXPECT_THROW(ensure(false, "broken"), InvariantError);
}

TEST(Require, MessageContainsTextAndLocation) {
  try {
    require(false, "the answer is 42");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
    EXPECT_NE(what.find("require_test.cpp"), std::string::npos);
  }
}

TEST(Require, PreconditionErrorIsInvalidArgument) {
  // Callers may catch the std type without knowing about ours.
  EXPECT_THROW(require(false, "x"), std::invalid_argument);
  EXPECT_THROW(ensure(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace csca
