#include "partition/tree_edge_cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/measures.h"

namespace csca {
namespace {

TEST(TreeEdgeCover, SingleEdgeGraph) {
  Graph g(2);
  g.add_edge(0, 1, 5);
  const auto tec = build_tree_edge_cover(g);
  EXPECT_TRUE(covers_all_edges(g, tec));
  EXPECT_GE(tec.size(), 1);
  EXPECT_LE(max_tree_depth(g, tec), 5);
}

TEST(TreeEdgeCover, RequiresAnEdge) {
  Graph g(3);
  EXPECT_THROW(build_tree_edge_cover(g), PreconditionError);
}

TEST(TreeEdgeCover, TreesAreValidAndRootedAtLeaders) {
  Rng rng(1);
  Graph g = connected_gnp(15, 0.25, WeightSpec::uniform(1, 8), rng);
  const auto tec = build_tree_edge_cover(g);
  for (const CoverTree& ct : tec.trees) {
    EXPECT_TRUE(is_cluster(g, ct.cluster));
    EXPECT_EQ(ct.tree.root(), ct.leader);
    EXPECT_EQ(ct.tree.size(), static_cast<int>(ct.cluster.size()));
    for (NodeId v : ct.cluster) EXPECT_TRUE(ct.tree.contains(v));
  }
}

TEST(TreeEdgeCover, TreesCoveringEdgeListsAreCorrect) {
  Rng rng(2);
  Graph g = grid_graph(3, 3, WeightSpec::constant(2), rng);
  const auto tec = build_tree_edge_cover(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto covering = tec.trees_covering_edge(g, e);
    ASSERT_FALSE(covering.empty());
    for (int i : covering) {
      const Cluster& c = tec.trees[static_cast<std::size_t>(i)].cluster;
      EXPECT_TRUE(std::binary_search(c.begin(), c.end(), g.edge(e).u));
      EXPECT_TRUE(std::binary_search(c.begin(), c.end(), g.edge(e).v));
    }
  }
}

class TecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TecPropertyTest, Definition31PropertiesHold) {
  Rng rng(GetParam());
  Graph g = connected_gnp(18, 0.2, WeightSpec::uniform(1, 12), rng);
  const auto m = measure(g);
  const auto tec = build_tree_edge_cover(g);
  const double logn = std::log2(std::max(2, g.node_count()));

  // Property 3: every edge has a host tree.
  EXPECT_TRUE(covers_all_edges(g, tec));

  // Property 2: depth O(d log n). The Lemma 3.2 chain gives depth at most
  // (2k - 1) Rad(S) <= 2 log n * d; allow that exact bound.
  EXPECT_LE(max_tree_depth(g, tec),
            static_cast<Weight>(std::ceil((2 * logn + 1) *
                                          static_cast<double>(m.d))));

  // Property 1: edge sharing O(log n); measured with a generous constant
  // (see DESIGN.md on the degree property of the greedy coarsening).
  EXPECT_LE(max_tree_edge_sharing(g, tec),
            static_cast<int>(8 * logn + 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TecPropertyTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

TEST(TreeEdgeCover, HeavyEdgeRegimeUsesLightPaths) {
  // d << W: the cover's trees should be shallow (O(d log n)), far below
  // W. This is the regime where gamma* beats alpha*.
  const int n = 12;
  Graph g(n);
  Rng rng(4);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
  // Heavy chords.
  g.add_edge(0, n - 1, 500);
  g.add_edge(2, 9, 400);
  const auto m = measure(g);
  ASSERT_LT(m.d, m.W);
  const auto tec = build_tree_edge_cover(g);
  EXPECT_TRUE(covers_all_edges(g, tec));
  EXPECT_LT(max_tree_depth(g, tec), m.W);
}

TEST(TreeEdgeCover, ExplicitKControlsTradeoff) {
  Rng rng(5);
  Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 6), rng);
  const auto tec1 = build_tree_edge_cover(g, 1);
  const auto tec3 = build_tree_edge_cover(g, 3);
  // Larger k permits more merging -> no more trees than k = 1.
  EXPECT_LE(tec3.size(), tec1.size());
  EXPECT_TRUE(covers_all_edges(g, tec1));
  EXPECT_TRUE(covers_all_edges(g, tec3));
}

}  // namespace
}  // namespace csca
