#include "partition/cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace csca {
namespace {

TEST(Cluster, ValidityChecks) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(1), rng);
  EXPECT_TRUE(is_cluster(g, {0, 1, 2}));
  EXPECT_TRUE(is_cluster(g, {3}));
  EXPECT_FALSE(is_cluster(g, {}));              // empty
  EXPECT_FALSE(is_cluster(g, {0, 2}));          // disconnected
  EXPECT_FALSE(is_cluster(g, {1, 0}));          // unsorted
  EXPECT_FALSE(is_cluster(g, {0, 0, 1}));       // duplicate
  EXPECT_FALSE(is_cluster(g, {0, 5}));          // out of range
}

TEST(Cluster, RadiusAndCenterOnPath) {
  Rng rng(2);
  Graph g = path_graph(5, WeightSpec::constant(2), rng);
  // Cluster = whole path: center is node 2, radius 4.
  EXPECT_EQ(cluster_radius(g, {0, 1, 2, 3, 4}), 4);
  EXPECT_EQ(cluster_center(g, {0, 1, 2, 3, 4}), 2);
  EXPECT_EQ(cluster_radius(g, {3}), 0);
}

TEST(Cluster, RadiusUsesInducedSubgraphOnly) {
  // Square 0-1-2-3-0; cluster {0,1,2} may not shortcut through node 3.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 0, 1);
  EXPECT_EQ(cluster_radius(g, {0, 1, 2}), 1);  // center 1
  EXPECT_EQ(cluster_center(g, {0, 1, 2}), 1);
}

TEST(Cover, SingletonCoverProperties) {
  Rng rng(3);
  Graph g = connected_gnp(10, 0.3, WeightSpec::uniform(1, 5), rng);
  const Cover s = singleton_cover(g);
  EXPECT_TRUE(is_cover(g, s));
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(cover_radius(g, s), 0);
  EXPECT_EQ(cover_max_degree(g, s), 1);
}

TEST(Cover, IsCoverRejectsPartialCoverage) {
  Rng rng(4);
  Graph g = path_graph(4, WeightSpec::constant(1), rng);
  Cover c;
  c.clusters = {{0, 1}, {1, 2}};
  EXPECT_FALSE(is_cover(g, c));  // node 3 uncovered
  c.clusters.push_back({3});
  EXPECT_TRUE(is_cover(g, c));
}

TEST(Cover, SubsumesChecksContainment) {
  Cover s;
  s.clusters = {{0, 1}, {2, 3}};
  Cover t1;
  t1.clusters = {{0, 1, 2, 3}};
  Cover t2;
  t2.clusters = {{0, 1}, {2}};
  EXPECT_TRUE(subsumes(t1, s));
  EXPECT_FALSE(subsumes(t2, s));
  EXPECT_TRUE(subsumes(s, s));
}

TEST(Cover, NeighborhoodPathCoverOnTriangleWithHeavyEdge) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 100);
  const Cover c = neighborhood_path_cover(g);
  ASSERT_EQ(c.size(), 3);
  // Path(0, 2) goes through node 1 (the light route).
  EXPECT_EQ(c.clusters[2], (Cluster{0, 1, 2}));
  EXPECT_TRUE(is_cover(g, c));
}

TEST(Coarsen, KOneMergesEverythingConnected) {
  Rng rng(5);
  Graph g = connected_gnp(12, 0.25, WeightSpec::uniform(1, 6), rng);
  // k = 1: threshold |S|, no growth round may exceed it, but the bound
  // (2k-1) Rad(S) = Rad(S) must still hold -> output is essentially the
  // input (each output cluster is one input cluster).
  const Cover s = neighborhood_path_cover(g);
  const Cover t = coarsen(g, s, 1);
  EXPECT_TRUE(subsumes(t, s));
  EXPECT_LE(cover_radius(g, t), cover_radius(g, s));
}

class CoarsenPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CoarsenPropertyTest, Theorem11PropertiesHold) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  Graph g = connected_gnp(20, 0.2, WeightSpec::uniform(1, 10), rng);
  const Cover s = neighborhood_path_cover(g);
  const Cover t = coarsen(g, s, k);

  // (1) subsumption and cover validity.
  EXPECT_TRUE(is_cover(g, t));
  EXPECT_TRUE(subsumes(t, s));

  // (2) radius blow-up at most (2k - 1).
  const Weight rs = cover_radius(g, s);
  const Weight rt = cover_radius(g, t);
  EXPECT_LE(rt, (2 * k - 1) * std::max<Weight>(rs, 1));

  // (3) measured degree against the theorem's O(k |S|^{1/k}) shape; the
  // greedy construction is not the max-degree-optimal one (DESIGN.md), so
  // we allow a generous constant.
  const double bound =
      8.0 * k * std::pow(static_cast<double>(s.size()), 1.0 / k) + 4;
  EXPECT_LE(cover_max_degree(g, t), bound);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, CoarsenPropertyTest,
    ::testing::Combine(::testing::Values(11, 29, 47),
                       ::testing::Values(1, 2, 3, 5)));

TEST(Coarsen, SingletonInputStaysFine) {
  Rng rng(6);
  Graph g = grid_graph(4, 4, WeightSpec::constant(3), rng);
  const Cover s = singleton_cover(g);
  const Cover t = coarsen(g, s, 2);
  EXPECT_TRUE(subsumes(t, s));
  EXPECT_TRUE(is_cover(g, t));
  // Rad(S) = 0, so every output cluster must also have radius 0 by the
  // theorem bound; i.e. coarsening singletons cannot merge anything.
  EXPECT_EQ(cover_radius(g, t), 0);
}

TEST(Coarsen, RejectsBadArguments) {
  Rng rng(7);
  Graph g = path_graph(3, WeightSpec::constant(1), rng);
  const Cover s = singleton_cover(g);
  EXPECT_THROW(coarsen(g, s, 0), PreconditionError);
  Cover partial;
  partial.clusters = {{0}};
  EXPECT_THROW(coarsen(g, partial, 2), PreconditionError);
}

TEST(RestrictedDistances, MaskRespected) {
  Rng rng(8);
  Graph g = cycle_graph(6, WeightSpec::constant(1), rng);
  std::vector<char> allowed(6, 1);
  allowed[3] = 0;  // cut the cycle at node 3
  const auto dist = restricted_distances(g, 0, allowed);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[4], 2);  // around the other side
  EXPECT_EQ(dist[3], -1);
  EXPECT_THROW(restricted_distances(g, 3, allowed), PreconditionError);
}

}  // namespace
}  // namespace csca
