// The pulse-domain reliable-link layer: exactly-once FIFO delivery on a
// faulted SyncEngine, the deterministic retransmit schedule expressed in
// pulses, preservation of the in-synch discipline (Def. 4.2), checksum
// masking of garbled frames, and meter/ledger agreement.
#include "fault/sync_reliable_link.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "sim/sync_engine.h"

namespace csca {
namespace {

// Node 0 bursts `count` numbered messages over edge 0 at pulse 0; node 1
// records payloads in delivery order.
class PulseSeqPeer final : public SyncProcess {
 public:
  explicit PulseSeqPeer(int count) : count_(count) {}
  void on_start(SyncContext& ctx) override {
    if (ctx.self() != 0) return;
    for (int i = 0; i < count_; ++i) {
      ctx.send(0, Message{100, {i}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(SyncContext&, const Message& m) override {
    EXPECT_EQ(m.type, 100);
    received.push_back(m.at(0));
  }
  std::vector<std::int64_t> received;

 private:
  int count_;
};

SyncEngine::ProcessFactory pulse_seq_factory(int count, ArqConfig cfg = {}) {
  return sync_arq_factory(
      [count](NodeId) { return std::make_unique<PulseSeqPeer>(count); },
      cfg);
}

Graph one_edge(Weight w) {
  Graph g(2);
  g.add_edge(0, 1, w);
  return g;
}

// Exactly-once, in-order delivery above the layer while the pulse
// channel below drops and duplicates.
TEST(SyncArq, ExactlyOnceFifoUnderDropAndDup) {
  const int kCount = 25;
  for (const std::uint64_t seed : {1u, 7u, 33u}) {
    FaultPlan plan;
    plan.drop_rate = 0.3;
    plan.dup_rate = 0.3;
    plan.salt = 0xFA17;
    const Graph g = one_edge(2);
    const FaultInjector inj(plan, g, seed);
    SyncEngine eng(g, pulse_seq_factory(kCount));
    eng.set_faults(&inj);
    eng.run();
    ASSERT_TRUE(eng.idle());
    auto& host = eng.process_as<SyncArqHost>(1);
    const auto& received =
        dynamic_cast<PulseSeqPeer&>(host.inner()).received;
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount))
        << "seed " << seed;
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(received[static_cast<std::size_t>(i)], i)
          << "seed " << seed;
    }
    EXPECT_GT(eng.process_as<SyncArqHost>(0).retransmit_count(0), 0)
        << "seed " << seed;
    EXPECT_FALSE(eng.process_as<SyncArqHost>(0).any_peer_dead());
  }
}

// Retransmit exhaustion against a crashed peer: the schedule is the
// async host's, expressed in pulses — send at 0, timers at 4, 12, 28,
// death at 60 — and the run quiesces instead of hanging.
TEST(SyncArq, ExhaustionAgainstCrashedPeerTerminatesWithSignal) {
  const Graph g = one_edge(1);
  FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  const FaultInjector inj(plan, g, 1);
  ArqConfig cfg;
  cfg.timeout_factor = 4.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 3;
  SyncEngine eng(g, pulse_seq_factory(1, cfg));
  eng.set_faults(&inj);
  eng.run();  // must return: retransmission stops after max_retries
  ASSERT_TRUE(eng.idle());
  auto& sender = eng.process_as<SyncArqHost>(0);
  EXPECT_TRUE(sender.peer_dead(0));
  EXPECT_TRUE(sender.any_peer_dead());
  const std::vector<std::int64_t> expected = {4, 12, 28};
  EXPECT_EQ(sender.retransmit_pulses(0), expected);
  EXPECT_EQ(sender.retransmit_count(0), 3);
}

// Def. 4.2 preservation: on a weight-3 edge every wire transmission the
// layer originates (first copies, retransmissions, ACKs) lands on a
// pulse divisible by 3, so an in-synch-enforcing engine accepts the
// whole recovery — timeouts are rounded to multiples of w by design.
TEST(SyncArq, RetransmissionPreservesInSynchDiscipline) {
  const int kCount = 6;
  const Graph g = one_edge(3);
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 3);
  SyncEngine eng(g, pulse_seq_factory(kCount), /*enforce_in_synch=*/true);
  eng.set_faults(&inj);
  eng.run();  // the engine throws on any out-of-synch send
  auto& sender = eng.process_as<SyncArqHost>(0);
  const auto& received =
      dynamic_cast<PulseSeqPeer&>(eng.process_as<SyncArqHost>(1).inner())
          .received;
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  EXPECT_GT(sender.retransmit_count(0), 0);
  for (const std::int64_t p : sender.retransmit_pulses(0)) {
    EXPECT_EQ(p % 3, 0) << "retransmission off the in-synch grid";
  }
}

// An ACK arriving at exactly the timeout pulse cancels the retransmit:
// messages are delivered before wakeups within a pulse, matching the
// asynchronous host's semantics.
TEST(SyncArq, AckAtTimeoutPulseCancelsRetransmission) {
  // w = 2: DATA at 0 arrives at 2, ACK at 2 arrives at 4. With
  // timeout_factor 2 the attempt-0 timer is due at exactly 4.
  const Graph g = one_edge(2);
  ArqConfig cfg;
  cfg.timeout_factor = 2.0;
  SyncEngine eng(g, pulse_seq_factory(1, cfg));
  eng.run();
  auto& sender = eng.process_as<SyncArqHost>(0);
  EXPECT_EQ(sender.retransmit_count(0), 0);
  EXPECT_EQ(
      dynamic_cast<PulseSeqPeer&>(eng.process_as<SyncArqHost>(1).inner())
          .received.size(),
      1u);
}

// Garbled frames are caught by the checksum, silently discarded (the
// corrupt counter ticks), and healed by retransmission: the inner
// protocol sees every payload intact and in order.
TEST(SyncArq, ChecksumMasksGarbledFrames) {
  const int kCount = 15;
  const Graph g = one_edge(1);
  FaultPlan plan;
  plan.garble_rate = 0.25;
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 5);
  SyncEngine eng(g, pulse_seq_factory(kCount));
  eng.set_faults(&inj);
  eng.run();
  auto& sender = eng.process_as<SyncArqHost>(0);
  auto& receiver = eng.process_as<SyncArqHost>(1);
  const auto& received =
      dynamic_cast<PulseSeqPeer&>(receiver.inner()).received;
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
  // The channel really garbled frames, and somebody discarded them.
  EXPECT_GT(receiver.corrupt_frames(0) + sender.corrupt_frames(0), 0);
  EXPECT_GT(sender.retransmit_count(0), 0);
}

// The ControlMeter agrees with the engine's own control ledger: every
// control-class wire transmission (ACKs, retransmits) is billed w(e),
// charged attempts included.
TEST(SyncArq, MeterMatchesControlLedger) {
  for (const double drop : {0.0, 0.3}) {
    const Graph g = one_edge(2);
    ArqConfig cfg;
    cfg.meter = std::make_shared<ControlMeter>();
    SyncEngine eng(g, pulse_seq_factory(10, cfg));
    FaultPlan plan;
    plan.drop_rate = drop;
    plan.salt = 0xFA17;
    const FaultInjector inj(plan, g, 2);
    if (drop > 0) eng.set_faults(&inj);
    const RunStats stats = eng.run();
    EXPECT_EQ(cfg.meter->billed, stats.control_cost) << "drop " << drop;
    EXPECT_GT(cfg.meter->billed, 0) << "drop " << drop;
  }
}

// The faulted pulse run is a pure function of (plan, seed): same seed
// reproduces the retransmit schedule and ledger exactly, a different
// seed moves them.
TEST(SyncArq, FaultedRunDeterministicPerSeed) {
  const Graph g = one_edge(2);
  FaultPlan plan;
  plan.drop_rate = 0.4;
  plan.dup_rate = 0.1;
  plan.salt = 0xFA17;
  const auto run_once = [&](std::uint64_t seed) {
    const FaultInjector inj(plan, g, seed);
    SyncEngine eng(g, pulse_seq_factory(12));
    eng.set_faults(&inj);
    const RunStats stats = eng.run();
    return std::make_pair(
        eng.process_as<SyncArqHost>(0).retransmit_pulses(0),
        stats.total_cost());
  };
  const auto a = run_once(5);
  const auto b = run_once(5);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first.size(), 0u);
  const auto c = run_once(6);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace csca
