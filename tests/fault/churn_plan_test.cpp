// ChurnPlan semantics: named validation errors, keyed re-draw
// determinism, the builtin plan registry, and the injector's compiled
// liveness intervals (absences + churn outages).
#include "fault/churn_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"

namespace csca {
namespace {

Graph test_graph(int n = 12, std::uint64_t seed = 7) {
  Rng rng(seed);
  return connected_gnp(n, 0.3, WeightSpec::uniform(1, 9), rng);
}

// Expects `plan.validate(g)` to throw with `needle` in the message.
void expect_rejected(const ChurnPlan& plan, const Graph& g,
                     const std::string& needle) {
  try {
    plan.validate(g);
    FAIL() << "expected validate to reject: " << needle;
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ChurnPlanValidate, AcceptsDefaultAndWellFormedPlans) {
  const Graph g = test_graph();
  ChurnPlan plan;
  EXPECT_FALSE(plan.active());
  plan.validate(g);  // inactive plan is fine

  ChurnEpoch e1;
  e1.at = 1.0;
  e1.redraw_fraction = 0.5;
  e1.edges_down.push_back(0);
  ChurnEpoch e2;
  e2.at = 2.0;
  e2.edges_up.push_back(0);
  plan.epochs = {e1, e2};
  EXPECT_TRUE(plan.active());
  plan.validate(g);
  EXPECT_EQ(plan.epoch_times(), (std::vector<double>{1.0, 2.0}));
}

TEST(ChurnPlanValidate, RejectsNegativeAndNonIncreasingTimes) {
  const Graph g = test_graph();
  ChurnPlan plan;
  plan.epochs.push_back({-1.0, 0, {}, {}, {}, {}});
  expect_rejected(plan, g, "epoch time must be non-negative");

  plan.epochs.clear();
  plan.epochs.push_back({2.0, 0, {}, {}, {}, {}});
  plan.epochs.push_back({2.0, 0, {}, {}, {}, {}});
  expect_rejected(plan, g, "strictly increasing");
}

TEST(ChurnPlanValidate, RejectsOutOfRangeIdsAndFractions) {
  const Graph g = test_graph();
  ChurnPlan plan;
  plan.epochs.push_back({1.0, 1.5, {}, {}, {}, {}});
  expect_rejected(plan, g, "redraw fraction must be in [0, 1]");

  plan.epochs = {{1.0, 0, {g.edge_count()}, {}, {}, {}}};
  expect_rejected(plan, g, "edges_down id out of range");

  plan.epochs = {{1.0, 0, {}, {g.edge_count() + 3}, {}, {}}};
  expect_rejected(plan, g, "edges_up id out of range");

  plan.epochs = {{1.0, 0, {}, {}, {g.node_count()}, {}}};
  expect_rejected(plan, g, "leaves id out of range");

  plan.epochs = {{1.0, 0, {}, {}, {}, {g.node_count()}}};
  expect_rejected(plan, g, "joins id out of range");
}

TEST(ChurnPlanValidate, RejectsDuplicateIdsInOneEpoch) {
  const Graph g = test_graph();
  ChurnPlan plan;
  plan.epochs = {{1.0, 0, {2, 2}, {}, {}, {}}};
  expect_rejected(plan, g, "edge listed twice in one epoch");

  plan.epochs = {{1.0, 0, {}, {}, {3}, {3}}};
  expect_rejected(plan, g, "node listed twice in one epoch");
}

TEST(ChurnPlanValidate, EnforcesAlternation) {
  const Graph g = test_graph();
  // Edge down twice without coming up in between.
  ChurnPlan plan;
  plan.epochs = {{1.0, 0, {1}, {}, {}, {}}, {2.0, 0, {1}, {}, {}, {}}};
  expect_rejected(plan, g, "edges_down on an already-down edge");

  // up / up: the first `up` marks "dark from time 0", the second is a
  // double-up.
  plan.epochs = {{1.0, 0, {}, {1}, {}, {}}, {2.0, 0, {}, {1}, {}, {}}};
  expect_rejected(plan, g, "already up");

  // leave / leave.
  plan.epochs = {{1.0, 0, {}, {}, {2}, {}}, {2.0, 0, {}, {}, {2}, {}}};
  expect_rejected(plan, g, "leave of an already-absent node");

  // join of a node that never left (first event `join` is a late
  // joiner; join again after that is a double-join).
  plan.epochs = {{1.0, 0, {}, {}, {}, {2}}, {2.0, 0, {}, {}, {}, {2}}};
  expect_rejected(plan, g, "already present");
}

// The keyed draws are pure functions of (plan salt, seed, epoch, edge):
// same inputs, same decision and weight; different salt or seed moves
// the draws.
TEST(ChurnPlanDraws, KeyedRedrawsAreDeterministicAndSaltSensitive) {
  const Graph g = test_graph(16, 3);
  ChurnPlan plan;
  plan.epochs = {{1.0, 0.5, {}, {}, {}, {}}, {2.0, 0.5, {}, {}, {}, {}}};

  int redrawn = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const bool pick = churn_redraws_edge(plan, 0, 42, e);
    EXPECT_EQ(pick, churn_redraws_edge(plan, 0, 42, e));
    if (pick) {
      ++redrawn;
      const Weight w = churn_redrawn_weight(plan, 0, 42, e, 9);
      EXPECT_EQ(w, churn_redrawn_weight(plan, 0, 42, e, 9));
      EXPECT_GE(w, 1);
      EXPECT_LE(w, 9);
    }
  }
  EXPECT_GT(redrawn, 0);

  ChurnPlan salted = plan;
  salted.salt = 0x1234;
  int moved = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (churn_redraws_edge(plan, 0, 42, e) !=
        churn_redraws_edge(salted, 0, 42, e)) {
      ++moved;
    }
    if (churn_redraws_edge(plan, 0, 42, e) !=
        churn_redraws_edge(plan, 1, 42, e)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0) << "salt and epoch must decorrelate the draws";
}

TEST(ChurnPlanDraws, ApplyChurnWeightsMutatesOnlyPickedEdges) {
  const Graph g = test_graph(16, 5);
  ChurnPlan plan;
  plan.epochs = {{1.0, 0.4, {}, {}, {}, {}}};

  Graph a = g;
  const int changed = apply_churn_weights(plan, 0, 42, a);
  EXPECT_GT(changed, 0);
  Graph b = g;
  EXPECT_EQ(changed, apply_churn_weights(plan, 0, 42, b));

  int diffs = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(a.weight(e), b.weight(e)) << "edge " << e;
    if (a.weight(e) != g.weight(e)) {
      ++diffs;
      EXPECT_TRUE(churn_redraws_edge(plan, 0, 42, e)) << "edge " << e;
    } else if (!churn_redraws_edge(plan, 0, 42, e)) {
      EXPECT_EQ(a.weight(e), g.weight(e));
    }
  }
  EXPECT_EQ(diffs, changed);
}

TEST(BuiltinChurnPlans, AllNamesBuildValidateAndDescribe) {
  const Graph g = test_graph();
  const auto names = builtin_churn_plan_names();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    const ChurnPlan plan = make_builtin_churn_plan(name, g);
    plan.validate(g);
    EXPECT_EQ(plan.active(), name != "none") << name;
    EXPECT_FALSE(builtin_churn_plan_description(name).empty()) << name;
  }
  EXPECT_THROW(make_builtin_churn_plan("bogus", g), std::exception);
  EXPECT_THROW(builtin_churn_plan_description("bogus"), std::exception);
}

// The injector compiles liveness churn into absences and outages:
// a leaver is crashed() inside its absence span and live again after
// rejoining; a late joiner is crashed() before its join; a churned-down
// edge reports link_down during exactly its dark span.
TEST(ChurnInjector, CompilesLivenessIntervals) {
  const Graph g = test_graph(12, 11);
  const ChurnPlan churn = make_builtin_churn_plan("full_churn", g);
  const FaultInjector inj(FaultPlan{}, churn, g, 42);
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(inj.any_crashes());

  const double t1 = churn.epochs[0].at;
  const double t3 = churn.epochs[2].at;
  const NodeId leaver = g.node_count() / 3;
  const NodeId joiner = (2 * g.node_count()) / 3;

  EXPECT_FALSE(inj.crashed(leaver, 0.0));
  EXPECT_TRUE(inj.crashed(leaver, t1));
  EXPECT_TRUE(inj.crashed(leaver, (t1 + t3) / 2));
  EXPECT_FALSE(inj.crashed(leaver, t3));

  EXPECT_TRUE(inj.crashed(joiner, 0.0));
  EXPECT_TRUE(inj.crashed(joiner, t1 / 2));
  EXPECT_FALSE(inj.crashed(joiner, t1));

  const EdgeId flapper = 0;  // first pick of edge_churn
  const double t2 = churn.epochs[1].at;
  EXPECT_FALSE(inj.link_down(flapper, 0.0));
  EXPECT_TRUE(inj.link_down(flapper, t1));
  EXPECT_TRUE(inj.link_down(flapper, (t1 + t2) / 2));
  EXPECT_FALSE(inj.link_down(flapper, t2));
  EXPECT_TRUE(inj.link_down(flapper, t3)) << "flaps again at epoch 3";
}

}  // namespace
}  // namespace csca
