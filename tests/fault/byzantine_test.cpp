// Byzantine fault classes: equivocation (channel-keyed conflicting
// payloads) and forgery (corruption that passes the ARQ checksum), and
// the containment rule that bounds faulty influence to the plan's
// corruption set. Each class gets a positive test (the corruption
// demonstrably happens / the violation is caught and names the node)
// and a negative one (honest traffic untouched / a correctly-configured
// checker stays clean).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/byzantine_check.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"
#include "graph/generators.h"
#include "sim/delay.h"
#include "sim/network.h"

namespace csca {
namespace {

constexpr int kPayload = 7;

// Star: node 0 center, nodes 1..n-1 leaves, all weights 1.
Graph star(int n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v, 1);
  return g;
}

// Node 0 broadcasts one identical payload on every incident edge; every
// receiver records the payload it saw.
class Broadcast final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{kPayload, {41, 43}}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }
  void on_message(Context& ctx, const Message& m) override {
    received.assign(m.data.begin(), m.data.end());
    ctx.finish();
  }
  std::vector<std::int64_t> received;
};

FaultPlan equiv_plan(double rate = 1.0) {
  FaultPlan plan;
  plan.byzantine.push_back(0);
  plan.equivocate_rate = rate;
  return plan;
}

// Equivocation positive: with rate 1 every copy node 0 sends is
// corrupted with a *channel-keyed* mask, so the leaves of a star
// receive conflicting payloads — and none receives the honest one.
TEST(Byzantine, EquivocationDeliversConflictingPayloads) {
  const Graph g = star(5);
  const FaultInjector inj(equiv_plan(), g, 42);
  Network net(
      g, [](NodeId) { return std::make_unique<Broadcast>(); },
      make_exact_delay(), 42);
  net.set_faults(&inj);
  net.run();

  std::map<std::vector<std::int64_t>, int> seen;
  for (NodeId v = 1; v < g.node_count(); ++v) {
    const auto& got = net.process_as<Broadcast>(v).received;
    ASSERT_EQ(got.size(), 2u) << "node " << v;
    EXPECT_NE(got, (std::vector<std::int64_t>{41, 43}))
        << "node " << v << " got the honest payload despite rate 1";
    ++seen[got];
  }
  EXPECT_GT(seen.size(), 1u)
      << "equivocation must send different corruptions per channel";
}

// Equivocation negative: only sends *from* the corruption set are
// touched. The leaves reply with the honest payload over the same
// edges; node 0's copy of their replies must arrive intact.
class EchoBack final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    ctx.send(ctx.incident()[0], Message{kPayload, {41, 43}},
             MsgClass::kAlgorithm);
  }
  void on_message(Context& ctx, const Message& m) override {
    received.emplace_back(m.data.begin(), m.data.end());
    if (ctx.self() != 0) {
      ctx.send(m.edge, Message{kPayload, {41, 43}}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }
  std::vector<std::vector<std::int64_t>> received;
};

TEST(Byzantine, HonestSendersAreUntouched) {
  const Graph g = star(4);
  const FaultInjector inj(equiv_plan(), g, 42);
  Network net(
      g, [](NodeId) { return std::make_unique<EchoBack>(); },
      make_exact_delay(), 42);
  net.set_faults(&inj);
  net.run();
  const auto& got = net.process_as<EchoBack>(0).received;
  ASSERT_FALSE(got.empty());
  for (const auto& payload : got) {
    EXPECT_EQ(payload, (std::vector<std::int64_t>{41, 43}))
        << "honest reply corrupted";
  }
}

// Forgery positive (frame level): FaultInjector::forge must corrupt an
// ARQ DATA frame while keeping arq_frame_valid true — damage the
// reliable-link layer cannot detect. At least one keyed draw must
// actually change the frame body.
TEST(Byzantine, ForgedArqFramesPassTheChecksum) {
  const Graph g = star(3);
  FaultPlan plan;
  plan.byzantine.push_back(0);
  plan.forge_rate = 1.0;
  const FaultInjector inj(plan, g, 42);

  const Message frame = arq_make_data(3, Message{kPayload, {11, 22, 33}});
  ASSERT_TRUE(arq_frame_valid(frame));
  int changed = 0;
  for (std::uint64_t count = 0; count < 16; ++count) {
    Message forged = frame;
    inj.forge(/*channel=*/0, count, forged);
    EXPECT_TRUE(arq_frame_valid(forged)) << "count " << count;
    if (forged.data != frame.data) ++changed;
  }
  EXPECT_GT(changed, 0) << "forgery never altered the frame";

  // Unframed traffic has no checksum to re-patch: the corruption lands
  // as-is and the message must differ.
  const Message plainm{kPayload, {11, 22, 33}};
  Message forged = plainm;
  inj.forge(/*channel=*/0, /*count=*/0, forged);
  EXPECT_TRUE(forged.data != plainm.data || forged.type != plainm.type);
}

// Forgery positive (end to end): an ARQ-wrapped broadcast under a
// forging byzantine sender completes with forgeries on the wire and
// *zero* checksum rejections — the receivers accepted every forged
// frame as valid.
TEST(Byzantine, ForgeryIsInvisibleToArqReceivers) {
  const Graph g = star(12);
  FaultPlan plan;
  plan.byzantine.push_back(0);
  plan.forge_rate = 0.5;
  const FaultInjector inj(plan, g, 42);
  const auto factory =
      arq_factory([](NodeId) { return std::make_unique<Broadcast>(); });
  Network net(g, factory, make_exact_delay(), 42);
  net.set_faults(&inj);
  ByzantineContainmentChecker checker(plan.byzantine);
  checker.set_faults(&inj);
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  net.set_observer(nullptr);

  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_GT(checker.total_forgeries(), 0);
  EXPECT_EQ(checker.total_equivocations(), 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      EXPECT_EQ(arq_host(net, v).corrupt_frames(e), 0)
          << "a forged frame was detected — forgery must pass the checksum";
    }
  }
}

// Containment positive: a checker configured with a *smaller* corruption
// set than the plan's catches the uncovered node's corruption and names
// it.
TEST(ByzantineContainment, ViolationIsCaughtAndNamesTheNode) {
  const Graph g = star(5);
  const FaultInjector inj(equiv_plan(), g, 42);
  Network net(
      g, [](NodeId) { return std::make_unique<Broadcast>(); },
      make_exact_delay(), 42);
  net.set_faults(&inj);
  ByzantineContainmentChecker checker(/*allowed=*/{});
  net.set_observer(&checker);
  net.run();
  net.set_observer(nullptr);

  ASSERT_FALSE(checker.ok());
  const std::string& v = checker.violations().front();
  EXPECT_NE(v.find("byzantine containment violated"), std::string::npos) << v;
  EXPECT_NE(v.find("equivocation"), std::string::npos) << v;
  EXPECT_NE(v.find("node 0"), std::string::npos) << v;
}

TEST(ByzantineContainment, ForgeryViolationIsCaughtAndNamed) {
  const Graph g = star(4);
  FaultPlan plan;
  plan.byzantine.push_back(0);
  plan.forge_rate = 1.0;
  const FaultInjector inj(plan, g, 42);
  Network net(
      g, [](NodeId) { return std::make_unique<Broadcast>(); },
      make_exact_delay(), 42);
  net.set_faults(&inj);
  ByzantineContainmentChecker checker(/*allowed=*/{1});
  net.set_observer(&checker);
  net.run();
  net.set_observer(nullptr);

  ASSERT_FALSE(checker.ok());
  const std::string& v = checker.violations().front();
  EXPECT_NE(v.find("forgery"), std::string::npos) << v;
  EXPECT_NE(v.find("node 0"), std::string::npos) << v;
}

// Containment negative: with the checker configured to exactly the
// plan's corruption set, a corrupting run is clean, the per-node
// tallies land on the byzantine node only, and the keyed-stream replay
// (check_final) agrees with the observed events.
TEST(ByzantineContainment, MatchingCorruptionSetStaysClean) {
  const Graph g = star(5);
  FaultPlan plan;
  plan.byzantine.push_back(0);
  plan.equivocate_rate = 0.5;
  plan.forge_rate = 0.25;
  const FaultInjector inj(plan, g, 42);
  const auto factory =
      arq_factory([](NodeId) { return std::make_unique<Broadcast>(); });
  Network net(g, factory, make_exact_delay(), 42);
  net.set_faults(&inj);
  ByzantineContainmentChecker checker(plan.byzantine);
  checker.set_faults(&inj);
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  net.set_observer(nullptr);

  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_GT(checker.total_equivocations() + checker.total_forgeries(), 0);
  EXPECT_EQ(checker.equivocations(0), checker.total_equivocations());
  EXPECT_EQ(checker.forgeries(0), checker.total_forgeries());
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(checker.equivocations(v), 0) << "node " << v;
    EXPECT_EQ(checker.forgeries(v), 0) << "node " << v;
  }
}

// An inactive byzantine configuration (corruption set without rates, or
// rates without a corruption set) must not corrupt anything.
TEST(ByzantineContainment, InactiveConfigurationsAreNoOps) {
  const Graph g = star(4);
  for (const bool with_set : {true, false}) {
    FaultPlan plan;
    if (with_set) {
      plan.byzantine.push_back(0);  // no rates
    } else {
      plan.equivocate_rate = 1.0;  // no corruption set
    }
    EXPECT_FALSE(plan.active());
    const FaultInjector inj(plan, g, 42);
    Network net(
        g, [](NodeId) { return std::make_unique<Broadcast>(); },
        make_exact_delay(), 42);
    net.set_faults(&inj);
    ByzantineContainmentChecker checker(/*allowed=*/{});
    net.set_observer(&checker);
    net.run();
    net.set_observer(nullptr);
    EXPECT_TRUE(checker.ok());
    for (NodeId v = 1; v < g.node_count(); ++v) {
      EXPECT_EQ(net.process_as<Broadcast>(v).received,
                (std::vector<std::int64_t>{41, 43}))
          << "node " << v;
    }
  }
}

}  // namespace
}  // namespace csca
