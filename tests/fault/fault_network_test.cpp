// Engine-level fault semantics: what the injector does to the
// sequential Network, the pulse engine, and the sharded engine — and,
// just as load-bearing, what an *inactive* plan must not do (anything).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/invariants.h"
#include "conn/flood.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "par/shard_engine.h"
#include "sim/network.h"
#include "sim/sync_engine.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

// TTL broadcast storm with mixed classes (the golden-ledger workload).
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1}}, cls);
    }
  }

 private:
  std::int64_t ttl_;
};

// Counts deliveries at node 1 of a single node-0 send.
class OneShotCounter final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.send(0, Message{7}, MsgClass::kAlgorithm);
  }
  void on_message(Context&, const Message&) override { ++deliveries; }
  int deliveries = 0;
};

ProcessFactory storm_factory() {
  return [](NodeId) { return std::make_unique<Storm>(3); };
}

// The acceptance bar for "observably free when inactive": attaching a
// zero-rate plan leaves ledgers, per-edge counters and finish behaviour
// byte-identical on every engine.
TEST(FaultFreePath, InactivePlanIsByteIdenticalOnAllEngines) {
  Rng rng(11);
  const Graph g = connected_gnp(16, 0.25, WeightSpec::uniform(1, 9), rng);
  FaultPlan plan;  // inactive: zero rates, no events
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 5);
  ASSERT_FALSE(inj.active());

  for (const bool keyed : {false, true}) {
    Network plain(g, storm_factory(), make_uniform_delay(0, 1), 5);
    plain.set_keyed_delays(keyed);
    Network faulted(g, storm_factory(), make_uniform_delay(0, 1), 5);
    faulted.set_keyed_delays(keyed);
    faulted.set_faults(&inj);
    EXPECT_EQ(faulted.faults(), nullptr);  // inactive => discarded
    const RunStats a = plain.run();
    const RunStats b = faulted.run();
    expect_stats_identical(a, b, keyed ? "network-keyed" : "network");
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(plain.edge_message_count(e), faulted.edge_message_count(e));
    }
  }

  ShardEngine par_plain(g, storm_factory(), make_uniform_delay(0, 1), 5,
                        ShardEngine::Options{2, 0, {}});
  ShardEngine par_faulted(g, storm_factory(), make_uniform_delay(0, 1), 5,
                          ShardEngine::Options{2, 0, {}});
  par_faulted.set_faults(&inj);
  expect_stats_identical(par_plain.run(), par_faulted.run(), "shards");
}

TEST(FaultNetwork, DropRateOneChargesSendsButDeliversNothing) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 3);
  FaultPlan plan;
  plan.drop_rate = 1.0;
  const FaultInjector inj(plan, g, 1);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      make_exact_delay(), 1);
  net.set_faults(&inj);
  const RunStats stats = net.run();
  // The initiator's two sends are charged (transmission cost is paid
  // whether or not the channel delivers)...
  EXPECT_EQ(stats.total_messages(), 2);
  EXPECT_EQ(stats.total_cost(), 5);
  EXPECT_EQ(net.edge_message_count(0), 1);
  EXPECT_EQ(net.edge_message_count(1), 1);
  // ...but nothing arrives.
  EXPECT_EQ(stats.events, 0);
  EXPECT_FALSE(net.process_as<FloodProcess>(1).reached());
  EXPECT_FALSE(net.process_as<FloodProcess>(2).reached());
}

TEST(FaultNetwork, CrashAtZeroSuppressesOnStart) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  FaultPlan plan;
  plan.crashes.push_back({0, 0.0});
  const FaultInjector inj(plan, g, 1);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      make_exact_delay(), 1);
  net.set_faults(&inj);
  const RunStats stats = net.run();
  EXPECT_EQ(stats.total_messages(), 0);
  EXPECT_FALSE(net.process_as<FloodProcess>(1).reached());
}

TEST(FaultNetwork, ArrivalAtCrashedNodeIsLost) {
  // 0 -1- 1 -1- 2: node 1 crashes at 0.5; the flood wave arrives there
  // at t = 1 and dies, so node 2 is never reached and edge (1,2) stays
  // silent — no sends from a crashed node.
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  FaultPlan plan;
  plan.crashes.push_back({1, 0.5});
  const FaultInjector inj(plan, g, 1);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      make_exact_delay(), 1);
  net.set_faults(&inj);
  net.run();
  EXPECT_EQ(net.edge_message_count(0), 1);  // charged attempt
  EXPECT_EQ(net.edge_message_count(1), 0);  // crashed node sent nothing
  EXPECT_FALSE(net.process_as<FloodProcess>(1).reached());
  EXPECT_FALSE(net.process_as<FloodProcess>(2).reached());
}

TEST(FaultNetwork, LinkOutageLosesSendsDownAtSendOrArrival) {
  for (const bool down_at_send : {true, false}) {
    Graph g(2);
    g.add_edge(0, 1, 2);
    FaultPlan plan;
    // Send happens at t = 0, arrival at t = 2.
    plan.outages.push_back(down_at_send ? LinkOutage{0, 0.0, 1.0}
                                        : LinkOutage{0, 1.0, 3.0});
    const FaultInjector inj(plan, g, 1);
    Network net(
        g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
        make_exact_delay(), 1);
    net.set_faults(&inj);
    const RunStats stats = net.run();
    EXPECT_EQ(stats.total_messages(), 1);  // attempt charged either way
    EXPECT_EQ(stats.events, 0);
    EXPECT_FALSE(net.process_as<FloodProcess>(1).reached());
  }
}

TEST(FaultNetwork, DuplicateDeliversTwiceButChargesOnce) {
  Graph g(2);
  g.add_edge(0, 1, 4);
  FaultPlan plan;
  plan.dup_rate = 1.0;
  const FaultInjector inj(plan, g, 1);
  Network net(
      g, [](NodeId) { return std::make_unique<OneShotCounter>(); },
      make_exact_delay(), 1);
  net.set_faults(&inj);
  const RunStats stats = net.run();
  EXPECT_EQ(net.process_as<OneShotCounter>(1).deliveries, 2);
  // Duplicates are channel noise: one charged send, one edge count.
  EXPECT_EQ(stats.total_messages(), 1);
  EXPECT_EQ(stats.total_cost(), 4);
  EXPECT_EQ(net.edge_message_count(0), 1);
  EXPECT_EQ(stats.events, 2);
}

// The invariant checker, given the same injector, accepts a heavily
// faulted run: drops tally as charged attempts, duplicates match their
// recorded phantom arrivals, and event conservation balances.
TEST(FaultNetwork, CheckerStaysCleanUnderHeavyFaults) {
  Rng rng(13);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 9), rng);
  FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.dup_rate = 0.2;
  plan.salt = 0xFA17;
  plan.crashes.push_back({3, 5.0});
  plan.outages.push_back({1, 2.0, 9.0});
  const FaultInjector inj(plan, g, 9);
  Network net(g, storm_factory(), make_uniform_delay(0, 1), 9);
  net.set_faults(&inj);
  DefaultInvariantChecker checker;
  checker.set_faults(&inj);
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  EXPECT_TRUE(checker.ok()) << (checker.violations().empty()
                                    ? "suppressed"
                                    : checker.violations().front());
}

// The observer drop/duplicate hooks fire and carry sane reasons.
TEST(FaultNetwork, ObserverSeesDropsAndDuplicates) {
  class CountingObserver final : public InvariantObserver {
   public:
    void on_drop(const Network&, NodeId, EdgeId, MsgClass,
                 FaultDropReason reason) override {
      ++drops;
      if (reason == FaultDropReason::kChannelDrop) ++channel_drops;
    }
    void on_duplicate(const Network&, NodeId, EdgeId, double) override {
      ++dups;
    }
    int drops = 0;
    int channel_drops = 0;
    int dups = 0;
  };
  Rng rng(17);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  FaultPlan plan;
  plan.drop_rate = 0.25;
  plan.dup_rate = 0.25;
  const FaultInjector inj(plan, g, 3);
  Network net(g, storm_factory(), make_exact_delay(), 3);
  net.set_faults(&inj);
  CountingObserver obs;
  net.set_observer(&obs);
  net.run();
  EXPECT_GT(obs.drops, 0);
  EXPECT_EQ(obs.drops, obs.channel_drops);
  EXPECT_GT(obs.dups, 0);
}

// Pulse-domain faults: the SyncEngine applies the same send-time
// semantics with arrivals at pulse + w.
TEST(FaultSyncEngine, DropAndCrashSemantics) {
  class PulseFlood final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override {
      if (ctx.self() != 0) return;
      seen = true;
      for (EdgeId e : ctx.incident()) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    }
    void on_message(SyncContext& ctx, const Message&) override {
      if (seen) return;
      seen = true;
      for (EdgeId e : ctx.incident()) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    }
    bool seen = false;
  };
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const auto factory = [](NodeId) { return std::make_unique<PulseFlood>(); };

  {
    FaultPlan plan;
    plan.drop_rate = 1.0;
    const FaultInjector inj(plan, g, 1);
    SyncEngine eng(g, factory);
    eng.set_faults(&inj);
    const RunStats stats = eng.run();
    EXPECT_EQ(stats.total_messages(), 1);  // charged attempt from node 0
    EXPECT_FALSE(eng.process_as<PulseFlood>(1).seen);
  }
  {
    FaultPlan plan;
    plan.crashes.push_back({1, 1.0});  // wave reaches node 1 at pulse 1
    const FaultInjector inj(plan, g, 1);
    SyncEngine eng(g, factory);
    eng.set_faults(&inj);
    eng.run();
    EXPECT_FALSE(eng.process_as<PulseFlood>(1).seen);
    EXPECT_FALSE(eng.process_as<PulseFlood>(2).seen);
  }
  {
    // Inactive plan: byte-identical to the no-fault pulse run.
    const FaultInjector inj(FaultPlan{}, g, 1);
    SyncEngine plain(g, factory);
    SyncEngine faulted(g, factory);
    faulted.set_faults(&inj);
    expect_stats_identical(plain.run(), faulted.run(), "sync-inactive");
  }
}

// Satellite audit, pinned: duplicate billing. A duplicated send is
// channel noise — delivered twice, charged ONCE, on every engine. With
// a fixed-burst workload (receivers never send, so extra deliveries
// cannot echo into extra sends) the entire cost ledger under a dup plan
// must be *identical* to the fault-free golden run, while the event
// count shows the duplicates really happened.
TEST(FaultNetwork, DupPlanLeavesGoldenLedgerIdenticalOnAllEngines) {
  // Node 0 bursts k mixed-class messages per incident edge; everyone
  // else only counts.
  class Burst final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      for (int i = 0; i < 6; ++i) {
        for (EdgeId e : ctx.incident()) {
          ctx.send(e, Message{0, {i}},
                   i % 2 != 0 ? MsgClass::kAlgorithm : MsgClass::kControl);
        }
      }
    }
    void on_message(Context&, const Message&) override { ++deliveries; }
    int deliveries = 0;
  };
  class PulseBurst final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override {
      if (ctx.self() != 0) return;
      for (int i = 0; i < 6; ++i) {
        for (EdgeId e : ctx.incident()) {
          ctx.send(e, Message{0, {i}},
                   i % 2 != 0 ? MsgClass::kAlgorithm : MsgClass::kControl);
        }
      }
    }
    void on_message(SyncContext&, const Message&) override {}
  };
  Rng rng(7);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Burst>(); };
  const auto sync_factory = [](NodeId) {
    return std::make_unique<PulseBurst>();
  };
  for (const char* name : {"dup1pct", "dup_heavy"}) {
    FaultPlan plan;
    if (std::string(name) == "dup1pct") {
      plan = make_builtin_fault_plan("dup1pct", g);
    } else {
      plan.dup_rate = 1.0;  // every send doubled: the sharp billing probe
    }
    const FaultInjector inj(plan, g, 5);

    Network golden(g, factory, make_uniform_delay(0, 1), 5);
    const RunStats base = golden.run();
    Network dup(g, factory, make_uniform_delay(0, 1), 5);
    dup.set_faults(&inj);
    const RunStats net_stats = dup.run();
    // The billing side is byte-identical to the golden fault-free run...
    EXPECT_EQ(net_stats.algorithm_messages, base.algorithm_messages) << name;
    EXPECT_EQ(net_stats.control_messages, base.control_messages) << name;
    EXPECT_EQ(net_stats.algorithm_cost, base.algorithm_cost) << name;
    EXPECT_EQ(net_stats.control_cost, base.control_cost) << name;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(dup.edge_message_count(e), golden.edge_message_count(e))
          << name << " edge " << e;
    }
    if (plan.dup_rate == 1.0) {
      // ...while the duplicates demonstrably arrived.
      EXPECT_EQ(net_stats.events, 2 * base.events) << name;
    } else {
      EXPECT_GE(net_stats.events, base.events) << name;
    }

    ShardEngine sharded(g, factory, make_uniform_delay(0, 1), 5,
                        ShardEngine::Options{2, 0, {}});
    sharded.set_faults(&inj);
    const RunStats shard_stats = sharded.run();
    EXPECT_EQ(shard_stats.algorithm_cost, base.algorithm_cost) << name;
    EXPECT_EQ(shard_stats.control_cost, base.control_cost) << name;
    EXPECT_EQ(shard_stats.events, net_stats.events) << name;

    SyncEngine plain(g, sync_factory);
    const RunStats sync_base = plain.run();
    SyncEngine faulted(g, sync_factory);
    faulted.set_faults(&inj);
    const RunStats sync_stats = faulted.run();
    EXPECT_EQ(sync_stats.algorithm_messages, sync_base.algorithm_messages)
        << name;
    EXPECT_EQ(sync_stats.control_messages, sync_base.control_messages)
        << name;
    EXPECT_EQ(sync_stats.algorithm_cost, sync_base.algorithm_cost) << name;
    EXPECT_EQ(sync_stats.control_cost, sync_base.control_cost) << name;
    if (plan.dup_rate == 1.0) {
      EXPECT_EQ(sync_stats.events, 2 * sync_base.events) << name;
    }
  }
}

TEST(FaultNetwork, SetFaultsRejectedAfterStart) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  FaultPlan plan;
  plan.drop_rate = 0.5;
  const FaultInjector inj(plan, g, 1);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      make_exact_delay(), 1);
  net.step();
  EXPECT_ANY_THROW(net.set_faults(&inj));
}

}  // namespace
}  // namespace csca
