// The churn determinism matrix: a fixed ChurnPlan (alone or composed
// with a message-fault plan) must produce byte-identical ledgers,
// per-node finish times and per-link per-class counters on the keyed
// sequential Network, the conservative ShardEngine at 1/2/4 shards and
// the optimistic TimeWarpEngine at 1/2/4 shards — and the pulse-domain
// SyncEngine must be job-count invariant under the same plans through
// the RunPool. Churn liveness is compiled into the injector as pure
// (plan, id, t) lookups, which is exactly what this matrix certifies.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/churn_plan.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "par/run_pool.h"
#include "par/shard_engine.h"
#include "par/timewarp_engine.h"
#include "sim/network.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.recovery_messages, b.recovery_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.recovery_cost, b.recovery_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

void expect_hosts_identical(const ProcessHost& a, const ProcessHost& b,
                            const Graph& g, const std::string& label) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(a.finish_time(v), b.finish_time(v)) << label << " node " << v;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(a.edge_message_count(e), b.edge_message_count(e))
        << label << " edge " << e;
    for (const MsgClass cls : {MsgClass::kAlgorithm, MsgClass::kControl,
                               MsgClass::kRecovery}) {
      EXPECT_EQ(a.edge_message_count(e, cls), b.edge_message_count(e, cls))
          << label << " edge " << e;
    }
  }
}

// Garble-immune bounded storm (see fault_determinism_test.cpp): enough
// traffic that churn-down windows and absence intervals bite mid-run.
class ClampedStorm final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {4, -4}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.at(0) + m.at(1) != 0) return;  // garbled in flight
    const std::int64_t ttl =
        std::min<std::int64_t>(std::max<std::int64_t>(m.at(0), 0), 4);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, -(ttl - 1)}}, cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<ClampedStorm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const ClampedStorm&>(saved);
  }
};

// Fast churn variant of the builtin plans: the builtin epoch spacing
// (2 * max weight) is tuned for protocol runs; the storm burns out
// sooner, so compress the schedule to make the windows land mid-storm.
ChurnPlan compressed(const Graph& g, const std::string& name) {
  ChurnPlan plan = make_builtin_churn_plan(name, g);
  for (std::size_t k = 0; k < plan.epochs.size(); ++k) {
    plan.epochs[k].at = 1.5 * static_cast<double>(k + 1);
  }
  plan.validate(g);
  return plan;
}

// Network (keyed) vs ShardEngine{1,2,4} vs TimeWarpEngine{1,2,4} under
// every builtin churn shape, alone and composed with a drop/dup/garble
// fault plan, on a random delay schedule.
TEST(ChurnDeterminism, AllEnginesBitIdenticalUnderChurn) {
  Rng rng(7);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 4), rng);
  const auto factory = [](NodeId) { return std::make_unique<ClampedStorm>(); };
  const std::uint64_t seed = 42;

  FaultPlan composed;
  composed.drop_rate = 0.05;
  composed.dup_rate = 0.05;
  composed.garble_rate = 0.05;
  composed.salt = 0xFA17;

  for (const char* churn_name : {"edge_churn", "node_churn", "full_churn"}) {
    for (const bool with_faults : {false, true}) {
      const ChurnPlan churn = compressed(g, churn_name);
      const FaultInjector inj(with_faults ? composed : FaultPlan{}, churn, g,
                              seed);
      ASSERT_TRUE(inj.active());

      Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
      ref.set_keyed_delays(true);
      ref.set_faults(&inj);
      const RunStats ref_stats = ref.run();
      EXPECT_GT(ref_stats.events, 0) << churn_name;

      for (const int shards : {1, 2, 4}) {
        const std::string label = std::string(churn_name) +
                                  (with_faults ? "+faults" : "") + "@" +
                                  std::to_string(shards);
        ShardEngine cons(g, factory, make_uniform_delay(0.0, 1.0), seed,
                         ShardEngine::Options{shards, 0, {}});
        cons.set_faults(&inj);
        expect_stats_identical(cons.run(), ref_stats, "shard/" + label);
        expect_hosts_identical(cons, ref, g, "shard/" + label);

        TimeWarpEngine opt(g, factory, make_uniform_delay(0.0, 1.0), seed,
                           TimeWarpEngine::Options{shards, 0, 256, {}});
        opt.set_faults(&inj);
        expect_stats_identical(opt.run(), ref_stats, "timewarp/" + label);
        expect_hosts_identical(opt, ref, g, "timewarp/" + label);
      }
    }
  }
}

// Churn must actually change the run (the matrix above would pass
// vacuously if the injector ignored the plan).
TEST(ChurnDeterminism, ChurnVisiblyPerturbsTheRun) {
  Rng rng(7);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 4), rng);
  const auto factory = [](NodeId) { return std::make_unique<ClampedStorm>(); };
  const std::uint64_t seed = 42;

  Network bare(g, factory, make_uniform_delay(0.0, 1.0), seed);
  bare.set_keyed_delays(true);
  const RunStats bare_stats = bare.run();

  const ChurnPlan churn = compressed(g, "full_churn");
  const FaultInjector inj(FaultPlan{}, churn, g, seed);
  Network churned(g, factory, make_uniform_delay(0.0, 1.0), seed);
  churned.set_keyed_delays(true);
  churned.set_faults(&inj);
  const RunStats churned_stats = churned.run();

  const bool perturbed =
      bare_stats.events != churned_stats.events ||
      bare_stats.algorithm_messages != churned_stats.algorithm_messages ||
      bare_stats.algorithm_cost != churned_stats.algorithm_cost ||
      bare_stats.completion_time != churned_stats.completion_time;
  EXPECT_TRUE(perturbed) << "full_churn left the run untouched";
}

// The pulse domain joins the matrix: SyncEngine under every builtin
// churn plan (composed with a drop plan), driven through the RunPool at
// jobs 1 and 4 — digests and ledgers identical across job counts.
TEST(ChurnDeterminism, SyncEngineChurnIsJobCountInvariant) {
  Rng rng(19);
  const Graph g = connected_gnp(18, 0.25, WeightSpec::uniform(1, 5), rng);
  std::vector<Weight> orig_w;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    orig_w.push_back(g.weight(e));
  }
  const auto factory = [&orig_w](NodeId v) {
    return std::make_unique<InSynchBellmanFord>(v, 0, &orig_w);
  };
  const std::vector<std::string> churn_names = {"edge_churn", "node_churn",
                                                "full_churn"};

  struct Cell {
    std::string digest;
    RunStats stats;
  };
  const auto one_cell = [&](std::size_t i) {
    const ChurnPlan churn = make_builtin_churn_plan(churn_names[i], g);
    FaultPlan drops;
    drops.drop_rate = 0.01;
    const FaultInjector inj(drops, churn, g, 1000 + i);
    SyncEngine eng(g, factory);
    eng.set_faults(&inj);
    Cell cell;
    cell.stats = eng.run();
    std::ostringstream digest;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      digest << eng.process_as<InSynchBellmanFord>(v).dist() << ",";
    }
    cell.digest = digest.str();
    return cell;
  };

  std::vector<Cell> serial;
  for (std::size_t i = 0; i < churn_names.size(); ++i) {
    serial.push_back(one_cell(i));
  }
  for (const int jobs : {1, 4}) {
    RunPool pool(jobs);
    const std::vector<Cell> pooled = pool.map(churn_names.size(), one_cell);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const std::string label =
          churn_names[i] + "@jobs" + std::to_string(jobs);
      EXPECT_EQ(pooled[i].digest, serial[i].digest) << label;
      expect_stats_identical(pooled[i].stats, serial[i].stats, label);
    }
  }
}

// Multi-run harness leg for the async matrix: the full churned cell
// grid (plan x engine) mapped on the RunPool returns byte-identical
// ledgers at jobs 1 and 4.
TEST(ChurnDeterminism, RunPoolJobsCountDoesNotChangeChurnedResults) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 4), rng);
  const auto factory = [](NodeId) { return std::make_unique<ClampedStorm>(); };
  const std::vector<std::string> churn_names = {"edge_churn", "node_churn",
                                                "full_churn"};

  // Cell i: churn plan (i / 3) on engine kind (i % 3).
  const auto one_cell = [&](std::size_t i) {
    const std::uint64_t seed = 100 + i / 3;
    const ChurnPlan churn = make_builtin_churn_plan(churn_names[i / 3], g);
    const FaultInjector inj(FaultPlan{}, churn, g, seed);
    if (i % 3 == 0) {
      Network net(g, factory, make_uniform_delay(0.0, 1.0), seed);
      net.set_keyed_delays(true);
      net.set_faults(&inj);
      return net.run();
    }
    if (i % 3 == 1) {
      ShardEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                      ShardEngine::Options{2, 0, {}});
      eng.set_faults(&inj);
      return eng.run();
    }
    TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                       TimeWarpEngine::Options{2, 0, 256, {}});
    eng.set_faults(&inj);
    return eng.run();
  };

  const std::size_t kCells = 9;
  std::vector<RunStats> serial;
  for (std::size_t i = 0; i < kCells; ++i) serial.push_back(one_cell(i));
  for (std::size_t i = 0; i + 3 <= kCells; i += 3) {
    expect_stats_identical(serial[i], serial[i + 1],
                           "engines disagree, plan " + churn_names[i / 3]);
    expect_stats_identical(serial[i], serial[i + 2],
                           "engines disagree, plan " + churn_names[i / 3]);
  }
  RunPool pool(4);
  const std::vector<RunStats> pooled = pool.map(kCells, one_cell);
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < kCells; ++i) {
    expect_stats_identical(pooled[i], serial[i],
                           "cell " + std::to_string(i));
  }
}

}  // namespace
}  // namespace csca
