// The reliable-link layer's contract: exactly-once FIFO delivery above
// faulty channels, a deterministic retransmit/backoff schedule, crash
// detection through retransmit exhaustion (never a hang), and survival
// of budgeted-run resume with retransmit timers pending.
#include "fault/reliable_link.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "conn/flood.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

// Node 0 bursts `count` numbered messages over edge 0; node 1 records
// the payloads in delivery order.
class SeqPeer final : public Process {
 public:
  explicit SeqPeer(int count) : count_(count) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (int i = 0; i < count_; ++i) {
      ctx.send(0, Message{100, {i}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    EXPECT_EQ(m.type, 100);
    EXPECT_EQ(m.edge, 0);
    EXPECT_EQ(m.from, ctx.self() == 1 ? 0 : 1);
    received.push_back(m.at(0));
  }
  std::vector<std::int64_t> received;

 private:
  int count_;
};

ProcessFactory seq_factory(int count) {
  return arq_factory(
      [count](NodeId) { return std::make_unique<SeqPeer>(count); });
}

Graph one_edge(Weight w) {
  Graph g(2);
  g.add_edge(0, 1, w);
  return g;
}

// Exactly-once, in-order delivery above the layer while the channel
// below drops, duplicates, and (through retransmission races) reorders.
TEST(Arq, ExactlyOnceFifoUnderDropAndDup) {
  const int kCount = 25;
  for (const std::uint64_t seed : {1u, 7u, 33u}) {
    FaultPlan plan;
    plan.drop_rate = 0.3;
    plan.dup_rate = 0.3;
    plan.salt = 0xFA17;
    const Graph g = one_edge(2);
    const FaultInjector inj(plan, g, seed);
    Network net(g, seq_factory(kCount), make_uniform_delay(0, 1), seed);
    net.set_faults(&inj);
    net.run();
    const auto& received =
        dynamic_cast<SeqPeer&>(arq_inner(net, 1)).received;
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount))
        << "seed " << seed;
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(received[static_cast<std::size_t>(i)], i)
          << "seed " << seed;
    }
    // The channel really was faulty: the layer had to retransmit.
    EXPECT_GT(arq_host(net, 0).retransmit_count(0), 0) << "seed " << seed;
    EXPECT_FALSE(arq_host(net, 0).any_peer_dead());
  }
}

// A whole protocol (flooding) behind the layer on a faulty random
// graph: every node reached, and the invariant checker — including its
// independent ARQ receiver replay — stays clean.
TEST(Arq, FloodCompletesAndCheckerAcceptsUnderFaults) {
  Rng rng(23);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  FaultPlan plan;
  plan.drop_rate = 0.15;
  plan.dup_rate = 0.1;
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 4);
  const auto factory = arq_factory(
      [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); });
  Network net(g, factory, make_uniform_delay(0, 1), 4);
  net.set_faults(&inj);
  DefaultInvariantChecker checker;
  checker.set_faults(&inj);
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  checker.check_arq(net);
  EXPECT_TRUE(checker.ok()) << (checker.violations().empty()
                                    ? "suppressed"
                                    : checker.violations().front());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(dynamic_cast<FloodProcess&>(arq_inner(net, v)).reached())
        << "node " << v;
  }
}

// Cost accounting: on a clean channel the first copy of each DATA frame
// bills the inner send's class, every ACK bills kControl — so the
// algorithm ledger equals the bare protocol's and the overhead is
// exactly one control message per data message.
TEST(Arq, CostSplitsAlgorithmVersusControlOverhead) {
  const int kCount = 10;
  const Graph g = one_edge(3);
  Network bare(
      g, [kCount](NodeId) -> std::unique_ptr<Process> {
        return std::make_unique<SeqPeer>(kCount);
      },
      make_exact_delay(), 1);
  const RunStats base = bare.run();

  Network net(g, seq_factory(kCount), make_exact_delay(), 1);
  const RunStats stats = net.run();
  EXPECT_EQ(stats.algorithm_messages, base.algorithm_messages);
  EXPECT_EQ(stats.algorithm_cost, base.algorithm_cost);
  EXPECT_EQ(stats.control_messages, kCount);  // one ACK per DATA
  EXPECT_EQ(stats.control_cost, base.algorithm_cost);
  EXPECT_EQ(arq_host(net, 0).retransmit_count(0), 0);
}

// Retransmit exhaustion against a crashed peer: the deterministic
// backoff schedule runs timeout_factor * w * backoff^k, the peer is
// declared dead after max_retries, and the run QUIESCES — the crash
// surfaces as a signal, not a hang.
TEST(Arq, ExhaustionAgainstCrashedPeerTerminatesWithSignal) {
  const Graph g = one_edge(1);
  FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  const FaultInjector inj(plan, g, 1);
  ArqConfig cfg;
  cfg.timeout_factor = 4.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 3;
  const auto factory = arq_factory(
      [](NodeId) { return std::make_unique<SeqPeer>(1); }, cfg);
  Network net(g, factory, make_exact_delay(), 1);
  net.set_faults(&inj);
  net.run();  // must return: retransmission stops after max_retries
  ArqHost& sender = arq_host(net, 0);
  EXPECT_TRUE(sender.peer_dead(0));
  EXPECT_TRUE(sender.any_peer_dead());
  // Send at 0; timers fire at 4, 4+8=12, 12+16=28 (retransmits), and
  // the attempt-3 timer at 28+32=60 declares the peer dead.
  const std::vector<double> expected = {4.0, 12.0, 28.0};
  EXPECT_EQ(sender.retransmit_times(0), expected);
  EXPECT_EQ(sender.retransmit_count(0), 3);
}

// After the link is declared dead, later inner sends are suppressed
// (and counted) instead of growing an unacked queue forever.
TEST(Arq, SendsAfterPeerDeathAreSuppressed) {
  class TwoPhaseSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      ctx.send(0, Message{100, {0}}, MsgClass::kAlgorithm);
      ctx.schedule_self(500.0, Message{200});
    }
    void on_message(Context& ctx, const Message& m) override {
      if (m.type == 200) ctx.send(0, Message{100, {1}}, MsgClass::kAlgorithm);
    }
  };
  const Graph g = one_edge(1);
  FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  const FaultInjector inj(plan, g, 1);
  ArqConfig cfg;
  cfg.timeout_factor = 4.0;
  cfg.backoff = 2.0;
  cfg.max_retries = 2;  // dead long before the t=500 second send
  const auto factory = arq_factory(
      [](NodeId) { return std::make_unique<TwoPhaseSender>(); }, cfg);
  Network net(g, factory, make_exact_delay(), 1);
  net.set_faults(&inj);
  net.run();
  EXPECT_TRUE(arq_host(net, 0).peer_dead(0));
  EXPECT_EQ(arq_host(net, 0).suppressed_sends(0), 1);
  EXPECT_EQ(arq_host(net, 0).data_sent(0), 1);  // second send unframed
}

// The backoff schedule is a pure function of the run seed: re-running
// reproduces every retransmit time; a different seed moves them.
TEST(Arq, RetransmitScheduleDeterministicPerSeed) {
  const int kCount = 20;
  const Graph g = one_edge(2);
  FaultPlan plan;
  plan.drop_rate = 0.4;
  plan.salt = 0xFA17;
  const auto run_once = [&](std::uint64_t seed) {
    const FaultInjector inj(plan, g, seed);
    Network net(g, seq_factory(kCount), make_uniform_delay(0, 1), seed);
    net.set_faults(&inj);
    net.run();
    return std::make_pair(arq_host(net, 0).retransmit_times(0),
                          arq_host(net, 1).retransmit_times(0));
  };
  const auto a = run_once(5);
  const auto b = run_once(5);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first.size() + a.second.size(), 0u);
  // Timer order: distinct seqs sent together retransmit together, so
  // the recorded schedule is non-decreasing (never out of order).
  for (std::size_t i = 1; i < a.first.size(); ++i) {
    EXPECT_LE(a.first[i - 1], a.first[i]);
  }
  const auto c = run_once(6);
  EXPECT_NE(a, c);
}

// Inner self-schedules round-trip through the kArqSelf framing with
// type, payload and self-delivery metadata intact.
TEST(Arq, InnerSelfSchedulesSurviveFraming) {
  class SelfScheduler final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) {
        ctx.schedule_self(2.5, Message{42, {7, 8}});
      }
    }
    void on_message(Context& ctx, const Message& m) override {
      EXPECT_EQ(m.type, 42);
      EXPECT_EQ(m.edge, kNoEdge);
      EXPECT_EQ(m.from, ctx.self());
      EXPECT_EQ(m.at(0), 7);
      EXPECT_EQ(m.at(1), 8);
      EXPECT_DOUBLE_EQ(ctx.now(), 2.5);
      ++wakeups;
    }
    int wakeups = 0;
  };
  const Graph g = one_edge(1);
  const auto factory =
      arq_factory([](NodeId) { return std::make_unique<SelfScheduler>(); });
  Network net(g, factory, make_exact_delay(), 1);
  net.run();
  EXPECT_EQ(dynamic_cast<SelfScheduler&>(arq_inner(net, 0)).wakeups, 1);
}

// The PR-1 budgeted-run audit: a retransmit timer pending at budget
// exhaustion must survive resume. Slicing a faulted ARQ run into small
// max_time budgets must reproduce the one-shot run bit for bit —
// ledger, retransmit schedule, and protocol output.
TEST(Arq, BudgetedResumePreservesPendingRetransmitTimers) {
  const int kCount = 25;
  const Graph g = one_edge(2);
  FaultPlan plan;
  plan.drop_rate = 0.4;
  plan.dup_rate = 0.2;
  plan.salt = 0xFA17;

  const FaultInjector inj1(plan, g, 11);
  Network one_shot(g, seq_factory(kCount), make_uniform_delay(0, 1), 11);
  one_shot.set_faults(&inj1);
  const RunStats full = one_shot.run();

  const FaultInjector inj2(plan, g, 11);
  Network sliced(g, seq_factory(kCount), make_uniform_delay(0, 1), 11);
  sliced.set_faults(&inj2);
  // Slices far smaller than the first retransmit timeout (16): every
  // pending timer crosses many budget boundaries.
  double budget = 0.75;
  for (int guard = 0; !sliced.idle() || guard == 0; ++guard) {
    ASSERT_LT(guard, 10000) << "sliced run failed to quiesce";
    sliced.run(budget);
    budget += 0.75;
  }
  expect_stats_identical(full, sliced.stats(), "sliced");
  EXPECT_EQ(arq_host(one_shot, 0).retransmit_times(0),
            arq_host(sliced, 0).retransmit_times(0));
  EXPECT_EQ(arq_host(one_shot, 1).retransmit_times(0),
            arq_host(sliced, 1).retransmit_times(0));
  const auto& a = dynamic_cast<SeqPeer&>(arq_inner(one_shot, 1)).received;
  const auto& b = dynamic_cast<SeqPeer&>(arq_inner(sliced, 1)).received;
  EXPECT_EQ(a, b);
  ASSERT_EQ(b.size(), static_cast<std::size_t>(kCount));
}

// Budget-resume under an *active link outage*: retransmit timers armed
// while the link is down — and the outage windows themselves — must
// survive arbitrarily many budget boundaries. Slicing a link_flap +
// drop run must reproduce the one-shot run bit for bit: ledger, every
// host's retransmit schedule, and the protocol outcome.
TEST(Arq, BudgetedResumeUnderLinkFlapMatchesOneShot) {
  Rng rng(21);
  const Graph g = connected_gnp(10, 0.3, WeightSpec::uniform(1, 6), rng);
  FaultPlan plan = make_builtin_fault_plan("link_flap", g);
  ASSERT_FALSE(plan.outages.empty());
  plan.drop_rate = 0.15;  // losses on the up links force timers too

  const auto factory = arq_factory(
      [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); });

  const FaultInjector inj1(plan, g, 13);
  Network one_shot(g, factory, make_uniform_delay(0, 1), 13);
  one_shot.set_faults(&inj1);
  const RunStats full = one_shot.run();

  std::int64_t total_retransmits = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      total_retransmits += arq_host(one_shot, v).retransmit_count(e);
    }
  }
  EXPECT_GT(total_retransmits, 0) << "plan should force retransmissions";

  const FaultInjector inj2(plan, g, 13);
  Network sliced(g, factory, make_uniform_delay(0, 1), 13);
  sliced.set_faults(&inj2);
  // Slices far smaller than any retransmit timeout or outage window:
  // every pending timer and every flap crosses many budget boundaries.
  double budget = 0.9;
  for (int guard = 0; !sliced.idle() || guard == 0; ++guard) {
    ASSERT_LT(guard, 10000) << "sliced run failed to quiesce";
    sliced.run(budget);
    budget += 0.9;
  }
  expect_stats_identical(full, sliced.stats(), "link-flap sliced");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      EXPECT_EQ(arq_host(one_shot, v).retransmit_times(e),
                arq_host(sliced, v).retransmit_times(e))
          << "node " << v << " edge " << e;
    }
    EXPECT_EQ(
        dynamic_cast<FloodProcess&>(arq_inner(one_shot, v)).reached(),
        dynamic_cast<FloodProcess&>(arq_inner(sliced, v)).reached())
        << "node " << v;
  }
}

}  // namespace
}  // namespace csca
