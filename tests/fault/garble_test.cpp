// The garbling fault class and what ARQ can (and cannot) mask:
// checksum detection of single-word corruption, deterministic keyed
// corruption on the raw channel, end-to-end healing behind the ARQ
// layer, and the checker's masking rule — invalid ARQ frames are legal
// only where the injector recorded a garble.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/invariants.h"
#include "conn/flood.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

Graph one_edge(Weight w) {
  Graph g(2);
  g.add_edge(0, 1, w);
  return g;
}

// The framing checksum catches any single-word corruption — the exact
// fault the garbler injects (odd multipliers are units mod 2^64, so a
// one-word change always moves the sum).
TEST(Garble, ChecksumDetectsAnySingleWordCorruption) {
  const Message inner{42, {7, -8, 0}};
  const Message data = arq_make_data(3, inner);
  ASSERT_TRUE(arq_frame_valid(data));
  for (std::size_t i = 0; i < data.data.size(); ++i) {
    Message corrupted = data;
    corrupted.data[i] ^= 0x9E3779B97F4A7C15;
    EXPECT_FALSE(arq_frame_valid(corrupted)) << "word " << i;
  }
  const Message ack = arq_make_ack(5);
  ASSERT_TRUE(arq_frame_valid(ack));
  for (std::size_t i = 0; i < ack.data.size(); ++i) {
    Message corrupted = ack;
    corrupted.data[i] ^= 1;
    EXPECT_FALSE(arq_frame_valid(corrupted)) << "word " << i;
  }
  // A corrupted type tag is equally invalid — the frame is no longer a
  // well-formed ARQ message at all.
  Message retagged = data;
  retagged.type ^= 0x10000;
  EXPECT_FALSE(arq_frame_valid(retagged));
}

// On the raw channel a garbled send is still delivered exactly once and
// charged exactly once — but corrupted, and deterministically so: the
// same (plan, seed) reproduces the same corrupted words.
TEST(Garble, RawChannelCorruptionIsKeyedAndChargedOnce) {
  class RecordingPeer final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(0, Message{5, {10, 20, 30}}, MsgClass::kAlgorithm);
    }
    void on_message(Context&, const Message& m) override {
      received.push_back(m);
    }
    std::vector<Message> received;
  };
  const Graph g = one_edge(4);
  FaultPlan plan;
  plan.garble_rate = 1.0;
  plan.salt = 0xFA17;
  const auto run_once = [&](std::uint64_t seed) {
    const FaultInjector inj(plan, g, seed);
    Network net(
        g, [](NodeId) { return std::make_unique<RecordingPeer>(); },
        make_exact_delay(), seed);
    net.set_faults(&inj);
    const RunStats stats = net.run();
    EXPECT_EQ(stats.total_messages(), 1);
    EXPECT_EQ(stats.total_cost(), 4);  // charged once, garbled or not
    const auto& received =
        net.process_as<RecordingPeer>(1).received;
    EXPECT_EQ(received.size(), 1u);  // delivered once, never dropped
    return received;
  };
  const auto a = run_once(9);
  const auto b = run_once(9);
  ASSERT_EQ(a.size(), 1u);
  // Corrupted relative to the original, reproducibly.
  const Payload original{10, 20, 30};
  EXPECT_TRUE(a[0].type != 5 || !(a[0].data == original));
  EXPECT_EQ(a[0].type, b[0].type);
  EXPECT_EQ(a[0].data, b[0].data);
  const auto c = run_once(10);
  EXPECT_TRUE(a[0].type != c[0].type || a[0].data != c[0].data);
}

// End to end: flooding behind ARQ over a garbling channel completes
// with intact semantics, and the invariant checker — valid-frame-only
// replay plus the masking rule — stays clean.
TEST(Garble, ArqMasksGarblesAndCheckerAccepts) {
  Rng rng(31);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  FaultPlan plan;
  plan.garble_rate = 0.2;
  plan.drop_rate = 0.05;
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 6);
  const auto factory = arq_factory(
      [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); });
  Network net(g, factory, make_uniform_delay(0, 1), 6);
  net.set_faults(&inj);
  DefaultInvariantChecker checker;
  checker.set_faults(&inj);
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  checker.check_arq(net);
  EXPECT_TRUE(checker.ok()) << (checker.violations().empty()
                                    ? "suppressed"
                                    : checker.violations().front());
  EXPECT_GT(checker.garbles_seen(), 0);
  // Garbles that hit ARQ frames were caught — never more invalid
  // deliveries than recorded garbles (the masking rule held), and the
  // hosts' own corrupt counters tally what they discarded.
  EXPECT_LE(checker.invalid_arq_frames_seen(), checker.garbles_seen());
  std::int64_t corrupt = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      corrupt += arq_host(net, v).corrupt_frames(e);
    }
  }
  EXPECT_EQ(corrupt, checker.invalid_arq_frames_seen());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(dynamic_cast<FloodProcess&>(arq_inner(net, v)).reached())
        << "node " << v;
  }
}

// The masking rule has teeth: an invalid ARQ frame on a channel where
// the injector never garbled anything is a violation — corruption
// cannot appear out of thin air.
TEST(Garble, CheckerFlagsInvalidFrameWithoutRecordedGarble) {
  class Forger final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      Message fake = arq_make_data(0, Message{7, {1}});
      fake.data[fake.data.size() - 1] ^= 1;  // break the checksum
      ctx.send(0, std::move(fake), MsgClass::kAlgorithm);
    }
    void on_message(Context&, const Message&) override {}
  };
  const Graph g = one_edge(1);
  Network net(g, [](NodeId) { return std::make_unique<Forger>(); },
              make_exact_delay(), 1);
  DefaultInvariantChecker checker;
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  EXPECT_FALSE(checker.ok());
  EXPECT_EQ(checker.invalid_arq_frames_seen(), 1);
  EXPECT_EQ(checker.garbles_seen(), 0);
}

// Builtin plan smoke: garble1pct materializes, is active, and leaves a
// fault-free ledger shape (garbling never drops, duplicates, or
// re-prices anything).
TEST(Garble, GarbleOnlyPlanKeepsLedgerShape) {
  Rng rng(3);
  const Graph g = connected_gnp(10, 0.35, WeightSpec::uniform(1, 5), rng);
  const FaultPlan plan = make_builtin_fault_plan("garble1pct", g);
  ASSERT_TRUE(plan.active());
  const FaultInjector inj(plan, g, 2);
  const auto factory = [](NodeId v) {
    return std::make_unique<FloodProcess>(v, 0);
  };
  Network plain(g, factory, make_exact_delay(), 2);
  const RunStats base = plain.run();
  Network garbled(g, factory, make_exact_delay(), 2);
  garbled.set_faults(&inj);
  const RunStats stats = garbled.run();
  // Flooding ignores payloads, so corruption changes nothing observable:
  // message counts, costs and event totals all match the clean run.
  EXPECT_EQ(stats.total_messages(), base.total_messages());
  EXPECT_EQ(stats.total_cost(), base.total_cost());
  EXPECT_EQ(stats.events, base.events);
}

}  // namespace
}  // namespace csca
