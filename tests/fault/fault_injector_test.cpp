#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.h"
#include "graph/generators.h"

namespace csca {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 5);
  return g;
}

TEST(FaultPlan, DefaultIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.salt = 0xFA17;  // salt alone does not activate a plan
  EXPECT_FALSE(plan.active());
  plan.drop_rate = 0.01;
  EXPECT_TRUE(plan.active());
}

TEST(FaultInjector, RejectsMalformedPlans) {
  const Graph g = triangle();
  FaultPlan bad_rate;
  bad_rate.drop_rate = -0.1;
  EXPECT_ANY_THROW(FaultInjector(bad_rate, g, 1));

  FaultPlan over_one;
  over_one.drop_rate = 0.6;
  over_one.dup_rate = 0.5;
  EXPECT_ANY_THROW(FaultInjector(over_one, g, 1));

  FaultPlan bad_node;
  bad_node.crashes.push_back({7, 1.0});
  EXPECT_ANY_THROW(FaultInjector(bad_node, g, 1));

  FaultPlan bad_edge;
  bad_edge.outages.push_back({9, 0.0, 1.0});
  EXPECT_ANY_THROW(FaultInjector(bad_edge, g, 1));

  FaultPlan empty_interval;
  empty_interval.outages.push_back({0, 2.0, 2.0});
  EXPECT_ANY_THROW(FaultInjector(empty_interval, g, 1));
}

// FaultPlan::validate throws *named* errors — callers (csca_check
// --faults, every engine's set_faults) surface these verbatim, so the
// text is part of the contract.
TEST(FaultPlanValidate, NamedErrorsForEachRule) {
  const Graph g = triangle();
  const auto expect_named = [&](const FaultPlan& plan,
                                const std::string& needle) {
    try {
      plan.validate(g);
      FAIL() << "expected validate to reject: " << needle;
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };

  FaultPlan overlapping;
  overlapping.outages.push_back({0, 1.0, 5.0});
  overlapping.outages.push_back({0, 4.0, 6.0});
  expect_named(overlapping, "outage intervals overlap on the same edge");
  // Touching intervals are fine ([1,5) then [5,6)), and so is overlap
  // on *different* edges.
  FaultPlan touching;
  touching.outages.push_back({0, 1.0, 5.0});
  touching.outages.push_back({0, 5.0, 6.0});
  touching.outages.push_back({1, 4.0, 6.0});
  touching.validate(g);

  FaultPlan negative_crash;
  negative_crash.crashes.push_back({0, -1.0});
  expect_named(negative_crash, "crash time must be non-negative");

  FaultPlan negative_outage;
  negative_outage.outages.push_back({0, -2.0, 1.0});
  expect_named(negative_outage, "outage interval must be non-empty");

  FaultPlan bad_crash_node;
  bad_crash_node.crashes.push_back({g.node_count(), 1.0});
  expect_named(bad_crash_node, "crash node id out of range");

  FaultPlan bad_outage_edge;
  bad_outage_edge.outages.push_back({g.edge_count(), 0.0, 1.0});
  expect_named(bad_outage_edge, "outage edge id out of range");

  FaultPlan bad_rates;
  bad_rates.drop_rate = 0.5;
  bad_rates.dup_rate = 0.3;
  bad_rates.garble_rate = 0.3;
  expect_named(bad_rates, "drop + dup + garble <= 1");

  FaultPlan bad_byz_rates;
  bad_byz_rates.equivocate_rate = 0.6;
  bad_byz_rates.forge_rate = 0.6;
  expect_named(bad_byz_rates, "equivocate + forge <= 1");

  FaultPlan bad_byz_node;
  bad_byz_node.byzantine.push_back(g.node_count() + 1);
  expect_named(bad_byz_node, "byzantine node id out of range");

  FaultPlan dup_byz;
  dup_byz.byzantine = {1, 1};
  expect_named(dup_byz, "byzantine node listed twice");
}

TEST(FaultInjector, CrashTimesAndIntervalSemantics) {
  const Graph g = triangle();
  FaultPlan plan;
  plan.crashes.push_back({1, 4.0});
  plan.outages.push_back({0, 2.0, 6.0});
  const FaultInjector inj(plan, g, 1);
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(inj.any_crashes());

  EXPECT_FALSE(inj.crashed(1, 3.9));
  EXPECT_TRUE(inj.crashed(1, 4.0));  // crash takes effect at `at`
  EXPECT_TRUE(inj.crashed(1, 100.0));
  EXPECT_FALSE(inj.crashed(0, 100.0));
  EXPECT_EQ(inj.crash_time(1), 4.0);
  EXPECT_TRUE(std::isinf(inj.crash_time(0)));

  EXPECT_FALSE(inj.link_down(0, 1.9));
  EXPECT_TRUE(inj.link_down(0, 2.0));  // [down, up)
  EXPECT_TRUE(inj.link_down(0, 5.9));
  EXPECT_FALSE(inj.link_down(0, 6.0));
  EXPECT_FALSE(inj.link_down(1, 3.0));  // other edges unaffected
}

// send_fate is a pure function of (seed, salt, channel, count):
// reconstructing the injector reproduces every fate, changing the seed
// or the salt changes the stream.
TEST(FaultInjector, FatesAreKeyedAndReproducible) {
  const Graph g = triangle();
  FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.dup_rate = 0.2;
  plan.salt = 0xFA17;
  const FaultInjector a(plan, g, 42);
  const FaultInjector b(plan, g, 42);
  const FaultInjector other_seed(plan, g, 43);
  FaultPlan salted = plan;
  salted.salt = 0xFA18;
  const FaultInjector other_salt(salted, g, 42);

  int differs_seed = 0;
  int differs_salt = 0;
  for (std::uint64_t ch = 0; ch < 6; ++ch) {
    for (std::uint64_t cnt = 0; cnt < 200; ++cnt) {
      const auto fa = a.send_fate(ch, cnt);
      const auto fb = b.send_fate(ch, cnt);
      EXPECT_EQ(fa.drop, fb.drop);
      EXPECT_EQ(fa.duplicate, fb.duplicate);
      EXPECT_FALSE(fa.drop && fa.duplicate);
      const auto fs = other_seed.send_fate(ch, cnt);
      if (fs.drop != fa.drop || fs.duplicate != fa.duplicate) {
        ++differs_seed;
      }
      const auto ft = other_salt.send_fate(ch, cnt);
      if (ft.drop != fa.drop || ft.duplicate != fa.duplicate) {
        ++differs_salt;
      }
      EXPECT_EQ(a.dup_delay_key(ch, cnt), b.dup_delay_key(ch, cnt));
    }
  }
  EXPECT_GT(differs_seed, 0);
  EXPECT_GT(differs_salt, 0);
}

// Empirical fate frequencies track the configured rates.
TEST(FaultInjector, FateFrequenciesMatchRates) {
  const Graph g = triangle();
  FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.dup_rate = 0.05;
  const FaultInjector inj(plan, g, 7);
  int drops = 0;
  int dups = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto f = inj.send_fate(static_cast<std::uint64_t>(i % 6),
                                 static_cast<std::uint64_t>(i / 6));
    drops += f.drop ? 1 : 0;
    dups += f.duplicate ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(dups) / trials, 0.05, 0.01);
}

TEST(BuiltinFaultPlans, AllNamesBuildAndValidate) {
  Rng rng(5);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto names = builtin_fault_plan_names();
  ASSERT_EQ(names.size(), 9u);
  for (const std::string& name : names) {
    const FaultPlan plan = make_builtin_fault_plan(name, g);
    // Every builtin must materialize cleanly against the graph.
    const FaultInjector inj(plan, g, 1);
    EXPECT_EQ(plan.active(), name != "none") << name;
  }
  EXPECT_ANY_THROW(make_builtin_fault_plan("bogus", g));
}

TEST(BuiltinFaultPlans, ShapesMatchTheirNames) {
  Rng rng(5);
  const Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  const FaultPlan drop = make_builtin_fault_plan("drop1pct", g);
  EXPECT_DOUBLE_EQ(drop.drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(drop.dup_rate, 0.0);
  const FaultPlan drop5 = make_builtin_fault_plan("drop5pct", g);
  EXPECT_DOUBLE_EQ(drop5.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(drop5.dup_rate, 0.0);
  const FaultPlan dup = make_builtin_fault_plan("dup1pct", g);
  EXPECT_DOUBLE_EQ(dup.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(dup.dup_rate, 0.01);
  const FaultPlan garble = make_builtin_fault_plan("garble1pct", g);
  EXPECT_DOUBLE_EQ(garble.garble_rate, 0.01);
  EXPECT_DOUBLE_EQ(garble.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(garble.dup_rate, 0.0);
  const FaultPlan crash = make_builtin_fault_plan("crash_one", g);
  ASSERT_EQ(crash.crashes.size(), 1u);
  EXPECT_EQ(crash.crashes[0].node, g.node_count() / 2);
  const FaultPlan flap = make_builtin_fault_plan("link_flap", g);
  EXPECT_FALSE(flap.outages.empty());
  for (const LinkOutage& o : flap.outages) {
    EXPECT_LT(o.down_at, o.up_at);
    EXPECT_GE(o.edge, 0);
    EXPECT_LT(o.edge, g.edge_count());
  }
}

}  // namespace
}  // namespace csca
