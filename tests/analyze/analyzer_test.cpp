// Tests for the static analyzer (src/analyze/): the per-rule fixture
// corpus, suppression semantics, path-scope classification, report
// determinism, and the repo self-scan the `analyze` ctest tier gates
// on.
//
// CSCA_REPO_ROOT and CSCA_ANALYZE_FIXTURES are compile definitions
// (tests/CMakeLists.txt) pointing at the source tree, so the self-scan
// runs against the same files the csca_analyze CLI gate sees.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "analyze/report.h"
#include "analyze/rules.h"

namespace csca::analyze {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::string fixture(const std::string& name) {
  return read_file(fs::path(CSCA_ANALYZE_FIXTURES) / name);
}

struct ScanResult {
  std::vector<Finding> findings;
  std::vector<Suppressed> suppressed;
};

ScanResult scan(const std::string& fixture_name, FileCtx scope = {}) {
  scope.path = fixture_name;
  ScanResult r;
  analyze_source(scope, fixture(fixture_name), r.findings, r.suppressed);
  return r;
}

using RuleLines = std::vector<std::pair<std::string, int>>;

RuleLines rule_lines(const ScanResult& r) {
  RuleLines out;
  for (const Finding& f : r.findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

FileCtx sim_scope() {
  FileCtx scope;
  scope.sim_visible = true;
  return scope;
}

// ------------------------------------------------------------- DET-1

TEST(AnalyzeRules, Det1PositiveFiresAtTheRangeFor) {
  EXPECT_EQ(rule_lines(scan("det1_pos.cpp", sim_scope())),
            (RuleLines{{"DET-1", 11}}));
}

TEST(AnalyzeRules, Det1SilentOutsideSimVisibleScope) {
  EXPECT_TRUE(scan("det1_pos.cpp").findings.empty());
}

TEST(AnalyzeRules, Det1NegativeOrderedDrainIsClean) {
  EXPECT_TRUE(scan("det1_neg.cpp", sim_scope()).findings.empty());
}

// ------------------------------------------------------------- DET-2

TEST(AnalyzeRules, Det2PositiveFiresOnEachEntropySource) {
  EXPECT_EQ(rule_lines(scan("det2_pos.cpp")),
            (RuleLines{{"DET-2", 7}, {"DET-2", 8}, {"DET-2", 10}}));
}

TEST(AnalyzeRules, Det2SilentInsideBenchTimingAllowlist) {
  FileCtx scope;
  scope.bench_timing = true;
  EXPECT_TRUE(scan("det2_pos.cpp", scope).findings.empty());
}

TEST(AnalyzeRules, Det2NegativeMemberAccessIsClean) {
  EXPECT_TRUE(scan("det2_neg.cpp").findings.empty());
}

// ------------------------------------------------------------- DET-3

TEST(AnalyzeRules, Det3PositiveFiresOnPointerKeysAndLaundering) {
  EXPECT_EQ(rule_lines(scan("det3_pos.cpp")),
            (RuleLines{{"DET-3", 10}, {"DET-3", 11}, {"DET-3", 14}}));
}

TEST(AnalyzeRules, Det3NegativeStableIdKeysAreClean) {
  EXPECT_TRUE(scan("det3_neg.cpp").findings.empty());
}

// ------------------------------------------------------------- DET-4

TEST(AnalyzeRules, Det4PositiveFiresOnRawEngine) {
  EXPECT_EQ(rule_lines(scan("det4_pos.cpp")), (RuleLines{{"DET-4", 5}}));
}

TEST(AnalyzeRules, Det4SilentInsideRngHome) {
  FileCtx scope;
  scope.rng_home = true;
  EXPECT_TRUE(scan("det4_pos.cpp", scope).findings.empty());
}

TEST(AnalyzeRules, Det4NegativeKeyedSeedsAreClean) {
  EXPECT_TRUE(scan("det4_neg.cpp").findings.empty());
}

// ------------------------------------------------------------- COST-1

TEST(AnalyzeRules, Cost1PositiveFiresOnDefaultAndTwoArgCall) {
  EXPECT_EQ(rule_lines(scan("cost1_pos.cpp")),
            (RuleLines{{"COST-1", 8}, {"COST-1", 12}}));
}

TEST(AnalyzeRules, Cost1NegativeExplicitClassesAreClean) {
  EXPECT_TRUE(scan("cost1_neg.cpp").findings.empty());
}

// ------------------------------------------------------------- COST-2

TEST(AnalyzeRules, Cost2PositiveFiresOnEachLedgerWrite) {
  EXPECT_EQ(rule_lines(scan("cost2_pos.cpp")),
            (RuleLines{{"COST-2", 10}, {"COST-2", 11}, {"COST-2", 12}}));
}

TEST(AnalyzeRules, Cost2SilentInsideLedgerAccessorFiles) {
  FileCtx scope;
  scope.ledger_accessor = true;
  EXPECT_TRUE(scan("cost2_pos.cpp", scope).findings.empty());
}

TEST(AnalyzeRules, Cost2NegativeReadsAreClean) {
  EXPECT_TRUE(scan("cost2_neg.cpp").findings.empty());
}

// ------------------------------------------------------------ SCALE-1

TEST(AnalyzeRules, Scale1PositiveFiresOnEachLoopAllocation) {
  EXPECT_EQ(rule_lines(scan("scale1_pos.cpp", sim_scope())),
            (RuleLines{{"SCALE-1", 14}, {"SCALE-1", 18}}));
}

TEST(AnalyzeRules, Scale1SilentOutsideSimVisibleScope) {
  EXPECT_TRUE(scan("scale1_pos.cpp").findings.empty());
}

TEST(AnalyzeRules, Scale1NegativeHoistedAllocationIsClean) {
  EXPECT_TRUE(scan("scale1_neg.cpp", sim_scope()).findings.empty());
}

// The rules read code tokens only: entropy names inside comments,
// string literals, and raw strings are not findings.
TEST(AnalyzeRules, CommentsAndStringsAreNotCode) {
  std::vector<Finding> f;
  std::vector<Suppressed> s;
  FileCtx scope;
  scope.path = "inline.cpp";
  analyze_source(scope,
                 "// rand() in a comment\n"
                 "const char* a = \"std::random_device\";\n"
                 "const char* b = R\"(mt19937)\";\n",
                 f, s);
  EXPECT_TRUE(f.empty());
}

// ------------------------------------------------------- suppressions

TEST(AnalyzeSuppress, ReasonedAnnotationAboveTheLineIsHonored) {
  const ScanResult r = scan("suppress_ok.cpp");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "DET-4");
  EXPECT_EQ(r.suppressed[0].line, 8);
  EXPECT_EQ(r.suppressed[0].reason,
            "frozen legacy generator kept for golden replay");
}

TEST(AnalyzeSuppress, TrailingCommentOnTheFlaggedLineCounts) {
  std::vector<Finding> f;
  std::vector<Suppressed> s;
  FileCtx scope;
  scope.path = "inline.cpp";
  analyze_source(scope,
                 "std::mt19937 gen(1);  "
                 "// csca-analyze: allow(DET-4): pinned legacy stream\n",
                 f, s);
  EXPECT_TRUE(f.empty());
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].rule, "DET-4");
}

// A broken directive becomes a SUP-1 finding AND suppresses nothing:
// the DET-4 hit under each malformed annotation still fires.
TEST(AnalyzeSuppress, MalformedDirectivesAreFindingsAndFailSafe) {
  const ScanResult r = scan("suppress_bad.cpp");
  EXPECT_TRUE(r.suppressed.empty());
  EXPECT_EQ(rule_lines(r),
            (RuleLines{{"DET-4", 9},
                       {"DET-4", 11},
                       {"DET-4", 13},
                       {"SUP-1", 8},
                       {"SUP-1", 10},
                       {"SUP-1", 12}}));
}

// An unrelated prose mention of the marker is not a directive (and not
// a SUP-1 finding either).
TEST(AnalyzeSuppress, ProseMentionOfTheMarkerIsIgnored) {
  std::vector<Finding> f;
  std::vector<Suppressed> s;
  FileCtx scope;
  scope.path = "inline.cpp";
  analyze_source(scope,
                 "// See csca-analyze: rules live in docs/analysis.md\n"
                 "int x = 0;\n",
                 f, s);
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(s.empty());
}

// ------------------------------------------------------------ scoping

TEST(AnalyzeScope, ClassifyPathMatchesTheRepoLayout) {
  EXPECT_TRUE(classify_path("src/sim/network.cpp").sim_visible);
  EXPECT_TRUE(classify_path("src/fault/reliable_link.h").sim_visible);
  EXPECT_TRUE(classify_path("src/sim/message.h").ledger_accessor);
  EXPECT_TRUE(classify_path("src/fault/reliable_link.cpp").ledger_accessor);
  EXPECT_FALSE(classify_path("src/sim/engine.h").ledger_accessor);
  EXPECT_TRUE(classify_path("src/util/rng.h").rng_home);
  EXPECT_FALSE(classify_path("src/util/rng.h").sim_visible);
  EXPECT_TRUE(classify_path("bench/bench_engine.cpp").bench_timing);
  const FileCtx tool = classify_path("tools/csca_check.cpp");
  EXPECT_FALSE(tool.sim_visible);
  EXPECT_FALSE(tool.bench_timing);
  EXPECT_FALSE(tool.rng_home);
  EXPECT_FALSE(tool.ledger_accessor);
}

TEST(AnalyzeScope, OnlySourceExtensionsAreScanned) {
  EXPECT_TRUE(scannable_file("src/sim/network.cpp"));
  EXPECT_TRUE(scannable_file("src/sim/engine.h"));
  EXPECT_FALSE(scannable_file("docs/analysis.md"));
  EXPECT_FALSE(scannable_file("tools/check.sh"));
  EXPECT_FALSE(scannable_file("CMakeLists.txt"));
}

// ------------------------------------------------------------- report

TEST(AnalyzeReport, TextSummaryStatesTheCountEvenWhenClean) {
  Report r;
  r.files_scanned = 3;
  EXPECT_NE(to_text(r).find("0 findings (0 suppressed) across 3 files"),
            std::string::npos);
}

// Two scans of the tree must produce byte-identical JSON: the analyzer
// polices the repo's bit-identical-runs guarantee, so its own report
// may not depend on directory enumeration order or carry timestamps.
TEST(AnalyzeReport, TwoScansProduceByteIdenticalJson) {
  AnalyzerConfig cfg;
  cfg.repo_root = CSCA_REPO_ROOT;
  cfg.roots = {"src", "tools", "bench"};
  const std::string a = to_json(analyze(cfg));
  const std::string b = to_json(analyze(cfg));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------- self-scan

// The gate the CLI enforces, as a unit test: the repo's scanned roots
// carry zero unsuppressed findings, and every shipped suppression has
// a written reason.
TEST(AnalyzeSelfScan, RepoIsCleanOfUnsuppressedFindings) {
  AnalyzerConfig cfg;
  cfg.repo_root = CSCA_REPO_ROOT;
  cfg.roots = {"src", "tools", "bench"};
  const Report r = analyze(cfg);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  EXPECT_GT(r.files_scanned, 100);
  for (const Suppressed& s : r.suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.path << ":" << s.line;
  }
}

// Seeding one fixture violation into a scanned directory must fail the
// scan and name the rule and file:line — the acceptance check that the
// gate actually bites.
TEST(AnalyzeSelfScan, SeededViolationFailsWithRuleAndLocation) {
  const fs::path tmp = fs::temp_directory_path() / "csca_analyze_seed_test";
  fs::remove_all(tmp);
  fs::create_directories(tmp / "src" / "sim");
  {
    std::ofstream out(tmp / "src" / "sim" / "seeded.cpp", std::ios::binary);
    out << fixture("cost1_pos.cpp");
  }
  AnalyzerConfig cfg;
  cfg.repo_root = tmp.string();
  cfg.roots = {"src"};
  const Report r = analyze(cfg);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().rule, "COST-1");
  EXPECT_EQ(r.findings.front().path, "src/sim/seeded.cpp");
  EXPECT_EQ(r.findings.front().line, 8);
  EXPECT_NE(to_text(r).find("src/sim/seeded.cpp:8: COST-1"),
            std::string::npos);
  fs::remove_all(tmp);
}

}  // namespace
}  // namespace csca::analyze
