// COST-2 negative fixture: ledger fields are only read.
struct RunStats {
  long algorithm_messages;
  long control_messages;
};

long total(const RunStats& stats) {
  return stats.algorithm_messages + stats.control_messages;
}
