// DET-1 negative fixture: the range-for drains an ordered map; the
// unordered container is only used for point lookups, which are
// schedule-independent.
#include <map>
#include <unordered_map>

int drain_ordered() {
  std::map<int, int> pending;
  std::unordered_map<int, int> index;
  int sum = 0;
  for (const auto& [seq, payload] : pending) sum += payload;
  auto it = index.find(3);
  if (it != index.end()) sum += it->second;
  return sum;
}
