// COST-1 negative fixture: every send site names its billing class and
// the signature has no default.
struct EdgeId { int v; };
struct Message { int type; };
enum class MsgClass { kAlgorithm, kControl };

struct Ctx {
  void send(EdgeId e, Message m, MsgClass cls);
};

void emit(Ctx& ctx, EdgeId e) {
  ctx.send(e, Message{1}, MsgClass::kAlgorithm);
  ctx.send(e, Message{2}, MsgClass::kControl);
}
