// COST-1 positive fixture: a defaulted billing parameter and a
// two-argument send call site.
struct EdgeId { int v; };
struct Message { int type; };
enum class MsgClass { kAlgorithm, kControl };

struct Ctx {
  void send(EdgeId e, Message m, MsgClass cls = MsgClass::kAlgorithm);
};

void emit(Ctx& ctx, EdgeId e) {
  ctx.send(e, Message{1});
}
