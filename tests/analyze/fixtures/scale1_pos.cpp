// SCALE-1 positive fixture: heap allocation per loop iteration — one
// braced make_unique, one unbraced-body `new`. Scanned with
// sim_visible = true (as if it lived under src/sim/).
#include <memory>
#include <vector>

struct Node {
  int id;
};

int build(int n) {
  std::vector<std::unique_ptr<Node>> owned;
  for (int v = 0; v < n; ++v) {
    owned.push_back(std::make_unique<Node>());
  }
  std::vector<Node*> raw;
  int i = 0;
  while (i < n) raw.push_back(new Node{i++});
  int sum = 0;
  for (const auto& p : owned) sum += p->id;
  for (Node* p : raw) {
    sum += p->id;
    delete p;
  }
  return sum;
}
