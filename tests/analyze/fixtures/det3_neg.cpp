// DET-3 negative fixture: stable-id keys only.
#include <functional>
#include <map>
#include <set>

using NodeId = int;

int stable_keys() {
  std::map<NodeId, double> dist;
  std::set<NodeId, std::less<NodeId>> frontier;
  dist[0] = 0.0;
  frontier.insert(0);
  return static_cast<int>(dist.size() + frontier.size());
}
