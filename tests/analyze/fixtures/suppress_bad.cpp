// Malformed-suppression fixture: each directive below is broken in a
// different way, so each must surface as a SUP-1 finding — and none of
// them silences the DET-4 hit underneath it (fail-safe: a broken
// directive suppresses nothing).
#include <random>

unsigned bad(unsigned seed) {
  // csca-analyze: allow(DET-9): no such rule
  std::mt19937 a(seed);
  // csca-analyze: allow(DET-4)
  std::mt19937 b(seed ^ 1);
  // csca-analyze: allow(DET-4):
  std::mt19937 c(seed ^ 2);
  return a() + b() + c();
}
