// DET-1 positive fixture: range-iteration over an unordered container.
// Scanned with sim_visible = true (as if it lived under src/sim/).
// Fixtures are analyzer input, not build input — they are never
// compiled.
#include <unordered_map>

int drain_pending() {
  std::unordered_map<int, int> pending;
  pending.emplace(1, 2);
  int sum = 0;
  for (const auto& [seq, payload] : pending) {
    sum += payload;
  }
  return sum;
}
