// Suppression fixture: the DET-4 hit below carries a reasoned
// annotation on the line above, so it must land in `suppressed`, not
// `findings`.
#include <random>

unsigned legacy_replay(unsigned seed) {
  // csca-analyze: allow(DET-4): frozen legacy generator kept for golden replay
  std::mt19937 gen(seed);
  return gen();
}
