// DET-4 negative fixture: seeds derived through the keyed stream API;
// no raw engine names appear.
#include <cstdint>

std::uint64_t derive_stream_seed(std::uint64_t root, std::uint64_t key);

std::uint64_t keyed_seed(std::uint64_t root) {
  return derive_stream_seed(root, 7);
}
