// DET-2 negative fixture: keyed streams, virtual time, and member
// access. `s.rand()` is a member spelled rand, not the CRT rand() —
// the rule must not flag calls reached through member access.
struct Stream {
  unsigned next();
};

unsigned keyed(Stream& s, double virtual_now) {
  unsigned x = s.next();
  x += s.rand();  // member function of Stream, declared elsewhere
  if (virtual_now > 1.0) ++x;
  return x;
}
