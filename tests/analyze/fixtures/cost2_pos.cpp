// COST-2 positive fixture: ledger fields written outside the engine
// accessor sites.
struct RunStats {
  long algorithm_messages;
  double algorithm_cost;
  double recovery_cost;
};

void tamper(RunStats& stats) {
  stats.algorithm_messages += 1;
  stats.algorithm_cost = 5.0;
  stats.recovery_cost += 2.0;
}
