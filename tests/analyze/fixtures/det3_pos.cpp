// DET-3 positive fixture: pointer-keyed ordering containers and an
// address laundered to an integer.
#include <cstdint>
#include <map>
#include <set>

struct Node {};

int pointer_keys(Node* a) {
  std::map<Node*, int> rank;
  std::set<const Node*> seen;
  rank[a] = 1;
  seen.insert(a);
  const auto tiebreak = reinterpret_cast<std::uintptr_t>(a);
  return static_cast<int>(tiebreak % 7) + static_cast<int>(seen.size());
}
