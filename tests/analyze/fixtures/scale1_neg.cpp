// SCALE-1 negative fixture: the allocations are hoisted above the
// loops — one arena sized for all n elements, one pre-reserved vector.
// The loops only fill storage that already exists.
#include <memory>
#include <vector>

struct Node {
  int id;
};

int build(int n) {
  auto arena = std::make_unique<Node[]>(static_cast<std::size_t>(n));
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    arena[v].id = v;
    ids.push_back(v);
  }
  int sum = 0;
  for (int id : ids) sum += arena[id].id;
  return sum;
}
