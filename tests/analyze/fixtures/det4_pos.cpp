// DET-4 positive fixture: a raw std engine outside util/.
#include <random>

unsigned raw_engine(unsigned seed) {
  std::mt19937 gen(seed);
  return gen();
}
