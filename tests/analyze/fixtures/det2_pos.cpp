// DET-2 positive fixture: ambient entropy and wall-clock reads.
#include <chrono>
#include <cstdlib>
#include <random>

unsigned ambient() {
  unsigned x = static_cast<unsigned>(rand());
  std::random_device rd;
  x += rd();
  const auto t = std::chrono::steady_clock::now();
  return x + static_cast<unsigned>(t.time_since_epoch().count());
}
