// The sweep harness's determinism contract: per-row seeds are pure
// functions of row identity, results merge in submission order, and the
// rendered BENCH json is byte-identical at every --jobs value.
#include "bench_harness/sweep.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "bench_harness/json.h"
#include "bench_harness/tables.h"

namespace csca::bench {
namespace {

RowSpec row(const char* algo, const char* family, int n, double param = 0) {
  RowSpec spec;
  spec.algo = algo;
  spec.family = family;
  spec.n = n;
  spec.param = param;
  return spec;
}

// A cheap deterministic table: metrics are pure functions of the row
// identity, so any cross-thread leakage shows up as a diff.
SweepSpec synthetic_spec(int rows) {
  SweepSpec spec;
  spec.table = "SYN";
  spec.title = "synthetic";
  spec.param_name = "p";
  spec.run = [](const RowSpec& r) {
    RowResult out;
    out.measured.push_back(
        {"blend", r.n * 1000.0 + r.param + static_cast<double>(r.seed % 97)});
    out.checks.push_back({"unit", r.param, r.param + 1.0, 1.0, 0.0});
    return out;
  };
  for (int i = 0; i < rows; ++i) {
    spec.rows.push_back(row("a", i % 2 ? "x" : "y", 8 + i, i * 0.5));
  }
  spec.smoke_rows.push_back(row("a", "x", 8, 0));
  finalize_rows(spec);
  return spec;
}

TEST(RowSeed, PureFunctionOfIdentity) {
  const SweepSpec spec = synthetic_spec(4);
  for (const RowSpec& r : spec.rows) {
    EXPECT_EQ(r.seed, row_seed("SYN", r));
  }
  // Any identity field moves the seed.
  RowSpec base = row("a", "x", 8, 0);
  EXPECT_NE(row_seed("SYN", base), row_seed("OTHER", base));
  EXPECT_NE(row_seed("SYN", base), row_seed("SYN", row("b", "x", 8, 0)));
  EXPECT_NE(row_seed("SYN", base), row_seed("SYN", row("a", "z", 8, 0)));
  EXPECT_NE(row_seed("SYN", base), row_seed("SYN", row("a", "x", 9, 0)));
  EXPECT_NE(row_seed("SYN", base), row_seed("SYN", row("a", "x", 8, 2)));
  // ... and sibling rows / row order don't.
  EXPECT_EQ(row_seed("SYN", base), row_seed("SYN", row("a", "x", 8, 0)));
}

TEST(BoundCheck, PassBand) {
  BoundCheck check{"c", /*measured=*/150, /*bound=*/100, /*tolerance=*/2.0,
                   /*min_ratio=*/0};
  EXPECT_DOUBLE_EQ(check.ratio(), 1.5);
  EXPECT_TRUE(check.pass());
  check.measured = 250;
  EXPECT_FALSE(check.pass());  // above tolerance
  // min_ratio flips the polarity: the row must EXCEED the bound.
  BoundCheck runaway{"r", 150, 100, 1.0e6, /*min_ratio=*/2.0};
  EXPECT_FALSE(runaway.pass());
  runaway.measured = 500;
  EXPECT_TRUE(runaway.pass());
}

TEST(SweepRunner, JobsCountIsInvisibleInTheRenderedJson) {
  const SweepSpec spec = synthetic_spec(23);
  const TableResult seq = SweepRunner({/*jobs=*/1, false}).run(spec);
  const TableResult par = SweepRunner({/*jobs=*/4, false}).run(spec);
  EXPECT_EQ(render_table_json(seq), render_table_json(par));
}

TEST(SweepRunner, RealTableIsJobsInvariantToo) {
  const std::vector<SweepSpec> tables = builtin_tables();
  const SweepSpec* f2 = find_table(tables, "F2");
  ASSERT_NE(f2, nullptr);
  const TableResult seq = SweepRunner({/*jobs=*/1, /*smoke=*/true}).run(*f2);
  const TableResult par = SweepRunner({/*jobs=*/4, /*smoke=*/true}).run(*f2);
  EXPECT_EQ(render_table_json(seq), render_table_json(par));
  EXPECT_TRUE(seq.smoke);
}

TEST(SweepRunner, RunAllKeepsSpecOrderAndPoolsRows) {
  SweepSpec a = synthetic_spec(3);
  SweepSpec b = synthetic_spec(5);
  b.table = "SYN2";
  finalize_rows(b);
  const auto results = SweepRunner({4, false}).run_all({a, b});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].table, "SYN");
  EXPECT_EQ(results[1].table, "SYN2");
  EXPECT_EQ(results[0].rows.size(), 3u);
  EXPECT_EQ(results[1].rows.size(), 5u);
  // Rows come back in submission order with their own spec attached.
  for (std::size_t i = 0; i < results[1].rows.size(); ++i) {
    EXPECT_EQ(results[1].rows[i].spec.n, b.rows[i].n);
  }
}

TEST(SweepRunner, RowExceptionBecomesRowFailureNotACrash) {
  SweepSpec spec = synthetic_spec(3);
  spec.run = [](const RowSpec& r) -> RowResult {
    if (r.n == 9) throw std::runtime_error("boom");
    RowResult out;
    out.checks.push_back({"unit", 1, 2, 1.0, 0});
    return out;
  };
  const TableResult result = SweepRunner({2, false}).run(spec);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_FALSE(result.rows[1].pass());
  EXPECT_TRUE(result.rows[1].failed);
  EXPECT_NE(result.rows[1].error.find("boom"), std::string::npos);
  EXPECT_TRUE(result.rows[0].pass());
  EXPECT_FALSE(result.pass());
  // The failed row still renders (with its error) instead of vanishing.
  EXPECT_NE(render_table_json(result).find("boom"), std::string::npos);
}

TEST(Json, DoublesAreLocaleProofAndEscaped) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1.0 / 3.0), "0.3333333333");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

}  // namespace
}  // namespace csca::bench
