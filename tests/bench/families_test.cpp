// The unified family registry (src/graph/families.h) is the single
// source of truth for every sweep graph — these tests pin its contract:
// every family builds connected, same-seed constructions are
// bit-identical, and the special-regime families actually exhibit their
// advertised regimes.
#include "graph/families.h"

#include <gtest/gtest.h>

#include "graph/measures.h"
#include "graph/traversal.h"
#include "util/require.h"

namespace csca {
namespace {

// A size valid for every family (lower_bound wants 2^k + 1 shapes;
// grid rounds to a square; all minimum-n preconditions pass at 9+).
int size_for(const std::string& family) {
  if (family == "lower_bound" || family == "lower_bound_x2" ||
      family == "lower_bound_split") {
    return 9;
  }
  return 12;
}

TEST(Families, EveryFamilyBuildsConnected) {
  for (const std::string& family : family_names()) {
    const Graph g = make_family(family, size_for(family), 7);
    EXPECT_TRUE(is_connected(g)) << family;
    // Grid families round n down to a full square.
    EXPECT_GE(g.node_count(), size_for(family) / 2) << family;
    EXPECT_GE(g.edge_count(), g.node_count() - 1) << family;
  }
}

TEST(Families, SameSeedIsBitIdentical) {
  for (const std::string& family : family_names()) {
    const int n = size_for(family);
    const Graph a = make_family(family, n, 1234);
    const Graph b = make_family(family, n, 1234);
    ASSERT_EQ(a.node_count(), b.node_count()) << family;
    ASSERT_EQ(a.edge_count(), b.edge_count()) << family;
    for (EdgeId e = 0; e < a.edge_count(); ++e) {
      EXPECT_EQ(a.edge(e).u, b.edge(e).u) << family << " edge " << e;
      EXPECT_EQ(a.edge(e).v, b.edge(e).v) << family << " edge " << e;
      EXPECT_EQ(a.edge(e).w, b.edge(e).w) << family << " edge " << e;
    }
  }
}

TEST(Families, SeedActuallyFeedsTheRandomFamilies) {
  const Graph a = make_family("gnp", 16, 1);
  const Graph b = make_family("gnp", 16, 2);
  bool differs = a.edge_count() != b.edge_count();
  for (EdgeId e = 0; !differs && e < a.edge_count(); ++e) {
    differs = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v ||
              a.edge(e).w != b.edge(e).w;
  }
  EXPECT_TRUE(differs);
}

TEST(Families, HeavyChordsIsTheAdvertisedRegime) {
  // The §3 regime d << W: the heavy chords dominate W while every
  // chord's endpoints stay close through the light backbone.
  const Graph g = make_family("heavy_chords", 24, 0);
  const NetworkMeasures m = measure(g);
  EXPECT_EQ(m.W, 512);
  EXPECT_LE(4 * m.d, m.W) << "d=" << m.d << " W=" << m.W;

  // And the parameterized builder sweeps the regime without moving d.
  const NetworkMeasures wide = measure(heavy_chords_graph(24, 4096));
  EXPECT_EQ(wide.W, 4096);
  EXPECT_EQ(wide.d, m.d);
}

TEST(Families, UnknownFamilyThrows) {
  EXPECT_THROW(make_family("no_such_family", 12, 0), PreconditionError);
}

TEST(Families, BuiltinSetsAreConnectedAndUniquelyNamed) {
  for (const bool smoke : {true, false}) {
    const auto set = builtin_families(smoke);
    EXPECT_EQ(set.size(), smoke ? 3u : 5u);
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_TRUE(is_connected(set[i].graph)) << set[i].name;
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        EXPECT_NE(set[i].name, set[j].name);
      }
    }
  }
}

}  // namespace
}  // namespace csca
