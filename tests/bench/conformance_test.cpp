// The conformance tier (ctest -L conformance): every registered
// reproduction table's small-n smoke grid, asserting each row's
// measured/bound ratio stays inside its recorded tolerance band. This
// is the machine-checked form of EXPERIMENTS.md — if an algorithm or
// bound formula regresses past its tolerance, the table's test names
// the row and ratio.
#include <gtest/gtest.h>

#include <algorithm>

#include "bench_harness/sweep.h"
#include "bench_harness/tables.h"

namespace csca::bench {
namespace {

class Conformance : public ::testing::TestWithParam<std::string> {};

TEST_P(Conformance, SmokeRowsStayWithinRecordedTolerances) {
  const std::vector<SweepSpec> tables = builtin_tables();
  const SweepSpec* spec = find_table(tables, GetParam());
  ASSERT_NE(spec, nullptr) << GetParam();
  ASSERT_FALSE(spec->smoke_rows.empty()) << GetParam();

  const TableResult result =
      SweepRunner({/*jobs=*/2, /*smoke=*/true}).run(*spec);
  for (const RowResult& row : result.rows) {
    const std::string name = row.spec.name(result.param_name);
    EXPECT_FALSE(row.failed) << name << ": " << row.error;
    EXPECT_FALSE(row.checks.empty()) << name << " has no bound checks";
    for (const BoundCheck& check : row.checks) {
      EXPECT_TRUE(check.pass())
          << name << ": " << check.name << " ratio " << check.ratio()
          << " outside [" << check.min_ratio << ", " << check.tolerance
          << "] (measured " << check.measured << ", bound " << check.bound
          << ")";
    }
  }
}

std::vector<std::string> table_ids() {
  std::vector<std::string> ids;
  for (const SweepSpec& spec : builtin_tables()) ids.push_back(spec.table);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllTables, Conformance,
                         ::testing::ValuesIn(table_ids()),
                         [](const auto& info) { return info.param; });

TEST(ConformanceRegistry, CoversEveryPaperTable) {
  const auto ids = table_ids();
  for (const char* required : {"F1", "F2", "F3", "F4", "F5", "F6", "F7",
                               "F8", "F9", "S3", "S4", "S5"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), required), ids.end())
        << required;
  }
}

}  // namespace
}  // namespace csca::bench
