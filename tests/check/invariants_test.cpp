#include "check/invariants.h"

#include <gtest/gtest.h>

#include "conn/dfs.h"
#include "conn/flood.h"
#include "graph/generators.h"

namespace csca {
namespace {

Network flood_network(const Graph& g) {
  return Network(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      make_exact_delay());
}

TEST(Invariants, CleanFloodRunPasses) {
  Rng rng(1);
  const Graph g = grid_graph(3, 4, WeightSpec::uniform(1, 9), rng);
  Network net = flood_network(g);
  DefaultInvariantChecker checker;
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(Invariants, ReactivePostFinishSendsAllowed) {
  // DFS on a cycle: the last probe of a cross edge reaches a node that
  // already finished, and its reject reply must not be flagged.
  Rng rng(2);
  const Graph g = cycle_graph(5, WeightSpec::uniform(1, 5), rng);
  Network net(
      g, [](NodeId v) { return std::make_unique<DfsProcess>(v, 0); },
      make_exact_delay());
  DefaultInvariantChecker checker;
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_TRUE(net.process_as<DfsProcess>(0).done());
}

// Finishes in on_start and only then originates traffic: the kind of
// "talks after claiming to be done" bug the checker exists to catch.
class FinishThenSend final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    ctx.finish();
    ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
  }
  void on_message(Context&, const Message&) override {}
};

TEST(Invariants, SpontaneousPostFinishSendFlagged) {
  Rng rng(3);
  const Graph g = path_graph(2, WeightSpec::constant(1), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<FinishThenSend>(); },
      make_exact_delay());
  DefaultInvariantChecker checker;
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("spontaneous send"),
            std::string::npos);
}

TEST(Invariants, FailFastThrowsAtTheOffendingEvent) {
  Rng rng(4);
  const Graph g = path_graph(2, WeightSpec::constant(1), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<FinishThenSend>(); },
      make_exact_delay());
  DefaultInvariantChecker checker({.fail_fast = true});
  net.set_observer(&checker);
  EXPECT_THROW(net.run(), InvariantError);
}

TEST(Invariants, DeliveryWithoutSendFlagged) {
  Rng rng(5);
  const Graph g = path_graph(2, WeightSpec::constant(1), rng);
  Network net = flood_network(g);
  DefaultInvariantChecker checker;
  // Fabricate a delivery the checker never saw a send for.
  Message m{0};
  m.from = 0;
  m.edge = 0;
  checker.on_deliver(net, 1, m, 0.0);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("without a matching send"),
            std::string::npos);
}

TEST(Invariants, NanDelayFlagged) {
  Rng rng(6);
  const Graph g = path_graph(2, WeightSpec::constant(1), rng);
  Network net = flood_network(g);
  DefaultInvariantChecker checker;
  checker.on_send(net, 0, 0, MsgClass::kAlgorithm,
                  std::numeric_limits<double>::quiet_NaN(), 0.0);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("delay model produced"),
            std::string::npos);
}

TEST(Invariants, LateAttachmentCaughtByFinalCheck) {
  // Attaching mid-run means the checker's tally cannot match the
  // engine's counters; check_final must say so rather than vouch for a
  // run it only half observed.
  Rng rng(7);
  const Graph g = grid_graph(3, 3, WeightSpec::constant(2), rng);
  Network net = flood_network(g);
  for (int i = 0; i < 3; ++i) net.step();
  DefaultInvariantChecker checker;
  net.set_observer(&checker);
  net.run();
  checker.check_final(net);
  EXPECT_FALSE(checker.ok());
}

}  // namespace
}  // namespace csca
