#include "check/schedule_check.h"

#include <gtest/gtest.h>

#include "check/subjects.h"
#include "conn/flood.h"
#include "graph/generators.h"

namespace csca {
namespace {

TEST(SchedulePortfolio, HasAtLeastSixSchedules) {
  const auto portfolio = default_portfolio();
  EXPECT_GE(portfolio.size(), 6u);
  // The exact worst case leads: it is the digest reference.
  ASSERT_FALSE(portfolio.empty());
  EXPECT_EQ(portfolio.front().name, "exact");
}

TEST(SchedulePortfolio, EdgeFractionDelayIsDeterministic) {
  EdgeFractionDelay a(7);
  EdgeFractionDelay b(7);
  EdgeFractionDelay other(99);
  Rng rng(1);
  bool any_differs = false;
  for (EdgeId e = 0; e < 16; ++e) {
    const double f = a.fraction(e);
    EXPECT_GE(f, 0.0);
    EXPECT_LT(f, 1.0);
    EXPECT_EQ(f, b.fraction(e));
    EXPECT_EQ(a.delay_on(e, 10, rng), f * 10.0);
    if (other.fraction(e) != f) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different salts should give different "
                              "delay landscapes";
}

// A deliberately schedule-sensitive protocol: two peripheral nodes probe
// a center, and the center's "output" is whichever probe arrived first.
// Under ExactDelay the lighter edge always wins; under asynchronous
// schedules either can. The checker must report this as a digest
// divergence with a reproducing schedule.
class FirstProbeWins final : public Process {
 public:
  static constexpr NodeId kCenter = 0;

  void on_start(Context& ctx) override {
    if (ctx.self() == kCenter) return;
    ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
    ctx.finish();
  }

  void on_message(Context& ctx, const Message& m) override {
    if (winner_ == kNoNode) winner_ = m.from;
    if (++probes_ == static_cast<int>(ctx.incident().size())) {
      ctx.finish();
    }
  }

  NodeId winner() const { return winner_; }

 private:
  NodeId winner_ = kNoNode;
  int probes_ = 0;
};

CheckSubject first_probe_subject() {
  return CheckSubject{
      "first_probe",
      [](const Graph& g, const ScheduleSpec& spec) {
        return run_checked(
            g, [](NodeId) { return std::make_unique<FirstProbeWins>(); },
            spec,
            [](ProcessHost& net, std::vector<std::string>&) {
              const NodeId w =
                  net.process_as<FirstProbeWins>(FirstProbeWins::kCenter)
                      .winner();
              return "winner=" + std::to_string(w);
            });
      },
      /*run_par=*/nullptr};
}

// Star: center 0 with two near-tied spokes. Weights 100 vs 101 make the
// exact schedule deterministic (node 1 wins) while leaving essentially a
// coin flip under the portfolio's asynchronous schedules.
Graph near_tied_star() {
  Graph g(3);
  g.add_edge(0, 1, 100);
  g.add_edge(0, 2, 101);
  return g;
}

TEST(ScheduleCheck, CatchesScheduleSensitiveProtocol) {
  const Graph g = near_tied_star();
  const auto portfolio = default_portfolio();
  const ScheduleCheckReport report =
      check_subject(first_probe_subject(), g, "star", portfolio);

  EXPECT_EQ(report.reference_schedule, "exact");
  EXPECT_EQ(report.reference_digest, "winner=1");
  ASSERT_FALSE(report.ok())
      << "a near-tied race must diverge somewhere in the portfolio";
  const CheckFinding& f = report.findings.front();
  EXPECT_EQ(f.kind, "divergence");
  EXPECT_EQ(f.graph, "star");

  // The finding must reproduce: re-running just the reported schedule
  // yields the same divergent digest.
  const auto it = std::find_if(
      portfolio.begin(), portfolio.end(),
      [&](const ScheduleSpec& s) { return s.name == f.schedule; });
  ASSERT_NE(it, portfolio.end());
  const SubjectOutcome replay = first_probe_subject().run(g, *it);
  EXPECT_FALSE(replay.failed) << replay.error;
  EXPECT_NE(replay.digest, report.reference_digest);
  EXPECT_NE(f.detail.find(replay.digest), std::string::npos)
      << "finding should quote the divergent digest: " << f.detail;
}

TEST(ScheduleCheck, InvariantViolationsAreReportedWithTheirSchedule) {
  // A delay model that breaks the [0, w] contract: the engine rejects
  // it, and run_checked must surface that as a failed outcome tied to
  // the schedule instead of crashing the sweep.
  class TooSlowDelay final : public DelayModel {
   public:
    double delay(Weight w, Rng&) override {
      return 2.0 * static_cast<double>(w);
    }
  };
  ScheduleSpec bad{"too_slow", 1,
                   [] { return std::make_unique<TooSlowDelay>(); }, {}, {}};
  Rng rng(11);
  const Graph g = path_graph(3, WeightSpec::constant(2), rng);
  const SubjectOutcome out = run_checked(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      bad,
      [](ProcessHost&, std::vector<std::string>&) { return std::string("x"); });
  EXPECT_TRUE(out.failed);
  EXPECT_NE(out.error.find("delay"), std::string::npos) << out.error;
}

TEST(ScheduleCheck, BuiltinSubjectsCleanOnSmallGraph) {
  // The full sweep lives in csca_check (ctest: check_smoke); here just
  // pin that every builtin subject is clean on one small graph so a
  // digest regression fails close to its cause.
  Rng rng(5);
  const Graph g = grid_graph(2, 3, WeightSpec::uniform(1, 7), rng);
  const auto portfolio = default_portfolio();
  for (const CheckSubject& subject : builtin_subjects()) {
    const ScheduleCheckReport report =
        check_subject(subject, g, "grid2x3", portfolio);
    EXPECT_TRUE(report.ok())
        << subject.name << ": " << report.findings.front().kind << " — "
        << report.findings.front().detail;
    EXPECT_EQ(report.runs, static_cast<int>(portfolio.size()));
  }
}

TEST(ScheduleCheck, RunsDegradedCountsRunsNotFindings) {
  // One faulted run can surface many oracle mismatches; the summary
  // counter must advance once per run, not once per finding — and a
  // faulty run that dies outright is a degraded run too.
  const auto active_faults = [](const Graph&) {
    FaultPlan plan;
    plan.drop_rate = 0.5;
    return plan;
  };
  std::vector<ScheduleSpec> portfolio;
  for (const char* name : {"noisy", "broken", "quiet"}) {
    portfolio.push_back(ScheduleSpec{
        name, 1, [] { return std::make_unique<ExactDelay>(); },
        active_faults, {}});
  }
  const CheckSubject subject{
      "fabricated",
      [](const Graph&, const ScheduleSpec& spec) {
        SubjectOutcome out;
        out.digest = "d";
        if (spec.name == "noisy") {
          out.degraded = {"dist[1] off", "dist[2] off", "dist[3] off"};
        } else if (spec.name == "broken") {
          out.failed = true;
          out.error = "ensure tripped";
        }
        return out;
      },
      /*run_par=*/nullptr};

  const ScheduleCheckReport report =
      check_subject(subject, near_tied_star(), "star", portfolio);
  EXPECT_EQ(report.runs, 3);
  EXPECT_EQ(report.runs_completed, 2);
  EXPECT_EQ(report.runs_degraded, 2) << "noisy + broken, each once";
  int degraded_findings = 0;
  for (const CheckFinding& f : report.findings) {
    if (f.kind == "degraded") ++degraded_findings;
  }
  EXPECT_EQ(degraded_findings, 4) << "three mismatches + one failed run";
  EXPECT_TRUE(report.ok()) << "degraded findings alone must not fail "
                              "the sweep";
}

}  // namespace
}  // namespace csca
