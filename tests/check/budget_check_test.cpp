// The ARQ-aware controller budget invariant (check/budget_check.h):
// B1 total billed cost <= permits issued, B2 control cost <= permits
// issued, B3 un-exhausted runs stayed inside the threshold. Live-run
// coverage is in tests/control/controller_test.cpp; here the checker's
// own logic is pinned against crafted ledgers.
#include "check/budget_check.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace csca {
namespace {

ControlledRun craft(Weight algo, Weight control, Weight permits,
                    bool exhausted) {
  ControlledRun run;
  run.stats.algorithm_cost = algo;
  run.stats.control_cost = control;
  run.permits_issued = permits;
  run.exhausted = exhausted;
  return run;
}

bool any_mentions(const std::vector<std::string>& violations,
                  const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(BudgetCheck, CleanRunHasNoViolations) {
  const ControllerConfig cfg{30, true};
  const auto v = check_controller_budget(craft(10, 5, 20, false), cfg);
  EXPECT_TRUE(v.empty()) << v.front();
}

TEST(BudgetCheck, ExhaustedRunMayExceedThresholdButNotPermits) {
  // Exhaustion legitimizes permits > threshold (the signal fired); the
  // cost <= permits bounds still apply and still hold here.
  const ControllerConfig cfg{30, true};
  const auto v = check_controller_budget(craft(20, 15, 40, true), cfg);
  EXPECT_TRUE(v.empty()) << v.front();
}

TEST(BudgetCheck, EachBrokenBoundIsNamed) {
  const ControllerConfig cfg{30, true};
  // total = 50 > permits = 35 (B1), control = 40 > permits (B2, implies
  // B1 here), permits = 35 > threshold = 30 without exhaustion (B3).
  const auto v = check_controller_budget(craft(10, 40, 35, false), cfg);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(any_mentions(v, "total billed cost"));
  EXPECT_TRUE(any_mentions(v, "control cost"));
  EXPECT_TRUE(any_mentions(v, "exhaustion signal"));
}

TEST(BudgetCheck, ExactEqualityIsWithinBounds) {
  // The invariant is an upper bound with equality allowed: a run that
  // spends every permitted unit is legal.
  const ControllerConfig cfg{30, true};
  const auto v = check_controller_budget(craft(15, 15, 30, false), cfg);
  EXPECT_TRUE(v.empty()) << v.front();
}

}  // namespace
}  // namespace csca
