#include "control/controller.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "check/budget_check.h"
#include "control/protocols.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"
#include "graph/generators.h"

namespace csca {
namespace {

DiffusingFactory echo_factory() {
  return [](NodeId v) { return std::make_unique<BroadcastEcho>(v); };
}

DiffusingFactory spam_factory() {
  return [](NodeId) { return std::make_unique<RunawaySpammer>(); };
}

TEST(Uncontrolled, BroadcastEchoCoversAndCostsTwoPerEdge) {
  Rng rng(1);
  Graph g = connected_gnp(15, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto run = run_uncontrolled(g, echo_factory(), 0,
                                    make_uniform_delay(0.1, 1.0), 7);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(v)).covered());
  }
  EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(0)).done());
  // 2 messages per tree edge, 4 per non-tree edge.
  EXPECT_GE(run.stats.algorithm_cost, 2 * g.total_weight());
  EXPECT_LE(run.stats.algorithm_cost, 4 * g.total_weight());
  EXPECT_EQ(run.stats.control_cost, 0);
}

TEST(Controlled, CorrectExecutionUnaffectedByController) {
  // §5's first requirement: with threshold >= c_pi, the controlled
  // protocol behaves exactly like the original.
  Rng rng(2);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 12), rng);
    const Weight c_pi = 4 * g.total_weight();
    const auto baseline = run_uncontrolled(
        g, echo_factory(), 0, make_uniform_delay(0.1, 1.0), seed);
    const auto run = run_controlled(
        g, echo_factory(), 0, ControllerConfig{2 * c_pi, true},
        make_uniform_delay(0.1, 1.0), seed);
    EXPECT_FALSE(run.exhausted) << "seed " << seed;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(v)).covered());
    }
    EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(0)).done());
    // Spending stays in the correct-execution envelope. (Exact message
    // counts may differ from the baseline: permit waits shift delivery
    // order, and PIF's wave-crossing pattern is timing dependent -- the
    // §5 guarantee is identical input/output semantics, which the
    // covered/done checks above verify.)
    EXPECT_GE(run.stats.algorithm_cost,
              baseline.stats.algorithm_cost / 2);
    EXPECT_LE(run.stats.algorithm_cost, c_pi);
    EXPECT_LE(run.permits_issued, 2 * c_pi);
  }
}

TEST(Controlled, Corollary51OverheadBound) {
  // Control traffic O(c_pi log^2 c_pi).
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 20), rng);
    const Weight c_pi = 4 * g.total_weight();
    const auto run = run_controlled(
        g, echo_factory(), 0, ControllerConfig{2 * c_pi, true},
        make_exact_delay(), 40 + static_cast<std::uint64_t>(trial));
    const double log_c = std::log2(static_cast<double>(c_pi) + 2);
    EXPECT_LE(static_cast<double>(run.stats.control_cost),
              4.0 * static_cast<double>(c_pi) * log_c * log_c);
  }
}

TEST(Controlled, RunawayProtocolIsSuspendedNearThreshold) {
  Rng rng(4);
  Graph g = connected_gnp(10, 0.4, WeightSpec::uniform(1, 8), rng);
  const Weight threshold = 500;
  const auto run = run_controlled(g, spam_factory(), 0,
                                  ControllerConfig{threshold, true},
                                  make_exact_delay());
  EXPECT_TRUE(run.exhausted);
  // Spending is bounded by what was actually authorized.
  EXPECT_LE(run.permits_issued, threshold);
  EXPECT_LE(run.stats.algorithm_cost, threshold);
  // The same protocol uncontrolled blows straight past the threshold.
  const auto wild = run_uncontrolled(g, spam_factory(), 0,
                                     make_exact_delay(), 1, 4000.0);
  EXPECT_GT(wild.stats.algorithm_cost, 4 * threshold);
}

TEST(Controlled, ZeroThresholdSuspendsImmediately) {
  Rng rng(5);
  Graph g = path_graph(4, WeightSpec::constant(3), rng);
  const auto run = run_controlled(g, echo_factory(), 0,
                                  ControllerConfig{0, true},
                                  make_exact_delay());
  EXPECT_TRUE(run.exhausted);
  EXPECT_EQ(run.stats.algorithm_messages, 0);
  EXPECT_FALSE(dynamic_cast<BroadcastEcho&>(run.inner(1)).covered());
}

TEST(Controlled, AggregationBeatsNaivePermitTraffic) {
  // Aggregation pays off for vertices that keep consuming: geometric
  // batches turn one request per message into O(log b) requests for b
  // units. The naive controller asks the root for every message. A
  // high-volume sender (the spammer) makes the gap stark; thresholds are
  // matched so both runs authorize about the same spending.
  Rng rng(6);
  Graph g = path_graph(3, WeightSpec::constant(2), rng);
  const Weight budget = 2000;
  const auto naive = run_controlled(g, spam_factory(), 0,
                                    ControllerConfig{budget, false},
                                    make_exact_delay());
  const auto smart = run_controlled(g, spam_factory(), 0,
                                    ControllerConfig{budget, true},
                                    make_exact_delay());
  EXPECT_TRUE(naive.exhausted);
  EXPECT_TRUE(smart.exhausted);
  EXPECT_LT(smart.stats.control_messages,
            naive.stats.control_messages / 2);
}

TEST(Controlled, ConcurrentRequestsFromManyChildrenAreRoutedCorrectly) {
  // A star of spammers: every leaf floods the hub with requests at once;
  // grant routing must pair each grant with its request path and the
  // total issuance must respect the budget.
  Graph g(9);
  for (NodeId v = 1; v < 9; ++v) g.add_edge(0, v, 3);
  const Weight budget = 900;
  const auto run = run_controlled(
      g, [](NodeId) { return std::make_unique<RunawaySpammer>(); }, 0,
      ControllerConfig{budget, true}, make_uniform_delay(0.0, 1.0), 5);
  EXPECT_TRUE(run.exhausted);
  EXPECT_LE(run.permits_issued, budget);
  EXPECT_LE(run.stats.algorithm_cost, budget);
  // Every leaf got to spend something before the cutoff.
  for (NodeId v = 1; v < 9; ++v) {
    EXPECT_GT(dynamic_cast<RunawaySpammer&>(run.inner(v)).received(), 0);
  }
}

TEST(Controlled, DeepTreeGrantRouting) {
  // Spammer at the end of a long path: requests climb the full
  // execution tree and grants retrace it exactly.
  Rng rng(8);
  Graph g = path_graph(10, WeightSpec::constant(2), rng);
  const auto run = run_controlled(
      g, [](NodeId) { return std::make_unique<RunawaySpammer>(); }, 0,
      ControllerConfig{400, true}, make_exact_delay());
  EXPECT_TRUE(run.exhausted);
  EXPECT_LE(run.permits_issued, 400);
  // The spammer only ping-pongs with direct neighbors, so the execution
  // tree is exactly {0, 1}: node 1 is active, the far end never joins.
  EXPECT_GT(dynamic_cast<RunawaySpammer&>(run.inner(1)).received(), 0);
  EXPECT_EQ(dynamic_cast<RunawaySpammer&>(run.inner(9)).received(), 0);
}

TEST(Controlled, ThresholdJustBelowCpiTruncatesExecution) {
  Rng rng(7);
  Graph g = path_graph(8, WeightSpec::constant(5), rng);
  const Weight c_pi = 4 * g.total_weight();
  const auto run = run_controlled(g, echo_factory(), 0,
                                  ControllerConfig{c_pi / 4, false},
                                  make_exact_delay());
  EXPECT_TRUE(run.exhausted);
  EXPECT_LT(run.stats.algorithm_cost, c_pi);
}

// RunEnv with the ARQ layer slid under the controller hosts; `meter`,
// when non-null, closes the admission loop (the ARQ-aware controller).
RunEnv arq_env(const FaultInjector* inj,
               std::shared_ptr<ControlMeter> meter) {
  RunEnv env;
  env.faults = inj;
  env.meter = meter;
  env.wrap = [meter](ProcessFactory f) {
    ArqConfig cfg;
    cfg.meter = meter;
    return arq_factory(std::move(f), cfg);
  };
  env.unwrap = [](Process& outer) -> Process& {
    return dynamic_cast<ArqHost&>(outer).inner();
  };
  return env;
}

// The bugfix pair pinning the blind spot closed. Same runaway protocol,
// same ARQ stack, same lossy channel, same threshold — run once with
// the permit counter blind to retransmit cost and once with the meter
// feeding it back. Blind: total billed cost blows past permits_issued
// (the bug this PR fixes — control traffic spent real transmissions the
// counter never saw). Metered: permits_issued is an upper bound on the
// total billed cost, exactly.
TEST(ControlledArq, MeterClosesAdmissionBlindSpotToRetransmitCost) {
  Rng rng(4);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 6), rng);
  FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.salt = 0xFA17;
  const FaultInjector inj(plan, g, 3);
  const ControllerConfig cfg{1500, true};

  const auto blind = run_controlled(g, spam_factory(), 0, cfg,
                                    make_uniform_delay(0.1, 1.0), 3,
                                    arq_env(&inj, nullptr));
  EXPECT_GT(blind.stats.total_cost(), blind.permits_issued)
      << "without the meter the ledger must overrun the permit counter "
         "(otherwise this test pins nothing)";

  const auto metered = run_controlled(g, spam_factory(), 0, cfg,
                                      make_uniform_delay(0.1, 1.0), 3,
                                      arq_env(&inj, std::make_shared<ControlMeter>()));
  EXPECT_TRUE(metered.exhausted);
  EXPECT_LE(metered.stats.total_cost(), metered.permits_issued);
  EXPECT_EQ(check_controller_budget(metered, cfg), std::vector<std::string>{});
}

// Acceptance bar: under the drop5pct builtin a metered ControlledRun of
// the well-behaved echo satisfies the full budget invariant (B1-B3 of
// check/budget_check.h) and still completes — provisioned admission
// never interferes with a correct execution.
TEST(ControlledArq, MeteredEchoUnderDrop5pctSatisfiesBudgetInvariant) {
  Rng rng(6);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 6), rng);
  const FaultPlan plan = make_builtin_fault_plan("drop5pct", g);
  const FaultInjector inj(plan, g, 8);
  const Weight c_pi = 4 * g.total_weight();
  // Budget provisioned for the metered stack: explicit issuance plus
  // the ACK tax and retransmit slack (see the fault_ctl bench table for
  // the envelope's derivation).
  const ControllerConfig cfg{12 * c_pi, true};

  const auto run = run_controlled(g, echo_factory(), 0, cfg,
                                  make_uniform_delay(0.1, 1.0), 8,
                                  arq_env(&inj, std::make_shared<ControlMeter>()));
  EXPECT_EQ(check_controller_budget(run, cfg), std::vector<std::string>{});
  EXPECT_FALSE(run.exhausted);
  EXPECT_LE(run.stats.total_cost(), run.permits_issued);
  EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(0)).done());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(v)).covered());
  }
}

// A retransmit storm alone must trip the budget: the protocol is cheap
// and well behaved, but a crashed peer turns the ARQ layer into a pure
// control-cost source, and the metered counter must notice — where the
// blind counter reports a run comfortably inside its threshold.
TEST(ControlledArq, RetransmitStormAgainstCrashedPeerExhaustsBudget) {
  // 0 -1- 1 -10- 2, node 2 crashed from the start: the wave toward 2 is
  // retransmitted max_retries times at weight 10 a piece, all control.
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 10);
  FaultPlan plan;
  plan.crashes.push_back({2, 0.0});
  const FaultInjector inj(plan, g, 1);
  // Generous for the protocol (c_pi = 4 * 11 = 44), small against a
  // 12-retry storm on the weight-10 edge.
  const ControllerConfig cfg{60, true};

  const auto metered = run_controlled(g, echo_factory(), 0, cfg,
                                      make_exact_delay(), 1,
                                      arq_env(&inj, std::make_shared<ControlMeter>()));
  EXPECT_TRUE(metered.exhausted);
  EXPECT_EQ(check_controller_budget(metered, cfg),
            std::vector<std::string>{});

  const auto blind = run_controlled(g, echo_factory(), 0, cfg,
                                    make_exact_delay(), 1,
                                    arq_env(&inj, nullptr));
  EXPECT_FALSE(blind.exhausted);  // the storm was invisible to admission
  EXPECT_GT(blind.stats.control_cost, cfg.threshold);
}

}  // namespace
}  // namespace csca
