// RestabilizingRun: epoch-by-epoch recovery accounting under keyed
// weight re-draws — the dirty probe's exact 2 * W(G) cost, certificate
// detection (KKP cycle rule / SPT route rule), kRecovery billing
// separation from the initial construction, and the liveness-churn
// precondition.
#include "control/restabilize.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/churn_plan.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "mst/ghs.h"
#include "sim/delay.h"

namespace csca {
namespace {

Graph test_graph(int n = 14, std::uint64_t seed = 7) {
  Rng rng(seed);
  return connected_gnp(n, 0.3, WeightSpec::uniform(1, 9), rng);
}

ChurnPlan redraw_plan(double fraction, int epochs = 3) {
  ChurnPlan plan;
  for (int k = 0; k < epochs; ++k) {
    ChurnEpoch ep;
    ep.at = static_cast<double>(k + 1);
    ep.redraw_fraction = fraction;
    plan.epochs.push_back(ep);
  }
  return plan;
}

// Replays the keyed re-draws the run applied, to recover each epoch's
// exact total weight.
std::vector<Weight> epoch_weights(const Graph& g, const ChurnPlan& plan,
                                  std::uint64_t seed) {
  Graph work = g;
  std::vector<Weight> w;
  for (std::size_t k = 0; k < plan.epochs.size(); ++k) {
    apply_churn_weights(plan, k, seed, work);
    w.push_back(work.total_weight());
  }
  return w;
}

// A zero-redraw epoch never invalidates the structure, so its entire
// recovery bill is the dirty probe — whose PIF cost is exactly 2 W(G).
TEST(Restabilize, ProbeCostsExactlyTwiceTotalWeight) {
  const Graph g = test_graph();
  RestabilizeOptions opts;
  opts.subject = RestabilizeSubject::kMst;
  opts.churn = redraw_plan(0.0, 2);
  opts.seed = 5;
  const RestabilizeReport report = run_restabilizing(g, opts);

  ASSERT_EQ(report.epochs.size(), 2u);
  EXPECT_EQ(report.restabilizations, 0);
  EXPECT_TRUE(report.final_valid);
  for (const EpochReport& er : report.epochs) {
    EXPECT_EQ(er.changed_edges, 0);
    EXPECT_EQ(er.violations, 0);
    EXPECT_FALSE(er.restabilized);
    EXPECT_EQ(er.recovery_cost, 2 * g.total_weight());
    EXPECT_EQ(er.recovery_messages, 2 * g.edge_count());
  }
}

// Heavy re-draws invalidate the MST; the run detects it via the cycle
// rule, re-executes under kRecovery billing, and ends valid against the
// final weights. The initial construction's ledger classes stay
// untouched by everything churn added.
TEST(Restabilize, MstDetectsAndRestabilizes) {
  const Graph g = test_graph(16, 3);
  RestabilizeOptions opts;
  opts.subject = RestabilizeSubject::kMst;
  opts.churn = redraw_plan(0.6);
  opts.seed = 9;
  const RestabilizeReport report = run_restabilizing(g, opts);

  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_GT(report.restabilizations, 0) << "60% re-draws never broke the MST";
  EXPECT_TRUE(report.final_valid);

  // Construction classes = exactly one fault-free GHS build on g.
  const RunStats base =
      run_ghs(g, GhsMode::kSerialScan, make_exact_delay(), opts.seed).stats;
  EXPECT_EQ(report.total.algorithm_messages, base.algorithm_messages);
  EXPECT_EQ(report.total.algorithm_cost, base.algorithm_cost);
  EXPECT_EQ(report.total.control_messages, base.control_messages);
  EXPECT_EQ(report.total.control_cost, base.control_cost);

  // Everything churn made necessary is in the recovery class, and the
  // per-epoch reports add up to the run total.
  std::int64_t rec_msgs = 0;
  Weight rec_cost = 0;
  const std::vector<Weight> w = epoch_weights(g, opts.churn, opts.seed);
  for (std::size_t k = 0; k < report.epochs.size(); ++k) {
    const EpochReport& er = report.epochs[k];
    rec_msgs += er.recovery_messages;
    rec_cost += er.recovery_cost;
    EXPECT_GE(er.recovery_cost, 2 * w[k]) << "epoch " << k;
    if (er.restabilized) {
      EXPECT_GT(er.violations, 0) << "epoch " << k;
      EXPECT_GT(er.recovery_cost, 2 * w[k]) << "epoch " << k;
    } else {
      EXPECT_EQ(er.recovery_cost, 2 * w[k]) << "epoch " << k;
    }
  }
  EXPECT_EQ(report.total.recovery_messages, rec_msgs);
  EXPECT_EQ(report.total.recovery_cost, rec_cost);
  EXPECT_GT(rec_cost, 0);
}

TEST(Restabilize, SptDetectsAndRestabilizes) {
  const Graph g = test_graph(14, 11);
  RestabilizeOptions opts;
  opts.subject = RestabilizeSubject::kSpt;
  opts.churn = redraw_plan(0.6);
  opts.seed = 4;
  opts.root = 2;
  const RestabilizeReport report = run_restabilizing(g, opts);

  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_GT(report.restabilizations, 0)
      << "60% re-draws never broke the SPT";
  EXPECT_TRUE(report.final_valid);
  EXPECT_GT(report.total.recovery_cost, 0);
  EXPECT_GT(report.total.algorithm_messages, 0);
}

// The caller's graph is never mutated, even though the run re-draws
// weights internally.
TEST(Restabilize, CallerGraphIsUntouched) {
  const Graph g = test_graph(12, 5);
  std::vector<Weight> before;
  for (EdgeId e = 0; e < g.edge_count(); ++e) before.push_back(g.weight(e));

  RestabilizeOptions opts;
  opts.churn = redraw_plan(0.8);
  opts.seed = 21;
  run_restabilizing(g, opts);

  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g.weight(e), before[static_cast<std::size_t>(e)])
        << "edge " << e;
  }
}

// An empty churn plan degenerates to one plain construction: no epochs,
// no recovery traffic, and a valid structure.
TEST(Restabilize, NoChurnMeansNoRecoveryTraffic) {
  const Graph g = test_graph();
  RestabilizeOptions opts;
  opts.seed = 3;
  const RestabilizeReport report = run_restabilizing(g, opts);
  EXPECT_TRUE(report.epochs.empty());
  EXPECT_EQ(report.restabilizations, 0);
  EXPECT_EQ(report.total.recovery_messages, 0);
  EXPECT_EQ(report.total.recovery_cost, 0);
  EXPECT_GT(report.total.algorithm_messages, 0);
  EXPECT_TRUE(report.final_valid);
}

// Liveness churn (edge/node events) is the FaultInjector path's job;
// the restabilizing driver takes weight re-draws only and says so.
TEST(Restabilize, RejectsLivenessChurn) {
  const Graph g = test_graph();
  RestabilizeOptions opts;
  opts.churn = redraw_plan(0.1, 1);
  opts.churn.epochs[0].edges_down.push_back(0);
  try {
    run_restabilizing(g, opts);
    FAIL() << "liveness churn must be rejected";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("weight-redraw churn only"),
              std::string::npos)
        << e.what();
  }
}

// The centralized certificate rules the driver decides with: positive
// and negative fixtures for both subjects.
TEST(Restabilize, CertificateRulesCatchBrokenStructures) {
  const Graph g = test_graph(12, 13);

  // MST: the true MSF passes; adding one non-tree edge closes a cycle
  // and fails the cycle rule.
  std::vector<char> in_tree(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : kruskal_mst(g)) in_tree[static_cast<std::size_t>(e)] = 1;
  EXPECT_EQ(mst_cycle_violations(g, in_tree), 0);
  std::vector<char> broken = in_tree;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!in_tree[static_cast<std::size_t>(e)]) {
      broken[static_cast<std::size_t>(e)] = 1;  // close a cycle
      break;
    }
  }
  EXPECT_GT(mst_cycle_violations(g, broken), 0);

  // SPT: true distances pass; perturbing one non-source distance fails
  // the route rules.
  const std::vector<Weight> dist = dijkstra(g, 0).dist;
  EXPECT_EQ(spt_route_violations(g, 0, dist), 0);
  std::vector<Weight> wrong = dist;
  wrong[wrong.size() - 1] = -5;  // no incident edge can be tight
  EXPECT_GT(spt_route_violations(g, 0, wrong), 0);
}

}  // namespace
}  // namespace csca
