#include "control/termination.h"

#include <gtest/gtest.h>

#include "control/protocols.h"
#include "graph/generators.h"

namespace csca {
namespace {

TEST(Termination, DetectsPifCompletionEverywhere) {
  Rng rng(1);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 10), rng);
    const auto run = run_with_termination_detection(
        g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); },
        0, make_uniform_delay(0.1, 1.0), seed);
    EXPECT_TRUE(run.detected);
    EXPECT_GE(run.detected_at, 0.0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_TRUE(dynamic_cast<BroadcastEcho&>(run.inner(v)).covered());
    }
  }
}

TEST(Termination, CertificateComesAfterAllProtocolActivity) {
  // The detection time is at least the last protocol event: with exact
  // delays, the PIF finishes at its deepest round trip; the certificate
  // cannot precede it.
  Rng rng(2);
  Graph g = path_graph(8, WeightSpec::constant(5), rng);
  const auto run = run_with_termination_detection(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, 0,
      make_exact_delay());
  EXPECT_TRUE(run.detected);
  // Wave to the end (35) + echo back (35) = 70; the certificate needs
  // at least that plus nothing less.
  EXPECT_GE(run.detected_at, 70.0);
}

TEST(Termination, AckOverheadMatchesProtocolTraffic) {
  // DS sends exactly one ack per protocol message.
  Rng rng(3);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 8), rng);
  const auto run = run_with_termination_detection(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, 0,
      make_exact_delay());
  EXPECT_EQ(run.stats.control_messages, run.stats.algorithm_messages);
  EXPECT_EQ(run.stats.control_cost, run.stats.algorithm_cost);
}

TEST(Termination, TrivialProtocolCertifiesImmediately) {
  class Mute final : public DiffusingProcess {
   public:
    void on_message(DiffusingContext&, const Message&) override {}
  };
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  const auto run = run_with_termination_detection(
      g, [](NodeId) { return std::make_unique<Mute>(); }, 0,
      make_exact_delay());
  EXPECT_TRUE(run.detected);
  EXPECT_DOUBLE_EQ(run.detected_at, 0.0);
  EXPECT_EQ(run.stats.total_messages(), 0);
}

TEST(Termination, SingleNode) {
  Graph g(1);
  const auto run = run_with_termination_detection(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, 0,
      make_exact_delay());
  EXPECT_TRUE(run.detected);
}

}  // namespace
}  // namespace csca
