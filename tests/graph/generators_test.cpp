#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"

namespace csca {
namespace {

TEST(WeightSpecTest, ConstantAlwaysSameValue) {
  Rng rng(1);
  const auto spec = WeightSpec::constant(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(spec.sample(rng), 7);
}

TEST(WeightSpecTest, UniformInRange) {
  Rng rng(2);
  const auto spec = WeightSpec::uniform(3, 9);
  for (int i = 0; i < 200; ++i) {
    const Weight w = spec.sample(rng);
    EXPECT_GE(w, 3);
    EXPECT_LE(w, 9);
  }
}

TEST(WeightSpecTest, PowerOfTwoProducesPowers) {
  Rng rng(3);
  const auto spec = WeightSpec::power_of_two(0, 6);
  for (int i = 0; i < 200; ++i) {
    const Weight w = spec.sample(rng);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 64);
    EXPECT_EQ(w & (w - 1), 0) << w << " is not a power of two";
  }
}

TEST(WeightSpecTest, RejectsInvalidRanges) {
  EXPECT_THROW(WeightSpec::constant(0), PreconditionError);
  EXPECT_THROW(WeightSpec::uniform(5, 2), PreconditionError);
  EXPECT_THROW(WeightSpec::uniform(0, 2), PreconditionError);
  EXPECT_THROW(WeightSpec::power_of_two(3, 2), PreconditionError);
}

TEST(Generators, PathShape) {
  Rng rng(4);
  Graph g = path_graph(6, WeightSpec::constant(1), rng);
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CycleShape) {
  Rng rng(5);
  Graph g = cycle_graph(7, WeightSpec::constant(1), rng);
  EXPECT_EQ(g.edge_count(), 7);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, GridShape) {
  Rng rng(6);
  Graph g = grid_graph(3, 4, WeightSpec::constant(1), rng);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);      // corner
  EXPECT_EQ(g.degree(1), 3);      // border
  EXPECT_EQ(g.degree(1 * 4 + 1), 4);  // interior
}

TEST(Generators, CompleteShape) {
  Rng rng(7);
  Graph g = complete_graph(6, WeightSpec::constant(1), rng);
  EXPECT_EQ(g.edge_count(), 15);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    Graph g = random_tree(n, WeightSpec::uniform(1, 4), rng);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedGnpIsConnectedAtAllDensities) {
  Rng rng(9);
  for (double p : {0.0, 0.05, 0.3, 1.0}) {
    Graph g = connected_gnp(25, p, WeightSpec::uniform(1, 10), rng);
    EXPECT_TRUE(is_connected(g)) << "p=" << p;
    EXPECT_GE(g.edge_count(), 24);
  }
}

TEST(Generators, ConnectedGnpDensityOneIsComplete) {
  Rng rng(10);
  Graph g = connected_gnp(10, 1.0, WeightSpec::constant(2), rng);
  EXPECT_EQ(g.edge_count(), 45);
}

TEST(Generators, RandomGeometricConnectedAndWeightsPositive) {
  Rng rng(11);
  Graph g = random_geometric(40, 0.25, 100, rng);
  EXPECT_TRUE(is_connected(g));
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1);
    EXPECT_LE(e.w, 142);  // ceil(sqrt(2) * 100)
  }
}

TEST(Generators, LowerBoundFamilyShape) {
  const int n = 9;
  Graph g = lower_bound_family(n, 10);
  // Path edges: 8. Bypass: (0,8),(1,7),(2,6),(3,5) = 4.
  EXPECT_EQ(g.edge_count(), 12);
  EXPECT_TRUE(g.has_edge(0, 8));
  EXPECT_TRUE(g.has_edge(3, 5));
  EXPECT_FALSE(g.has_edge(4, 4));
  EXPECT_EQ(g.weight(g.find_edge(0, 1)), 10);
  EXPECT_EQ(g.weight(g.find_edge(0, 8)), 10000);
  // MST is the pure path (bypass edges too heavy).
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(total_weight(g, mst), 80);
}

TEST(Generators, LowerBoundFamilyEvenSkipsDegeneratePair) {
  // n = 8: pairs (0,7),(1,6),(2,5); (3,4) is a path edge, skipped.
  Graph g = lower_bound_family(8, 10);
  EXPECT_EQ(g.edge_count(), 7 + 3);
}

TEST(Generators, LowerBoundSplitMovesOneBypassToPendants) {
  const int n = 9;
  Graph g = lower_bound_family(n, 10);
  Graph gs = lower_bound_family_split(n, 10, 2);
  EXPECT_EQ(gs.node_count(), n + 2);
  EXPECT_EQ(gs.edge_count(), g.edge_count() + 1);  // one edge -> two
  EXPECT_FALSE(gs.has_edge(2, 6));
  EXPECT_TRUE(gs.has_edge(2, 9));
  EXPECT_TRUE(gs.has_edge(6, 10));
  EXPECT_TRUE(is_connected(gs));
}

TEST(Generators, LowerBoundSplitRejectsBadIndex) {
  EXPECT_THROW(lower_bound_family_split(9, 10, 4), PreconditionError);
  EXPECT_THROW(lower_bound_family_split(9, 10, -1), PreconditionError);
}

TEST(Generators, LowerBoundRejectsOverflowRisk) {
  EXPECT_THROW(lower_bound_family(9, 100000), PreconditionError);
}

TEST(Generators, SptHeavyFamilyRealizesBkj83Bound) {
  // w(T_S) = Theta(n * V): the SPT from 0 takes every direct edge.
  const int n = 20;
  Graph g = spt_heavy_family(n);
  const Weight v = mst_weight(g);
  EXPECT_EQ(v, 2 * (n - 1));  // the light path is the MST
  const auto spt = dijkstra(g, 0).tree(g);
  // Direct edge weight 2v-1 beats the path distance 2v.
  for (NodeId x = 2; x < n; ++x) {
    EXPECT_EQ(spt.depth(g, x), 2 * x - 1);
    EXPECT_EQ(spt.parent(g, x), 0);
  }
  // Total SPT weight ~ n^2 / 4 of V's n: the Theta(n V) blowup.
  EXPECT_GE(spt.weight(g), static_cast<Weight>(n) * v / 8);
}

TEST(Generators, MstDeepFamilyRealizesBkj83Bound) {
  // Diam(T_M) = Theta(n * D): the MST is the rim chain, D is constant.
  const int n = 20;
  Graph g = mst_deep_family(n);
  Rng rng(0);
  const auto m = measure(g);
  EXPECT_LE(m.comm_D, 4);
  const auto t = mst_tree(g, 0);
  EXPECT_GE(t.diameter(g), static_cast<Weight>(n - 3));
  EXPECT_GE(t.diameter(g),
            static_cast<Weight>(n / 8) * m.comm_D);
}

}  // namespace
}  // namespace csca
