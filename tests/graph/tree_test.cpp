#include "graph/tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

// Small fixture graph:
//   0 --1-- 1 --2-- 2
//   |               |
//   4               8
//   |               |
//   3 ------16----- 4
struct Fixture {
  Graph g{5};
  EdgeId e01, e12, e03, e24, e34;
  Fixture() {
    e01 = g.add_edge(0, 1, 1);
    e12 = g.add_edge(1, 2, 2);
    e03 = g.add_edge(0, 3, 4);
    e24 = g.add_edge(2, 4, 8);
    e34 = g.add_edge(3, 4, 16);
  }
};

TEST(RootedTree, SingleNodeTree) {
  RootedTree t(4, 2);
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.contains(2));
  EXPECT_FALSE(t.contains(0));
  EXPECT_FALSE(t.spanning());
}

TEST(RootedTree, AttachGrowsTree) {
  Fixture f;
  RootedTree t(5, 0);
  t.attach(f.g, 1, f.e01);
  t.attach(f.g, 2, f.e12);
  t.attach(f.g, 3, f.e03);
  t.attach(f.g, 4, f.e24);
  EXPECT_TRUE(t.spanning());
  EXPECT_EQ(t.weight(f.g), 1 + 2 + 4 + 8);
  EXPECT_EQ(t.depth(f.g, 4), 1 + 2 + 8);
  EXPECT_EQ(t.height(f.g), 11);
  EXPECT_EQ(t.parent(f.g, 4), 2);
  EXPECT_EQ(t.parent(f.g, 0), kNoNode);
}

TEST(RootedTree, AttachRejectsDetachedEdge) {
  Fixture f;
  RootedTree t(5, 0);
  // Edge (2,4): neither endpoint in tree yet.
  EXPECT_THROW(t.attach(f.g, 4, f.e24), PreconditionError);
  t.attach(f.g, 1, f.e01);
  EXPECT_THROW(t.attach(f.g, 1, f.e01), PreconditionError);  // duplicate
}

TEST(RootedTree, FromParentEdgesValidates) {
  Fixture f;
  std::vector<EdgeId> pe(5, kNoEdge);
  pe[1] = f.e01;
  pe[2] = f.e12;
  pe[3] = f.e03;
  pe[4] = f.e24;
  const auto t = RootedTree::from_parent_edges(f.g, 0, pe);
  EXPECT_TRUE(t.spanning());
  EXPECT_EQ(t.weight(f.g), 15);
}

TEST(RootedTree, FromParentEdgesRejectsDisconnected) {
  Fixture f;
  std::vector<EdgeId> pe(5, kNoEdge);
  pe[4] = f.e24;  // 2 not in tree -> 4 dangles
  EXPECT_THROW(RootedTree::from_parent_edges(f.g, 0, pe),
               PreconditionError);
}

TEST(RootedTree, PathBetweenNodes) {
  Fixture f;
  RootedTree t(5, 0);
  t.attach(f.g, 1, f.e01);
  t.attach(f.g, 2, f.e12);
  t.attach(f.g, 3, f.e03);
  t.attach(f.g, 4, f.e24);
  const auto p = t.path(f.g, 3, 4);
  EXPECT_EQ(p, (std::vector<EdgeId>{f.e03, f.e01, f.e12, f.e24}));
  EXPECT_EQ(total_weight(f.g, p), 15);
  EXPECT_TRUE(t.path(f.g, 2, 2).empty());
}

TEST(RootedTree, DiameterTwoSweep) {
  Fixture f;
  RootedTree t(5, 0);
  t.attach(f.g, 1, f.e01);
  t.attach(f.g, 2, f.e12);
  t.attach(f.g, 3, f.e03);
  t.attach(f.g, 4, f.e24);
  // Longest tree path: 3 - 0 - 1 - 2 - 4 = 4+1+2+8 = 15.
  EXPECT_EQ(t.diameter(f.g), 15);
}

TEST(RootedTree, PreorderVisitsAllOnceRootFirst) {
  Fixture f;
  RootedTree t(5, 0);
  t.attach(f.g, 1, f.e01);
  t.attach(f.g, 2, f.e12);
  t.attach(f.g, 3, f.e03);
  t.attach(f.g, 4, f.e24);
  auto order = t.nodes_preorder(f.g);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(order.front(), 0);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(RootedTree, DiameterMatchesBruteForceOnRandomTrees) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 40));
    Graph g = random_tree(n, WeightSpec::uniform(1, 50), rng);
    const auto t = mst_tree(g, 0);
    Weight brute = 0;
    for (NodeId a = 0; a < n; ++a) {
      const auto sp = dijkstra(g, a);
      for (NodeId b = 0; b < n; ++b) {
        brute = std::max(brute, sp.dist[static_cast<std::size_t>(b)]);
      }
    }
    EXPECT_EQ(t.diameter(g), brute) << "n=" << n << " trial=" << trial;
  }
}

TEST(RootedTree, PathWeightsMatchDijkstraOnRandomTrees) {
  // On a tree, the unique tree path between any pair is the shortest
  // path; path() must realize exactly the Dijkstra distance, from every
  // root orientation.
  Rng rng(321);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 30));
    Graph g = random_tree(n, WeightSpec::uniform(1, 40), rng);
    const NodeId root = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto t = mst_tree(g, root);
    const NodeId a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto sp = dijkstra(g, a);
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(total_weight(g, t.path(g, a, b)),
                sp.dist[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(RootedTree, EdgeSetMatchesAttachedEdges) {
  Fixture f;
  RootedTree t(5, 0);
  t.attach(f.g, 1, f.e01);
  t.attach(f.g, 3, f.e03);
  auto es = t.edge_set();
  std::sort(es.begin(), es.end());
  EXPECT_EQ(es, (std::vector<EdgeId>{f.e01, f.e03}));
}

}  // namespace
}  // namespace csca
