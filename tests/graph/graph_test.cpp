#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/disjoint_sets.h"

namespace csca {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.total_weight(), 0);
  EXPECT_EQ(g.max_weight(), 0);
}

TEST(Graph, RejectsNegativeNodeCount) {
  EXPECT_THROW(Graph(-1), PreconditionError);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 1);
  EXPECT_EQ(g.weight(e), 5);
  EXPECT_EQ(g.other(e, 0), 1);
  EXPECT_EQ(g.other(e, 1), 0);
  EXPECT_EQ(g.total_weight(), 5);
  EXPECT_EQ(g.max_weight(), 5);
}

TEST(Graph, OtherRejectsNonEndpoint) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_THROW(g.other(e, 2), PreconditionError);
}

TEST(Graph, RejectsSelfLoopsParallelEdgesAndBadWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  EXPECT_THROW(g.add_edge(1, 1, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, 3), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 0, 3), PreconditionError);  // reversed too
  EXPECT_THROW(g.add_edge(1, 2, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 2, -4), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 3, 1), PreconditionError);  // out of range
}

TEST(Graph, IncidentListsAndDegree) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  const EdgeId e02 = g.add_edge(0, 2, 2);
  const EdgeId e12 = g.add_edge(1, 2, 3);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 0);
  const auto inc0 = g.incident(0);
  EXPECT_EQ(std::vector<EdgeId>(inc0.begin(), inc0.end()),
            (std::vector<EdgeId>{e01, e02}));
  const auto inc2 = g.incident(2);
  EXPECT_EQ(std::vector<EdgeId>(inc2.begin(), inc2.end()),
            (std::vector<EdgeId>{e02, e12}));
}

TEST(Graph, FindEdgeEitherOrientation) {
  Graph g(3);
  const EdgeId e = g.add_edge(2, 0, 7);
  EXPECT_EQ(g.find_edge(0, 2), e);
  EXPECT_EQ(g.find_edge(2, 0), e);
  EXPECT_EQ(g.find_edge(0, 1), kNoEdge);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, TotalAndMaxWeightAccumulate) {
  Graph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 4);
  EXPECT_EQ(g.total_weight(), 15);
  EXPECT_EQ(g.max_weight(), 10);
}

TEST(Graph, TotalWeightOfEdgeSubset) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 1);
  const EdgeId c = g.add_edge(2, 3, 4);
  const std::vector<EdgeId> subset{a, c};
  EXPECT_EQ(total_weight(g, subset), 14);
}

TEST(Graph, NeighborsPairsEdgeWithOtherEndpoint) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  const EdgeId e02 = g.add_edge(0, 2, 2);
  const EdgeId e12 = g.add_edge(1, 2, 3);
  std::vector<std::pair<EdgeId, NodeId>> seen;
  for (const Arc a : g.neighbors(2)) seen.emplace_back(a.edge, a.node);
  EXPECT_EQ(seen, (std::vector<std::pair<EdgeId, NodeId>>{{e02, 0},
                                                          {e12, 1}}));
  EXPECT_EQ(g.neighbors(3).size(), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
  EXPECT_EQ(g.neighbors(0).size(), static_cast<std::size_t>(g.degree(0)));
  EXPECT_EQ(g.neighbors(0)[0].edge, e01);
}

// The CSR arrays rebuild lazily after mutation; slices must always
// list a node's edges in insertion (edge-id) order — the layout every
// golden ledger was recorded against.
TEST(Graph, CsrRebuildsAfterInterleavedReadsAndInserts) {
  Graph g(5);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  EXPECT_EQ(g.incident(0).size(), 1u);  // forces a CSR build...
  const EdgeId e03 = g.add_edge(0, 3, 2);  // ...then dirties it
  const EdgeId e04 = g.add_edge(0, 4, 3);
  const auto inc0 = g.incident(0);
  EXPECT_EQ(std::vector<EdgeId>(inc0.begin(), inc0.end()),
            (std::vector<EdgeId>{e01, e03, e04}));
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, FindEdgeSurvivesIndexGrowth) {
  const int n = 200;  // path: enough inserts to grow the hash index
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(n));
  std::vector<EdgeId> ids;
  for (NodeId v = 0; v + 1 < n; ++v) ids.push_back(g.add_edge(v, v + 1, 1));
  for (NodeId v = 0; v + 1 < n; ++v) {
    EXPECT_EQ(g.find_edge(v, v + 1), ids[static_cast<std::size_t>(v)]);
    EXPECT_EQ(g.find_edge(v + 1, v), ids[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(g.find_edge(0, n - 1), kNoEdge);
}

TEST(Graph, MemoryBytesGrowsWithEdges) {
  Graph g(16);
  const std::size_t empty = g.memory_bytes();
  EXPECT_GT(empty, 0u);
  for (NodeId v = 0; v + 1 < 16; ++v) g.add_edge(v, v + 1, 1);
  EXPECT_EQ(g.incident(8).size(), 2u);
  EXPECT_GT(g.memory_bytes(), empty);
}

TEST(DisjointSets, UniteAndFind) {
  DisjointSets ds(5);
  EXPECT_FALSE(ds.same(0, 1));
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.same(0, 1));
  EXPECT_FALSE(ds.unite(1, 0));
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_TRUE(ds.unite(0, 3));
  EXPECT_TRUE(ds.same(1, 2));
  EXPECT_EQ(ds.set_size(1), 4);
  EXPECT_EQ(ds.set_size(4), 1);
}

TEST(DisjointSets, RangeChecks) {
  DisjointSets ds(2);
  EXPECT_THROW(ds.find(2), PreconditionError);
  EXPECT_THROW(ds.find(-1), PreconditionError);
}

}  // namespace
}  // namespace csca
