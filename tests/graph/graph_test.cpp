#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/disjoint_sets.h"

namespace csca {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.total_weight(), 0);
  EXPECT_EQ(g.max_weight(), 0);
}

TEST(Graph, RejectsNegativeNodeCount) {
  EXPECT_THROW(Graph(-1), PreconditionError);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 1);
  EXPECT_EQ(g.weight(e), 5);
  EXPECT_EQ(g.other(e, 0), 1);
  EXPECT_EQ(g.other(e, 1), 0);
  EXPECT_EQ(g.total_weight(), 5);
  EXPECT_EQ(g.max_weight(), 5);
}

TEST(Graph, OtherRejectsNonEndpoint) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_THROW(g.other(e, 2), PreconditionError);
}

TEST(Graph, RejectsSelfLoopsParallelEdgesAndBadWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  EXPECT_THROW(g.add_edge(1, 1, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, 3), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 0, 3), PreconditionError);  // reversed too
  EXPECT_THROW(g.add_edge(1, 2, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 2, -4), PreconditionError);
  EXPECT_THROW(g.add_edge(1, 3, 1), PreconditionError);  // out of range
}

TEST(Graph, IncidentListsAndDegree) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1);
  const EdgeId e02 = g.add_edge(0, 2, 2);
  const EdgeId e12 = g.add_edge(1, 2, 3);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 0);
  const auto inc0 = g.incident(0);
  EXPECT_EQ(std::vector<EdgeId>(inc0.begin(), inc0.end()),
            (std::vector<EdgeId>{e01, e02}));
  const auto inc2 = g.incident(2);
  EXPECT_EQ(std::vector<EdgeId>(inc2.begin(), inc2.end()),
            (std::vector<EdgeId>{e02, e12}));
}

TEST(Graph, FindEdgeEitherOrientation) {
  Graph g(3);
  const EdgeId e = g.add_edge(2, 0, 7);
  EXPECT_EQ(g.find_edge(0, 2), e);
  EXPECT_EQ(g.find_edge(2, 0), e);
  EXPECT_EQ(g.find_edge(0, 1), kNoEdge);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, TotalAndMaxWeightAccumulate) {
  Graph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 4);
  EXPECT_EQ(g.total_weight(), 15);
  EXPECT_EQ(g.max_weight(), 10);
}

TEST(Graph, TotalWeightOfEdgeSubset) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 1);
  const EdgeId c = g.add_edge(2, 3, 4);
  const std::vector<EdgeId> subset{a, c};
  EXPECT_EQ(total_weight(g, subset), 14);
}

TEST(DisjointSets, UniteAndFind) {
  DisjointSets ds(5);
  EXPECT_FALSE(ds.same(0, 1));
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.same(0, 1));
  EXPECT_FALSE(ds.unite(1, 0));
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_TRUE(ds.unite(0, 3));
  EXPECT_TRUE(ds.same(1, 2));
  EXPECT_EQ(ds.set_size(1), 4);
  EXPECT_EQ(ds.set_size(4), 1);
}

TEST(DisjointSets, RangeChecks) {
  DisjointSets ds(2);
  EXPECT_THROW(ds.find(2), PreconditionError);
  EXPECT_THROW(ds.find(-1), PreconditionError);
}

}  // namespace
}  // namespace csca
