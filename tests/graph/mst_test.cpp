#include "graph/mst.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/disjoint_sets.h"
#include "graph/generators.h"

namespace csca {
namespace {

TEST(Kruskal, TriangleDropsHeaviestEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  const EdgeId heavy = g.add_edge(0, 2, 5);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.size(), 2u);
  EXPECT_EQ(std::count(mst.begin(), mst.end(), heavy), 0);
  EXPECT_EQ(mst_weight(g), 3);
}

TEST(Kruskal, DisconnectedGraphGivesForest) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(kruskal_mst(g).size(), 2u);
}

TEST(Kruskal, TieBreakIsDeterministic) {
  // All weights equal: the unique MST under edge_less is still unique.
  Rng rng(4);
  Graph g = complete_graph(6, WeightSpec::constant(7), rng);
  const auto a = kruskal_mst(g);
  const auto b = kruskal_mst(g);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 5u);
}

TEST(EdgeLess, IsStrictTotalOrder) {
  Rng rng(6);
  Graph g = complete_graph(8, WeightSpec::uniform(1, 3), rng);
  for (EdgeId a = 0; a < g.edge_count(); ++a) {
    EXPECT_FALSE(edge_less(g, a, a));
    for (EdgeId b = 0; b < g.edge_count(); ++b) {
      if (a == b) continue;
      EXPECT_NE(edge_less(g, a, b), edge_less(g, b, a));
    }
  }
}

TEST(MstTree, SpanningAndWeightMatchesKruskal) {
  Rng rng(8);
  Graph g = connected_gnp(30, 0.2, WeightSpec::uniform(1, 40), rng);
  const auto t = mst_tree(g, 3);
  EXPECT_TRUE(t.spanning());
  EXPECT_EQ(t.root(), 3);
  EXPECT_EQ(t.weight(g), mst_weight(g));
}

TEST(MstTree, RequiresConnectedGraph) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(mst_tree(g, 0), PreconditionError);
}

TEST(IsMinimumSpanningForest, AcceptsKruskalRejectsOthers) {
  Rng rng(9);
  Graph g = connected_gnp(15, 0.3, WeightSpec::uniform(1, 100), rng);
  auto mst = kruskal_mst(g);
  EXPECT_TRUE(is_minimum_spanning_forest(g, mst));
  // Swap one MST edge for one non-MST edge: no longer minimum (weights
  // are near-distinct at this range, so almost surely strictly worse; we
  // verify by weight comparison instead of assuming).
  std::vector<char> in_mst(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : mst) in_mst[static_cast<std::size_t>(e)] = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (in_mst[static_cast<std::size_t>(e)]) continue;
    auto altered = mst;
    altered.back() = e;
    EXPECT_FALSE(is_minimum_spanning_forest(g, altered));
    break;
  }
}

// Prim-style oracle for cross-checking Kruskal.
Weight prim_weight(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<char> in_tree(n, 0);
  in_tree[0] = 1;
  Weight sum = 0;
  for (int step = 1; step < g.node_count(); ++step) {
    EdgeId best = kNoEdge;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      if (in_tree[static_cast<std::size_t>(ed.u)] ==
          in_tree[static_cast<std::size_t>(ed.v)]) {
        continue;
      }
      if (best == kNoEdge || edge_less(g, e, best)) best = e;
    }
    if (best == kNoEdge) break;  // disconnected
    sum += g.weight(best);
    in_tree[static_cast<std::size_t>(g.edge(best).u)] = 1;
    in_tree[static_cast<std::size_t>(g.edge(best).v)] = 1;
  }
  return sum;
}

class MstPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstPropertyTest, KruskalMatchesPrimOnRandomGraphs) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(5, 35));
  Graph g = connected_gnp(n, 0.25, WeightSpec::uniform(1, 60), rng);
  EXPECT_EQ(mst_weight(g), prim_weight(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(MstWeight, CutPropertyOnLowerBoundFamily) {
  // In G_n all bypass edges are heavy, so the MST is exactly the path.
  Graph g = lower_bound_family(11, 12);
  EXPECT_EQ(mst_weight(g), 10 * 12);
}

}  // namespace
}  // namespace csca
