#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.h"
#include "graph/mst.h"

namespace csca {
namespace {

TEST(Components, CountsAndLabels) {
  Graph g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(3, 4, 1);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_EQ(c.component[3], c.component[4]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_NE(c.component[0], c.component[5]);
  EXPECT_FALSE(c.connected());
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, ConnectedGraph) {
  Rng rng(1);
  Graph g = cycle_graph(8, WeightSpec::constant(2), rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).count, 1);
}

TEST(Components, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(HopDistances, IgnoreWeights) {
  Graph g(4);
  g.add_edge(0, 1, 1000);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 3, 1);
  const auto d = hop_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 1}));
}

TEST(HopDiameter, PathAndCycle) {
  Rng rng(2);
  EXPECT_EQ(hop_diameter(path_graph(6, WeightSpec::constant(9), rng)), 5);
  EXPECT_EQ(hop_diameter(cycle_graph(6, WeightSpec::constant(9), rng)), 3);
}

TEST(EulerTour, PathTreeVisitsEveryEdgeTwice) {
  Rng rng(3);
  Graph g = path_graph(4, WeightSpec::constant(1), rng);
  const auto t = mst_tree(g, 0);
  const auto tour = euler_tour(g, t);
  EXPECT_EQ(tour, (std::vector<NodeId>{0, 1, 2, 3, 2, 1, 0}));
}

TEST(EulerTour, PropertiesOnRandomTrees) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 50));
    Graph g = random_tree(n, WeightSpec::uniform(1, 5), rng);
    const auto t = mst_tree(g, 0);
    const auto tour = euler_tour(g, t);
    ASSERT_EQ(tour.size(), static_cast<std::size_t>(2 * n - 1));
    EXPECT_EQ(tour.front(), 0);
    EXPECT_EQ(tour.back(), 0);
    // Consecutive entries are tree neighbors; each tree edge used twice.
    std::map<EdgeId, int> uses;
    for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
      const EdgeId e = g.find_edge(tour[i], tour[i + 1]);
      ASSERT_NE(e, kNoEdge) << "tour steps must follow edges";
      ++uses[e];
    }
    for (const auto& [e, count] : uses) EXPECT_EQ(count, 2) << "edge " << e;
    EXPECT_EQ(uses.size(), static_cast<std::size_t>(n - 1));
    // Every node appears.
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (NodeId v : tour) seen[static_cast<std::size_t>(v)] = 1;
    for (char s : seen) EXPECT_TRUE(s);
  }
}

TEST(EulerTour, SingleNodeTree) {
  Graph g(1);
  RootedTree t(1, 0);
  EXPECT_EQ(euler_tour(g, t), std::vector<NodeId>{0});
}

}  // namespace
}  // namespace csca
