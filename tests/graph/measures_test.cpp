#include "graph/measures.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "graph/mst.h"

namespace csca {
namespace {

TEST(Measures, PathGraphParameters) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(3), rng);
  const auto m = measure(g);
  EXPECT_EQ(m.n, 5);
  EXPECT_EQ(m.m, 4);
  EXPECT_EQ(m.comm_E, 12);
  EXPECT_EQ(m.comm_V, 12);  // the path is its own MST
  EXPECT_EQ(m.comm_D, 12);
  EXPECT_EQ(m.d, 3);  // neighbors are at exactly one edge
  EXPECT_EQ(m.W, 3);
}

TEST(Measures, HeavyEdgeBypassedByLightPath) {
  // Triangle where the heavy edge's endpoints are close via the light
  // path: d < W, the regime §1.4.2 calls interesting.
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 100);
  const auto m = measure(g);
  EXPECT_EQ(m.W, 100);
  EXPECT_EQ(m.d, 4);       // dist(0,2) = 4 via node 1
  EXPECT_EQ(m.comm_D, 4);  // diameter realized by the same pair
  EXPECT_EQ(m.comm_V, 4);
  EXPECT_EQ(m.comm_E, 104);
}

TEST(Measures, DisconnectedRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(measure(g), PreconditionError);
  EXPECT_THROW(weighted_diameter(g), PreconditionError);
  EXPECT_THROW(max_neighbor_distance(g), PreconditionError);
}

TEST(Measures, OrderingInvariants) {
  // For any connected graph: D <= V <= E (Fact 6.3 gives Diam(MST) <= V
  // and trivially D <= Diam(MST); MST is a subgraph so V <= E) and
  // d <= min(W, D).
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_gnp(20, 0.2, WeightSpec::uniform(1, 50), rng);
    const auto m = measure(g);
    EXPECT_LE(m.comm_D, m.comm_V);
    EXPECT_LE(m.comm_V, m.comm_E);
    EXPECT_LE(m.d, m.W);
    EXPECT_LE(m.d, m.comm_D);
    EXPECT_LE(m.comm_D, static_cast<Weight>(m.n - 1) * m.W);
  }
}

TEST(Measures, Fact63MstDiameterAtMostNMinusOneTimesD) {
  // Fact 6.3: Diam(MST) <= V <= (n-1) * D.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_gnp(18, 0.25, WeightSpec::uniform(1, 30), rng);
    const auto m = measure(g);
    const auto t = mst_tree(g, 0);
    EXPECT_LE(t.diameter(g), m.comm_V);
    EXPECT_LE(m.comm_V, static_cast<Weight>(m.n - 1) * m.comm_D);
  }
}

TEST(Measures, Fact65SptWeightAtMostNMinusOneTimesV) {
  // Fact 6.5: w(T_S) <= (n - 1) * V for every source, with the
  // spt_heavy family coming within a constant of saturating it.
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 40), rng);
    const Weight v = mst_weight(g);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const auto spt = dijkstra(g, s).tree(g);
      EXPECT_LE(spt.weight(g),
                static_cast<Weight>(g.node_count() - 1) * v);
    }
  }
  Graph tight = spt_heavy_family(24);
  const auto spt = dijkstra(tight, 0).tree(tight);
  EXPECT_GE(spt.weight(tight),
            static_cast<Weight>(tight.node_count()) *
                mst_weight(tight) / 8);
}

TEST(Measures, WeightedRadiusAtCenterOfPath) {
  Rng rng(4);
  Graph g = path_graph(5, WeightSpec::constant(2), rng);
  EXPECT_EQ(weighted_radius(g, 2), 4);
  EXPECT_EQ(weighted_radius(g, 0), 8);
}

TEST(Measures, LowerBoundFamilyMeasures) {
  const int n = 9;
  const Weight x = 10;
  Graph g = lower_bound_family(n, x);
  const auto m = measure(g);
  EXPECT_EQ(m.comm_V, static_cast<Weight>(n - 1) * x);  // MST = the path
  // Bypass edges dominate total weight.
  EXPECT_GT(m.comm_E, m.comm_V * 100);
  // Diameter is along the path: (n-1) * X.
  EXPECT_EQ(m.comm_D, static_cast<Weight>(n - 1) * x);
}

}  // namespace
}  // namespace csca
