#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace csca {
namespace {

TEST(Dijkstra, PathGraphDistances) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(3), rng);
  const auto sp = dijkstra(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], 3 * v);
  }
}

TEST(Dijkstra, PrefersLightMultiHopOverHeavyDirect) {
  Graph g(3);
  g.add_edge(0, 2, 10);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 3);
  const auto sp = dijkstra(g, 0);
  EXPECT_EQ(sp.dist[2], 6);
  const auto p = sp.path_to(g, 2);
  EXPECT_EQ(p.size(), 2u);
}

TEST(Dijkstra, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  const auto sp = dijkstra(g, 0);
  EXPECT_TRUE(sp.reachable(1));
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_THROW(sp.path_to(g, 2), PreconditionError);
}

TEST(Dijkstra, TreeIsValidRootedTreeWithMatchingDepths) {
  Rng rng(2);
  Graph g = connected_gnp(30, 0.2, WeightSpec::uniform(1, 20), rng);
  const auto sp = dijkstra(g, 4);
  const auto t = sp.tree(g);
  EXPECT_TRUE(t.spanning());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(t.depth(g, v), sp.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(Dijkstra, PathToIsConsistentWithDistance) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_gnp(25, 0.15, WeightSpec::uniform(1, 30), rng);
    const auto sp = dijkstra(g, 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto p = sp.path_to(g, v);
      EXPECT_EQ(total_weight(g, p), sp.dist[static_cast<std::size_t>(v)]);
      // Path must start at source and end at v.
      if (!p.empty()) {
        const Edge& first = g.edge(p.front());
        EXPECT_TRUE(first.u == 0 || first.v == 0);
        const Edge& last = g.edge(p.back());
        EXPECT_TRUE(last.u == v || last.v == v);
      }
    }
  }
}

// Bellman-Ford as an independent oracle.
std::vector<Weight> bellman_ford(const Graph& g, NodeId src) {
  const Weight inf = std::numeric_limits<Weight>::max() / 4;
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), inf);
  dist[static_cast<std::size_t>(src)] = 0;
  for (int iter = 0; iter < g.node_count(); ++iter) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const auto du = dist[static_cast<std::size_t>(e.u)];
      const auto dv = dist[static_cast<std::size_t>(e.v)];
      if (du + e.w < dist[static_cast<std::size_t>(e.v)]) {
        dist[static_cast<std::size_t>(e.v)] = du + e.w;
        changed = true;
      }
      if (dv + e.w < dist[static_cast<std::size_t>(e.u)]) {
        dist[static_cast<std::size_t>(e.u)] = dv + e.w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class DijkstraPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesBellmanFordOnRandomGraphs) {
  Rng rng(GetParam());
  Graph g = connected_gnp(40, 0.12, WeightSpec::uniform(1, 100), rng);
  const auto sp = dijkstra(g, 0);
  const auto bf = bellman_ford(g, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)],
              bf[static_cast<std::size_t>(v)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Distance, SymmetricOnUndirectedGraph) {
  Rng rng(5);
  Graph g = connected_gnp(20, 0.2, WeightSpec::uniform(1, 9), rng);
  EXPECT_EQ(distance(g, 3, 17), distance(g, 17, 3));
  EXPECT_EQ(distance(g, 6, 6), 0);
}

}  // namespace
}  // namespace csca
