#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/mst.h"

namespace csca {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  Rng rng(1);
  Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 40), rng);
  std::stringstream buf;
  write_edge_list(buf, g);
  const Graph back = read_edge_list(buf);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    EXPECT_EQ(back.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, CommentsAndBlankLinesSkipped) {
  std::istringstream in(
      "# a network\n\n3 2\n# the edges\n0 1 5\n\n1 2 7\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.weight(g.find_edge(1, 2)), 7);
}

TEST(GraphIo, MalformedInputsRejected) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_edge_list(in);
  };
  EXPECT_THROW(parse(""), PreconditionError);               // no header
  EXPECT_THROW(parse("3\n"), PreconditionError);            // header short
  EXPECT_THROW(parse("3 2\n0 1 5\n"), PreconditionError);   // missing edge
  EXPECT_THROW(parse("3 1\n0 3 5\n"), PreconditionError);   // bad endpoint
  EXPECT_THROW(parse("3 1\n0 1 0\n"), PreconditionError);   // weight < 1
  EXPECT_THROW(parse("3 1\n0 0 2\n"), PreconditionError);   // self loop
  EXPECT_THROW(parse("3 2\n0 1 2\n1 0 2\n"), PreconditionError);  // dup
  EXPECT_THROW(parse("-1 0\n"), PreconditionError);         // negative n
  EXPECT_THROW(parse("3 1\n0 1 x\n"), PreconditionError);   // non-numeric
}

TEST(GraphIo, EmptyGraphRoundTrips) {
  std::stringstream buf;
  write_edge_list(buf, Graph(0));
  const Graph g = read_edge_list(buf);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphIo, DotContainsNodesEdgesAndHighlights) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 9);
  DotOptions opts;
  opts.highlight = {a};
  opts.node_labels = {"root", "mid", "leaf"};
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("graph csca {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1 [label=\"4\", penwidth=3"),
            std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2 [label=\"9\"]"), std::string::npos);
  EXPECT_NE(dot.find("label=\"0\\nroot\""), std::string::npos);
}

TEST(GraphIo, DotValidatesOptions) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  DotOptions bad_label;
  bad_label.node_labels = {"only one"};
  EXPECT_THROW(to_dot(g, bad_label), PreconditionError);
  DotOptions bad_edge;
  bad_edge.highlight = {5};
  EXPECT_THROW(to_dot(g, bad_edge), PreconditionError);
}

TEST(GraphIo, DotHighlightOfMstIsWellFormed) {
  Rng rng(2);
  Graph g = connected_gnp(8, 0.5, WeightSpec::uniform(1, 9), rng);
  DotOptions opts;
  opts.highlight = kruskal_mst(g);
  const std::string dot = to_dot(g, opts);
  // n-1 highlighted edges.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("penwidth=3", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 7u);
}

}  // namespace
}  // namespace csca
