#include "spt/hybrid.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "spt/recur.h"
#include "spt/spt_synch.h"

namespace csca {
namespace {

SptDelayFactory exact() {
  return [] { return make_exact_delay(); };
}

class SptHybridPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptHybridPropertyTest, ExactDistancesWhicheverSideWins) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 18));
  const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
  Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 15), rng);
  const auto run = run_spt_hybrid(
      g, src, 2, 5, [] { return make_uniform_delay(0.2, 1.0); },
      GetParam());
  const auto sp = dijkstra(g, src);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(run.dist[static_cast<std::size_t>(v)],
              sp.dist[static_cast<std::size_t>(v)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptHybridPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(SptHybrid, Corollary93CostNearTheCheaperSide) {
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 12), rng);
    const auto hybrid = run_spt_hybrid(
        g, 0, 2, 5, exact(), 100 + static_cast<std::uint64_t>(trial));
    const auto synch = run_spt_synch(g, 0, 2, make_exact_delay());
    const auto recur = run_spt_recur(g, 0, 5, make_exact_delay());
    const Weight cheaper =
        std::min(synch.async_run.stats.total_cost(),
                 recur.stats.total_cost());
    // Driver-level interleaving: loser trails winner by at most one
    // message, so ~2x the cheaper bill plus slack for the final drain.
    EXPECT_LE(hybrid.total_cost(), 3 * cheaper + 100);
  }
}

TEST(SptHybrid, SingleNode) {
  Graph g(1);
  const auto run = run_spt_hybrid(g, 0, 2, 5, exact());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0}));
  EXPECT_TRUE(run.synch_won);
}

}  // namespace
}  // namespace csca
