#include "spt/recur.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

TEST(SptRecur, ExactDistancesOnFixture) {
  Graph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 1);
  const auto run = run_spt_recur(g, 0, 4, make_exact_delay());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0, 3, 6, 7}));
  EXPECT_EQ(run.tree.depth(g, 3), 7);
}

class SptRecurPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Weight>> {
};

TEST_P(SptRecurPropertyTest, MatchesDijkstraAcrossTauAndDelays) {
  const auto [seed, tau] = GetParam();
  Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(2, 25));
  const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
  Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto run =
      run_spt_recur(g, src, tau, make_uniform_delay(0.0, 1.0), seed);
  const auto sp = dijkstra(g, src);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(run.dist[static_cast<std::size_t>(v)],
              sp.dist[static_cast<std::size_t>(v)])
        << "node " << v << " tau " << tau;
    EXPECT_EQ(run.tree.depth(g, v), sp.dist[static_cast<std::size_t>(v)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTau, SptRecurPropertyTest,
    ::testing::Combine(::testing::Values(1, 7, 13, 19, 23, 29, 37),
                       ::testing::Values<Weight>(1, 3, 10, 1000000)));

TEST(SptRecur, StripCountTracksDiameterOverTau) {
  Rng rng(1);
  Graph g = path_graph(10, WeightSpec::constant(5), rng);
  // D = 45; with tau = 5 we need ceil(45/5) = 9 non-empty strips (plus
  // the final confirming one).
  const auto run = run_spt_recur(g, 0, 5, make_exact_delay());
  EXPECT_GE(run.strips, 9);
  EXPECT_LE(run.strips, 10);
  // One giant strip does it in one pass.
  const auto run_big = run_spt_recur(g, 0, 1000, make_exact_delay());
  EXPECT_EQ(run_big.strips, 1);
}

TEST(SptRecur, Figure9TradeoffSyncsVsCorrections) {
  // Small tau: more strips, more tree sweeps (message count rises with
  // strip count). Huge tau: one strip, but on graphs with detours the
  // optimistic relaxation sends corrective offers. Both must stay exact;
  // the bench quantifies the curve, here we assert the strip counts and
  // that costs are within sane envelopes.
  Rng rng(2);
  Graph g = connected_gnp(30, 0.2, WeightSpec::uniform(1, 30), rng);
  const auto m = measure(g);
  const auto fine = run_spt_recur(g, 0, 2, make_exact_delay());
  const auto coarse = run_spt_recur(g, 0, m.comm_D + 1,
                                    make_exact_delay());
  EXPECT_EQ(fine.dist, coarse.dist);
  EXPECT_GT(fine.strips, coarse.strips);
}

TEST(SptRecur, HandlesHeavyDetourGraph) {
  // A direct heavy edge that a longer light path undercuts: the
  // optimistic in-strip relaxation must correct itself.
  Graph g(5);
  g.add_edge(0, 4, 100);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 3, 10);
  g.add_edge(3, 4, 10);
  for (Weight tau : {1, 7, 50, 200}) {
    const auto run = run_spt_recur(g, 0, tau, make_exact_delay());
    EXPECT_EQ(run.dist, (std::vector<Weight>{0, 10, 20, 30, 40}))
        << "tau " << tau;
  }
}

TEST(SptRecur, SingleNodeAndErrors) {
  Graph g1(1);
  const auto run = run_spt_recur(g1, 0, 5, make_exact_delay());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0}));
  Graph g2(3);
  g2.add_edge(0, 1, 1);
  EXPECT_THROW(run_spt_recur(g2, 0, 5, make_exact_delay()),
               PreconditionError);
  Graph g3(2);
  g3.add_edge(0, 1, 1);
  EXPECT_THROW(run_spt_recur(g3, 0, 0, make_exact_delay()),
               PreconditionError);
}

}  // namespace
}  // namespace csca
