#include "spt/spt_synch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

TEST(SptSynch, ExactDistancesOnFixture) {
  Graph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 1);
  const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0, 3, 6, 7}));
  EXPECT_EQ(run.tree.depth(g, 3), 7);
}

class SptSynchPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptSynchPropertyTest, MatchesDijkstraUnderRandomDelays) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 20));
  const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
  Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 25), rng);
  const auto run =
      run_spt_synch(g, src, 2, make_uniform_delay(0.1, 1.0), GetParam());
  const auto sp = dijkstra(g, src);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(run.dist[static_cast<std::size_t>(v)],
              sp.dist[static_cast<std::size_t>(v)]);
    EXPECT_EQ(run.tree.depth(g, v),
              sp.dist[static_cast<std::size_t>(v)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptSynchPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(SptSynch, Corollary91LedgerShape) {
  // Algorithm cost stays O(script-E) while the synchronizer's control
  // cost scales with t_pi ~ script-D pulses.
  Rng rng(50);
  Graph g = connected_gnp(16, 0.3, WeightSpec::power_of_two(0, 4), rng);
  const auto m = measure(g);
  const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
  // The protocol itself: O(script-E) with a small constant (each vertex
  // re-announces O(1) times in the near-synchronous regime).
  EXPECT_LE(run.async_run.stats.algorithm_cost, 6 * m.comm_E);
  // Lemma 4.8: control per pulse is O(k n log n) in message count terms;
  // generous constant, bound in cost via the level weights summing to
  // O(script-E) per log-level sweep.
  const double per_pulse =
      static_cast<double>(run.async_run.stats.control_cost) /
      static_cast<double>(run.t_pi);
  EXPECT_GT(per_pulse, 0.0);
  EXPECT_LT(per_pulse,
            64.0 * g.node_count() * std::log2(g.node_count() + 2));
}

TEST(SptSynch, LargerKReducesTimeIncreasesTraffic) {
  // gamma's dial: big k = flat partitions (fast, chatty), small k = deep
  // clusters (slow, frugal). We check the monotone direction on control
  // message count.
  Rng rng(51);
  Graph g = connected_gnp(24, 0.25, WeightSpec::power_of_two(0, 3), rng);
  const auto run2 = run_spt_synch(g, 0, 2, make_exact_delay());
  const auto run8 = run_spt_synch(g, 0, 8, make_exact_delay());
  EXPECT_EQ(run2.dist, run8.dist);
  // Both complete; deeper clusters (k=2) should not use more preferred-
  // edge traffic than the flat variant... the relationship we rely on in
  // the bench is just "both are valid"; here we assert completion and
  // determinism of results.
  EXPECT_GT(run2.async_run.stats.control_messages, 0);
  EXPECT_GT(run8.async_run.stats.control_messages, 0);
}

TEST(SptSynch, DisconnectedRejected) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  EXPECT_THROW(run_spt_synch(g, 0, 2, make_exact_delay()),
               PreconditionError);
}

TEST(SptSynch, SingleNode) {
  Graph g(1);
  const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0}));
}

}  // namespace
}  // namespace csca
