#include "sync/clock_sync.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

// The §3 regime of interest: a light backbone with heavy chords, so that
// d (max distance between neighbors) is far below W (max edge weight).
Graph heavy_chord_graph(int n, Weight light, Weight heavy) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, light);
  g.add_edge(0, n - 1, heavy);
  g.add_edge(1, n / 2, heavy);
  return g;
}

// Causality (the defining property): pulse p+1 at a node happens after
// every neighbor generated pulse p.
void expect_causal(const Graph& g, const ClockSyncRun& run) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& tv = run.pulse_times[static_cast<std::size_t>(v)];
    for (EdgeId e : g.incident(v)) {
      const NodeId u = g.other(e, v);
      const auto& tu = run.pulse_times[static_cast<std::size_t>(u)];
      for (std::size_t p = 0; p + 1 < tv.size(); ++p) {
        EXPECT_GE(tv[p + 1], tu[p])
            << "node " << v << " pulse " << p + 2
            << " preceded neighbor " << u << "'s pulse " << p + 1;
      }
    }
  }
}

TEST(ClockAlpha, CausalAndCompletes) {
  Rng rng(1);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto run = run_clock_alpha(g, 6, make_uniform_delay(0.2, 1.0), 7);
  EXPECT_EQ(run.pulses, 6);
  expect_causal(g, run);
}

TEST(ClockAlpha, PulseDelayTracksW) {
  // With exact delays the alpha* gap is exactly the heaviest incident
  // exchange: Theta(W).
  Graph g = heavy_chord_graph(10, 2, 300);
  const auto m = measure(g);
  const auto run = run_clock_alpha(g, 5, make_exact_delay());
  EXPECT_GE(run.max_gap, static_cast<double>(m.W));
  EXPECT_LE(run.max_gap, 2.0 * static_cast<double>(m.W));
}

TEST(ClockBeta, CausalAndGapTracksTreeDepth) {
  Graph g = heavy_chord_graph(12, 2, 300);
  const auto tree = dijkstra(g, 0).tree(g);
  const auto run = run_clock_beta(g, tree, 5, make_exact_delay());
  expect_causal(g, run);
  // Gap ~ one convergecast + one broadcast over the tree.
  const double depth = static_cast<double>(tree.height(g));
  EXPECT_GE(run.max_gap, depth);
  EXPECT_LE(run.max_gap, 4.0 * depth + 1.0);
}

TEST(ClockGamma, CausalOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 25), rng);
    const auto cover = build_tree_edge_cover(g);
    const auto run = run_clock_gamma(g, cover, 5,
                                     make_uniform_delay(0.3, 1.0),
                                     40 + static_cast<std::uint64_t>(trial));
    expect_causal(g, run);
  }
}

TEST(ClockGamma, Section3HeadlineBeatAlphaWhenDMuchSmallerThanW) {
  // The whole point of gamma*: pulse delay O(d log^2 n) despite W >> d.
  Graph g = heavy_chord_graph(16, 2, 1000);
  const auto m = measure(g);
  ASSERT_LT(m.d, m.W / 10);

  const auto cover = build_tree_edge_cover(g);
  const auto gamma = run_clock_gamma(g, cover, 6, make_exact_delay());
  const auto alpha = run_clock_alpha(g, 6, make_exact_delay());

  expect_causal(g, gamma);
  // gamma* stays within the O(d log^2 n) budget...
  const double logn = std::log2(g.node_count());
  EXPECT_LE(gamma.max_gap,
            4.0 * static_cast<double>(m.d) * logn * logn);
  // ...which on this family is far below alpha*'s Theta(W).
  EXPECT_LT(gamma.max_gap, alpha.max_gap / 4.0);
}

TEST(ClockGamma, LowerBoundOmegaD) {
  // No causal pulse train can beat the neighbor-distance bound Omega(d):
  // information from a neighbor at weighted distance d takes d time.
  Graph g = heavy_chord_graph(12, 3, 200);
  const auto m = measure(g);
  const auto cover = build_tree_edge_cover(g);
  const auto run = run_clock_gamma(g, cover, 6, make_exact_delay());
  // Steady-state gap cannot be below d (messages must traverse trees
  // that span each heavy edge's endpoints, at distance up to d).
  EXPECT_GE(run.max_gap + 1e-9, static_cast<double>(m.d));
}

TEST(ClockGamma, CongestionBoundedByCoverSharing) {
  // The paper charges gamma* an O(log n) time factor for trees sharing
  // an edge. Our simulator has no bandwidth contention, but the sharing
  // itself is measurable: per pulse, an edge carries at most ~2 messages
  // per tree using it, and Def 3.1 bounds the sharing by O(log n).
  Rng rng(5);
  Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto cover = build_tree_edge_cover(g);
  const int pulses = 6;
  const auto run = run_clock_gamma(g, cover, pulses, make_exact_delay());
  const int sharing = max_tree_edge_sharing(g, cover);
  const double per_pulse = static_cast<double>(run.max_edge_messages) /
                           static_cast<double>(pulses);
  EXPECT_LE(per_pulse, 2.0 * sharing + 2.0);
  const double logn = std::log2(g.node_count());
  EXPECT_LE(per_pulse, 2.0 * (8.0 * logn + 4.0) + 2.0);
}

TEST(ClockSync, SingleNodeTrainsAreInstant) {
  Graph g(1);
  const auto run = run_clock_alpha(g, 5, make_exact_delay());
  EXPECT_EQ(run.pulses, 5);
  EXPECT_DOUBLE_EQ(run.max_gap, 0.0);
}

TEST(ClockSync, RejectsBadArguments) {
  Rng rng(3);
  Graph g = path_graph(4, WeightSpec::constant(2), rng);
  EXPECT_THROW(run_clock_alpha(g, 0, make_exact_delay()),
               PreconditionError);
  Graph disc(3);
  disc.add_edge(0, 1, 1);
  EXPECT_THROW(run_clock_alpha(disc, 3, make_exact_delay()),
               PreconditionError);
}

TEST(ClockSync, GapStatisticsAreConsistent) {
  Rng rng(4);
  Graph g = grid_graph(3, 3, WeightSpec::uniform(1, 10), rng);
  const auto tree = dijkstra(g, 0).tree(g);
  const auto run = run_clock_beta(g, tree, 8, make_exact_delay());
  EXPECT_LE(run.mean_gap, run.max_gap);
  EXPECT_GT(run.mean_gap, 0.0);
  EXPECT_GE(run.total_time, run.max_gap);
  EXPECT_GT(run.cost_per_pulse, 0.0);
}

}  // namespace
}  // namespace csca
