#include "sync/gamma_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/generators.h"

namespace csca {
namespace {

std::vector<char> full_mask(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.edge_count()), 1);
}

// Hop-depth of v's cluster tree path to its leader.
int tree_hops(const Graph& g, const GammaPartition& p, NodeId v) {
  int hops = 0;
  NodeId cur = v;
  while (p.parent_edge[static_cast<std::size_t>(cur)] != kNoEdge) {
    cur = g.other(p.parent_edge[static_cast<std::size_t>(cur)], cur);
    ++hops;
  }
  return hops;
}

TEST(GammaPartition, CoversExactlyTheMaskedNodes) {
  Rng rng(1);
  Graph g = connected_gnp(20, 0.2, WeightSpec::power_of_two(0, 3), rng);
  // Mask only the weight-1 edges.
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<char> touched(static_cast<std::size_t>(g.node_count()), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.weight(e) == 1) {
      mask[static_cast<std::size_t>(e)] = 1;
      touched[static_cast<std::size_t>(g.edge(e).u)] = 1;
      touched[static_cast<std::size_t>(g.edge(e).v)] = 1;
    }
  }
  const auto p = build_gamma_partition(g, mask, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(p.covered(v), touched[static_cast<std::size_t>(v)] != 0);
  }
}

TEST(GammaPartition, TreesPointToLeadersAlongMaskedEdges) {
  Rng rng(2);
  Graph g = connected_gnp(25, 0.25, WeightSpec::constant(2), rng);
  const auto mask = full_mask(g);
  const auto p = build_gamma_partition(g, mask, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_TRUE(p.covered(v));
    const int c = p.cluster_of[static_cast<std::size_t>(v)];
    // Walking parents stays inside the cluster and ends at its leader.
    NodeId cur = v;
    int steps = 0;
    while (p.parent_edge[static_cast<std::size_t>(cur)] != kNoEdge) {
      const EdgeId pe = p.parent_edge[static_cast<std::size_t>(cur)];
      EXPECT_TRUE(mask[static_cast<std::size_t>(pe)]);
      cur = g.other(pe, cur);
      EXPECT_EQ(p.cluster_of[static_cast<std::size_t>(cur)], c);
      ASSERT_LT(++steps, g.node_count());
    }
    EXPECT_EQ(cur, p.leaders[static_cast<std::size_t>(c)]);
  }
}

TEST(GammaPartition, ChildrenListsMirrorParentEdges) {
  Rng rng(3);
  Graph g = grid_graph(4, 5, WeightSpec::constant(1), rng);
  const auto p = build_gamma_partition(g, full_mask(g), 3);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : p.children_edges[static_cast<std::size_t>(v)]) {
      const NodeId child = g.other(e, v);
      EXPECT_EQ(p.parent_edge[static_cast<std::size_t>(child)], e);
    }
  }
}

TEST(GammaPartition, HopDepthBoundedByLogKN) {
  Rng rng(4);
  for (int k : {2, 3, 5}) {
    Graph g = connected_gnp(40, 0.3, WeightSpec::constant(1), rng);
    const auto p = build_gamma_partition(g, full_mask(g), k);
    const double bound = std::log(40.0) / std::log(static_cast<double>(k));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_LE(tree_hops(g, p, v), static_cast<int>(bound) + 1)
          << "k=" << k;
    }
  }
}

TEST(GammaPartition, PreferredEdgesOnePerNeighboringClusterPair) {
  Rng rng(5);
  Graph g = connected_gnp(30, 0.25, WeightSpec::constant(1), rng);
  const auto p = build_gamma_partition(g, full_mask(g), 2);
  // Collect preferred edges from the per-node lists; each must appear at
  // exactly its two endpoints, and pairs must be unique.
  std::map<std::pair<int, int>, int> pair_count;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : p.preferred[static_cast<std::size_t>(v)]) {
      const int cu = p.cluster_of[static_cast<std::size_t>(g.edge(e).u)];
      const int cv = p.cluster_of[static_cast<std::size_t>(g.edge(e).v)];
      EXPECT_NE(cu, cv);
      const auto key = std::minmax(cu, cv);
      ++pair_count[{key.first, key.second}];
    }
  }
  for (const auto& [pair, count] : pair_count) {
    EXPECT_EQ(count, 2) << "cluster pair " << pair.first << ","
                        << pair.second;
  }
  // Completeness: every inter-cluster edge's cluster pair has a
  // preferred edge.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const int cu = p.cluster_of[static_cast<std::size_t>(g.edge(e).u)];
    const int cv = p.cluster_of[static_cast<std::size_t>(g.edge(e).v)];
    if (cu == cv) continue;
    const auto key = std::minmax(cu, cv);
    EXPECT_TRUE(pair_count.count({key.first, key.second}));
  }
}

TEST(GammaPartition, LargerKGivesShallowerMoreNumerousClusters) {
  Rng rng(6);
  Graph g = connected_gnp(50, 0.3, WeightSpec::constant(1), rng);
  const auto p2 = build_gamma_partition(g, full_mask(g), 2);
  const auto p8 = build_gamma_partition(g, full_mask(g), 8);
  int max_depth2 = 0;
  int max_depth8 = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    max_depth2 = std::max(max_depth2, tree_hops(g, p2, v));
    max_depth8 = std::max(max_depth8, tree_hops(g, p8, v));
  }
  EXPECT_LE(max_depth8, max_depth2);
  EXPECT_GE(p8.cluster_count(), p2.cluster_count());
}

TEST(GammaPartition, RejectsBadArguments) {
  Rng rng(7);
  Graph g = path_graph(3, WeightSpec::constant(1), rng);
  EXPECT_THROW(build_gamma_partition(g, full_mask(g), 1),
               PreconditionError);
  EXPECT_THROW(build_gamma_partition(g, std::vector<char>(1, 1), 2),
               PreconditionError);
}

TEST(GammaPartition, EmptyMaskYieldsNoClusters) {
  Rng rng(8);
  Graph g = path_graph(4, WeightSpec::constant(1), rng);
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 0);
  const auto p = build_gamma_partition(g, mask, 2);
  EXPECT_EQ(p.cluster_count(), 0);
  for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(p.covered(v));
}

}  // namespace
}  // namespace csca
