#include "sync/transform.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "sim/sync_engine.h"

namespace csca {
namespace {

// A protocol written for the EXACT weighted synchronous model, with no
// in-synch discipline whatsoever: plain flooding that forwards the wave
// the instant it arrives. On the exact model the arrival pulse at v is
// dist(source, v). Lemma 4.5 must make it runnable under gamma_w
// unchanged.
class ExactFlood final : public SyncProcess {
 public:
  ExactFlood(NodeId self, NodeId source)
      : is_source_(self == source) {}

  void on_start(SyncContext& ctx) override {
    if (is_source_) spread(ctx);
  }

  void on_message(SyncContext& ctx, const Message&) override {
    if (reached_at_ < 0) spread(ctx);
  }

  std::int64_t reached_at() const { return reached_at_; }

 private:
  void spread(SyncContext& ctx) {
    reached_at_ = ctx.pulse();
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0}, MsgClass::kAlgorithm);  // sends at arbitrary pulses: NOT in-synch
    }
    ctx.finish();
  }

  bool is_source_;
  std::int64_t reached_at_ = -1;
};

// A protocol that also uses wakeups and payloads: every node waits until
// (virtual) pulse 3, then sends its id along every edge; each node
// records the multiset-sum of ids received by pulse 3 + W.
class DelayedGossip final : public SyncProcess {
 public:
  explicit DelayedGossip(NodeId self) : self_(self) {}

  void on_start(SyncContext& ctx) override {
    ctx.schedule_wakeup(3);
  }

  void on_wakeup(SyncContext& ctx) override {
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {self_}}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }

  void on_message(SyncContext&, const Message& m) override {
    sum_ += m.at(0);
  }

  std::int64_t sum() const { return sum_; }

 private:
  NodeId self_;
  std::int64_t sum_ = 0;
};

TEST(Transform, ExactFloodReachedPulsesSurviveTheTransformation) {
  Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 20), rng);
    const auto factory = [](NodeId v) {
      return std::make_unique<ExactFlood>(v, 0);
    };
    // Reference semantics: reached_at == exact weighted distance.
    SyncEngine ref(g, factory);
    ref.run();
    TransformedNetwork net(g, factory, 2, make_uniform_delay(0.1, 1.0),
                           50 + static_cast<std::uint64_t>(trial));
    const auto run = net.run();
    EXPECT_TRUE(run.run.hosted_all_finished);
    const auto sp = dijkstra(g, 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(net.inner_as<ExactFlood>(v).reached_at(),
                ref.process_as<ExactFlood>(v).reached_at())
          << "node " << v;
      // And both equal the true weighted distance (exact-model flood).
      EXPECT_EQ(net.inner_as<ExactFlood>(v).reached_at(),
                sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Transform, WakeupsAndPayloadsSurviveTheTransformation) {
  Rng rng(2);
  Graph g = connected_gnp(10, 0.4, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId v) {
    return std::make_unique<DelayedGossip>(v);
  };
  SyncEngine ref(g, factory);
  ref.run();
  TransformedNetwork net(g, factory, 2, make_exact_delay());
  net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(net.inner_as<DelayedGossip>(v).sum(),
              ref.process_as<DelayedGossip>(v).sum());
  }
}

TEST(Transform, Lemma45ComplexityBlowupAtMostConstant) {
  Rng rng(3);
  Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 16), rng);
  const auto factory = [](NodeId v) {
    return std::make_unique<ExactFlood>(v, 0);
  };
  TransformedNetwork net(g, factory, 2, make_exact_delay());
  const auto run = net.run();
  // Message count identical; cost at most doubled by normalization.
  EXPECT_EQ(run.run.stats.algorithm_messages,
            run.pi_stats.algorithm_messages);
  EXPECT_LE(run.run.stats.algorithm_cost, 2 * run.pi_stats.algorithm_cost);
  // Virtual clock ran 4x, so pulses executed <= 4 (t_pi + 2).
  EXPECT_LE(run.run.pulses_executed, 4 * (run.t_pi + 2));
}

TEST(Transform, AdapterRejectsNullInner) {
  Graph g(2);
  g.add_edge(0, 1, 2);
  EXPECT_THROW(InSynchAdapter(g, 0, nullptr), PreconditionError);
}

}  // namespace
}  // namespace csca
