#include "sync/synchronizer.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"
#include "sim/sync_engine.h"
#include "sync/protocols.h"

namespace csca {
namespace {

// Reference run of InSynchFlood on the weighted synchronous engine.
std::vector<std::int64_t> reference_reached(const Graph& g,
                                            NodeId initiator,
                                            RunStats* stats = nullptr) {
  SyncEngine eng(
      g,
      [initiator](NodeId v) {
        return std::make_unique<InSynchFlood>(v, initiator);
      },
      /*enforce_in_synch=*/true);
  const RunStats s = eng.run();
  if (stats != nullptr) *stats = s;
  std::vector<std::int64_t> out(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out[static_cast<std::size_t>(v)] =
        eng.process_as<InSynchFlood>(v).reached_at();
  }
  return out;
}

std::vector<std::int64_t> synchronized_reached(
    const Graph& g, NodeId initiator, SynchronizerKind kind, int k,
    std::int64_t max_pulse, std::uint64_t seed,
    SynchronizerRun* run_out = nullptr) {
  SynchronizedNetwork net(
      g,
      [initiator](NodeId v) {
        return std::make_unique<InSynchFlood>(v, initiator);
      },
      kind, k, max_pulse, make_uniform_delay(0.2, 1.0), seed);
  const SynchronizerRun run = net.run();
  if (run_out != nullptr) *run_out = run;
  std::vector<std::int64_t> out(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out[static_cast<std::size_t>(v)] =
        net.hosted_as<InSynchFlood>(v).reached_at();
  }
  return out;
}

TEST(Normalization, PowerOfTwoRounding) {
  Graph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 8);
  EXPECT_FALSE(is_normalized(g));
  const Graph ng = normalized_copy(g);
  EXPECT_TRUE(is_normalized(ng));
  EXPECT_EQ(ng.weight(0), 8);
  EXPECT_EQ(ng.weight(1), 8);
  // Def 4.6: w <= power(w) < 2w.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_GE(ng.weight(e), g.weight(e));
    EXPECT_LT(ng.weight(e), 2 * g.weight(e));
  }
}

class SynchronizerCorrectness
    : public ::testing::TestWithParam<SynchronizerKind> {};

TEST_P(SynchronizerCorrectness, Lemma44HostedRunMatchesSynchronousRun) {
  Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = normalized_copy(
        connected_gnp(12, 0.3, WeightSpec::power_of_two(0, 4), rng));
    RunStats ref_stats;
    const auto ref = reference_reached(g, 0, &ref_stats);
    const std::int64_t t_pi =
        static_cast<std::int64_t>(ref_stats.completion_time) + 1;
    SynchronizerRun run;
    const auto got = synchronized_reached(
        g, 0, GetParam(), 2, t_pi, 100 + static_cast<std::uint64_t>(trial),
        &run);
    EXPECT_EQ(got, ref) << "trial " << trial;
    EXPECT_TRUE(run.hosted_all_finished);
    // The algorithm-class ledger equals the synchronous protocol's own
    // cost: the synchronizer only adds control traffic.
    EXPECT_EQ(run.stats.algorithm_messages, ref_stats.algorithm_messages);
    EXPECT_EQ(run.stats.algorithm_cost, ref_stats.algorithm_cost);
    EXPECT_GT(run.stats.control_messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SynchronizerCorrectness,
                         ::testing::Values(SynchronizerKind::kAlpha,
                                           SynchronizerKind::kBeta,
                                           SynchronizerKind::kGammaW));

TEST(Synchronizer, GammaWRequiresNormalizedNetwork) {
  Graph g(2);
  g.add_edge(0, 1, 3);
  EXPECT_THROW(
      SynchronizedNetwork(
          g, [](NodeId v) { return std::make_unique<InSynchFlood>(v, 0); },
          SynchronizerKind::kGammaW, 2, 10, make_exact_delay()),
      PreconditionError);
}

TEST(Synchronizer, GammaWInSynchViolationThrows) {
  // A protocol violating Def 4.2 (sending on a weight-4 edge at pulse 2)
  // must be rejected by the gamma_w host.
  class OffBeat final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override {
      if (ctx.self() == 0) ctx.schedule_wakeup(2);
    }
    void on_wakeup(SyncContext& ctx) override {
      ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
    }
    void on_message(SyncContext&, const Message&) override {}
  };
  Graph g(2);
  g.add_edge(0, 1, 4);
  SynchronizedNetwork net(
      g, [](NodeId) { return std::make_unique<OffBeat>(); },
      SynchronizerKind::kGammaW, 2, 10, make_exact_delay());
  EXPECT_THROW(net.run(), PreconditionError);
}

TEST(Synchronizer, GammaWAmortizesHeavyEdges) {
  // A network with one very heavy chord: alpha cleans it every pulse,
  // gamma_w only every W pulses. Control cost per pulse must be far
  // smaller under gamma_w.
  const int n = 12;
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1);
  g.add_edge(0, n - 1, 256);
  g.add_edge(2, 9, 256);

  RunStats ref_stats;
  const auto ref = reference_reached(g, 0, &ref_stats);
  const std::int64_t t_pi =
      static_cast<std::int64_t>(ref_stats.completion_time) + 1;

  SynchronizerRun alpha;
  SynchronizerRun gamma;
  const auto got_alpha = synchronized_reached(
      g, 0, SynchronizerKind::kAlpha, 2, t_pi, 5, &alpha);
  const auto got_gamma = synchronized_reached(
      g, 0, SynchronizerKind::kGammaW, 2, t_pi, 5, &gamma);
  EXPECT_EQ(got_alpha, ref);
  EXPECT_EQ(got_gamma, ref);
  EXPECT_LT(gamma.stats.control_cost, alpha.stats.control_cost / 4);
}

TEST(Synchronizer, PulseBudgetTooSmallLeavesProtocolUnfinished) {
  Rng rng(12);
  Graph g = normalized_copy(
      path_graph(6, WeightSpec::constant(4), rng));
  SynchronizedNetwork net(
      g, [](NodeId v) { return std::make_unique<InSynchFlood>(v, 0); },
      SynchronizerKind::kGammaW, 2, 7, make_exact_delay());
  const auto run = net.run();
  EXPECT_FALSE(run.hosted_all_finished);
  EXPECT_LE(run.pulses_executed, 7);
}

TEST(Synchronizer, SilentProtocolStillPulsesAndPaysOnlyOverhead) {
  // A protocol that never sends: the synchronizer must still generate
  // the full pulse train (that is its job), all of it control traffic.
  class Silent final : public SyncProcess {
   public:
    void on_message(SyncContext&, const Message&) override {}
  };
  Rng rng(21);
  Graph g = normalized_copy(
      connected_gnp(10, 0.3, WeightSpec::power_of_two(0, 3), rng));
  for (auto kind : {SynchronizerKind::kAlpha, SynchronizerKind::kBeta,
                    SynchronizerKind::kGammaW}) {
    SynchronizedNetwork net(
        g, [](NodeId) { return std::make_unique<Silent>(); }, kind, 2,
        16, make_exact_delay());
    const auto run = net.run();
    EXPECT_EQ(run.stats.algorithm_messages, 0);
    EXPECT_GT(run.stats.control_messages, 0);
    EXPECT_EQ(run.pulses_executed, 16);
  }
}

TEST(Synchronizer, ZeroPulseBudgetDoesNothing) {
  Graph g(2);
  g.add_edge(0, 1, 2);
  SynchronizedNetwork net(
      g, [](NodeId v) { return std::make_unique<InSynchFlood>(v, 0); },
      SynchronizerKind::kGammaW, 2, 0, make_exact_delay());
  const auto run = net.run();
  EXPECT_EQ(run.pulses_executed, 0);
  // Pulse 0 fired (on_start), so the initiator's first sends went out,
  // but nothing beyond pulse 0 was cleared.
  EXPECT_FALSE(run.hosted_all_finished);
}

TEST(Synchronizer, SingleNodeNetworkRunsItsPulseTrain) {
  Graph g(1);
  class Counter final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override { ctx.schedule_wakeup(1); }
    void on_wakeup(SyncContext& ctx) override {
      ++wakeups;
      if (ctx.pulse() < 5) ctx.schedule_wakeup(ctx.pulse() + 1);
      else ctx.finish();
    }
    void on_message(SyncContext&, const Message&) override {}
    int wakeups = 0;
  };
  SynchronizedNetwork net(
      g, [](NodeId) { return std::make_unique<Counter>(); },
      SynchronizerKind::kGammaW, 2, 10, make_exact_delay());
  const auto run = net.run();
  EXPECT_TRUE(run.hosted_all_finished);
  EXPECT_EQ(net.hosted_as<Counter>(0).wakeups, 5);
}

TEST(Synchronizer, BetaOnStarTopology) {
  // Degenerate tree: the root is every node's parent; convergecast and
  // broadcast collapse to one hop each.
  Graph g(6);
  for (NodeId v = 1; v < 6; ++v) g.add_edge(0, v, 4);
  RunStats ref_stats;
  const auto ref = reference_reached(g, 0, &ref_stats);
  const std::int64_t t_pi =
      static_cast<std::int64_t>(ref_stats.completion_time) + 1;
  SynchronizerRun run;
  const auto got = synchronized_reached(g, 0, SynchronizerKind::kBeta, 2,
                                        t_pi, 3, &run);
  EXPECT_EQ(got, ref);
  EXPECT_TRUE(run.hosted_all_finished);
}

TEST(Synchronizer, GammaWOnUnitWeightsIsClassicGamma) {
  // With all weights 1 there is a single level, and gamma_w degenerates
  // to [Awe85a]'s synchronizer gamma: per-pulse control cost O(k n)
  // (cluster trees + preferred edges) instead of alpha's O(m), and both
  // must drive the protocol to the same result.
  Rng rng(31);
  Graph g = connected_gnp(30, 0.35, WeightSpec::constant(1), rng);
  RunStats ref_stats;
  const auto ref = reference_reached(g, 0, &ref_stats);
  const std::int64_t t_pi =
      static_cast<std::int64_t>(ref_stats.completion_time) + 1;
  SynchronizerRun gamma;
  SynchronizerRun alpha;
  const auto got_gamma = synchronized_reached(
      g, 0, SynchronizerKind::kGammaW, 2, t_pi, 9, &gamma);
  const auto got_alpha = synchronized_reached(
      g, 0, SynchronizerKind::kAlpha, 2, t_pi, 9, &alpha);
  EXPECT_EQ(got_gamma, ref);
  EXPECT_EQ(got_alpha, ref);
  // On a dense unit graph, gamma's per-pulse message count beats
  // alpha's (which is ~2m per pulse).
  EXPECT_LT(gamma.stats.control_messages, alpha.stats.control_messages);
}

class GammaWShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(GammaWShapeTest, CorrectAcrossTopologyShapes) {
  // gamma_w's per-level partitions meet very different structures on
  // different shapes (singleton clusters on paths, one big cluster on
  // stars, mixed on multi-level graphs); all must reproduce the
  // synchronous reference.
  const int shape = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(shape));
  Graph g = [&]() -> Graph {
    switch (shape) {
      case 0:  // heavy star
      {
        Graph s(9);
        for (NodeId v = 1; v < 9; ++v) s.add_edge(0, v, 1 << (v % 4));
        return s;
      }
      case 1:  // two-level ladder
      {
        Graph s(12);
        for (NodeId v = 0; v + 1 < 12; ++v) s.add_edge(v, v + 1, 1);
        for (NodeId v = 0; v + 4 < 12; v += 2) s.add_edge(v, v + 4, 8);
        return s;
      }
      case 2:  // normalized cycle
        return normalized_copy(
            cycle_graph(14, WeightSpec::power_of_two(0, 3), rng));
      default:  // dense multi-level
        return normalized_copy(
            connected_gnp(16, 0.4, WeightSpec::power_of_two(0, 5), rng));
    }
  }();
  RunStats ref_stats;
  const auto ref = reference_reached(g, 0, &ref_stats);
  const std::int64_t t_pi =
      static_cast<std::int64_t>(ref_stats.completion_time) + 1;
  for (int k : {2, 5}) {
    SynchronizerRun run;
    const auto got = synchronized_reached(
        g, 0, SynchronizerKind::kGammaW, k, t_pi,
        7 + static_cast<std::uint64_t>(shape), &run);
    EXPECT_EQ(got, ref) << "shape " << shape << " k " << k;
    EXPECT_TRUE(run.hosted_all_finished);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaWShapeTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(Synchronizer, ReachedPulsesApproximateDistances) {
  // Lemma 4.5 in action: on the normalized network the flood reaches
  // each vertex within [dist, 4 dist] of the original weighted distance
  // (x2 for normalization, x2 for in-synch send alignment).
  Rng rng(13);
  Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 20), rng);
  Graph ng = normalized_copy(g);
  const auto ref = reference_reached(ng, 0);
  const auto sp = dijkstra(g, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    const auto d = sp.dist[static_cast<std::size_t>(v)];
    EXPECT_GE(ref[static_cast<std::size_t>(v)], d);
    EXPECT_LE(ref[static_cast<std::size_t>(v)], 4 * d);
  }
}

}  // namespace
}  // namespace csca
