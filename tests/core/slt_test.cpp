#include "core/slt.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"

namespace csca {
namespace {

TEST(Slt, SpansAndStartsAtRoot) {
  Rng rng(1);
  Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 15), rng);
  const auto slt = build_slt(g, 3, 2.0);
  EXPECT_TRUE(slt.tree.spanning());
  EXPECT_EQ(slt.tree.root(), 3);
  EXPECT_EQ(slt.breakpoints.front(), 0);
}

TEST(Slt, RejectsBadArguments) {
  Rng rng(2);
  Graph g = path_graph(4, WeightSpec::constant(1), rng);
  EXPECT_THROW(build_slt(g, 0, 0.0), PreconditionError);
  EXPECT_THROW(build_slt(g, 0, -1.0), PreconditionError);
  Graph disc(3);
  disc.add_edge(0, 1, 1);
  EXPECT_THROW(build_slt(disc, 0, 2.0), PreconditionError);
}

TEST(Slt, OnTreeGraphSltIsTheTreeItself) {
  Rng rng(3);
  Graph g = random_tree(15, WeightSpec::uniform(1, 9), rng);
  const auto slt = build_slt(g, 0, 2.0);
  EXPECT_EQ(slt.weight(g), g.total_weight());
}

TEST(Slt, ClassicBadCaseForBothPureTrees) {
  // Cycle with one heavy chord-free structure: on a unit cycle the MST
  // (path) has diameter n-1 while the SPT is shallow but heavy; the SLT
  // must interpolate.
  Rng rng(4);
  const int n = 40;
  Graph g = cycle_graph(n, WeightSpec::constant(1), rng);
  const auto m = measure(g);
  const double q = 2.0;
  const auto slt = build_slt(g, 0, q);
  EXPECT_LE(static_cast<double>(slt.weight(g)),
            (1.0 + 2.0 / q) * static_cast<double>(m.comm_V));
  EXPECT_LE(static_cast<double>(slt.depth(g)),
            (2.0 * q + 1.0) * static_cast<double>(m.comm_D));
}

class SltPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(SltPropertyTest, Lemma24WeightAndLemma25DepthBounds) {
  const auto [seed, q] = GetParam();
  Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(5, 40));
  Graph g = connected_gnp(n, 0.2, WeightSpec::uniform(1, 50), rng);
  const auto m = measure(g);
  const auto slt = build_slt(g, 0, q);

  EXPECT_TRUE(slt.tree.spanning());
  // Lemma 2.4: w(T) <= (1 + 2/q) V.
  EXPECT_LE(static_cast<double>(slt.weight(g)),
            (1.0 + 2.0 / q) * static_cast<double>(m.comm_V) + 1e-9);
  // Lemma 2.5 (provable form): depth <= (2q + 1) D.
  EXPECT_LE(static_cast<double>(slt.depth(g)),
            (2.0 * q + 1.0) * static_cast<double>(m.comm_D) + 1e-9);
  // Diameter of a rooted tree is at most twice its depth.
  EXPECT_LE(slt.diameter(g), 2 * slt.depth(g));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndQ, SltPropertyTest,
    ::testing::Combine(::testing::Values(11, 23, 37, 53, 71),
                       ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0)));

TEST(Slt, QTradesWeightForDepth) {
  // Larger q permits fewer grafts: weight shrinks toward V while depth
  // may grow; q -> 0 grafts everywhere: depth approaches D.
  Rng rng(5);
  Graph g = cycle_graph(60, WeightSpec::constant(1), rng);
  const auto slt_light = build_slt(g, 0, 16.0);
  const auto slt_shallow = build_slt(g, 0, 0.125);
  EXPECT_LE(slt_light.weight(g), slt_shallow.weight(g));
  EXPECT_LE(slt_shallow.depth(g), slt_light.depth(g));
  // Extreme ends: tiny q gives SPT-like depth; huge q gives MST weight.
  const auto m = measure(g);
  EXPECT_EQ(slt_shallow.depth(g), m.comm_D);
  EXPECT_EQ(slt_light.weight(g), m.comm_V);
}

TEST(Slt, SubgraphContainsMstAndGraftedPathsOnly) {
  Rng rng(6);
  Graph g = connected_gnp(25, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto slt = build_slt(g, 0, 2.0);
  const auto mst = kruskal_mst(g);
  // Every MST edge is in E'.
  for (EdgeId e : mst) {
    EXPECT_TRUE(slt.subgraph_edges[static_cast<std::size_t>(e)]);
  }
  // Every SLT tree edge is in E'.
  for (EdgeId e : slt.tree.edge_set()) {
    EXPECT_TRUE(slt.subgraph_edges[static_cast<std::size_t>(e)]);
  }
}

TEST(Slt, EulerLineIsTheMstTour) {
  Rng rng(7);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto slt = build_slt(g, 0, 2.0);
  const auto tour = euler_tour(g, mst_tree(g, 0));
  EXPECT_EQ(slt.euler_line, tour);
}

TEST(Slt, DepthNeverBelowSptDepthWeightNeverBelowMst) {
  // Sanity floor: no spanning tree is lighter than the MST or shallower
  // (from the root) than the SPT.
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_gnp(18, 0.25, WeightSpec::uniform(1, 30), rng);
    const auto slt = build_slt(g, 0, 3.0);
    EXPECT_GE(slt.weight(g), mst_weight(g));
    const auto sp = dijkstra(g, 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_GE(slt.tree.depth(g, v),
                sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Slt, BeatsBothPureTreesOnTheirBkj83BadCases) {
  // spt_heavy: the SPT costs Theta(n V); the SLT must stay near V while
  // keeping near-SPT depth. mst_deep: the MST is Theta(n D) deep; the
  // SLT must stay near D while keeping near-MST weight.
  {
    const int n = 40;
    Graph g = spt_heavy_family(n);
    const auto m = measure(g);
    const auto spt = dijkstra(g, 0).tree(g);
    const auto slt = build_slt(g, 0, 2.0);
    EXPECT_GE(spt.weight(g), 5 * m.comm_V);      // the bad case is real
    EXPECT_LE(slt.weight(g), 2 * m.comm_V);      // SLT fixes it
    EXPECT_LE(slt.depth(g), 5 * m.comm_D);       // without deep trees
  }
  {
    const int n = 40;
    Graph g = mst_deep_family(n);
    const auto m = measure(g);
    const auto mst = mst_tree(g, 0);
    const auto slt = build_slt(g, 0, 2.0);
    EXPECT_GE(mst.diameter(g), 5 * m.comm_D);    // the bad case is real
    EXPECT_LE(slt.depth(g), 5 * m.comm_D);       // SLT fixes it
    EXPECT_LE(slt.weight(g), 2 * m.comm_V);      // without heavy trees
  }
}

TEST(Slt, SingleNodeAndSingleEdge) {
  Graph g1(1);
  EXPECT_TRUE(build_slt(g1, 0, 2.0).tree.spanning());
  Graph g2(2);
  g2.add_edge(0, 1, 5);
  const auto slt = build_slt(g2, 0, 2.0);
  EXPECT_TRUE(slt.tree.spanning());
  EXPECT_EQ(slt.weight(g2), 5);
}

}  // namespace
}  // namespace csca
