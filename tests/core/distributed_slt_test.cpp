#include "core/distributed_slt.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

DelayFactory exact() {
  return [] { return make_exact_delay(); };
}

DelayFactory uniform(double lo, double hi) {
  return [lo, hi] { return make_uniform_delay(lo, hi); };
}

TEST(DistributedSlt, MatchesCentralizedDistances) {
  Rng rng(1);
  Graph g = connected_gnp(15, 0.3, WeightSpec::uniform(1, 10), rng);
  const auto run = run_distributed_slt(g, 0, 2.0, exact());
  EXPECT_TRUE(run.slt.tree.spanning());
  const auto sp_sub = dijkstra_subgraph(g, 0, run.slt.subgraph_edges);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(run.slt.tree.depth(g, v),
              sp_sub.dist[static_cast<std::size_t>(v)]);
  }
}

class DistributedSltPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedSltPropertyTest, BoundsHoldUnderRandomDelays) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(4, 18));
  Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto m = measure(g);
  const double q = 2.0;
  const auto run = run_distributed_slt(g, 0, q, uniform(0.1, 1.0),
                                       GetParam());
  EXPECT_LE(static_cast<double>(run.slt.weight(g)),
            (1.0 + 2.0 / q) * static_cast<double>(m.comm_V) + 1e-9);
  EXPECT_LE(static_cast<double>(run.slt.depth(g)),
            (2.0 * q + 1.0) * static_cast<double>(m.comm_D) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedSltPropertyTest,
                         ::testing::Values(7, 21, 42, 63));

TEST(DistributedSlt, Theorem27ComplexityBounds) {
  // O(V n^2) communication and O(D n^2) time overall.
  Rng rng(2);
  Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 15), rng);
  const auto m = measure(g);
  const auto run = run_distributed_slt(g, 0, 2.0, exact());
  const double n2 = static_cast<double>(m.n) * static_cast<double>(m.n);
  EXPECT_LE(static_cast<double>(run.total_cost()),
            8.0 * static_cast<double>(m.comm_V) * n2);
  EXPECT_LE(run.total_time(), 16.0 * static_cast<double>(m.comm_D) * n2);
}

TEST(DistributedSlt, StageLedgersAreAllPopulated) {
  Rng rng(3);
  Graph g = connected_gnp(10, 0.4, WeightSpec::uniform(1, 8), rng);
  const auto run = run_distributed_slt(g, 0, 2.0, exact());
  EXPECT_GT(run.mst_stats.algorithm_messages, 0);
  EXPECT_GT(run.spt_stats.algorithm_messages, 0);
  EXPECT_GT(run.final_stats.algorithm_messages, 0);
  EXPECT_EQ(run.total_messages(),
            run.mst_stats.total_messages() +
                run.spt_stats.total_messages() +
                run.final_stats.total_messages());
}

TEST(DistributedSlt, RejectsBadQ) {
  Rng rng(4);
  Graph g = path_graph(3, WeightSpec::constant(1), rng);
  EXPECT_THROW(run_distributed_slt(g, 0, 0.0, exact()),
               PreconditionError);
}

}  // namespace
}  // namespace csca
