#include "core/global_compute.h"

#include <gtest/gtest.h>

#include "core/slt.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

TEST(GlobalFunction, FoldMatchesDirectEvaluation) {
  const std::vector<std::int64_t> xs{5, -3, 12, 0, 7};
  EXPECT_EQ(fold(functions::sum(), xs), 21);
  EXPECT_EQ(fold(functions::max(), xs), 12);
  EXPECT_EQ(fold(functions::min(), xs), -3);
  EXPECT_EQ(fold(functions::bit_xor(), xs), (5 ^ -3 ^ 12 ^ 0 ^ 7));
  EXPECT_EQ(fold(functions::bit_and(), xs), (5 & -3 & 12 & 0 & 7));
  EXPECT_EQ(fold(functions::bit_or(), xs), (5 | -3 | 12 | 0 | 7));
}

TEST(GlobalFunction, CompactnessProperty) {
  // f(x1..xn) = g(f(x1..xk), f(x_{k+1}..xn)) for every split point.
  Rng rng(1);
  std::vector<std::int64_t> xs(9);
  for (auto& x : xs) x = rng.uniform_int(-100, 100);
  for (const auto& f : functions::all()) {
    const auto whole = fold(f, xs);
    for (std::size_t k = 0; k <= xs.size(); ++k) {
      const auto left = fold(f, std::span(xs).first(k));
      const auto right = fold(f, std::span(xs).subspan(k));
      EXPECT_EQ(f.combine(left, right), whole) << f.name << " k=" << k;
    }
  }
}

TEST(GlobalCompute, SumOverPathTree) {
  Rng rng(2);
  Graph g = path_graph(5, WeightSpec::constant(2), rng);
  const auto tree = mst_tree(g, 0);
  const std::vector<std::int64_t> inputs{1, 2, 3, 4, 5};
  const auto run = run_global_compute(g, tree, functions::sum(), inputs,
                                      make_exact_delay());
  EXPECT_EQ(run.result, 15);
  // Convergecast + broadcast: exactly 2 messages per tree edge.
  EXPECT_EQ(run.stats.algorithm_messages, 2 * 4);
  EXPECT_EQ(run.stats.algorithm_cost, 2 * tree.weight(g));
}

class GlobalComputePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalComputePropertyTest, AllFunctionsAllTreesMatchFold) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 30));
  Graph g = connected_gnp(n, 0.25, WeightSpec::uniform(1, 12), rng);
  std::vector<std::int64_t> inputs(static_cast<std::size_t>(n));
  for (auto& x : inputs) x = rng.uniform_int(-1000, 1000);
  const NodeId root = static_cast<NodeId>(rng.uniform_int(0, n - 1));
  const auto trees = {mst_tree(g, root), dijkstra(g, root).tree(g),
                      build_slt(g, root, 2.0).tree};
  for (const auto& tree : trees) {
    for (const auto& f : functions::all()) {
      const auto run = run_global_compute(g, tree, f, inputs,
                                          make_uniform_delay(0.0, 1.0),
                                          GetParam() + 99);
      EXPECT_EQ(run.result, fold(f, inputs)) << f.name;
      EXPECT_EQ(run.stats.algorithm_cost, 2 * tree.weight(g));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalComputePropertyTest,
                         ::testing::Values(3, 14, 25, 36, 47));

TEST(GlobalCompute, OverSltAchievesFigure1Bounds) {
  // Corollary 2.3: O(V) communication and O(D) time on an SLT.
  Rng rng(4);
  Graph g = connected_gnp(30, 0.2, WeightSpec::uniform(1, 25), rng);
  const auto m = measure(g);
  const double q = 2.0;
  const auto slt = build_slt(g, 0, q);
  std::vector<std::int64_t> inputs(30, 1);
  const auto run = run_global_compute(g, slt.tree, functions::sum(),
                                      inputs, make_exact_delay());
  EXPECT_EQ(run.result, 30);
  // Communication: 2 w(T) <= 2 (1 + 2/q) V.
  EXPECT_LE(static_cast<double>(run.stats.algorithm_cost),
            2.0 * (1.0 + 2.0 / q) * static_cast<double>(m.comm_V));
  // Time: down + up <= 2 * depth <= 2 (2q + 1) D.
  EXPECT_LE(run.completion_time,
            2.0 * (2.0 * q + 1.0) * static_cast<double>(m.comm_D));
}

TEST(GlobalCompute, LowerBoundTheorem21CommunicationAtLeastV) {
  // Theorem 2.1: any correct computation must move information along
  // some spanning subgraph, costing at least V. Our implementation's
  // cost is 2 w(T) >= 2 V >= V on every spanning tree.
  Rng rng(5);
  Graph g = connected_gnp(15, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto m = measure(g);
  std::vector<std::int64_t> inputs(15, 3);
  const auto run = run_global_compute(g, mst_tree(g, 0), functions::max(),
                                      inputs, make_exact_delay());
  EXPECT_GE(run.stats.algorithm_cost, m.comm_V);
}

TEST(GlobalFunction, ArgMinPackingRoundTrips) {
  for (std::int32_t value : {-100000, -1, 0, 1, 42, 1 << 30}) {
    for (std::int32_t id : {0, 1, 999}) {
      const auto packed = pack_value_id(value, id);
      EXPECT_EQ(packed_value(packed), value);
      EXPECT_EQ(packed_id(packed), id);
    }
  }
  // Comparisons follow values first, then ids.
  EXPECT_LT(pack_value_id(-5, 9), pack_value_id(-4, 0));
  EXPECT_LT(pack_value_id(7, 1), pack_value_id(7, 2));
}

TEST(GlobalCompute, ArgMinElectsTheMinimumHolder) {
  // §1.4.1's generality claim in action: electing the node holding the
  // minimum sensor reading is one symmetric-compact aggregation.
  Rng rng(8);
  Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 10), rng);
  std::vector<std::int32_t> readings(20);
  for (auto& r : readings) {
    r = static_cast<std::int32_t>(rng.uniform_int(-500, 500));
  }
  std::vector<std::int64_t> inputs(20);
  for (NodeId v = 0; v < 20; ++v) {
    inputs[static_cast<std::size_t>(v)] =
        pack_value_id(readings[static_cast<std::size_t>(v)], v);
  }
  const auto run = run_global_compute(g, mst_tree(g, 0),
                                      arg_min(), inputs,
                                      make_uniform_delay(0.1, 1.0), 4);
  // Reference winner.
  NodeId want = 0;
  for (NodeId v = 1; v < 20; ++v) {
    if (readings[static_cast<std::size_t>(v)] <
            readings[static_cast<std::size_t>(want)] ||
        (readings[static_cast<std::size_t>(v)] ==
             readings[static_cast<std::size_t>(want)] &&
         v < want)) {
      want = v;
    }
  }
  EXPECT_EQ(packed_id(run.result), want);
  EXPECT_EQ(packed_value(run.result),
            readings[static_cast<std::size_t>(want)]);
}

TEST(GlobalCompute, RejectsBadInputs) {
  Rng rng(6);
  Graph g = path_graph(3, WeightSpec::constant(1), rng);
  const auto tree = mst_tree(g, 0);
  const std::vector<std::int64_t> wrong_size{1, 2};
  EXPECT_THROW(run_global_compute(g, tree, functions::sum(), wrong_size,
                                  make_exact_delay()),
               PreconditionError);
  RootedTree partial(3, 0);
  const std::vector<std::int64_t> inputs{1, 2, 3};
  EXPECT_THROW(run_global_compute(g, partial, functions::sum(), inputs,
                                  make_exact_delay()),
               PreconditionError);
}

TEST(GlobalCompute, SingleNode) {
  Graph g(1);
  RootedTree t(1, 0);
  const std::vector<std::int64_t> inputs{42};
  const auto run = run_global_compute(g, t, functions::sum(), inputs,
                                      make_exact_delay());
  EXPECT_EQ(run.result, 42);
  EXPECT_EQ(run.stats.algorithm_messages, 0);
}

}  // namespace
}  // namespace csca
