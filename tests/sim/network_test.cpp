#include "sim/network.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace csca {
namespace {

// Echoes every received message back once, tagging type + 1.
class Echo final : public Process {
 public:
  explicit Echo(bool initiator) : initiator_(initiator) {}

  void on_start(Context& ctx) override {
    if (!initiator_) return;
    for (EdgeId e : ctx.incident()) ctx.send(e, Message{0});
  }

  void on_message(Context& ctx, const Message& m) override {
    last_type = m.type;
    last_from = m.from;
    receive_time = ctx.now();
    if (m.type == 0) ctx.send(m.edge, Message{1});
    ctx.finish();
  }

  bool initiator_;
  int last_type = -1;
  NodeId last_from = kNoNode;
  double receive_time = -1;
};

Network::ProcessFactory echo_factory(NodeId initiator) {
  return [initiator](NodeId v) {
    return std::make_unique<Echo>(v == initiator);
  };
}

TEST(Network, PingPongCostAndTimeWithExactDelay) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  Network net(g, echo_factory(0), make_exact_delay());
  const auto stats = net.run();
  // One ping + one pong, each costing w = 7.
  EXPECT_EQ(stats.algorithm_messages, 2);
  EXPECT_EQ(stats.algorithm_cost, 14);
  EXPECT_EQ(stats.control_messages, 0);
  EXPECT_DOUBLE_EQ(stats.completion_time, 14.0);
  EXPECT_EQ(net.process_as<Echo>(1).last_type, 0);
  EXPECT_EQ(net.process_as<Echo>(0).last_type, 1);
  EXPECT_EQ(net.process_as<Echo>(0).last_from, 1);
}

TEST(Network, UniformDelayWithinModelBounds) {
  Graph g(2);
  g.add_edge(0, 1, 100);
  Network net(g, echo_factory(0), make_uniform_delay(0.2, 0.9), 42);
  const auto stats = net.run();
  // Two messages, each delayed in [20, 90].
  EXPECT_GE(stats.completion_time, 40.0);
  EXPECT_LE(stats.completion_time, 180.0);
}

TEST(Network, DelayModelViolationRejected) {
  class BadDelay final : public DelayModel {
   public:
    double delay(Weight w, Rng&) override {
      return static_cast<double>(w) + 1.0;
    }
  };
  Graph g(2);
  g.add_edge(0, 1, 3);
  Network net(g, echo_factory(0), std::make_unique<BadDelay>());
  EXPECT_THROW(net.run(), PreconditionError);
}

// Sends one message on a fixed foreign edge to test the incident check.
class Trespasser final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.send(1, Message{0});  // edge 1 = (1,2)
  }
  void on_message(Context&, const Message&) override {}
};

TEST(Network, SendingOnForeignEdgeRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  Network net(
      g, [](NodeId) { return std::make_unique<Trespasser>(); },
      make_exact_delay());
  EXPECT_THROW(net.run(), PreconditionError);
}

// Sends a burst of numbered messages; receiver records arrival order.
class FifoSender final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (int i = 0; i < 50; ++i) {
      ctx.send(ctx.incident()[0], Message{i});
    }
  }
  void on_message(Context&, const Message& m) override {
    received.push_back(m.type);
  }
  std::vector<int> received;
};

TEST(Network, ChannelsAreFifoUnderRandomDelays) {
  Graph g(2);
  g.add_edge(0, 1, 1000);
  Network net(
      g, [](NodeId) { return std::make_unique<FifoSender>(); },
      make_uniform_delay(0.0, 1.0), 7);
  net.run();
  const auto& received = net.process_as<FifoSender>(1).received;
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

// Flood-and-reply: first receipt forwards to all other edges and
// replies; used for per-edge traffic accounting tests.
class FloodLike final : public Process {
 public:
  explicit FloodLike(NodeId self) : is_initiator_(self == 0) {}
  void on_start(Context& ctx) override {
    if (!is_initiator_) return;
    reached_ = true;
    for (EdgeId e : ctx.incident()) ctx.send(e, Message{0});
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.type == 1) return;  // a reply
    if (!reached_) {
      reached_ = true;
      for (EdgeId e : ctx.incident()) {
        if (e != m.edge) ctx.send(e, Message{0});
      }
    }
    ctx.send(m.edge, Message{1});
  }

 private:
  bool is_initiator_;
  bool reached_ = false;
};

// Relays a token along the path 0 -> 1 -> ... -> n-1.
class Relay final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) forward(ctx);
  }
  void on_message(Context& ctx, const Message&) override {
    forward(ctx);
    ctx.finish();
  }

 private:
  void forward(Context& ctx) {
    for (EdgeId e : ctx.incident()) {
      if (ctx.neighbor(e) == ctx.self() + 1) ctx.send(e, Message{0});
    }
    ctx.finish();
  }
};

TEST(Network, RelayAccumulatesWeightedTime) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(4), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  const auto stats = net.run();
  EXPECT_EQ(stats.algorithm_messages, 4);
  EXPECT_EQ(stats.algorithm_cost, 16);
  EXPECT_DOUBLE_EQ(stats.completion_time, 16.0);
  EXPECT_TRUE(net.all_finished());
  EXPECT_DOUBLE_EQ(net.last_finish_time(), 16.0);
  EXPECT_DOUBLE_EQ(net.finish_time(2), 8.0);
}

TEST(Network, ControlTrafficAccountedSeparately) {
  class ControlSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
      ctx.send(ctx.incident()[0], Message{1}, MsgClass::kControl);
      ctx.send(ctx.incident()[0], Message{2}, MsgClass::kControl);
    }
    void on_message(Context&, const Message&) override {}
  };
  Graph g(2);
  g.add_edge(0, 1, 5);
  Network net(
      g, [](NodeId) { return std::make_unique<ControlSender>(); },
      make_exact_delay());
  const auto stats = net.run();
  EXPECT_EQ(stats.algorithm_messages, 1);
  EXPECT_EQ(stats.algorithm_cost, 5);
  EXPECT_EQ(stats.control_messages, 2);
  EXPECT_EQ(stats.control_cost, 10);
  EXPECT_EQ(stats.total_messages(), 3);
  EXPECT_EQ(stats.total_cost(), 15);
}

TEST(Network, MaxTimeCutsRunShort) {
  Rng rng(1);
  Graph g = path_graph(10, WeightSpec::constant(10), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  net.run(35.0);
  // Token reached node 3 (time 30) but not node 4 (time 40).
  EXPECT_TRUE(net.finished(3));
  EXPECT_FALSE(net.finished(4));
  EXPECT_FALSE(net.all_finished());
  EXPECT_THROW(net.last_finish_time(), PreconditionError);
}

TEST(Network, RunResumesAfterMaxTime) {
  Rng rng(1);
  Graph g = path_graph(6, WeightSpec::constant(10), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  net.run(25.0);
  EXPECT_FALSE(net.all_finished());
  net.run();  // resume to quiescence
  EXPECT_TRUE(net.all_finished());
  EXPECT_DOUBLE_EQ(net.last_finish_time(), 50.0);
}

TEST(Network, StepDeliversOneEventAtATime) {
  Rng rng(1);
  Graph g = path_graph(4, WeightSpec::constant(2), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  int steps = 0;
  while (net.step()) ++steps;
  EXPECT_EQ(steps, 3);  // three relays delivered
  EXPECT_TRUE(net.idle());
  EXPECT_FALSE(net.step());
  EXPECT_EQ(net.stats().algorithm_messages, 3);
}

TEST(Network, ProcessAsRejectsWrongType) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  Network net(g, echo_factory(0), make_exact_delay());
  EXPECT_NO_THROW(net.process_as<Echo>(0));
  EXPECT_THROW(net.process_as<FifoSender>(0), PreconditionError);
}

// Uses schedule_self to defer work out of the current handler.
class SelfScheduler final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    ctx.schedule_self(5.0, Message{1});
    ctx.schedule_self(2.0, Message{2});
    ctx.schedule_self(2.0, Message{3});  // same time: FIFO by seq
  }
  void on_message(Context& ctx, const Message& m) override {
    order.push_back(m.type);
    times.push_back(ctx.now());
    if (m.type == 1) ctx.schedule_self(0.0, Message{4});
  }
  std::vector<int> order;
  std::vector<double> times;
};

TEST(Network, ScheduleSelfOrdersByTimeThenSequence) {
  Graph g(1);
  Network net(
      g, [](NodeId) { return std::make_unique<SelfScheduler>(); },
      make_exact_delay());
  const auto stats = net.run();
  const auto& p = net.process_as<SelfScheduler>(0);
  EXPECT_EQ(p.order, (std::vector<int>{2, 3, 1, 4}));
  EXPECT_DOUBLE_EQ(p.times[0], 2.0);
  EXPECT_DOUBLE_EQ(p.times[2], 5.0);
  EXPECT_DOUBLE_EQ(p.times[3], 5.0);  // zero-delay fires at same time
  // Self-deliveries are free: no ledger entries.
  EXPECT_EQ(stats.total_messages(), 0);
  EXPECT_EQ(stats.total_cost(), 0);
}

TEST(Network, ScheduleSelfRejectsNegativeDelay) {
  class Bad final : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.schedule_self(-1.0, Message{0});
    }
    void on_message(Context&, const Message&) override {}
  };
  Graph g(1);
  Network net(
      g, [](NodeId) { return std::make_unique<Bad>(); },
      make_exact_delay());
  EXPECT_THROW(net.run(), PreconditionError);
}

TEST(Network, EdgeMessageCountsTrackPerLinkTraffic) {
  Rng rng(1);
  Graph g = path_graph(3, WeightSpec::constant(2), rng);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodLike>(v); },
      make_exact_delay());
  net.run();
  // Node 0 starts: edge 0 carries 0->1 and the 1->0 response; edge 1
  // carries 1->2 and 2->1.
  EXPECT_EQ(net.edge_message_count(0), 2);
  EXPECT_EQ(net.edge_message_count(1), 2);
  EXPECT_EQ(net.max_edge_message_count(), 2);
  EXPECT_THROW(net.edge_message_count(7), PreconditionError);
}

TEST(Network, DeterministicAcrossIdenticalSeeds) {
  Rng rng(1);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  auto run_once = [&] {
    Network net(g, echo_factory(0), make_uniform_delay(0.0, 1.0), 99);
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace csca
