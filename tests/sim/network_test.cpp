#include "sim/network.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace csca {
namespace {

// Echoes every received message back once, tagging type + 1.
class Echo final : public Process {
 public:
  explicit Echo(bool initiator) : initiator_(initiator) {}

  void on_start(Context& ctx) override {
    if (!initiator_) return;
    for (EdgeId e : ctx.incident()) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
  }

  void on_message(Context& ctx, const Message& m) override {
    last_type = m.type;
    last_from = m.from;
    receive_time = ctx.now();
    if (m.type == 0) ctx.send(m.edge, Message{1}, MsgClass::kAlgorithm);
    ctx.finish();
  }

  bool initiator_;
  int last_type = -1;
  NodeId last_from = kNoNode;
  double receive_time = -1;
};

Network::ProcessFactory echo_factory(NodeId initiator) {
  return [initiator](NodeId v) {
    return std::make_unique<Echo>(v == initiator);
  };
}

TEST(Network, PingPongCostAndTimeWithExactDelay) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  Network net(g, echo_factory(0), make_exact_delay());
  const auto stats = net.run();
  // One ping + one pong, each costing w = 7.
  EXPECT_EQ(stats.algorithm_messages, 2);
  EXPECT_EQ(stats.algorithm_cost, 14);
  EXPECT_EQ(stats.control_messages, 0);
  EXPECT_DOUBLE_EQ(stats.completion_time, 14.0);
  EXPECT_EQ(net.process_as<Echo>(1).last_type, 0);
  EXPECT_EQ(net.process_as<Echo>(0).last_type, 1);
  EXPECT_EQ(net.process_as<Echo>(0).last_from, 1);
}

TEST(Network, UniformDelayWithinModelBounds) {
  Graph g(2);
  g.add_edge(0, 1, 100);
  Network net(g, echo_factory(0), make_uniform_delay(0.2, 0.9), 42);
  const auto stats = net.run();
  // Two messages, each delayed in [20, 90].
  EXPECT_GE(stats.completion_time, 40.0);
  EXPECT_LE(stats.completion_time, 180.0);
}

TEST(Network, DelayModelViolationRejected) {
  class BadDelay final : public DelayModel {
   public:
    double delay(Weight w, Rng&) override {
      return static_cast<double>(w) + 1.0;
    }
  };
  Graph g(2);
  g.add_edge(0, 1, 3);
  Network net(g, echo_factory(0), std::make_unique<BadDelay>());
  EXPECT_THROW(net.run(), PreconditionError);
}

// Sends one message on a fixed foreign edge to test the incident check.
class Trespasser final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.send(1, Message{0}, MsgClass::kAlgorithm);  // edge 1 = (1,2)
  }
  void on_message(Context&, const Message&) override {}
};

TEST(Network, SendingOnForeignEdgeRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  Network net(
      g, [](NodeId) { return std::make_unique<Trespasser>(); },
      make_exact_delay());
  EXPECT_THROW(net.run(), PreconditionError);
}

// Sends a burst of numbered messages; receiver records arrival order.
class FifoSender final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (int i = 0; i < 50; ++i) {
      ctx.send(ctx.incident()[0], Message{i}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context&, const Message& m) override {
    received.push_back(m.type);
  }
  std::vector<int> received;
};

TEST(Network, ChannelsAreFifoUnderRandomDelays) {
  Graph g(2);
  g.add_edge(0, 1, 1000);
  Network net(
      g, [](NodeId) { return std::make_unique<FifoSender>(); },
      make_uniform_delay(0.0, 1.0), 7);
  net.run();
  const auto& received = net.process_as<FifoSender>(1).received;
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

// Flood-and-reply: first receipt forwards to all other edges and
// replies; used for per-edge traffic accounting tests.
class FloodLike final : public Process {
 public:
  explicit FloodLike(NodeId self) : is_initiator_(self == 0) {}
  void on_start(Context& ctx) override {
    if (!is_initiator_) return;
    reached_ = true;
    for (EdgeId e : ctx.incident()) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.type == 1) return;  // a reply
    if (!reached_) {
      reached_ = true;
      for (EdgeId e : ctx.incident()) {
        if (e != m.edge) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
      }
    }
    ctx.send(m.edge, Message{1}, MsgClass::kAlgorithm);
  }

 private:
  bool is_initiator_;
  bool reached_ = false;
};

// Relays a token along the path 0 -> 1 -> ... -> n-1.
class Relay final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) forward(ctx);
  }
  void on_message(Context& ctx, const Message&) override {
    forward(ctx);
    ctx.finish();
  }

 private:
  void forward(Context& ctx) {
    for (EdgeId e : ctx.incident()) {
      if (ctx.neighbor(e) == ctx.self() + 1) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }
};

TEST(Network, RelayAccumulatesWeightedTime) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(4), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  const auto stats = net.run();
  EXPECT_EQ(stats.algorithm_messages, 4);
  EXPECT_EQ(stats.algorithm_cost, 16);
  EXPECT_DOUBLE_EQ(stats.completion_time, 16.0);
  EXPECT_TRUE(net.all_finished());
  EXPECT_DOUBLE_EQ(net.last_finish_time(), 16.0);
  EXPECT_DOUBLE_EQ(net.finish_time(2), 8.0);
}

TEST(Network, ControlTrafficAccountedSeparately) {
  class ControlSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
      ctx.send(ctx.incident()[0], Message{1}, MsgClass::kControl);
      ctx.send(ctx.incident()[0], Message{2}, MsgClass::kControl);
    }
    void on_message(Context&, const Message&) override {}
  };
  Graph g(2);
  g.add_edge(0, 1, 5);
  Network net(
      g, [](NodeId) { return std::make_unique<ControlSender>(); },
      make_exact_delay());
  const auto stats = net.run();
  EXPECT_EQ(stats.algorithm_messages, 1);
  EXPECT_EQ(stats.algorithm_cost, 5);
  EXPECT_EQ(stats.control_messages, 2);
  EXPECT_EQ(stats.control_cost, 10);
  EXPECT_EQ(stats.total_messages(), 3);
  EXPECT_EQ(stats.total_cost(), 15);
}

TEST(Network, MaxTimeCutsRunShort) {
  Rng rng(1);
  Graph g = path_graph(10, WeightSpec::constant(10), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  net.run(35.0);
  // Token reached node 3 (time 30) but not node 4 (time 40).
  EXPECT_TRUE(net.finished(3));
  EXPECT_FALSE(net.finished(4));
  EXPECT_FALSE(net.all_finished());
  EXPECT_THROW(net.last_finish_time(), PreconditionError);
}

TEST(Network, RunResumesAfterMaxTime) {
  Rng rng(1);
  Graph g = path_graph(6, WeightSpec::constant(10), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  net.run(25.0);
  EXPECT_FALSE(net.all_finished());
  net.run();  // resume to quiescence
  EXPECT_TRUE(net.all_finished());
  EXPECT_DOUBLE_EQ(net.last_finish_time(), 50.0);
}

TEST(Network, StepDeliversOneEventAtATime) {
  Rng rng(1);
  Graph g = path_graph(4, WeightSpec::constant(2), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  int steps = 0;
  while (net.step()) ++steps;
  EXPECT_EQ(steps, 3);  // three relays delivered
  EXPECT_TRUE(net.idle());
  EXPECT_FALSE(net.step());
  EXPECT_EQ(net.stats().algorithm_messages, 3);
}

TEST(Network, ProcessAsRejectsWrongType) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  Network net(g, echo_factory(0), make_exact_delay());
  EXPECT_NO_THROW(net.process_as<Echo>(0));
  EXPECT_THROW(net.process_as<FifoSender>(0), PreconditionError);
}

// Uses schedule_self to defer work out of the current handler.
class SelfScheduler final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    ctx.schedule_self(5.0, Message{1});
    ctx.schedule_self(2.0, Message{2});
    ctx.schedule_self(2.0, Message{3});  // same time: FIFO by seq
  }
  void on_message(Context& ctx, const Message& m) override {
    order.push_back(m.type);
    times.push_back(ctx.now());
    if (m.type == 1) ctx.schedule_self(0.0, Message{4});
  }
  std::vector<int> order;
  std::vector<double> times;
};

TEST(Network, ScheduleSelfOrdersByTimeThenSequence) {
  Graph g(1);
  Network net(
      g, [](NodeId) { return std::make_unique<SelfScheduler>(); },
      make_exact_delay());
  const auto stats = net.run();
  const auto& p = net.process_as<SelfScheduler>(0);
  EXPECT_EQ(p.order, (std::vector<int>{2, 3, 1, 4}));
  EXPECT_DOUBLE_EQ(p.times[0], 2.0);
  EXPECT_DOUBLE_EQ(p.times[2], 5.0);
  EXPECT_DOUBLE_EQ(p.times[3], 5.0);  // zero-delay fires at same time
  // Self-deliveries are free: no ledger entries.
  EXPECT_EQ(stats.total_messages(), 0);
  EXPECT_EQ(stats.total_cost(), 0);
}

TEST(Network, ScheduleSelfRejectsNegativeDelay) {
  class Bad final : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.schedule_self(-1.0, Message{0});
    }
    void on_message(Context&, const Message&) override {}
  };
  Graph g(1);
  Network net(
      g, [](NodeId) { return std::make_unique<Bad>(); },
      make_exact_delay());
  EXPECT_THROW(net.run(), PreconditionError);
}

TEST(Network, EdgeMessageCountsTrackPerLinkTraffic) {
  Rng rng(1);
  Graph g = path_graph(3, WeightSpec::constant(2), rng);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodLike>(v); },
      make_exact_delay());
  net.run();
  // Node 0 starts: edge 0 carries 0->1 and the 1->0 response; edge 1
  // carries 1->2 and 2->1.
  EXPECT_EQ(net.edge_message_count(0), 2);
  EXPECT_EQ(net.edge_message_count(1), 2);
  EXPECT_EQ(net.max_edge_message_count(), 2);
  EXPECT_THROW(net.edge_message_count(7), PreconditionError);
}

// TTL broadcast storm with mixed ledger classes: every delivery with
// ttl > 0 re-broadcasts on all incident edges, alternating the cost
// class by ttl parity. Deterministic given (graph, delay model, seed);
// used for the golden-ledger and resume-slicing tests.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl, std::vector<std::int64_t>* log = nullptr)
      : ttl_(ttl), log_(log) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    if (log_ != nullptr) {
      log_->push_back(ctx.self());
      log_->push_back(m.from);
      log_->push_back(m.at(0));
    }
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }

 private:
  std::int64_t ttl_;
  std::vector<std::int64_t>* log_;
};

TEST(Network, GoldenLedgerUnchangedAcrossEngineSwap) {
  // Golden values captured from the seed std::priority_queue engine
  // (commit 9d48ee5). The indexed-heap engine orders equal-time events
  // by the same (arrival, seq) total order, so every ledger field must
  // stay bit-identical for a fixed seed.
  struct Golden {
    std::uint64_t seed;
    double completion;
  };
  const Golden golden[] = {{1, 24.219002035024655},
                           {42, 27.638169197934825},
                           {99, 31.296914566072871}};
  for (const Golden& gl : golden) {
    Rng rng(3);
    Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
    Network net(
        g, [](NodeId) { return std::make_unique<Storm>(3); },
        make_uniform_delay(0.0, 1.0), gl.seed);
    const RunStats s = net.run();
    EXPECT_EQ(s.algorithm_messages, 2126);
    EXPECT_EQ(s.algorithm_cost, 10248);
    EXPECT_EQ(s.control_messages, 304);
    EXPECT_EQ(s.control_cost, 1439);
    EXPECT_EQ(s.events, 2430);
    EXPECT_DOUBLE_EQ(s.completion_time, gl.completion);
    EXPECT_EQ(net.max_edge_message_count(), 42);
  }
}

// Sends numbered bursts over a weight-1 edge; with UniformDelay(0, 1)
// the sampled delays routinely collide at (near-)zero, so deliveries
// are only kept in order by the per-channel FIFO clamp + seq tie-break.
TEST(Network, FifoPreservedUnderZeroDelayTies) {
  class BurstSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      for (int i = 0; i < 100; ++i) ctx.send(ctx.incident()[0], Message{i}, MsgClass::kAlgorithm);
    }
    void on_message(Context& ctx, const Message& m) override {
      received.push_back(m.type);
      // Echo bursts back so ties also occur on the reverse channel.
      if (ctx.self() == 1 && m.type % 10 == 0) {
        for (int i = 0; i < 5; ++i) {
          ctx.send(m.edge, Message{1000 + 5 * (m.type / 10) + i}, MsgClass::kAlgorithm);
        }
      }
    }
    std::vector<int> received;
  };
  Graph g(2);
  g.add_edge(0, 1, 1);
  Network net(
      g, [](NodeId) { return std::make_unique<BurstSender>(); },
      make_uniform_delay(0.0, 1.0), 2026);
  net.run();
  const auto& fwd = net.process_as<BurstSender>(1).received;
  ASSERT_EQ(fwd.size(), 100u);
  EXPECT_TRUE(std::is_sorted(fwd.begin(), fwd.end()));
  const auto& back = net.process_as<BurstSender>(0).received;
  ASSERT_EQ(back.size(), 50u);
  EXPECT_TRUE(std::is_sorted(back.begin(), back.end()));
}

TEST(Network, BudgetSlicesDeliverSameSequenceAsFullRun) {
  // Interleaving run(max_time) budget slices must lose and reorder
  // nothing: the concatenated delivery log of the sliced execution is
  // exactly the log of the unbudgeted one.
  Rng rng(3);
  Graph g = connected_gnp(16, 0.25, WeightSpec::uniform(1, 9), rng);
  const auto run_sliced = [&](const std::vector<double>& cuts) {
    std::vector<std::int64_t> log;
    Network net(
        g, [&log](NodeId) { return std::make_unique<Storm>(2, &log); },
        make_uniform_delay(0.0, 1.0), 7);
    for (double cut : cuts) net.run(cut);
    net.run();
    EXPECT_TRUE(net.idle());
    return std::make_pair(log, net.stats());
  };
  const auto [full_log, full_stats] = run_sliced({});
  const auto [sliced_log, sliced_stats] = run_sliced({3.0, 7.5, 11.0});
  EXPECT_EQ(sliced_log, full_log);
  EXPECT_EQ(sliced_stats.events, full_stats.events);
  EXPECT_EQ(sliced_stats.algorithm_messages, full_stats.algorithm_messages);
  EXPECT_EQ(sliced_stats.control_messages, full_stats.control_messages);
  EXPECT_DOUBLE_EQ(sliced_stats.completion_time,
                   full_stats.completion_time);
}

TEST(Network, NowAdvancesToBudgetBoundaryWhenCutShort) {
  Rng rng(1);
  Graph g = path_graph(10, WeightSpec::constant(10), rng);
  Network net(
      g, [](NodeId) { return std::make_unique<Relay>(); },
      make_exact_delay());
  net.run(35.0);
  // Last delivery was at t=30, but the slice consumed [0, 35].
  EXPECT_DOUBLE_EQ(net.now(), 35.0);
  // A shorter budget than the clock delivers nothing and leaves time be.
  net.run(5.0);
  EXPECT_DOUBLE_EQ(net.now(), 35.0);
  net.run();
  // After quiescence the clock is the last delivery, not a budget mark.
  EXPECT_DOUBLE_EQ(net.now(), 90.0);
  EXPECT_TRUE(net.all_finished());
}

TEST(Network, CompletionTimeIgnoresTrailingSelfDelivery) {
  // A free self-delivery after the last real message must not inflate
  // the paper's time measure (completion_time), though the simulated
  // clock itself still advances to it.
  class DeferAfterEcho final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
    }
    void on_message(Context& ctx, const Message& m) override {
      if (m.edge != kNoEdge) ctx.schedule_self(8.0, Message{1});
    }
  };
  Graph g(2);
  g.add_edge(0, 1, 2);
  Network net(
      g, [](NodeId) { return std::make_unique<DeferAfterEcho>(); },
      make_exact_delay());
  const auto stats = net.run();
  EXPECT_EQ(stats.events, 2);  // the edge delivery + the self delivery
  EXPECT_DOUBLE_EQ(stats.completion_time, 2.0);
  EXPECT_DOUBLE_EQ(net.now(), 10.0);
}

TEST(Network, PerClassEdgeCountersSplitTraffic) {
  class ClassedSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
      ctx.send(ctx.incident()[0], Message{1}, MsgClass::kControl);
      ctx.send(ctx.incident()[0], Message{2}, MsgClass::kControl);
    }
    void on_message(Context& ctx, const Message& m) override {
      // Replies travel as algorithm traffic on the reverse channel.
      if (m.type == 0) ctx.send(m.edge, Message{3}, MsgClass::kAlgorithm);
    }
  };
  Graph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 5);
  Network net(
      g, [](NodeId) { return std::make_unique<ClassedSender>(); },
      make_exact_delay());
  net.run();
  EXPECT_EQ(net.edge_message_count(0, MsgClass::kAlgorithm), 2);
  EXPECT_EQ(net.edge_message_count(0, MsgClass::kControl), 2);
  EXPECT_EQ(net.edge_message_count(0), 4);
  EXPECT_EQ(net.edge_message_count(1, MsgClass::kAlgorithm), 0);
  EXPECT_EQ(net.edge_message_count(1, MsgClass::kControl), 0);
  EXPECT_EQ(net.max_edge_message_count(MsgClass::kAlgorithm), 2);
  EXPECT_EQ(net.max_edge_message_count(MsgClass::kControl), 2);
  EXPECT_EQ(net.max_edge_message_count(), 4);
  EXPECT_THROW(
      static_cast<void>(net.edge_message_count(9, MsgClass::kControl)),
      PreconditionError);
}

TEST(Network, DeterministicAcrossIdenticalSeeds) {
  Rng rng(1);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 9), rng);
  auto run_once = [&] {
    Network net(g, echo_factory(0), make_uniform_delay(0.0, 1.0), 99);
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace csca
