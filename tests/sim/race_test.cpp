#include "sim/race.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace csca {
namespace {

// Token walks the path at one hop per message; finishes at the far end.
class Walker final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) hop(ctx);
  }
  void on_message(Context& ctx, const Message&) override { hop(ctx); }
  bool at_end = false;

 private:
  void hop(Context& ctx) {
    for (EdgeId e : ctx.incident()) {
      if (ctx.neighbor(e) == ctx.self() + 1) {
        ctx.send(e, Message{0}, MsgClass::kAlgorithm);
        return;
      }
    }
    at_end = true;  // no next hop: far end reached
    ctx.finish();
  }
};

Network make_walk(const Graph& g) {
  return Network(
      g, [](NodeId) { return std::make_unique<Walker>(); },
      make_exact_delay());
}

TEST(Race, CheaperSideWins) {
  Rng rng(1);
  Graph cheap = path_graph(5, WeightSpec::constant(1), rng);
  Graph costly = path_graph(5, WeightSpec::constant(100), rng);
  Network a = make_walk(cheap);
  Network b = make_walk(costly);
  const auto finished = [](Network& net) {
    return net.process_as<Walker>(net.graph().node_count() - 1).at_end;
  };
  const auto outcome = race_networks(a, finished, b, finished);
  EXPECT_EQ(outcome.winner, 0);
  // The loser never spends more than the winner's final bill plus two
  // messages (the start-up send and the one delivery used to kick the
  // network off).
  EXPECT_LE(outcome.second_stats.total_cost(),
            outcome.first_stats.total_cost() + 200);
}

TEST(Race, SymmetricCostsStillTerminate) {
  Rng rng(2);
  Graph g1 = path_graph(6, WeightSpec::constant(3), rng);
  Graph g2 = path_graph(6, WeightSpec::constant(3), rng);
  Network a = make_walk(g1);
  Network b = make_walk(g2);
  const auto finished = [](Network& net) {
    return net.process_as<Walker>(net.graph().node_count() - 1).at_end;
  };
  const auto outcome = race_networks(a, finished, b, finished);
  EXPECT_GE(outcome.winner, 0);
  EXPECT_LE(outcome.winner, 1);
  EXPECT_LE(outcome.total_cost(), 2 * 15 + 3);
}

TEST(Race, IdleUnfinishedSideStallsTowardOther) {
  // Side A idles immediately without finishing; the race must push B to
  // completion anyway.
  class Lazy final : public Process {
   public:
    void on_message(Context&, const Message&) override {}
  };
  Rng rng(3);
  Graph ga = path_graph(3, WeightSpec::constant(1), rng);
  Graph gb = path_graph(4, WeightSpec::constant(5), rng);
  Network a(
      ga, [](NodeId) { return std::make_unique<Lazy>(); },
      make_exact_delay());
  Network b = make_walk(gb);
  const auto a_finished = [](Network&) { return false; };
  const auto b_finished = [](Network& net) {
    return net.process_as<Walker>(3).at_end;
  };
  const auto outcome = race_networks(a, a_finished, b, b_finished);
  EXPECT_EQ(outcome.winner, 1);
}

TEST(Race, WinnerLedgerExcludesPostFinishActivity) {
  // Node 1 finishes on the first probe but also emits a reply. The race
  // must stop at the predicate: the reply's send is charged (sends are
  // charged at send time) but its delivery never happens, and the loser
  // is not stepped at all once the winner is done.
  class FinishAndReply final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
    }
    void on_message(Context& ctx, const Message& m) override {
      done = true;
      ctx.finish();
      ctx.send(m.edge, Message{1}, MsgClass::kAlgorithm);
    }
    bool done = false;
  };
  Rng rng(5);
  Graph ga = path_graph(2, WeightSpec::constant(1), rng);
  Graph gb = path_graph(4, WeightSpec::constant(100), rng);
  Network a(
      ga, [](NodeId) { return std::make_unique<FinishAndReply>(); },
      make_exact_delay());
  Network b = make_walk(gb);
  const auto a_done = [](Network& net) {
    return net.process_as<FinishAndReply>(1).done;
  };
  const auto b_done = [](Network& net) {
    return net.process_as<Walker>(3).at_end;
  };
  const auto outcome = race_networks(a, a_done, b, b_done);
  EXPECT_EQ(outcome.winner, 0);
  // Exactly the probe was delivered; the reply stays queued.
  EXPECT_EQ(outcome.first_stats.events, 1);
  EXPECT_EQ(outcome.first_stats.total_messages(), 2);
  // The loser was never the cheaper side, so it was never advanced.
  EXPECT_EQ(outcome.second_stats.events, 0);
  EXPECT_EQ(outcome.second_stats.total_cost(), 0);
}

TEST(Race, FinishInOnStartWinsWithoutDeadlock) {
  // A protocol can finish during its on_start hooks with no events ever
  // queued; the failed kick-off step must be followed by a predicate
  // re-check, not a deadlock report.
  class Instant final : public Process {
   public:
    void on_start(Context& ctx) override { ctx.finish(); }
    void on_message(Context&, const Message&) override {}
  };
  Rng rng(6);
  Graph ga = path_graph(2, WeightSpec::constant(1), rng);
  Graph gb = path_graph(3, WeightSpec::constant(1), rng);
  Network a(
      ga, [](NodeId) { return std::make_unique<Instant>(); },
      make_exact_delay());
  Network b = make_walk(gb);
  const auto a_done = [](Network& net) { return net.all_finished(); };
  const auto b_done = [](Network& net) {
    return net.process_as<Walker>(2).at_end;
  };
  const auto outcome = race_networks(a, a_done, b, b_done);
  EXPECT_EQ(outcome.winner, 0);
  EXPECT_EQ(outcome.first_stats.events, 0);
  EXPECT_EQ(outcome.second_stats.events, 0);
}

TEST(Race, BothIdleUnfinishedIsDeadlock) {
  class Lazy final : public Process {
   public:
    void on_message(Context&, const Message&) override {}
  };
  Rng rng(4);
  Graph g = path_graph(3, WeightSpec::constant(1), rng);
  Network a(
      g, [](NodeId) { return std::make_unique<Lazy>(); },
      make_exact_delay());
  Network b(
      g, [](NodeId) { return std::make_unique<Lazy>(); },
      make_exact_delay());
  const auto never = [](Network&) { return false; };
  EXPECT_THROW(race_networks(a, never, b, never), PreconditionError);
}

}  // namespace
}  // namespace csca
