#include "sim/event_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <utility>

#include "util/rng.h"

namespace csca {
namespace {

// Mirror of HeapKey the reference std::priority_queue can order.
using RefKey = std::pair<double, std::uint32_t>;

struct Item {
  int tag = 0;
};

TEST(EventHeap, PopsInKeyOrderWithDeterministicTieBreaks) {
  EventHeap<Item> heap;
  Rng rng(11);
  std::vector<RefKey> reference;
  for (std::uint32_t s = 0; s < 500; ++s) {
    // Coarse keys force many ties; aux must decide them FIFO.
    const RefKey k{static_cast<double>(rng.uniform_int(0, 9)), s};
    reference.push_back(k);
    heap.push(HeapKey{k.first, k.second}, Item{static_cast<int>(s)});
  }
  std::sort(reference.begin(), reference.end());
  for (const RefKey& want : reference) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top_key(), (HeapKey{want.first, want.second}));
    const Item got = heap.pop();
    EXPECT_EQ(got.tag, static_cast<int>(want.second));
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, MatchesPriorityQueueUnderInterleavedPushPop) {
  EventHeap<Item> heap;
  std::priority_queue<RefKey, std::vector<RefKey>, std::greater<>> ref;
  Rng rng(17);
  std::uint32_t seq = 0;
  for (int round = 0; round < 2000; ++round) {
    if (ref.empty() || rng.uniform_int(0, 2) != 0) {
      const RefKey k{rng.uniform_real(0.0, 100.0), seq++};
      ref.push(k);
      heap.push(HeapKey{k.first, k.second}, Item{static_cast<int>(k.second)});
    } else {
      const RefKey want = ref.top();
      ref.pop();
      ASSERT_EQ(heap.top_key(), (HeapKey{want.first, want.second}));
      ASSERT_EQ(heap.pop().tag, static_cast<int>(want.second));
    }
    ASSERT_EQ(heap.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(heap.pop().tag, static_cast<int>(ref.top().second));
    ref.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, MoveOnlyEventsAreMovedNotCopied) {
  struct MoveOnly {
    std::unique_ptr<int> box;
  };
  EventHeap<MoveOnly> heap;
  for (int i = 9; i >= 0; --i) {
    heap.push(HeapKey{static_cast<double>(i), static_cast<std::uint32_t>(i)},
              MoveOnly{std::make_unique<int>(i)});
  }
  for (int i = 0; i < 10; ++i) {
    MoveOnly got = heap.pop();
    ASSERT_NE(got.box, nullptr);
    EXPECT_EQ(*got.box, i);
  }
}

TEST(EventHeap, ArenaSlotsAreRecycledAcrossDrains) {
  EventHeap<Item> heap;
  std::uint32_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      heap.push(HeapKey{static_cast<double>(i), seq++}, Item{i});
    }
    while (!heap.empty()) heap.pop();
  }
  // 8 concurrent events ever; 50 drains reuse the same 8 slots.
  EXPECT_EQ(heap.arena_slots(), 8u);
  EXPECT_EQ(heap.peak_size(), 8u);
}

TEST(EventHeap, PeakSizeTracksHighWaterMark) {
  EventHeap<Item> heap;
  for (std::uint32_t s = 0; s < 5; ++s) heap.push(HeapKey{1.0, s}, Item{0});
  heap.pop();
  heap.pop();
  for (std::uint32_t s = 5; s < 7; ++s) heap.push(HeapKey{1.0, s}, Item{0});
  EXPECT_EQ(heap.size(), 5u);
  EXPECT_EQ(heap.peak_size(), 5u);
  EXPECT_THROW(EventHeap<Item>{}.top(), PreconditionError);
  EXPECT_THROW(EventHeap<Item>{}.top_key(), PreconditionError);
  EXPECT_THROW(EventHeap<Item>{}.pop(), PreconditionError);
}

}  // namespace
}  // namespace csca
