#include "sim/sync_engine.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace csca {
namespace {

// Weighted-synchronous flooding: records the pulse at which the wave
// reaches each node; with exact w(e) delays that pulse equals dist(0, v).
class SyncFlood final : public SyncProcess {
 public:
  void on_start(SyncContext& ctx) override {
    if (ctx.self() == 0) spread(ctx);
  }
  void on_message(SyncContext& ctx, const Message&) override {
    if (reached_at >= 0) return;
    spread(ctx);
  }
  std::int64_t reached_at = -1;

 private:
  void spread(SyncContext& ctx) {
    reached_at = ctx.pulse();
    for (EdgeId e : ctx.incident()) ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    ctx.finish();
  }
};

TEST(SyncEngine, FloodArrivalPulsesEqualShortestDistanceOnPath) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(3), rng);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<SyncFlood>(); });
  const auto stats = eng.run();
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(eng.process_as<SyncFlood>(v).reached_at, 3 * v);
  }
  EXPECT_TRUE(eng.all_finished());
  // Node 4 is reached at pulse 12; its flood-back lands at node 3 at
  // pulse 15, the last delivered event.
  EXPECT_DOUBLE_EQ(stats.completion_time, 15.0);
}

TEST(SyncEngine, MessageCostsAccumulateWeights) {
  Graph g(2);
  g.add_edge(0, 1, 9);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<SyncFlood>(); });
  const auto stats = eng.run();
  // 0 floods at pulse 0; 1 floods back at pulse 9.
  EXPECT_EQ(stats.algorithm_messages, 2);
  EXPECT_EQ(stats.algorithm_cost, 18);
}

// Sends on a weight-4 edge at pulse 2 (violating in-synch discipline).
class OffBeat final : public SyncProcess {
 public:
  void on_start(SyncContext& ctx) override {
    if (ctx.self() == 0) ctx.schedule_wakeup(2);
  }
  void on_wakeup(SyncContext& ctx) override {
    ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
  }
  void on_message(SyncContext&, const Message&) override {}
};

TEST(SyncEngine, InSynchEnforcementRejectsOffBeatSends) {
  Graph g(2);
  g.add_edge(0, 1, 4);
  {
    SyncEngine lax(g, [](NodeId) { return std::make_unique<OffBeat>(); },
                   /*enforce_in_synch=*/false);
    EXPECT_NO_THROW(lax.run());
  }
  {
    SyncEngine strict(
        g, [](NodeId) { return std::make_unique<OffBeat>(); },
        /*enforce_in_synch=*/true);
    EXPECT_THROW(strict.run(), PreconditionError);
  }
}

// Wakes itself every k pulses, counting activations.
class Ticker final : public SyncProcess {
 public:
  explicit Ticker(std::int64_t period) : period_(period) {}
  void on_start(SyncContext& ctx) override {
    if (ctx.self() == 0) ctx.schedule_wakeup(period_);
  }
  void on_wakeup(SyncContext& ctx) override {
    ticks.push_back(ctx.pulse());
    if (ticks.size() < 5) ctx.schedule_wakeup(ctx.pulse() + period_);
  }
  void on_message(SyncContext&, const Message&) override {}
  std::vector<std::int64_t> ticks;

 private:
  std::int64_t period_;
};

TEST(SyncEngine, WakeupsFireAtRequestedPulses) {
  Graph g(1);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<Ticker>(10); });
  eng.run();
  EXPECT_EQ(eng.process_as<Ticker>(0).ticks,
            (std::vector<std::int64_t>{10, 20, 30, 40, 50}));
}

TEST(SyncEngine, WakeupInPastRejected) {
  class BadWakeup final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override {
      if (ctx.self() == 0) ctx.schedule_wakeup(0);
    }
    void on_message(SyncContext&, const Message&) override {}
  };
  Graph g(1);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<BadWakeup>(); });
  EXPECT_THROW(eng.run(), PreconditionError);
}

TEST(SyncEngine, MaxPulseStopsExecution) {
  Rng rng(2);
  Graph g = path_graph(6, WeightSpec::constant(5), rng);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<SyncFlood>(); });
  eng.run(11);
  EXPECT_EQ(eng.process_as<SyncFlood>(2).reached_at, 10);
  EXPECT_EQ(eng.process_as<SyncFlood>(3).reached_at, -1);
  EXPECT_FALSE(eng.idle());
}

TEST(SyncEngine, BudgetedRunPreservesOverBudgetEvents) {
  // A budget cut must leave every event beyond max_pulse queued: the
  // resumed execution has to be indistinguishable from an unbudgeted
  // one (the hybrid drivers charge pulse budgets one slice at a time).
  Rng rng(2);
  Graph g = path_graph(6, WeightSpec::constant(5), rng);
  const auto factory = [](NodeId) { return std::make_unique<SyncFlood>(); };

  SyncEngine whole(g, factory);
  const RunStats full = whole.run();

  SyncEngine sliced(g, factory);
  sliced.run(11);   // cuts mid-flood; events at pulse 15 stay queued
  sliced.run(27);   // another partial slice
  const RunStats resumed = sliced.run();

  EXPECT_TRUE(sliced.idle());
  EXPECT_EQ(resumed.events, full.events);
  EXPECT_EQ(resumed.algorithm_messages, full.algorithm_messages);
  EXPECT_EQ(resumed.algorithm_cost, full.algorithm_cost);
  EXPECT_DOUBLE_EQ(resumed.completion_time, full.completion_time);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(sliced.process_as<SyncFlood>(v).reached_at,
              whole.process_as<SyncFlood>(v).reached_at);
  }
}

TEST(SyncEngine, WakeupBeyondBudgetSurvivesResume) {
  Graph g(1);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<Ticker>(10); });
  eng.run(5);  // budget ends before the first wakeup at pulse 10
  EXPECT_TRUE(eng.process_as<Ticker>(0).ticks.empty());
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(eng.process_as<Ticker>(0).ticks,
            (std::vector<std::int64_t>{10, 20, 30, 40, 50}));
}

TEST(SyncEngine, MessagesDeliveredBeforeWakeupAtSamePulse) {
  // Node 0 sends over weight-5 edge at pulse 0 and node 1 schedules a
  // wakeup at pulse 5: the message handler must run first.
  class Receiver final : public SyncProcess {
   public:
    void on_start(SyncContext& ctx) override {
      if (ctx.self() == 1) ctx.schedule_wakeup(5);
      if (ctx.self() == 0) ctx.send(ctx.incident()[0], Message{0}, MsgClass::kAlgorithm);
    }
    void on_message(SyncContext&, const Message&) override {
      order.push_back('m');
    }
    void on_wakeup(SyncContext&) override { order.push_back('w'); }
    std::string order;
  };
  Graph g(2);
  g.add_edge(0, 1, 5);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<Receiver>(); });
  eng.run();
  EXPECT_EQ(eng.process_as<Receiver>(1).order, "mw");
}

TEST(SyncEngine, RunAfterQuiescenceIsIdempotent) {
  // run() resumes rather than restarting: after quiescence a second
  // call delivers nothing, fires no on_start hooks again, and returns
  // the same ledger (matching Network::run's contract).
  Graph g(2);
  g.add_edge(0, 1, 9);
  SyncEngine eng(g, [](NodeId) { return std::make_unique<SyncFlood>(); });
  const RunStats first = eng.run();
  const RunStats again = eng.run();
  EXPECT_EQ(again.events, first.events);
  EXPECT_EQ(again.algorithm_messages, first.algorithm_messages);
  EXPECT_DOUBLE_EQ(again.completion_time, first.completion_time);
  EXPECT_EQ(eng.process_as<SyncFlood>(1).reached_at, 9);
}

}  // namespace
}  // namespace csca
