#include "conn/dfs.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace csca {
namespace {

// Checks the fundamental DFS-tree property for undirected graphs: every
// non-tree edge joins an ancestor-descendant pair.
bool is_dfs_tree(const Graph& g, const RootedTree& t) {
  if (!t.spanning()) return false;
  const auto is_ancestor = [&](NodeId a, NodeId b) {
    NodeId cur = b;
    while (cur != t.root()) {
      if (cur == a) return true;
      cur = g.other(t.parent_edge(cur), cur);
    }
    return a == t.root();
  };
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (t.contains(ed.u) && t.parent_edge(ed.u) == e) continue;
    if (t.contains(ed.v) && t.parent_edge(ed.v) == e) continue;
    if (!is_ancestor(ed.u, ed.v) && !is_ancestor(ed.v, ed.u)) return false;
  }
  return true;
}

TEST(Dfs, TraversesPathGraph) {
  Rng rng(1);
  Graph g = path_graph(5, WeightSpec::constant(3), rng);
  const auto run = run_dfs(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  // On a path the DFS tour walks each edge exactly twice.
  EXPECT_EQ(run.traversal_weight, 2 * g.total_weight());
}

TEST(Dfs, ProducesDfsTreeOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 10), rng);
    const auto run = run_dfs(g, 0, make_uniform_delay(0.2, 1.0),
                             100 + static_cast<std::uint64_t>(trial));
    EXPECT_TRUE(is_dfs_tree(g, run.tree)) << "trial " << trial;
  }
}

TEST(Dfs, Fact62CommunicationLinearInScriptE) {
  // Token + reject + backtrack puts at most ~4 messages on each edge and
  // estimate reports add at most a constant factor more.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = connected_gnp(25, 0.3, WeightSpec::uniform(1, 50), rng);
    const auto run = run_dfs(g, 0, make_exact_delay(),
                             200 + static_cast<std::uint64_t>(trial));
    EXPECT_LE(run.stats.algorithm_cost, 10 * g.total_weight());
    EXPECT_GE(run.stats.algorithm_cost, run.traversal_weight);
  }
}

TEST(Dfs, TraversalWeightCountsTokenTourOnly) {
  // Traversal weight (the center estimate) excludes report-to-root
  // traffic, and the tour crosses each edge 2 or 4 times (visit/reject
  // both directions), so it lies in [2 * w(tree), 4 * script-E].
  Rng rng(4);
  Graph g = connected_gnp(15, 0.4, WeightSpec::uniform(1, 7), rng);
  const auto run = run_dfs(g, 2, make_exact_delay());
  EXPECT_GE(run.traversal_weight, 2 * run.tree.weight(g));
  EXPECT_LE(run.traversal_weight, 4 * g.total_weight());
}

TEST(Dfs, Fact62TimeTracksTraversalWeightUnderExactDelays) {
  // DFS is inherently serial: with exact delays, elapsed time is at
  // least the token's full tour weight and at most a constant multiple
  // (the report-to-root walks).
  Rng rng(7);
  Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto run = run_dfs(g, 0, make_exact_delay());
  EXPECT_GE(run.stats.completion_time,
            static_cast<double>(run.traversal_weight));
  EXPECT_LE(run.stats.completion_time,
            3.0 * static_cast<double>(run.traversal_weight));
}

TEST(Dfs, DeterministicUnderExactDelays) {
  Rng rng(5);
  Graph g = connected_gnp(18, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto a = run_dfs(g, 0, make_exact_delay());
  const auto b = run_dfs(g, 0, make_exact_delay());
  EXPECT_EQ(a.stats.algorithm_messages, b.stats.algorithm_messages);
  EXPECT_EQ(a.traversal_weight, b.traversal_weight);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(a.tree.parent_edge(v), b.tree.parent_edge(v));
  }
}

TEST(Dfs, WorksFromEveryRoot) {
  Rng rng(6);
  Graph g = grid_graph(3, 4, WeightSpec::uniform(1, 5), rng);
  for (NodeId root = 0; root < g.node_count(); ++root) {
    const auto run = run_dfs(g, root, make_exact_delay());
    EXPECT_TRUE(run.tree.spanning());
    EXPECT_EQ(run.tree.root(), root);
  }
}

TEST(Dfs, SingleEdgeGraph) {
  Graph g(2);
  g.add_edge(0, 1, 4);
  const auto run = run_dfs(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  EXPECT_EQ(run.traversal_weight, 8);  // there and back
}

TEST(Dfs, DisconnectedRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(run_dfs(g, 0, make_exact_delay()), PreconditionError);
}

}  // namespace
}  // namespace csca
