#include "conn/hybrid.h"

#include <gtest/gtest.h>

#include "conn/flood.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/traversal.h"

namespace csca {
namespace {

TEST(ConHybrid, ProducesSpanningTreeOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 25));
    Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 20), rng);
    const auto run = run_con_hybrid(g, 0, make_uniform_delay(0.1, 1.0),
                                    500 + static_cast<std::uint64_t>(trial));
    EXPECT_TRUE(run.tree.spanning()) << "trial " << trial;
  }
}

TEST(ConHybrid, MstSideWinsOnLowerBoundFamily) {
  // On G_n, script-E ~ n * X^4 dwarfs n * script-V ~ n^2 * X, so the
  // hybrid must starve the DFS and finish via MST_centr.
  Graph g = lower_bound_family(13, 13);
  const auto run = run_con_hybrid(g, 0, make_exact_delay());
  EXPECT_FALSE(run.dfs_won);
  EXPECT_TRUE(run.tree.spanning());
  // Total cost stays near the n * V regime, far below script-E.
  EXPECT_LT(run.stats.algorithm_cost, g.total_weight());
}

TEST(ConHybrid, DfsSideWinsOnUnitWeightDenseGraph) {
  // On K_n with unit weights, script-E ~ n^2 / 2 < n * script-V ~ n^2,
  // and more importantly DFS finishes its whole tour while MST_centr
  // still pays per-phase broadcasts; DFS should win.
  Rng rng(2);
  Graph g = complete_graph(14, WeightSpec::constant(1), rng);
  const auto run = run_con_hybrid(g, 0, make_exact_delay());
  EXPECT_TRUE(run.dfs_won);
  EXPECT_TRUE(run.tree.spanning());
}

TEST(ConHybrid, Claim73CostWithinConstantOfCheaperAlgorithm) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(6, 22));
    Graph g = connected_gnp(n, 0.35, WeightSpec::uniform(1, 25), rng);

    const auto hybrid = run_con_hybrid(g, 0, make_exact_delay());
    const auto dfs = run_dfs(g, 0, make_exact_delay());
    const auto mst = run_mst_centr(g, 0, make_exact_delay());
    const Weight cheaper =
        std::min(dfs.stats.algorithm_cost, mst.stats.algorithm_cost);
    // The paper argues a factor of four; we allow a small extra slack
    // for the final drain of the suspended protocol's in-flight segment.
    EXPECT_LE(hybrid.stats.algorithm_cost, 5 * cheaper)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(ConHybrid, LowerBoundFamilyCostScalesAsNTimesV) {
  // The Omega(n * script-V) lower bound (Lemma 7.2): communication on
  // G_n grows quadratically in n (V = (n-1) X), not linearly.
  const Weight x = 8;
  std::vector<double> cost_over_nv;
  for (int n : {9, 17, 33}) {
    Graph g = lower_bound_family(n, x);
    const auto run = run_con_hybrid(g, 0, make_exact_delay());
    const double nv = static_cast<double>(n) * static_cast<double>(n - 1) *
                      static_cast<double>(x);
    cost_over_nv.push_back(
        static_cast<double>(run.stats.algorithm_cost) / nv);
  }
  // cost / (n V) stays bounded and bounded away from zero: Theta(n V).
  for (double r : cost_over_nv) {
    EXPECT_GT(r, 0.05);
    EXPECT_LT(r, 16.0);
  }
}

TEST(ConHybrid, CorrectOnSplitLowerBoundVariant) {
  // Figure 8 graphs: same algorithm must stay correct when a bypass edge
  // is replaced by pendant edges (the indistinguishability construction).
  Graph g = lower_bound_family_split(13, 8, 2);
  const auto run = run_con_hybrid(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
}

TEST(ConHybrid, TinyGraphs) {
  Graph g1(1);
  EXPECT_TRUE(run_con_hybrid(g1, 0, make_exact_delay()).tree.spanning());
  Graph g2(2);
  g2.add_edge(0, 1, 3);
  EXPECT_TRUE(run_con_hybrid(g2, 0, make_exact_delay()).tree.spanning());
}

}  // namespace
}  // namespace csca
