// Empirical reproduction of §7.1 (Figures 7-8): the Omega(min{script-E,
// n * script-V}) communication lower bound for connectivity / spanning
// tree. We cannot run "every deterministic algorithm", but we verify the
// two regimes of the bound against our implementations:
//   - edge-scanning algorithms (flood, DFS) pay Theta(script-E) on G_n,
//     which explodes with the bypass weight X^4;
//   - tree-growing algorithms (MST_centr) pay Theta(n * script-V), which
//     grows quadratically in n — exactly Lemma 7.2's sum
//     X * sum_i (n + 1 - 2i) = Theta(n^2 X);
//   - the Figure 8 split construction changes the answer, so any correct
//     algorithm must spend enough to distinguish the two graphs.
#include <gtest/gtest.h>

#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"
#include "graph/generators.h"
#include "graph/measures.h"

namespace csca {
namespace {

TEST(LowerBound, EdgeScannersPayScriptEOnFamily) {
  const int n = 13;
  const Weight x = 10;
  Graph g = lower_bound_family(n, x);
  const Weight script_e = g.total_weight();

  const auto flood = run_flood(g, 0, make_exact_delay());
  const auto dfs = run_dfs(g, 0, make_exact_delay());
  // Both must touch the bypass edges, whose weight dominates script-E.
  EXPECT_GE(flood.stats.algorithm_cost, script_e / 2);
  EXPECT_GE(dfs.stats.algorithm_cost, script_e);
}

TEST(LowerBound, TreeGrowerAvoidsBypassEdges) {
  const int n = 13;
  const Weight x = 10;
  Graph g = lower_bound_family(n, x);
  const auto mst = run_mst_centr(g, 0, make_exact_delay());
  // MST_centr never sends a message over a bypass edge: all its traffic
  // is on the path (weight-x) edges and the one-off probes, so its cost
  // is polynomial in n * x, far below X^4.
  EXPECT_LT(mst.stats.algorithm_cost, x * x * x * x);
  EXPECT_TRUE(mst.tree.spanning());
}

TEST(LowerBound, Lemma72QuadraticGrowthInN) {
  // Fit cost(n) ~ n^2: doubling n should roughly quadruple MST_centr's
  // communication on G_n (V = (n-1) X, so n * V ~ n^2 X).
  const Weight x = 6;
  const auto cost_at = [&](int n) {
    Graph g = lower_bound_family(n, x);
    return static_cast<double>(
        run_mst_centr(g, 0, make_exact_delay()).stats.algorithm_cost);
  };
  const double c16 = cost_at(17);
  const double c32 = cost_at(33);
  const double growth = c32 / c16;
  EXPECT_GT(growth, 2.5);  // clearly super-linear
  EXPECT_LT(growth, 6.5);  // and about quadratic, not cubic
}

TEST(LowerBound, SplitVariantChangesTheCorrectAnswer) {
  // G_n and G'_{n,i} have different vertex sets and different spanning
  // trees; a correct algorithm must produce a spanning tree of whichever
  // graph it actually runs on (Lemma 7.1's distinguishability).
  const int n = 13;
  const Weight x = 6;
  Graph g = lower_bound_family(n, x);
  Graph gs = lower_bound_family_split(n, x, 1);
  const auto t = run_con_hybrid(g, 0, make_exact_delay()).tree;
  const auto ts = run_con_hybrid(gs, 0, make_exact_delay()).tree;
  EXPECT_EQ(t.size(), n);
  EXPECT_EQ(ts.size(), n + 2);
  // The split graph's pendant vertices hang off the heavy edges; any
  // spanning tree of G'_{n,i} must include both pendant edges.
  EXPECT_TRUE(ts.contains(n));
  EXPECT_TRUE(ts.contains(n + 1));
}

TEST(LowerBound, HybridTracksTheMinOfBothRegimes) {
  // min{script-E, nV}: on G_n that's nV; on a light dense graph it's
  // script-E. The hybrid lands within a constant of the min on both.
  {
    Graph g = lower_bound_family(17, 8);
    const auto m = measure(g);
    const auto run = run_con_hybrid(g, 0, make_exact_delay());
    const double min_bound = std::min(
        static_cast<double>(m.comm_E),
        static_cast<double>(m.n) * static_cast<double>(m.comm_V));
    EXPECT_LE(static_cast<double>(run.stats.algorithm_cost),
              8.0 * min_bound);
  }
  {
    Rng rng(9);
    Graph g = complete_graph(12, WeightSpec::constant(2), rng);
    const auto m = measure(g);
    const auto run = run_con_hybrid(g, 0, make_exact_delay());
    const double min_bound = std::min(
        static_cast<double>(m.comm_E),
        static_cast<double>(m.n) * static_cast<double>(m.comm_V));
    EXPECT_LE(static_cast<double>(run.stats.algorithm_cost),
              8.0 * min_bound);
  }
}

}  // namespace
}  // namespace csca
