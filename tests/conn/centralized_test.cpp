#include <gtest/gtest.h>

#include "conn/mst_centr.h"
#include "conn/spt_centr.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

TEST(MstCentr, FindsUniqueMstOnSmallGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(0, 3, 10);
  g.add_edge(0, 2, 10);
  const auto run = run_mst_centr(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.tree.edge_set()));
}

class MstCentrPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstCentrPropertyTest, MatchesKruskalUnderRandomDelays) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 30));
  Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 40), rng);
  const auto run =
      run_mst_centr(g, static_cast<NodeId>(rng.uniform_int(0, n - 1)),
                    make_uniform_delay(0.1, 1.0), GetParam());
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.tree.edge_set()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstCentrPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(MstCentr, Corollary64CommunicationBound) {
  // O(n * script-V): probe/report/add cost O(w(T)) per phase and the
  // join streams cost O(|T| * w(e)) <= O(n * V) overall.
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(24, 0.25, WeightSpec::uniform(1, 25), rng);
    const auto m = measure(g);
    const auto run = run_mst_centr(g, 0, make_exact_delay());
    EXPECT_LE(run.stats.algorithm_cost,
              8 * static_cast<Weight>(m.n) * m.comm_V)
        << "trial " << trial;
  }
}

TEST(MstCentr, TimeBoundedByPhasesTimesTreeDepth) {
  Rng rng(78);
  Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 12), rng);
  const auto run = run_mst_centr(g, 0, make_exact_delay());
  const Weight mst_diam = run.tree.diameter(g);
  // Cor 6.4: O(n * Diam(MST)) time; constant covers the 4 passes/phase.
  EXPECT_LE(run.stats.completion_time,
            8.0 * g.node_count() * static_cast<double>(mst_diam));
}

TEST(SptCentr, DistancesMatchDijkstraOnFixture) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 5);
  g.add_edge(2, 3, 2);
  const auto run = run_spt_centr(g, 0, make_exact_delay());
  EXPECT_EQ(run.dist, (std::vector<Weight>{0, 1, 2, 4}));
  EXPECT_EQ(run.tree.depth(g, 3), 4);
}

class SptCentrPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptCentrPropertyTest, MatchesDijkstraUnderRandomDelays) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 28));
  const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
  Graph g = connected_gnp(n, 0.25, WeightSpec::uniform(1, 30), rng);
  const auto run =
      run_spt_centr(g, src, make_uniform_delay(0.0, 1.0), GetParam());
  const auto sp = dijkstra(g, src);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(run.dist[static_cast<std::size_t>(v)],
              sp.dist[static_cast<std::size_t>(v)]);
    // The tree realizes the distances.
    EXPECT_EQ(run.tree.depth(g, v),
              sp.dist[static_cast<std::size_t>(v)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptCentrPropertyTest,
                         ::testing::Range<std::uint64_t>(20, 40));

TEST(SptCentr, Corollary66CommunicationBound) {
  Rng rng(79);
  Graph g = connected_gnp(22, 0.3, WeightSpec::uniform(1, 20), rng);
  const auto run = run_spt_centr(g, 0, make_exact_delay());
  const Weight w_spt = run.tree.weight(g);
  EXPECT_LE(run.stats.algorithm_cost,
            8 * static_cast<Weight>(g.node_count()) * w_spt);
}

TEST(Centralized, RunsExactlyNMinusOnePhases) {
  // Both full-information algorithms add one vertex per phase (§6.3/6.4).
  Rng rng(81);
  Graph g = connected_gnp(17, 0.3, WeightSpec::uniform(1, 25), rng);
  {
    Network net(
        g,
        [&g](NodeId v) {
          return std::make_unique<MstCentrProcess>(g, v, 0);
        },
        make_exact_delay());
    net.run();
    EXPECT_EQ(net.process_as<MstCentrProcess>(0).phases_run(), 16);
    EXPECT_EQ(net.process_as<MstCentrProcess>(0).tree_size(), 17);
  }
  {
    Network net(
        g,
        [&g](NodeId v) {
          return std::make_unique<SptCentrProcess>(g, v, 0);
        },
        make_exact_delay());
    net.run();
    EXPECT_EQ(net.process_as<SptCentrProcess>(0).phases_run(), 16);
  }
}

TEST(Centralized, EveryTreeMemberHoldsTheIdenticalTreeCopy) {
  // The §6.3 invariant: after termination all vertices agree on the
  // whole tree, not just the root.
  Rng rng(82);
  Graph g = connected_gnp(12, 0.35, WeightSpec::uniform(1, 15), rng);
  Network net(
      g,
      [&g](NodeId v) { return std::make_unique<MstCentrProcess>(g, v, 3); },
      make_uniform_delay(0.1, 1.0), 9);
  net.run();
  const auto& root = net.process_as<MstCentrProcess>(3);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& p = net.process_as<MstCentrProcess>(v);
    EXPECT_TRUE(p.done());
    EXPECT_EQ(p.tree_weight(), root.tree_weight());
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_EQ(p.tree_parent_edge(t), root.tree_parent_edge(t))
          << "copies diverge at node " << v << " entry " << t;
    }
  }
}

TEST(Centralized, SingleNodeAndSingleEdge) {
  Graph g1(1);
  EXPECT_TRUE(run_mst_centr(g1, 0, make_exact_delay()).tree.spanning());
  EXPECT_TRUE(run_spt_centr(g1, 0, make_exact_delay()).tree.spanning());
  Graph g2(2);
  g2.add_edge(0, 1, 6);
  const auto mst = run_mst_centr(g2, 1, make_exact_delay());
  EXPECT_TRUE(mst.tree.spanning());
  const auto spt = run_spt_centr(g2, 1, make_exact_delay());
  EXPECT_EQ(spt.dist, (std::vector<Weight>{6, 0}));
}

TEST(Centralized, DisconnectedRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(run_mst_centr(g, 0, make_exact_delay()),
               PreconditionError);
  EXPECT_THROW(run_spt_centr(g, 0, make_exact_delay()),
               PreconditionError);
}

}  // namespace
}  // namespace csca
