#include "conn/flood.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"

namespace csca {
namespace {

TEST(Flood, BuildsSpanningTreeOnPath) {
  Rng rng(1);
  Graph g = path_graph(6, WeightSpec::constant(2), rng);
  const auto run = run_flood(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  EXPECT_EQ(run.tree.root(), 0);
  EXPECT_EQ(run.tree.weight(g), 10);
}

TEST(Flood, Fact61CommunicationIsLinearInScriptE) {
  // Every vertex sends at most one message per incident edge, so the
  // total cost is at most 2 * script-E.
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = connected_gnp(30, 0.2, WeightSpec::uniform(1, 20), rng);
    const auto run = run_flood(g, 0, make_uniform_delay(0.1, 1.0),
                               1000 + static_cast<std::uint64_t>(trial));
    EXPECT_LE(run.stats.algorithm_cost, 2 * g.total_weight());
    EXPECT_GE(run.stats.algorithm_cost, g.total_weight());
    EXPECT_TRUE(run.tree.spanning());
  }
}

TEST(Flood, Fact61TimeIsWeightedRadiusUnderExactDelays) {
  // With delays pinned at w(e) the wave reaches each vertex exactly at
  // its weighted distance from the initiator.
  Rng rng(3);
  Graph g = connected_gnp(25, 0.15, WeightSpec::uniform(1, 30), rng);
  Network net(
      g, [](NodeId v) { return std::make_unique<FloodProcess>(v, 4); },
      make_exact_delay());
  net.run();
  const auto sp = dijkstra(g, 4);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(net.finish_time(v),
                     static_cast<double>(
                         sp.dist[static_cast<std::size_t>(v)]));
  }
}

TEST(Flood, TreeDepthBoundedByDiameterUnderExactDelays) {
  Rng rng(4);
  Graph g = grid_graph(5, 5, WeightSpec::uniform(1, 9), rng);
  const auto m = measure(g);
  const auto run = run_flood(g, 0, make_exact_delay());
  // First-receipt edges follow shortest-path timing, so each vertex's
  // tree depth equals its weighted distance <= script-D.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_LE(run.tree.depth(g, v), m.comm_D);
  }
}

TEST(Flood, RandomDelaysStillSpanEverySeed) {
  Rng rng(5);
  Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 15), rng);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto run = run_flood(g, 3, make_uniform_delay(0.0, 1.0), seed);
    EXPECT_TRUE(run.tree.spanning()) << "seed " << seed;
  }
}

TEST(Flood, DisconnectedGraphRejected) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(run_flood(g, 0, make_exact_delay()), PreconditionError);
}

TEST(Flood, SingleNodeGraph) {
  Graph g(1);
  const auto run = run_flood(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  EXPECT_EQ(run.stats.algorithm_messages, 0);
}

}  // namespace
}  // namespace csca
