#include "mst/ghs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"

namespace csca {
namespace {

TEST(Ghs, TwoNodes) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  const auto run = run_ghs(g, GhsMode::kSerialScan, make_exact_delay());
  EXPECT_EQ(run.mst_edges, (std::vector<EdgeId>{0}));
}

TEST(Ghs, TriangleDropsHeaviestEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 5);
  const auto run = run_ghs(g, GhsMode::kSerialScan, make_exact_delay());
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

TEST(Ghs, EqualWeightsResolvedByTieBreak) {
  Rng rng(1);
  Graph g = complete_graph(8, WeightSpec::constant(3), rng);
  const auto run = run_ghs(g, GhsMode::kSerialScan,
                           make_uniform_delay(0.1, 1.0), 5);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

class GhsPropertyTest
    : public ::testing::TestWithParam<std::tuple<GhsMode, std::uint64_t>> {
};

TEST_P(GhsPropertyTest, MatchesKruskalOnRandomGraphsAndDelays) {
  const auto [mode, seed] = GetParam();
  Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(2, 32));
  const double p = rng.uniform_real(0.1, 0.5);
  Graph g = connected_gnp(n, p, WeightSpec::uniform(1, 50), rng);
  const auto run = run_ghs(g, mode, make_uniform_delay(0.0, 1.0), seed);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, GhsPropertyTest,
    ::testing::Combine(::testing::Values(GhsMode::kSerialScan,
                                         GhsMode::kParallelGuess),
                       ::testing::Range<std::uint64_t>(1, 41)));

// Larger networks under the reorder-maximizing two-point adversary: the
// regime where GHS's level discipline earns its keep.
class GhsStressTest
    : public ::testing::TestWithParam<std::tuple<GhsMode, std::uint64_t>> {
};

TEST_P(GhsStressTest, LargeGraphsUnderTwoPointAdversary) {
  const auto [mode, seed] = GetParam();
  Rng rng(seed * 31 + 5);
  const int n = static_cast<int>(rng.uniform_int(40, 70));
  Graph g = connected_gnp(n, 0.12, WeightSpec::uniform(1, 200), rng);
  const auto run = run_ghs(g, mode, make_two_point_delay(0.4), seed);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Stress, GhsStressTest,
    ::testing::Combine(::testing::Values(GhsMode::kSerialScan,
                                         GhsMode::kParallelGuess),
                       ::testing::Range<std::uint64_t>(1, 7)));

TEST(Ghs, Lemma81CommunicationBound) {
  // O(script-E + script-V log n), with a generous constant.
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = connected_gnp(25, 0.3, WeightSpec::uniform(1, 30), rng);
    const auto m = measure(g);
    const auto run = run_ghs(g, GhsMode::kSerialScan, make_exact_delay(),
                             10 + static_cast<std::uint64_t>(trial));
    const double bound =
        8.0 * (static_cast<double>(m.comm_E) +
               static_cast<double>(m.comm_V) * std::log2(m.n));
    EXPECT_LE(static_cast<double>(run.stats.algorithm_cost), bound);
  }
}

TEST(Ghs, FastModeAvoidsSerialHeavyEdgeScans) {
  // A fragment chain where the serial scan must walk heavy edges one by
  // one while the parallel-guess mode tests cheap edges first. The fast
  // mode should never be *slower* by more than the guess-retry constant,
  // and on heavy-tailed weights it finishes sooner.
  Graph g(12);
  for (NodeId v = 0; v + 1 < 12; ++v) g.add_edge(v, v + 1, 2);
  // Heavy chords at node 0, all internal to the final fragment: the
  // serial scan must reject them one round-trip at a time, while the
  // parallel-guess mode probes them all at once.
  for (NodeId j = 3; j <= 10; ++j) {
    g.add_edge(0, j, 4000 + j);
  }
  const auto slow =
      run_ghs(g, GhsMode::kSerialScan, make_exact_delay());
  const auto fast =
      run_ghs(g, GhsMode::kParallelGuess, make_exact_delay());
  EXPECT_TRUE(is_minimum_spanning_forest(g, slow.mst_edges));
  EXPECT_TRUE(is_minimum_spanning_forest(g, fast.mst_edges));
  EXPECT_LT(fast.stats.completion_time, slow.stats.completion_time);
}

TEST(Ghs, Lemma81TimeBound) {
  // O(script-E + script-V log n) time under exact delays, with a
  // generous constant for the serial scan chains.
  Rng rng(56);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = connected_gnp(22, 0.3, WeightSpec::uniform(1, 25), rng);
    const auto m = measure(g);
    const auto run = run_ghs(g, GhsMode::kSerialScan, make_exact_delay(),
                             60 + static_cast<std::uint64_t>(trial));
    const double bound =
        8.0 * (static_cast<double>(m.comm_E) +
               static_cast<double>(m.comm_V) * std::log2(m.n));
    EXPECT_LE(run.stats.completion_time, bound) << "trial " << trial;
  }
}

TEST(Ghs, DeterministicReplayUnderTwoPointAdversary) {
  // Identical seeds reproduce the entire execution, ledger included --
  // the property every debugging session depends on.
  Rng rng(57);
  Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 30), rng);
  const auto a = run_ghs(g, GhsMode::kParallelGuess,
                         make_two_point_delay(0.5), 99);
  const auto b = run_ghs(g, GhsMode::kParallelGuess,
                         make_two_point_delay(0.5), 99);
  EXPECT_EQ(a.mst_edges, b.mst_edges);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.stats.algorithm_messages, b.stats.algorithm_messages);
  EXPECT_DOUBLE_EQ(a.stats.completion_time, b.stats.completion_time);
}

TEST(Ghs, FragmentLevelsNeverExceedLogN) {
  // The GHS level invariant: a level-L fragment has >= 2^L vertices, so
  // levels are bounded by log2(n).
  Rng rng(55);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const int n = static_cast<int>(rng.uniform_int(4, 40));
    Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 30), rng);
    Network net(
        g,
        [&g](NodeId v) {
          return std::make_unique<GhsProcess>(g, v,
                                              GhsMode::kSerialScan);
        },
        make_uniform_delay(0.0, 1.0), seed);
    net.run();
    const int max_level = static_cast<int>(std::ceil(std::log2(n)));
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_LE(net.process_as<GhsProcess>(v).level(), max_level)
          << "n=" << n;
    }
  }
}

TEST(Ghs, RejectsTrivialOrDisconnectedInputs) {
  Graph g1(1);
  EXPECT_THROW(run_ghs(g1, GhsMode::kSerialScan, make_exact_delay()),
               PreconditionError);
  Graph g2(3);
  g2.add_edge(0, 1, 1);
  EXPECT_THROW(run_ghs(g2, GhsMode::kSerialScan, make_exact_delay()),
               PreconditionError);
}

TEST(Ghs, LowerBoundFamilyMstIsThePath) {
  Graph g = lower_bound_family(11, 7);
  const auto run = run_ghs(g, GhsMode::kSerialScan,
                           make_uniform_delay(0.2, 1.0), 9);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
  EXPECT_EQ(total_weight(g, run.mst_edges), 10 * 7);
}

}  // namespace
}  // namespace csca
