#include "mst/hybrid.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"

namespace csca {
namespace {

MstDelayFactory exact() {
  return [] { return make_exact_delay(); };
}

TEST(MstHybrid, CorrectMstOnRandomGraphs) {
  Rng rng(1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = static_cast<int>(rng.uniform_int(2, 26));
    Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 40), rng);
    const auto run = run_mst_hybrid(
        g, 0, [seed] { return make_uniform_delay(0.1, 1.0); }, seed);
    EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges))
        << "seed " << seed;
  }
}

TEST(MstHybrid, MstCentrPathWinsOnLowerBoundFamily) {
  // script-E >> n script-V: MST_centr must win the race outright and no
  // GHS stage (which would scan the X^4 bypasses) should run.
  Graph g = lower_bound_family(13, 10);
  const auto run = run_mst_hybrid(g, 0, exact());
  EXPECT_FALSE(run.used_ghs);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
  EXPECT_LT(run.total_cost(), g.total_weight());
}

TEST(MstHybrid, GhsPathWinsOnLightDenseGraph) {
  Rng rng(2);
  Graph g = complete_graph(14, WeightSpec::constant(1), rng);
  const auto run = run_mst_hybrid(g, 0, exact());
  EXPECT_TRUE(run.used_ghs);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

TEST(MstHybrid, Corollary82CommunicationBound) {
  // O(min{script-E + script-V log n, n script-V}).
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(8, 24));
    Graph g = connected_gnp(n, 0.35, WeightSpec::uniform(1, 25), rng);
    const auto m = measure(g);
    const auto run = run_mst_hybrid(
        g, 0, exact(), 70 + static_cast<std::uint64_t>(trial));
    const double ghs_bill =
        static_cast<double>(m.comm_E) +
        static_cast<double>(m.comm_V) * std::log2(m.n);
    const double centr_bill =
        static_cast<double>(m.n) * static_cast<double>(m.comm_V);
    EXPECT_LE(static_cast<double>(run.total_cost()),
              10.0 * std::min(ghs_bill, centr_bill))
        << "n=" << n;
  }
}

TEST(MstHybrid, TrivialGraphs) {
  Graph g1(1);
  const auto run1 = run_mst_hybrid(g1, 0, exact());
  EXPECT_TRUE(run1.mst_edges.empty());
  Graph g2(2);
  g2.add_edge(0, 1, 3);
  const auto run2 = run_mst_hybrid(g2, 0, exact());
  EXPECT_EQ(run2.mst_edges, (std::vector<EdgeId>{0}));
}

}  // namespace
}  // namespace csca
