#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "mst/ghs.h"

namespace csca {
namespace {

TEST(MstFast, Corollary83CommunicationBound) {
  // O(script-E log n log script-V), generous constant.
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 64), rng);
    const auto m = measure(g);
    const auto run = run_ghs(g, GhsMode::kParallelGuess,
                             make_exact_delay(),
                             30 + static_cast<std::uint64_t>(trial));
    const double bound = 8.0 * static_cast<double>(m.comm_E) *
                         std::log2(m.n) *
                         std::log2(static_cast<double>(m.comm_V) + 2);
    EXPECT_LE(static_cast<double>(run.stats.algorithm_cost), bound);
  }
}

TEST(MstFast, TimeShrinksRelativeToSerialOnHeavyTails) {
  // Corollary 8.3's motivation: serial GHS's time can approach its
  // communication on heavy-tailed weights; the parallel-guess search is
  // bounded by fragment-diameter sweeps instead. Compare both modes on a
  // family where heavy edges dominate the serial scan latency.
  Rng rng(2);
  double fast_wins = 0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    Graph g(16);
    for (NodeId v = 0; v + 1 < 16; ++v) {
      g.add_edge(v, v + 1,
                 static_cast<Weight>(rng.uniform_int(1, 3)));
    }
    for (int extra = 0; extra < 10; ++extra) {
      const NodeId a = static_cast<NodeId>(rng.uniform_int(0, 15));
      const NodeId b = static_cast<NodeId>(rng.uniform_int(0, 15));
      if (a == b || g.has_edge(a, b)) continue;
      g.add_edge(a, b, static_cast<Weight>(rng.uniform_int(2000, 9000)));
    }
    const auto slow = run_ghs(g, GhsMode::kSerialScan,
                              make_exact_delay(), 50);
    const auto fast = run_ghs(g, GhsMode::kParallelGuess,
                              make_exact_delay(), 50);
    EXPECT_TRUE(is_minimum_spanning_forest(g, slow.mst_edges));
    EXPECT_TRUE(is_minimum_spanning_forest(g, fast.mst_edges));
    if (fast.stats.completion_time < slow.stats.completion_time) {
      fast_wins += 1;
    }
  }
  EXPECT_GE(fast_wins, trials - 1);  // fast should win essentially always
}

TEST(MstFast, GuessDoublingTerminatesOnUniformWeights) {
  // All weights equal: the first guess already covers everything.
  Rng rng(3);
  Graph g = complete_graph(10, WeightSpec::constant(8), rng);
  const auto run = run_ghs(g, GhsMode::kParallelGuess,
                           make_uniform_delay(0.0, 1.0), 4);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

TEST(MstFast, PowerOfTwoWeights) {
  Rng rng(4);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = connected_gnp(18, 0.3, WeightSpec::power_of_two(0, 10), rng);
    const auto run = run_ghs(g, GhsMode::kParallelGuess,
                             make_uniform_delay(0.1, 1.0), seed);
    EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
  }
}

}  // namespace
}  // namespace csca
