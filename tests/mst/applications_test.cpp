#include "mst/applications.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/mst.h"

namespace csca {
namespace {

TEST(LeaderElection, UniqueAgreedLeaderOnRandomGraphs) {
  Rng rng(1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = static_cast<int>(rng.uniform_int(2, 25));
    Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 30), rng);
    const auto run =
        run_leader_election(g, make_uniform_delay(0.1, 1.0), seed);
    EXPECT_GE(run.leader, 0);
    EXPECT_LT(run.leader, n);
    EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
  }
}

TEST(LeaderElection, LeaderIsCoreEdgeEndpointAndDeterministic) {
  Rng rng(2);
  Graph g = connected_gnp(15, 0.3, WeightSpec::uniform(1, 50), rng);
  const auto a = run_leader_election(g, make_exact_delay());
  const auto b = run_leader_election(g, make_exact_delay());
  EXPECT_EQ(a.leader, b.leader);
  // The leader is an endpoint of some MST edge by construction.
  bool endpoint = false;
  for (EdgeId e : a.mst_edges) {
    if (g.edge(e).u == a.leader || g.edge(e).v == a.leader) {
      endpoint = true;
    }
  }
  EXPECT_TRUE(endpoint);
}

TEST(LeaderElection, SymmetricTwoNodeNetwork) {
  Graph g(2);
  g.add_edge(0, 1, 5);
  const auto run = run_leader_election(g, make_exact_delay());
  EXPECT_EQ(run.leader, 1);  // the higher-id core endpoint
}

TEST(Counting, EveryTopologyCountsItself) {
  Rng rng(3);
  const auto exact = [] { return make_exact_delay(); };
  for (int n : {2, 5, 12, 30}) {
    Graph g = connected_gnp(n, 0.3, WeightSpec::uniform(1, 10), rng);
    const auto run = run_counting(g, exact);
    EXPECT_EQ(run.count, n);
    // The aggregation costs exactly 2 w(MST).
    EXPECT_EQ(run.count_stats.total_cost(), 2 * mst_weight(g));
  }
}

TEST(Counting, RobustUnderAdversarialDelays) {
  Rng rng(4);
  Graph g = connected_gnp(18, 0.25, WeightSpec::uniform(1, 20), rng);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto run = run_counting(
        g, [] { return make_two_point_delay(0.4); }, seed);
    EXPECT_EQ(run.count, 18);
  }
}

}  // namespace
}  // namespace csca
