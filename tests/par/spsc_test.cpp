#include "par/spsc.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace csca {
namespace {

TEST(SpscChannel, EmptyPopsNothing) {
  SpscChannel<int> ch;
  int out = -1;
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscChannel, FifoWithinOneThread) {
  SpscChannel<int> ch;
  for (int i = 0; i < 100; ++i) ch.push(i);
  EXPECT_FALSE(ch.empty());
  for (int i = 0; i < 100; ++i) {
    int out = -1;
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, DrainConsumesInPushOrder) {
  SpscChannel<int> ch;
  for (int i = 0; i < 10; ++i) ch.push(i * i);
  std::vector<int> seen;
  const std::size_t n = ch.drain([&](int&& v) { seen.push_back(v); });
  EXPECT_EQ(n, 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i * i);
}

TEST(SpscChannel, DestructionDropsUnconsumedElements) {
  // No leak under ASan: elements still queued when the channel dies.
  SpscChannel<std::vector<int>> ch;
  ch.push(std::vector<int>(1000, 7));
  ch.push(std::vector<int>(1000, 8));
}

// Fully concurrent producer/consumer: the consumer must observe every
// element exactly once, in push order, with the payload intact. Run
// under TSan by tools/check.sh.
TEST(SpscChannel, ConcurrentPushPopPreservesOrder) {
  constexpr int kCount = 20000;
  SpscChannel<std::pair<int, int>> ch;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ch.push({i, i ^ 0x5a5a});
  });
  int expected = 0;
  while (expected < kCount) {
    std::pair<int, int> out;
    if (!ch.pop(out)) continue;
    ASSERT_EQ(out.first, expected);
    ASSERT_EQ(out.second, expected ^ 0x5a5a);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace csca
