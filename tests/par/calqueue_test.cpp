// Calendar-queue unit tests: the TieredCalQueue must pop in exactly the
// order a comparator-identical binary heap would, on random and
// adversarial streams, and the CalQueue's min_time must stay a sound
// lower bound (GVT soundness rests on it).
#include "par/calqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace csca {
namespace {

struct Ev {
  double t = 0;
  std::uint64_t seq = 0;  // insertion number: makes the order total
};
struct EvTime {
  double operator()(const Ev& e) const { return e.t; }
};
struct EvAfter {
  bool operator()(const Ev& x, const Ev& y) const {
    if (x.t != y.t) return x.t > y.t;
    return x.seq > y.seq;
  }
};

using Tiered = TieredCalQueue<Ev, EvTime, EvAfter>;
// The reference: a plain binary heap under the same comparator.
using RefHeap = std::priority_queue<Ev, std::vector<Ev>, EvAfter>;

void expect_same_pop_order(Tiered& q, RefHeap& ref, const char* label) {
  while (!ref.empty()) {
    ASSERT_FALSE(q.empty()) << label;
    const Ev want = ref.top();
    ref.pop();
    const Ev got = q.pop();
    ASSERT_EQ(got.t, want.t) << label << " seq " << want.seq;
    ASSERT_EQ(got.seq, want.seq) << label;
  }
  EXPECT_TRUE(q.empty()) << label;
}

TEST(TieredCalQueue, MatchesHeapOnRandomStream) {
  Rng rng(11);
  Tiered q;
  RefHeap ref;
  std::uint64_t seq = 0;
  // Interleave pushes and pops so refills happen mid-stream, not just
  // in one final drain.
  for (int round = 0; round < 200; ++round) {
    const int pushes = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int i = 0; i < pushes; ++i) {
      const Ev e{rng.uniform_real(0.0, 50.0), seq++};
      q.push(e);
      ref.push(e);
    }
    const int pops = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < pops && !ref.empty(); ++i) {
      const Ev want = ref.top();
      ref.pop();
      const Ev got = q.pop();
      ASSERT_EQ(got.t, want.t);
      ASSERT_EQ(got.seq, want.seq);
    }
  }
  expect_same_pop_order(q, ref, "random stream");
}

TEST(TieredCalQueue, MatchesHeapWhenAllTimesAreEqual) {
  // The degenerate stream Time Warp produces under zero delays: every
  // item lands in one bucket, order rests entirely on the comparator.
  Tiered q;
  RefHeap ref;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Ev e{0.0, (i * 7919) % 500};  // scrambled insertion order
    q.push(e);
    ref.push(e);
  }
  expect_same_pop_order(q, ref, "all-equal times");
}

TEST(TieredCalQueue, MatchesHeapAcrossFarFutureJumps) {
  // Sparse far-future times force the calendar's whole-year lap scan
  // and its full-scan fallback; pop order must survive both.
  Tiered q;
  RefHeap ref;
  std::uint64_t seq = 0;
  const double times[] = {0.25, 1e6, 3.0, 2e6 + 0.5, 1e6 + 0.125,
                          4.75, 2e6, 1e-3, 5e8, 42.0};
  for (const double t : times) {
    const Ev e{t, seq++};
    q.push(e);
    ref.push(e);
  }
  // Pop a near item, then push below the (now advanced) horizon — the
  // rollback pattern: re-enqueued events land behind events already
  // migrated into the near heap.
  const Ev first = q.pop();
  ASSERT_EQ(first.t, ref.top().t);
  ref.pop();
  const Ev back{0.5, seq++};
  q.push(back);
  ref.push(back);
  expect_same_pop_order(q, ref, "far-future jumps");
}

TEST(TieredCalQueue, MatchesHeapUnderGrowth) {
  // 10k items trigger several bucket-ring doublings.
  Rng rng(7);
  Tiered q;
  RefHeap ref;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const Ev e{rng.uniform_real(0.0, 1000.0), i};
    q.push(e);
    ref.push(e);
  }
  expect_same_pop_order(q, ref, "growth");
}

TEST(TieredCalQueue, MinTimeIsASoundLowerBound) {
  Rng rng(23);
  Tiered q;
  std::vector<Ev> all;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Ev e{rng.uniform_real(0.0, 100.0), i};
    q.push(e);
    all.push_back(e);
  }
  while (!q.empty()) {
    const double bound = q.min_time();
    const Ev e = q.pop();
    // The published minimum never exceeds the true head: a GVT floored
    // by min_time can only under-approximate, never over-commit.
    EXPECT_LE(bound, e.t);
  }
}

TEST(CalQueue, DrainExtractsExactlyTheEarliestDay) {
  CalQueue<Ev, EvTime> cal(1.0, 4);
  cal.push(Ev{3.5, 0});
  cal.push(Ev{0.25, 1});
  cal.push(Ev{0.75, 2});
  cal.push(Ev{7.1, 3});
  ASSERT_EQ(cal.size(), 4u);
  EXPECT_EQ(cal.min_time(), 0.0);
  EXPECT_EQ(cal.min_day_end(), 1.0);

  std::vector<Ev> out;
  cal.drain_min_bucket(out);
  ASSERT_EQ(out.size(), 2u);  // both day-0 items, nothing else
  std::sort(out.begin(), out.end(),
            [](const Ev& a, const Ev& b) { return a.t < b.t; });
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(cal.size(), 2u);
  EXPECT_EQ(cal.min_time(), 3.0);
}

TEST(CalQueue, MinTimeTracksPushesBelowCurrentMinimum) {
  CalQueue<Ev, EvTime> cal;
  cal.push(Ev{9.5, 0});
  EXPECT_EQ(cal.min_time(), 9.0);
  cal.push(Ev{2.25, 1});
  EXPECT_EQ(cal.min_time(), 2.0);  // the min day moved backwards
}

}  // namespace
}  // namespace csca
