// The PR-3 bit-identity contract extended to fault injection: fault
// fates key off the same per-channel send counts as the keyed delay
// draws, so a faulted run on the sharded conservative engine must match
// the keyed sequential Network exactly — at every shard count, under
// every fault class — and multi-run harness results must not depend on
// the worker count.
#include "par/shard_engine.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"
#include "graph/generators.h"
#include "par/run_pool.h"
#include "sim/network.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

void expect_hosts_identical(const ProcessHost& a, const ProcessHost& b,
                            const Graph& g, const std::string& label) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(a.finish_time(v), b.finish_time(v)) << label << " node " << v;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(a.edge_message_count(e), b.edge_message_count(e))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kAlgorithm),
              b.edge_message_count(e, MsgClass::kAlgorithm))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kControl),
              b.edge_message_count(e, MsgClass::kControl))
        << label << " edge " << e;
  }
}

// Same mixed-class TTL storm as the shard-engine suite: enough traffic
// per channel that drop/dup draws and crash/outage windows all bite.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}});
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }

 private:
  std::int64_t ttl_;
};

FaultPlan drop_dup_plan() {
  FaultPlan p;
  p.drop_rate = 0.1;
  p.dup_rate = 0.1;
  p.salt = 0xFA17;
  return p;
}

FaultPlan crash_plan(const Graph& g) {
  FaultPlan p;
  p.crashes.push_back({g.node_count() / 2, 1.5});
  p.crashes.push_back({g.node_count() - 1, 0.0});
  return p;
}

FaultPlan outage_plan(const Graph& g) {
  FaultPlan p;
  for (EdgeId e = 0; e < g.edge_count(); e += 3) {
    p.outages.push_back({e, 0.5, 2.5});
  }
  return p;
}

// Keyed Network vs ShardEngine at 1/2/4 shards: ledger, per-node finish
// times and per-link per-class counts bit-identical for every fault
// class on both random delay schedules.
TEST(FaultDeterminism, ShardEngineMatchesKeyedNetworkUnderAllFaultClasses) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  struct Plan {
    const char* name;
    FaultPlan plan;
  };
  const Plan plans[] = {
      {"dropdup", drop_dup_plan()},
      {"crash", crash_plan(g)},
      {"outage", outage_plan(g)},
  };
  struct Schedule {
    const char* name;
    std::function<std::unique_ptr<DelayModel>()> make;
    std::uint64_t seed;
  };
  const Schedule schedules[] = {
      {"uniform", [] { return make_uniform_delay(0.0, 1.0); }, 42},
      {"twopoint", [] { return make_two_point_delay(0.7); }, 99},
  };
  for (const Plan& p : plans) {
    for (const Schedule& sched : schedules) {
      const FaultInjector inj(p.plan, g, sched.seed);
      Network ref(g, factory, sched.make(), sched.seed);
      ref.set_keyed_delays(true);
      ref.set_faults(&inj);
      const RunStats ref_stats = ref.run();
      EXPECT_GT(ref_stats.events, 0) << p.name;

      for (const int shards : {1, 2, 4}) {
        const std::string label = std::string(p.name) + "/" + sched.name +
                                  "@" + std::to_string(shards) + "shards";
        ShardEngine eng(g, factory, sched.make(), sched.seed,
                        ShardEngine::Options{shards, 0});
        eng.set_faults(&inj);
        const RunStats par_stats = eng.run();
        expect_stats_identical(par_stats, ref_stats, label);
        expect_hosts_identical(eng, ref, g, label);
      }
    }
  }
}

// The ARQ layer rides on ordinary sends and self-schedules, so a
// recovered protocol (flooding behind ARQ over a lossy channel) must
// also replay bit-identically — including every host's retransmission
// schedule — at every shard count.
TEST(FaultDeterminism, ArqRecoveryIsBitIdenticalAcrossShardCounts) {
  Rng rng(9);
  const Graph g = connected_gnp(16, 0.25, WeightSpec::uniform(1, 6), rng);
  const auto factory = arq_factory(
      [](NodeId) { return std::make_unique<Storm>(2); });
  FaultPlan plan = drop_dup_plan();
  const std::uint64_t seed = 17;
  const FaultInjector inj(plan, g, seed);

  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  ref.set_faults(&inj);
  const RunStats ref_stats = ref.run();

  std::int64_t total_retransmits = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      total_retransmits += arq_host(ref, v).retransmit_count(e);
    }
  }
  EXPECT_GT(total_retransmits, 0) << "plan should force retransmissions";

  for (const int shards : {1, 2, 4}) {
    const std::string label = std::to_string(shards) + "shards";
    ShardEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                    ShardEngine::Options{shards, 0});
    eng.set_faults(&inj);
    const RunStats par_stats = eng.run();
    expect_stats_identical(par_stats, ref_stats, label);
    expect_hosts_identical(eng, ref, g, label);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (EdgeId e : g.incident(v)) {
        EXPECT_EQ(arq_host(eng, v).retransmit_times(e),
                  arq_host(ref, v).retransmit_times(e))
            << label << " node " << v << " edge " << e;
      }
    }
  }
}

// Multi-run harness leg: a batch of independent faulted runs mapped on
// the RunPool returns the same ledgers at jobs = 1 and jobs = 4.
TEST(FaultDeterminism, RunPoolJobsCountDoesNotChangeFaultedResults) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 8), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  const FaultPlan plan = drop_dup_plan();
  const auto one_run = [&](std::size_t i) {
    const std::uint64_t seed = 100 + i;
    const FaultInjector inj(plan, g, seed);
    Network net(g, factory, make_uniform_delay(0.0, 1.0), seed);
    net.set_keyed_delays(true);
    net.set_faults(&inj);
    return net.run();
  };
  const std::size_t kRuns = 8;
  std::vector<RunStats> serial;
  for (std::size_t i = 0; i < kRuns; ++i) serial.push_back(one_run(i));
  RunPool pool(4);
  const std::vector<RunStats> pooled = pool.map(kRuns, one_run);
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < kRuns; ++i) {
    expect_stats_identical(pooled[i], serial[i],
                           "run " + std::to_string(i));
  }
}

}  // namespace
}  // namespace csca
