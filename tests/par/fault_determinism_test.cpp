// The PR-3 bit-identity contract extended to fault injection: fault
// fates key off the same per-channel send counts as the keyed delay
// draws, so a faulted run on the sharded conservative engine must match
// the keyed sequential Network exactly — at every shard count, under
// every fault class — and multi-run harness results must not depend on
// the worker count.
#include "par/shard_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"
#include "graph/generators.h"
#include "par/run_pool.h"
#include "sim/network.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

void expect_hosts_identical(const ProcessHost& a, const ProcessHost& b,
                            const Graph& g, const std::string& label) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(a.finish_time(v), b.finish_time(v)) << label << " node " << v;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(a.edge_message_count(e), b.edge_message_count(e))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kAlgorithm),
              b.edge_message_count(e, MsgClass::kAlgorithm))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kControl),
              b.edge_message_count(e, MsgClass::kControl))
        << label << " edge " << e;
  }
}

// Same mixed-class TTL storm as the shard-engine suite: enough traffic
// per channel that drop/dup draws and crash/outage windows all bite.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }

 private:
  std::int64_t ttl_;
};

FaultPlan drop_dup_plan() {
  FaultPlan p;
  p.drop_rate = 0.1;
  p.dup_rate = 0.1;
  p.salt = 0xFA17;
  return p;
}

FaultPlan crash_plan(const Graph& g) {
  FaultPlan p;
  p.crashes.push_back({g.node_count() / 2, 1.5});
  p.crashes.push_back({g.node_count() - 1, 0.0});
  return p;
}

FaultPlan outage_plan(const Graph& g) {
  FaultPlan p;
  for (EdgeId e = 0; e < g.edge_count(); e += 3) {
    p.outages.push_back({e, 0.5, 2.5});
  }
  return p;
}

FaultPlan garble_plan() {
  FaultPlan p;
  p.garble_rate = 0.15;
  p.salt = 0xFA17;
  return p;
}

// Bounded-hop storm immune to payload corruption: each message carries
// its hop budget twice ({ttl, -ttl}), so a single-word garble always
// breaks the pair and the receiver discards the message instead of
// letting a rewritten counter restart the cascade (which would make the
// storm supercritical at any garble rate). The surviving TTLs strictly
// decrease, behaviour stays bounded under every fault mix, and the
// keyed corruption itself must still replay bit-identically.
class ClampedStorm final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {3, -3}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.at(0) + m.at(1) != 0) return;  // garbled in flight
    const std::int64_t ttl =
        std::min<std::int64_t>(std::max<std::int64_t>(m.at(0), 0), 3);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, -(ttl - 1)}}, cls);
    }
  }
};

// Keyed Network vs ShardEngine at 1/2/4 shards: ledger, per-node finish
// times and per-link per-class counts bit-identical for every fault
// class on both random delay schedules.
TEST(FaultDeterminism, ShardEngineMatchesKeyedNetworkUnderAllFaultClasses) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  // ClampedStorm: garbling may rewrite the TTL payload, so the workload
  // clamps it — fates AND corrupted words must then replay identically.
  const auto factory = [](NodeId) {
    return std::make_unique<ClampedStorm>();
  };
  struct Plan {
    const char* name;
    FaultPlan plan;
  };
  const Plan plans[] = {
      {"dropdup", drop_dup_plan()},
      {"crash", crash_plan(g)},
      {"outage", outage_plan(g)},
      {"garble", garble_plan()},
  };
  struct Schedule {
    const char* name;
    std::function<std::unique_ptr<DelayModel>()> make;
    std::uint64_t seed;
  };
  const Schedule schedules[] = {
      {"uniform", [] { return make_uniform_delay(0.0, 1.0); }, 42},
      {"twopoint", [] { return make_two_point_delay(0.7); }, 99},
  };
  for (const Plan& p : plans) {
    for (const Schedule& sched : schedules) {
      const FaultInjector inj(p.plan, g, sched.seed);
      Network ref(g, factory, sched.make(), sched.seed);
      ref.set_keyed_delays(true);
      ref.set_faults(&inj);
      const RunStats ref_stats = ref.run();
      EXPECT_GT(ref_stats.events, 0) << p.name;

      for (const int shards : {1, 2, 4}) {
        const std::string label = std::string(p.name) + "/" + sched.name +
                                  "@" + std::to_string(shards) + "shards";
        ShardEngine eng(g, factory, sched.make(), sched.seed,
                        ShardEngine::Options{shards, 0, {}});
        eng.set_faults(&inj);
        const RunStats par_stats = eng.run();
        expect_stats_identical(par_stats, ref_stats, label);
        expect_hosts_identical(eng, ref, g, label);
      }
    }
  }
}

// The ARQ layer rides on ordinary sends and self-schedules, so a
// recovered protocol (flooding behind ARQ over a lossy channel) must
// also replay bit-identically — including every host's retransmission
// schedule — at every shard count.
TEST(FaultDeterminism, ArqRecoveryIsBitIdenticalAcrossShardCounts) {
  Rng rng(9);
  const Graph g = connected_gnp(16, 0.25, WeightSpec::uniform(1, 6), rng);
  const auto factory = arq_factory(
      [](NodeId) { return std::make_unique<Storm>(2); });
  FaultPlan plan = drop_dup_plan();
  const std::uint64_t seed = 17;
  const FaultInjector inj(plan, g, seed);

  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  ref.set_faults(&inj);
  const RunStats ref_stats = ref.run();

  std::int64_t total_retransmits = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (EdgeId e : g.incident(v)) {
      total_retransmits += arq_host(ref, v).retransmit_count(e);
    }
  }
  EXPECT_GT(total_retransmits, 0) << "plan should force retransmissions";

  for (const int shards : {1, 2, 4}) {
    const std::string label = std::to_string(shards) + "shards";
    ShardEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                    ShardEngine::Options{shards, 0, {}});
    eng.set_faults(&inj);
    const RunStats par_stats = eng.run();
    expect_stats_identical(par_stats, ref_stats, label);
    expect_hosts_identical(eng, ref, g, label);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (EdgeId e : g.incident(v)) {
        EXPECT_EQ(arq_host(eng, v).retransmit_times(e),
                  arq_host(ref, v).retransmit_times(e))
            << label << " node " << v << " edge " << e;
      }
    }
  }
}

// The pulse domain joins the determinism contract: SyncEngine under
// every builtin fault-plan shape, driven through the RunPool at jobs 1
// and 4 — per-plan output digests (the Bellman-Ford distances) and full
// ledgers must be identical across job counts and across reruns.
TEST(FaultDeterminism, SyncEngineFaultPlansAreJobCountInvariant) {
  Rng rng(19);
  const Graph g = connected_gnp(18, 0.25, WeightSpec::uniform(1, 5), rng);
  std::vector<Weight> orig_w;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    orig_w.push_back(g.weight(e));
  }
  const auto factory = [&orig_w](NodeId v) {
    return std::make_unique<InSynchBellmanFord>(v, 0, &orig_w);
  };
  const std::vector<std::string> plan_names = {"none", "drop1pct",
                                               "crash_one", "link_flap"};

  struct Cell {
    std::string digest;
    RunStats stats;
  };
  const auto one_cell = [&](std::size_t i) {
    const std::string& name = plan_names[i];
    const FaultPlan plan = make_builtin_fault_plan(name, g);
    const FaultInjector inj(plan, g, 1000 + i);
    SyncEngine eng(g, factory);
    eng.set_faults(&inj);
    Cell cell;
    cell.stats = eng.run();
    // The schedule-invariant output: final distances per node (-1 where
    // the faulted wave never arrived — degradation is fine, but it must
    // be the SAME degradation every time).
    std::ostringstream digest;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      digest << eng.process_as<InSynchBellmanFord>(v).dist() << ",";
    }
    cell.digest = digest.str();
    return cell;
  };

  std::vector<Cell> serial;
  for (std::size_t i = 0; i < plan_names.size(); ++i) {
    serial.push_back(one_cell(i));
  }
  // The fault-free reference reaches everyone; at least one faulted
  // plan visibly degrades or re-routes nothing (either is fine) — what
  // matters below is bit-identity, not the amount of damage.
  EXPECT_EQ(serial[0].digest.find("-1"), std::string::npos);

  for (const int jobs : {1, 4}) {
    RunPool pool(jobs);
    const std::vector<Cell> pooled = pool.map(plan_names.size(), one_cell);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const std::string label =
          plan_names[i] + "@jobs" + std::to_string(jobs);
      EXPECT_EQ(pooled[i].digest, serial[i].digest) << label;
      expect_stats_identical(pooled[i].stats, serial[i].stats, label);
    }
  }
}

// Multi-run harness leg: a batch of independent faulted runs mapped on
// the RunPool returns the same ledgers at jobs = 1 and jobs = 4.
TEST(FaultDeterminism, RunPoolJobsCountDoesNotChangeFaultedResults) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 8), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  const FaultPlan plan = drop_dup_plan();
  const auto one_run = [&](std::size_t i) {
    const std::uint64_t seed = 100 + i;
    const FaultInjector inj(plan, g, seed);
    Network net(g, factory, make_uniform_delay(0.0, 1.0), seed);
    net.set_keyed_delays(true);
    net.set_faults(&inj);
    return net.run();
  };
  const std::size_t kRuns = 8;
  std::vector<RunStats> serial;
  for (std::size_t i = 0; i < kRuns; ++i) serial.push_back(one_run(i));
  RunPool pool(4);
  const std::vector<RunStats> pooled = pool.map(kRuns, one_run);
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < kRuns; ++i) {
    expect_stats_identical(pooled[i], serial[i],
                           "run " + std::to_string(i));
  }
}

}  // namespace
}  // namespace csca
