#include "par/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace csca {
namespace {

void expect_valid(const ShardPartition& p, const Graph& g, int k) {
  EXPECT_GE(p.shards, 1);
  EXPECT_LE(p.shards, std::max(1, std::min(k, g.node_count())));
  ASSERT_EQ(p.shard_of.size(), static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(p.shard(v), 0);
    EXPECT_LT(p.shard(v), p.shards);
  }
  const auto sizes = p.sizes();
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    EXPECT_GT(sizes[s], 0) << "shard " << s << " is empty";
  }
}

TEST(ShardPartition, RejectsNonPositiveK) {
  Rng rng(1);
  const Graph g = path_graph(4, WeightSpec::constant(1), rng);
  EXPECT_THROW(partition_shards(g, 0), std::exception);
}

TEST(ShardPartition, SingleShardTakesEverything) {
  Rng rng(2);
  const Graph g = connected_gnp(12, 0.4, WeightSpec::uniform(1, 9), rng);
  const ShardPartition p = partition_shards(g, 1);
  expect_valid(p, g, 1);
  EXPECT_EQ(p.shards, 1);
}

TEST(ShardPartition, KLargerThanNodeCountCapsAtN) {
  Rng rng(3);
  const Graph g = path_graph(5, WeightSpec::constant(2), rng);
  const ShardPartition p = partition_shards(g, 64);
  expect_valid(p, g, 64);
  EXPECT_EQ(p.shards, 5);
}

TEST(ShardPartition, BalancedToCeilTarget) {
  Rng rng(4);
  const Graph g = grid_graph(6, 6, WeightSpec::uniform(1, 8), rng);
  for (int k : {2, 3, 4, 5}) {
    const ShardPartition p = partition_shards(g, k);
    expect_valid(p, g, k);
    const int target = (g.node_count() + k - 1) / k;
    for (int size : p.sizes()) EXPECT_LE(size, target);
  }
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  Rng rng(5);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 12), rng);
  const ShardPartition a = partition_shards(g, 4);
  const ShardPartition b = partition_shards(g, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
}

TEST(ShardPartition, DisconnectedGraphStaysWithinK) {
  // Many components, few shards: the grower must reseed within a shard
  // instead of opening a new shard per component.
  Graph g(9);  // 4 isolated pairs + 1 singleton, no edges between them
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(6, 7, 1);
  const ShardPartition p = partition_shards(g, 2);
  expect_valid(p, g, 2);
  EXPECT_LE(p.shards, 2);
}

TEST(ShardPartition, HeavyEdgesPreferentiallyInternal) {
  // A dumbbell: two heavy cliques joined by a light bridge. At k=2 the
  // weighted-greedy growth should cut the bridge, not a clique.
  Graph g(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v, 100);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) g.add_edge(u, v, 100);
  }
  g.add_edge(3, 4, 1);  // light bridge
  const ShardPartition p = partition_shards(g, 2);
  expect_valid(p, g, 2);
  ASSERT_EQ(p.shards, 2);
  EXPECT_EQ(p.shard(0), p.shard(1));
  EXPECT_EQ(p.shard(0), p.shard(2));
  EXPECT_EQ(p.shard(0), p.shard(3));
  EXPECT_EQ(p.shard(4), p.shard(5));
  EXPECT_EQ(p.shard(4), p.shard(6));
  EXPECT_EQ(p.shard(4), p.shard(7));
  EXPECT_NE(p.shard(0), p.shard(4));
}

// ---- delegate (hub) partitioning ------------------------------------

// `centers` star centers joined in a chain, each with `leaves` leaves.
// Leaf ids: centers + c*leaves + l for center c.
Graph hub_chain(int centers, int leaves) {
  Graph g(centers + centers * leaves);
  for (NodeId c = 0; c + 1 < centers; ++c) g.add_edge(c, c + 1, 1);
  NodeId next = centers;
  for (NodeId c = 0; c < centers; ++c) {
    for (int l = 0; l < leaves; ++l) g.add_edge(c, next++, 1);
  }
  return g;
}

TEST(ShardPartition, HubsDetectedAndSpreadRoundRobin) {
  // Four degree-71/72 centers clear the 64-degree floor; round-robin
  // assignment must put two on each of two shards instead of letting
  // the greedy growth stack all four heavy mailboxes on one worker.
  const Graph g = hub_chain(4, 70);
  const ShardPartition p = partition_shards(g, 2);
  expect_valid(p, g, 2);
  ASSERT_EQ(p.hubs.size(), 4u);
  std::vector<NodeId> hubs = p.hubs;
  std::sort(hubs.begin(), hubs.end());
  EXPECT_EQ(hubs, (std::vector<NodeId>{0, 1, 2, 3}));
  int per_shard[2] = {0, 0};
  for (const NodeId h : p.hubs) ++per_shard[p.shard(h)];
  EXPECT_EQ(per_shard[0], 2);
  EXPECT_EQ(per_shard[1], 2);
}

TEST(ShardPartition, LeavesClusterWithTheirHub) {
  const Graph g = hub_chain(4, 70);
  const ShardPartition p = partition_shards(g, 2);
  int co_located = 0;
  for (NodeId c = 0; c < 4; ++c) {
    for (int l = 0; l < 70; ++l) {
      const NodeId leaf = 4 + c * 70 + l;
      if (p.shard(leaf) == p.shard(c)) ++co_located;
    }
  }
  // The per-shard growth is seeded from that shard's hubs'
  // neighborhoods, so leaves overwhelmingly follow their center.
  EXPECT_GE(co_located, 4 * 70 * 9 / 10);
}

TEST(ShardPartition, HubFreeGraphsTakeTheLegacyPath) {
  // Regular small graphs stay under the 64-degree floor: the default
  // options must reproduce the historical greedy partition exactly
  // (the layout every pinned sharded golden was recorded against).
  Rng rng(4);
  const Graph g = grid_graph(6, 6, WeightSpec::uniform(1, 8), rng);
  for (int k : {2, 4}) {
    const ShardPartition with_detection = partition_shards(g, k);
    PartitionOptions off;
    off.hub_factor = 0;
    const ShardPartition legacy = partition_shards(g, k, off);
    EXPECT_EQ(with_detection.shard_of, legacy.shard_of) << k;
    EXPECT_TRUE(with_detection.hubs.empty()) << k;
  }
}

TEST(ShardPartition, HubDetectionDisabledByOptions) {
  const Graph g = hub_chain(4, 70);
  PartitionOptions off;
  off.hub_factor = 0;
  const ShardPartition p = partition_shards(g, 2, off);
  expect_valid(p, g, 2);
  EXPECT_TRUE(p.hubs.empty());
}

TEST(ShardPartition, SingleShardNeverDelegates) {
  const Graph g = hub_chain(4, 70);
  const ShardPartition p = partition_shards(g, 1);
  expect_valid(p, g, 1);
  EXPECT_EQ(p.shards, 1);
  EXPECT_TRUE(p.hubs.empty());
}

}  // namespace
}  // namespace csca
