#include "par/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace csca {
namespace {

void expect_valid(const ShardPartition& p, const Graph& g, int k) {
  EXPECT_GE(p.shards, 1);
  EXPECT_LE(p.shards, std::max(1, std::min(k, g.node_count())));
  ASSERT_EQ(p.shard_of.size(), static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(p.shard(v), 0);
    EXPECT_LT(p.shard(v), p.shards);
  }
  const auto sizes = p.sizes();
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    EXPECT_GT(sizes[s], 0) << "shard " << s << " is empty";
  }
}

TEST(ShardPartition, RejectsNonPositiveK) {
  Rng rng(1);
  const Graph g = path_graph(4, WeightSpec::constant(1), rng);
  EXPECT_THROW(partition_shards(g, 0), std::exception);
}

TEST(ShardPartition, SingleShardTakesEverything) {
  Rng rng(2);
  const Graph g = connected_gnp(12, 0.4, WeightSpec::uniform(1, 9), rng);
  const ShardPartition p = partition_shards(g, 1);
  expect_valid(p, g, 1);
  EXPECT_EQ(p.shards, 1);
}

TEST(ShardPartition, KLargerThanNodeCountCapsAtN) {
  Rng rng(3);
  const Graph g = path_graph(5, WeightSpec::constant(2), rng);
  const ShardPartition p = partition_shards(g, 64);
  expect_valid(p, g, 64);
  EXPECT_EQ(p.shards, 5);
}

TEST(ShardPartition, BalancedToCeilTarget) {
  Rng rng(4);
  const Graph g = grid_graph(6, 6, WeightSpec::uniform(1, 8), rng);
  for (int k : {2, 3, 4, 5}) {
    const ShardPartition p = partition_shards(g, k);
    expect_valid(p, g, k);
    const int target = (g.node_count() + k - 1) / k;
    for (int size : p.sizes()) EXPECT_LE(size, target);
  }
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  Rng rng(5);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 12), rng);
  const ShardPartition a = partition_shards(g, 4);
  const ShardPartition b = partition_shards(g, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
}

TEST(ShardPartition, DisconnectedGraphStaysWithinK) {
  // Many components, few shards: the grower must reseed within a shard
  // instead of opening a new shard per component.
  Graph g(9);  // 4 isolated pairs + 1 singleton, no edges between them
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(6, 7, 1);
  const ShardPartition p = partition_shards(g, 2);
  expect_valid(p, g, 2);
  EXPECT_LE(p.shards, 2);
}

TEST(ShardPartition, HeavyEdgesPreferentiallyInternal) {
  // A dumbbell: two heavy cliques joined by a light bridge. At k=2 the
  // weighted-greedy growth should cut the bridge, not a clique.
  Graph g(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v, 100);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) g.add_edge(u, v, 100);
  }
  g.add_edge(3, 4, 1);  // light bridge
  const ShardPartition p = partition_shards(g, 2);
  expect_valid(p, g, 2);
  ASSERT_EQ(p.shards, 2);
  EXPECT_EQ(p.shard(0), p.shard(1));
  EXPECT_EQ(p.shard(0), p.shard(2));
  EXPECT_EQ(p.shard(0), p.shard(3));
  EXPECT_EQ(p.shard(4), p.shard(5));
  EXPECT_EQ(p.shard(4), p.shard(6));
  EXPECT_EQ(p.shard(4), p.shard(7));
  EXPECT_NE(p.shard(0), p.shard(4));
}

}  // namespace
}  // namespace csca
