// Pooled node state + coalesced mailboxes: bit-identity matrix.
//
// The million-node capacity work (docs/scale.md) changed memory layout
// only — PooledStore arenas instead of per-node unique_ptr factories,
// and per-destination cross-shard batches instead of per-message SPSC
// nodes. Nothing here may move a single event: every engine must
// produce a bit-identical ledger with pooled vs factory state, the
// sharded engine must match its keyed sequential reference at every
// shard count, and a RunPool sweep of sharded runs must not depend on
// the worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "par/run_pool.h"
#include "par/shard_engine.h"
#include "sim/network.h"
#include "sim/sync_engine.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

// The golden-ledger storm: every delivery with ttl > 0 re-broadcasts on
// all incident edges, alternating the billing class.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }

 private:
  std::int64_t ttl_;
};

class SyncStorm final : public SyncProcess {
 public:
  explicit SyncStorm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(SyncContext& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(SyncContext& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1}}, MsgClass::kAlgorithm);
    }
  }

 private:
  std::int64_t ttl_;
};

Graph storm_graph() {
  Rng rng(7);
  return grid_graph(8, 8, WeightSpec::uniform(1, 16), rng);
}

constexpr std::int64_t kTtl = 5;
constexpr std::uint64_t kSeed = 1234;

Network::ProcessStore pooled_storms(const Graph& g) {
  return Network::ProcessStore::pooled<Storm>(
      g.node_count(), [](NodeId) { return Storm(kTtl); });
}

TEST(PooledStore, NetworkPooledMatchesFactoryBitForBit) {
  const Graph g = storm_graph();
  Network a(
      g, [](NodeId) { return std::make_unique<Storm>(kTtl); },
      make_uniform_delay(0.1, 0.9), kSeed);
  Network b(g, pooled_storms(g), make_uniform_delay(0.1, 0.9), kSeed);
  EXPECT_EQ(b.process_state_bytes(),
            static_cast<std::size_t>(g.node_count()) * sizeof(Storm));
  expect_stats_identical(a.run(), b.run(), "network pooled-vs-factory");
}

TEST(PooledStore, SyncEnginePooledMatchesFactoryBitForBit) {
  const Graph g = storm_graph();
  SyncEngine a(g, [](NodeId) { return std::make_unique<SyncStorm>(kTtl); });
  SyncEngine b(g, SyncEngine::ProcessStore::pooled<SyncStorm>(
                      g.node_count(), [](NodeId) { return SyncStorm(kTtl); }));
  EXPECT_EQ(b.process_state_bytes(),
            static_cast<std::size_t>(g.node_count()) * sizeof(SyncStorm));
  expect_stats_identical(a.run(), b.run(), "sync pooled-vs-factory");
}

// The sharded engine with a pooled store must match the keyed
// sequential Network at 1, 2 and 4 shards — the same contract the
// factory path pins in shard_engine_test.cpp, now through the
// zero-allocation entry point and the coalesced mailboxes.
TEST(PooledStore, ShardEnginePooledMatchesKeyedSequentialAcrossShards) {
  const Graph g = storm_graph();
  Network ref(
      g, [](NodeId) { return std::make_unique<Storm>(kTtl); },
      make_uniform_delay(0.1, 0.9), kSeed);
  ref.set_keyed_delays(true);
  const RunStats seq = ref.run();
  for (const int shards : {1, 2, 4}) {
    ShardEngine eng(g, pooled_storms(g), make_uniform_delay(0.1, 0.9),
                    kSeed, ShardEngine::Options{shards, 0, {}});
    EXPECT_EQ(eng.process_state_bytes(),
              static_cast<std::size_t>(g.node_count()) * sizeof(Storm));
    expect_stats_identical(seq, eng.run(),
                           "pooled@" + std::to_string(shards) + "shards");
  }
}

// Mailbox-coalescing determinism across the multi-run harness: a sweep
// of sharded runs must produce the same per-run ledgers at 1 and 4
// RunPool workers. Batched channel traffic keeps per-channel FIFO
// order, so worker scheduling may not leak into any run's result.
TEST(PooledStore, ShardedSweepIdenticalAcrossRunPoolJobs) {
  const Graph g = storm_graph();
  const auto one_run = [&](std::size_t i) {
    ShardEngine eng(g, pooled_storms(g), make_uniform_delay(0.1, 0.9),
                    kSeed + i, ShardEngine::Options{2, 0, {}});
    return eng.run();
  };
  const std::size_t runs = 6;
  RunPool pool1(1);
  RunPool pool4(4);
  const std::vector<RunStats> a = pool1.map(runs, one_run);
  const std::vector<RunStats> b = pool4.map(runs, one_run);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < runs; ++i) {
    expect_stats_identical(a[i], b[i],
                           "jobs1-vs-jobs4 run " + std::to_string(i));
  }
}

}  // namespace
}  // namespace csca
