// GVT and fossil-collection property tests, plus the controller budget
// invariants (B1–B3) re-checked at every GVT commit point: commit-time
// billing means the committed ledger is a real prefix of the sequential
// run at every barrier, so the §5 budget bounds must hold not just at
// the end but at every commit boundary along the way.
#include "par/timewarp_engine.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "check/budget_check.h"
#include "control/controller.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, ctx.self()}}, cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<Storm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const Storm&>(saved);
  }

 private:
  std::int64_t ttl_;
};

// Every sample the engine publishes, plus the committed events observed
// between samples, collected for offline property checks.
struct GvtTrace {
  std::vector<TimeWarpEngine::GvtSample> samples;
  std::vector<std::vector<double>> commit_times;  // per round, in order
};

GvtTrace run_traced(TimeWarpEngine& eng) {
  GvtTrace trace;
  trace.commit_times.emplace_back();
  eng.set_commit_hook([&trace](const TimeWarpEngine::CommittedEvent& ev) {
    trace.commit_times.back().push_back(ev.t);
  });
  eng.set_gvt_hook([&trace](const TimeWarpEngine::GvtSample& s) {
    trace.samples.push_back(s);
    trace.commit_times.emplace_back();
  });
  eng.run();
  return trace;
}

void check_gvt_properties(const GvtTrace& trace, const TimeWarpEngine& eng) {
  ASSERT_FALSE(trace.samples.empty());
  double prev_gvt = 0.0;
  std::int64_t committed_so_far = 0;
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    const auto& s = trace.samples[i];
    const std::string label = "round " + std::to_string(s.round);
    // GVT is monotone and never exceeds anything still pending or in
    // flight (its own definition, asserted from the outside).
    EXPECT_GE(s.gvt, prev_gvt) << label;
    EXPECT_LE(s.gvt, s.min_pending) << label;
    EXPECT_LE(s.gvt, s.min_in_flight) << label;
    // Fossil collection never frees state at or above GVT.
    if (s.max_freed_time != -kInf) {
      EXPECT_LT(s.max_freed_time, s.gvt) << label;
    }
    // Events committed this round lie in [previous GVT, new GVT): below
    // the new floor (commitment condition) but not below the previous
    // one (they would have committed earlier).
    for (const double t : trace.commit_times[i]) {
      EXPECT_GE(t, prev_gvt) << label;
      EXPECT_LT(t, s.gvt) << label;
    }
    committed_so_far +=
        static_cast<std::int64_t>(trace.commit_times[i].size());
    EXPECT_EQ(s.committed_events, committed_so_far) << label;
    prev_gvt = s.gvt;
  }
  // Termination: GVT reached +inf and the commit hook saw exactly the
  // committed ledger.
  EXPECT_EQ(trace.samples.back().gvt, kInf);
  EXPECT_EQ(eng.gvt(), kInf);
  EXPECT_EQ(committed_so_far, eng.committed_events());
  // Nothing observed after the final sample.
  EXPECT_TRUE(trace.commit_times.back().empty());
}

TEST(Gvt, PropertiesHoldOnAQuietRun) {
  Rng rng(3);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 9), rng);
  TimeWarpEngine eng(
      g, [](NodeId) { return std::make_unique<Storm>(3); },
      make_uniform_delay(0.0, 1.0), 42, TimeWarpEngine::Options{4, 0, 256, {}});
  const GvtTrace trace = run_traced(eng);
  check_gvt_properties(trace, eng);
}

TEST(Gvt, PropertiesHoldUnderForcedRollbacks) {
  Rng rng(3);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 9), rng);
  TimeWarpEngine eng(
      g, [](NodeId) { return std::make_unique<Storm>(4); },
      make_uniform_delay(0.0, 1.0), 42, TimeWarpEngine::Options{4, 0, 16, {}});
  const int k = eng.shard_count();
  eng.set_pace_hook([k](int shard, std::int64_t round) {
    if (round <= 30 && shard == static_cast<int>((round / 2) % k)) return 0;
    return -1;
  });
  const GvtTrace trace = run_traced(eng);
  EXPECT_GT(eng.rollbacks(), 0) << "pacing should force rollback traffic";
  check_gvt_properties(trace, eng);
}

// A diffusing flood with deep-copyable state, so the §5 controller
// hosts wrapping it can snapshot themselves for rollback.
class CloneableFlood final : public DiffusingProcess {
 public:
  void on_start(DiffusingContext& ctx) override {
    seen_ = true;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {3}}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }
  void on_message(DiffusingContext& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    ++deliveries_;
    if (!seen_) {
      seen_ = true;
      ctx.finish();
    }
    if (ttl <= 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1}}, MsgClass::kAlgorithm);
    }
  }
  std::unique_ptr<DiffusingProcess> clone_state() const override {
    return std::make_unique<CloneableFlood>(*this);
  }

 private:
  bool seen_ = false;
  std::int64_t deliveries_ = 0;
};

// The §5 budget invariants at every commit point: at each GVT round the
// engine's ledger is exactly a committed sequential prefix, so B1
// (total billed cost never exceeds permits issued), B2 (control cost
// never exceeds permits issued) and B3 (overrunning the threshold
// without the exhaustion signal) must hold with the live root view —
// speculative issuance can only over-approximate the committed prefix's
// issuance, never undercut it.
TEST(Gvt, ControllerBudgetHoldsAtEveryCommitPoint) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 5), rng);
  const NodeId initiator = 0;
  const ControllerConfig cfg(/*threshold=*/1 << 20, /*aggregate=*/true);
  const DiffusingFactory dfac = [](NodeId) {
    return std::make_unique<CloneableFlood>();
  };
  TimeWarpEngine eng(g, controller_host_factory(g, dfac, initiator, cfg),
                     make_uniform_delay(0.0, 1.0), 11,
                     TimeWarpEngine::Options{4, 0, 64, {}});
  TimeWarpEngine* ep = &eng;
  int checked_rounds = 0;
  eng.set_gvt_hook([ep, &cfg, &checked_rounds,
                    initiator](const TimeWarpEngine::GvtSample& s) {
    const ControllerView view = controller_view(ep->process(initiator));
    ControlledRun prefix;
    prefix.stats = ep->stats();
    prefix.exhausted = view.exhausted;
    prefix.permits_issued = view.permits_issued;
    const auto violations = check_controller_budget(prefix, cfg);
    for (const std::string& v : violations) {
      ADD_FAILURE() << "round " << s.round << ": " << v;
    }
    ++checked_rounds;
  });
  eng.run();
  EXPECT_GT(checked_rounds, 0);
  EXPECT_GT(eng.stats().events, 0);

  const ControllerView final_view = controller_view(eng.process(initiator));
  EXPECT_FALSE(final_view.exhausted);
  // The final committed ledger also passes as a complete run.
  ControlledRun final_run;
  final_run.stats = eng.stats();
  final_run.exhausted = final_view.exhausted;
  final_run.permits_issued = final_view.permits_issued;
  EXPECT_TRUE(check_controller_budget(final_run, cfg).empty());
}

// Under a threshold tight enough to exhaust the root, B2 (control cost
// within permits) is a *metered*-run property — the permit traffic
// itself is only covered by issuance when a ControlMeter feeds it back
// into admission (see controller_test.cpp, which applies
// check_controller_budget exclusively to metered runs). A shared meter
// is external to the rolled-back host state, so the optimistic backend
// hosts the unmetered stack; what must hold at every commit point here
// are the unmetered invariants: issuance never crosses the threshold
// (the root's admission rule is a local check, sound even on
// mis-speculated histories), committed algorithm spend never exceeds
// the live root's issuance (live issuance can only over-approximate the
// committed prefix's), and exhaustion surfaces by the end — with the
// whole exhausted run still bit-identical to the keyed sequential one.
TEST(Gvt, ControllerBudgetHoldsWhenTheRootExhausts) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 5), rng);
  const NodeId initiator = 0;
  const ControllerConfig cfg(/*threshold=*/40, /*aggregate=*/true);
  const DiffusingFactory dfac = [](NodeId) {
    return std::make_unique<CloneableFlood>();
  };
  const std::uint64_t seed = 11;

  Network ref(g, controller_host_factory(g, dfac, initiator, cfg),
              make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();
  const ControllerView ref_view = controller_view(ref.process(initiator));
  EXPECT_TRUE(ref_view.exhausted);

  TimeWarpEngine eng(g, controller_host_factory(g, dfac, initiator, cfg),
                     make_uniform_delay(0.0, 1.0), seed,
                     TimeWarpEngine::Options{4, 0, 64, {}});
  TimeWarpEngine* ep = &eng;
  int checked_rounds = 0;
  eng.set_gvt_hook([ep, &cfg, &checked_rounds,
                    initiator](const TimeWarpEngine::GvtSample& s) {
    const ControllerView view = controller_view(ep->process(initiator));
    const std::string label = "round " + std::to_string(s.round);
    EXPECT_LE(view.permits_issued, cfg.threshold) << label;
    EXPECT_LE(ep->stats().algorithm_cost, view.permits_issued) << label;
    // B3 with the committed prefix: no silent threshold overrun.
    if (!view.exhausted) {
      EXPECT_LE(view.permits_issued, cfg.threshold) << label;
    }
    ++checked_rounds;
  });
  const RunStats par_stats = eng.run();
  EXPECT_GT(checked_rounds, 0);

  const ControllerView view = controller_view(eng.process(initiator));
  EXPECT_TRUE(view.exhausted);
  EXPECT_LE(view.permits_issued, cfg.threshold);
  EXPECT_EQ(view.permits_issued, ref_view.permits_issued);
  EXPECT_EQ(par_stats.algorithm_messages, ref_stats.algorithm_messages);
  EXPECT_EQ(par_stats.control_messages, ref_stats.control_messages);
  EXPECT_EQ(par_stats.algorithm_cost, ref_stats.algorithm_cost);
  EXPECT_EQ(par_stats.control_cost, ref_stats.control_cost);
  EXPECT_EQ(par_stats.events, ref_stats.events);
  EXPECT_EQ(par_stats.completion_time, ref_stats.completion_time);
}

// The controlled run on the optimistic backend commits the same ledger
// as on the keyed sequential Network — the §5 stack (permit queues,
// request aggregation, grant routing) is itself rollback-clean.
TEST(Gvt, ControlledRunIsBitIdenticalToKeyedNetwork) {
  Rng rng(5);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 5), rng);
  const NodeId initiator = 0;
  const ControllerConfig cfg(1 << 20, /*aggregate=*/true);
  const DiffusingFactory dfac = [](NodeId) {
    return std::make_unique<CloneableFlood>();
  };
  const std::uint64_t seed = 11;

  Network ref(g, controller_host_factory(g, dfac, initiator, cfg),
              make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();
  const ControllerView ref_view = controller_view(ref.process(initiator));

  for (const int shards : {1, 2, 4}) {
    TimeWarpEngine eng(g, controller_host_factory(g, dfac, initiator, cfg),
                       make_uniform_delay(0.0, 1.0), seed,
                       TimeWarpEngine::Options{shards, 0, 64, {}});
    const RunStats par = eng.run();
    const std::string label = std::to_string(shards) + "shards";
    EXPECT_EQ(par.algorithm_messages, ref_stats.algorithm_messages) << label;
    EXPECT_EQ(par.control_messages, ref_stats.control_messages) << label;
    EXPECT_EQ(par.algorithm_cost, ref_stats.algorithm_cost) << label;
    EXPECT_EQ(par.control_cost, ref_stats.control_cost) << label;
    EXPECT_EQ(par.events, ref_stats.events) << label;
    EXPECT_EQ(par.completion_time, ref_stats.completion_time) << label;
    const ControllerView view = controller_view(eng.process(initiator));
    EXPECT_EQ(view.permits_issued, ref_view.permits_issued) << label;
    EXPECT_EQ(view.exhausted, ref_view.exhausted) << label;
  }
}

}  // namespace
}  // namespace csca
