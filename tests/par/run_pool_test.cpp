#include "par/run_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace csca {
namespace {

TEST(RunPool, RejectsZeroWorkers) {
  EXPECT_THROW(RunPool(0), std::exception);
  EXPECT_THROW(RunPool(-3), std::exception);
}

TEST(RunPool, MapReturnsResultsInSubmissionOrder) {
  RunPool pool(4);
  const auto out =
      pool.map(100, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

// The harness contract: result order tracks submission, not completion.
// Make the first job adversarially slow and prove both halves — the
// results came back in submission order AND the slow job genuinely
// finished last.
TEST(RunPool, SubmissionOrderHoldsUnderAdversariallySlowFirstJob) {
  RunPool pool(4);
  std::atomic<int> finish_counter{0};
  std::vector<int> finish_rank(8, -1);
  const auto out = pool.map(8, [&](std::size_t i) {
    if (i == 0) {
      // Long enough that every other job (trivial) completes first even
      // on a single hardware core with the pool's 4 workers.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    finish_rank[i] = finish_counter.fetch_add(1);
    return static_cast<int>(i) + 1000;
  });
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1000)
        << "slot " << i << " must hold job " << i << "'s result";
  }
  EXPECT_GT(finish_rank[0], 0)
      << "the adversarially slow first job should not finish first; "
         "otherwise this test proves nothing about ordering";
}

TEST(RunPool, EarliestSubmittedExceptionWins) {
  RunPool pool(4);
  // Jobs 2 and 5 both throw; job 2 sleeps so it *completes* after job 5.
  // The rethrown error must still be job 2's (submission order), making
  // sweep failures reproducible at any thread count.
  try {
    pool.run_indexed(8, [](std::size_t i) {
      if (i == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        throw std::runtime_error("boom-2");
      }
      if (i == 5) throw std::runtime_error("boom-5");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-2");
  }
}

TEST(RunPool, ReusableAcrossBatches) {
  RunPool pool(2);
  long total = 0;
  for (int batch = 0; batch < 50; ++batch) {
    const auto out = pool.map(
        16, [batch](std::size_t i) { return batch + static_cast<int>(i); });
    total += std::accumulate(out.begin(), out.end(), 0L);
  }
  // sum over batches of sum_i (batch + i) = 50*120 + (0+..+49)*16
  EXPECT_EQ(total, 50L * 120 + 1225L * 16);
}

TEST(RunPool, WaitAllOnIdlePoolReturnsImmediately) {
  RunPool pool(2);
  pool.wait_all();
  EXPECT_EQ(pool.thread_count(), 2);
}

TEST(RunPool, SingleWorkerPoolRunsEverything) {
  RunPool pool(1);
  std::atomic<int> count{0};
  pool.run_indexed(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace csca
