#include "par/shard_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/subjects.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

// Bit-identical ledger comparison: the parallel engine's contract is
// exact equality with the sequential keyed execution, including the
// completion-time double.
void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

// TTL broadcast storm with mixed ledger classes (the golden-ledger
// workload of the sequential engine tests): every delivery with ttl > 0
// re-broadcasts on all incident edges, alternating the cost class.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }

 private:
  std::int64_t ttl_;
};

// The central determinism contract, exercised end to end: every builtin
// subject, on every smoke family, under every portfolio schedule,
// produces the same digest on the sharded engine at 1, 2 and 4 shards
// as the sequential engine — and the parallel ledger is identical at
// every shard count. For the deterministic schedules (exact, edgefrac)
// keyed draws coincide with the sequential engine's plain draws, so the
// parallel ledger must additionally match the sequential one
// bit-for-bit.
TEST(ShardEngineDeterminism, MatrixAcrossSubjectsFamiliesSchedulesShards) {
  const auto subjects = builtin_subjects();
  const auto families = builtin_families(/*smoke=*/true);
  const auto portfolio = default_portfolio();
  for (const CheckSubject& subject : subjects) {
    ASSERT_NE(subject.run_par, nullptr) << subject.name;
    for (const GraphFamily& family : families) {
      for (const ScheduleSpec& spec : portfolio) {
        const std::string label =
            subject.name + "/" + family.name + "/" + spec.name;
        const SubjectOutcome seq = subject.run(family.graph, spec);
        ASSERT_FALSE(seq.failed) << label << ": " << seq.error;
        EXPECT_TRUE(seq.violations.empty()) << label;

        const bool deterministic_schedule =
            spec.name == "exact" || spec.name.rfind("edgefrac", 0) == 0;

        SubjectOutcome first_par;
        for (const int shards : {1, 2, 4}) {
          const std::string plabel =
              label + "@" + std::to_string(shards) + "shards";
          const SubjectOutcome par =
              subject.run_par(family.graph, spec, shards, ParBackend::kShard);
          ASSERT_FALSE(par.failed) << plabel << ": " << par.error;
          EXPECT_TRUE(par.violations.empty()) << plabel;
          EXPECT_EQ(par.digest, seq.digest) << plabel;
          if (shards == 1) {
            first_par = par;
          } else {
            expect_stats_identical(par.stats, first_par.stats, plabel);
          }
          if (deterministic_schedule) {
            expect_stats_identical(par.stats, seq.stats, plabel);
          }
        }
      }
    }
  }
}

// Engine-level equivalence on the random schedules, where digests alone
// would under-test: a keyed sequential Network is the reference, and
// the sharded engine must reproduce its ledger, per-node finish times,
// and per-link message counts exactly at every shard count.
TEST(ShardEngine, MatchesKeyedNetworkBitForBitOnRandomSchedules) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  struct Schedule {
    const char* name;
    std::function<std::unique_ptr<DelayModel>()> make;
    std::uint64_t seed;
  };
  const Schedule schedules[] = {
      {"uniform", [] { return make_uniform_delay(0.0, 1.0); }, 42},
      {"twopoint", [] { return make_two_point_delay(0.7); }, 99},
  };
  for (const Schedule& sched : schedules) {
    Network ref(g, factory, sched.make(), sched.seed);
    ref.set_keyed_delays(true);
    const RunStats ref_stats = ref.run();
    EXPECT_GT(ref_stats.events, 100) << "workload should be non-trivial";

    for (const int shards : {1, 2, 4}) {
      const std::string label = std::string(sched.name) + "@" +
                                std::to_string(shards) + "shards";
      ShardEngine eng(g, factory, sched.make(), sched.seed,
                      ShardEngine::Options{shards, 0, {}});
      const RunStats par_stats = eng.run();
      expect_stats_identical(par_stats, ref_stats, label);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(eng.finish_time(v), ref.finish_time(v)) << label;
      }
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        EXPECT_EQ(eng.edge_message_count(e), ref.edge_message_count(e))
            << label << " edge " << e;
        EXPECT_EQ(eng.edge_message_count(e, MsgClass::kAlgorithm),
                  ref.edge_message_count(e, MsgClass::kAlgorithm))
            << label << " edge " << e;
        EXPECT_EQ(eng.edge_message_count(e, MsgClass::kControl),
                  ref.edge_message_count(e, MsgClass::kControl))
            << label << " edge " << e;
      }
      EXPECT_EQ(eng.max_edge_message_count(),
                ref.max_edge_message_count())
          << label;
    }
  }
}

// Sends numbered bursts over a weight-1 edge whose endpoints live in
// different shards (n = 2, k = 2 forces the cut). With UniformDelay
// the keyed draws routinely collide near zero, so cross-shard delivery
// order rests entirely on the FIFO clamp + genealogical tie-break.
TEST(ShardEngine, FifoPreservedAcrossShardBoundaryUnderZeroDelayTies) {
  class BurstSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() != 0) return;
      for (int i = 0; i < 100; ++i) ctx.send(ctx.incident()[0], Message{i}, MsgClass::kAlgorithm);
    }
    void on_message(Context& ctx, const Message& m) override {
      received.push_back(m.type);
      if (ctx.self() == 1 && m.type % 10 == 0) {
        for (int i = 0; i < 5; ++i) {
          ctx.send(m.edge, Message{1000 + 5 * (m.type / 10) + i}, MsgClass::kAlgorithm);
        }
      }
    }
    std::vector<int> received;
  };
  Graph g(2);
  g.add_edge(0, 1, 1);
  ShardEngine eng(
      g, [](NodeId) { return std::make_unique<BurstSender>(); },
      make_uniform_delay(0.0, 1.0), 2026, ShardEngine::Options{2, 0, {}});
  ASSERT_EQ(eng.shard_count(), 2);
  ASSERT_NE(eng.partition().shard(0), eng.partition().shard(1));
  eng.run();
  const auto& fwd = eng.process_as<BurstSender>(1).received;
  ASSERT_EQ(fwd.size(), 100u);
  EXPECT_TRUE(std::is_sorted(fwd.begin(), fwd.end()));
  const auto& back = eng.process_as<BurstSender>(0).received;
  ASSERT_EQ(back.size(), 50u);
  EXPECT_TRUE(std::is_sorted(back.begin(), back.end()));
}

// All-zero delays collapse every event onto t = 0: the conservative
// bounds never open a window and the engine must fall back to wave
// rounds, delivering causal generation by causal generation — still
// bit-identical to the keyed sequential run.
TEST(ShardEngine, ZeroDelayCascadeRunsInWaveRounds) {
  class Relay final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(ctx.incident()[0], Message{1}, MsgClass::kAlgorithm);
    }
    void on_message(Context& ctx, const Message& m) override {
      hops = m.type;
      for (EdgeId e : ctx.incident()) {
        if (ctx.neighbor(e) > ctx.self()) {
          ctx.send(e, Message{m.type + 1}, MsgClass::kAlgorithm);
        }
      }
      ctx.finish();
    }
    int hops = 0;
  };
  Rng rng(7);
  const Graph g = path_graph(12, WeightSpec::constant(4), rng);
  const auto factory = [](NodeId) { return std::make_unique<Relay>(); };

  Network ref(g, factory, make_uniform_delay(0.0, 0.0), 5);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();
  EXPECT_EQ(ref_stats.completion_time, 0.0);

  ShardEngine eng(g, factory, make_uniform_delay(0.0, 0.0), 5,
                  ShardEngine::Options{3, 0, {}});
  const RunStats par_stats = eng.run();
  expect_stats_identical(par_stats, ref_stats, "zero-delay cascade");
  EXPECT_GT(eng.wave_rounds(), 0)
      << "zero lookahead everywhere must force wave rounds";
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(eng.process_as<Relay>(v).hops,
              ref.process_as<Relay>(v).hops)
        << "node " << v;
  }
}

TEST(ShardEngine, RunIsSingleShot) {
  Rng rng(2);
  const Graph g = path_graph(4, WeightSpec::constant(1), rng);
  ShardEngine eng(
      g, [](NodeId) { return std::make_unique<Storm>(1); },
      make_exact_delay(), 1, ShardEngine::Options{2, 0, {}});
  eng.run();
  EXPECT_THROW(eng.run(), std::exception);
}

TEST(ShardEngine, ThreadCountMayDifferFromShardCount) {
  // threads < shards (oversubscribed shards share workers) must not
  // change the result — only the schedule of who executes which shard.
  Rng rng(4);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 8), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(2); };
  ShardEngine wide(g, factory, make_uniform_delay(0.0, 1.0), 11,
                   ShardEngine::Options{4, 0, {}});
  const RunStats a = wide.run();
  ShardEngine narrow(g, factory, make_uniform_delay(0.0, 1.0), 11,
                     ShardEngine::Options{4, 1, {}});
  const RunStats b = narrow.run();
  expect_stats_identical(a, b, "threads=4 vs threads=1");
}

}  // namespace
}  // namespace csca
