// Rollback torture: deterministic pace hooks manufacture stragglers by
// stalling one shard while its peers speculate deep past it, then
// releasing the backlog. The forced rollbacks must leave no trace —
// protocol state restores byte-exactly (observed through stateful
// hosts), every anti-message annihilates exactly one positive, and the
// committed ledger never drifts from the keyed sequential reference.
#include "par/timewarp_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

// A storm whose hosts carry observable state: every delivery appends
// (sender, hop) to a log. If a rollback ever failed to restore a host
// byte-exactly — a lost entry, a duplicate from a re-executed handler
// whose first execution was not fully undone — the log diverges from
// the sequential reference's.
class LoggingStorm final : public Process {
 public:
  explicit LoggingStorm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, ctx.self()}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    log.push_back(m.at(1) * 100 + ttl);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, ctx.self()}}, cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<LoggingStorm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const LoggingStorm&>(saved);
  }
  std::vector<std::int64_t> log;

 private:
  std::int64_t ttl_;
};

void expect_logs_identical(TimeWarpEngine& eng, Network& ref, const Graph& g,
                           const std::string& label) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(eng.process_as<LoggingStorm>(v).log,
              ref.process_as<LoggingStorm>(v).log)
        << label << " node " << v;
  }
}

// Stall one non-initiator shard for a stretch of rounds while the rest
// speculate far ahead of it, then release: the backlog's cross-shard
// sends all land in the peers' past.
TEST(Rollback, StalledShardForcesStragglersWithoutLedgerDrift) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) {
    return std::make_unique<LoggingStorm>(3);
  };
  const std::uint64_t seed = 42;
  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();
  EXPECT_GT(ref_stats.events, 100);

  TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                     TimeWarpEngine::Options{4, 0, 256, {}});
  // Stall a shard that does not own the initiator (stalling node 0's
  // shard would just delay the whole storm instead of creating skew).
  const int stalled = (eng.partition().shard(0) + 1) % eng.shard_count();
  eng.set_pace_hook([stalled](int shard, std::int64_t round) {
    if (shard == stalled && round <= 8) return 0;
    return -1;  // configured quantum
  });
  const RunStats par_stats = eng.run();

  EXPECT_GT(eng.rollbacks(), 0) << "the stall must manufacture stragglers";
  EXPECT_GT(eng.rolled_back_events(), 0);
  EXPECT_EQ(eng.anti_messages(), eng.annihilations());
  EXPECT_EQ(eng.speculative_events(),
            eng.committed_events() + eng.rolled_back_events());
  expect_stats_identical(par_stats, ref_stats, "stalled shard");
  expect_logs_identical(eng, ref, g, "stalled shard");
}

// Rotating the stall across shards every few rounds keeps every shard
// alternating between running ahead and straggling behind — cascaded
// rollbacks (rollbacks that undo events whose own sends had already
// been speculated on by peers, recursively) are the steady state.
TEST(Rollback, RotatingStallsCascadeAndStillCommitTheSequentialRun) {
  Rng rng(9);
  const Graph g = connected_gnp(20, 0.3, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) {
    return std::make_unique<LoggingStorm>(4);
  };
  const std::uint64_t seed = 7;
  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();

  TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                     TimeWarpEngine::Options{4, 0, 32, {}});
  const int k = eng.shard_count();
  eng.set_pace_hook([k](int shard, std::int64_t round) {
    // A moving window of starvation: each shard stalls whenever the
    // rotor points at it, for the first 40 rounds.
    if (round <= 40 && shard == static_cast<int>((round / 2) % k)) return 0;
    return -1;
  });
  const RunStats par_stats = eng.run();

  EXPECT_GT(eng.rollbacks(), 0);
  // Cascades: strictly more events undone than rollback episodes means
  // rollbacks routinely cut more than their own straggler's suffix.
  EXPECT_GT(eng.rolled_back_events(), eng.rollbacks());
  EXPECT_EQ(eng.anti_messages(), eng.annihilations());
  EXPECT_EQ(eng.speculative_events(),
            eng.committed_events() + eng.rolled_back_events());
  expect_stats_identical(par_stats, ref_stats, "rotating stalls");
  expect_logs_identical(eng, ref, g, "rotating stalls");

  // Same engine, no interference: the pace hook changed only wasted
  // work, never the committed run.
  TimeWarpEngine calm(g, factory, make_uniform_delay(0.0, 1.0), seed,
                      TimeWarpEngine::Options{4, 0, 32, {}});
  const RunStats calm_stats = calm.run();
  expect_stats_identical(par_stats, calm_stats, "paced vs unpaced");
}

}  // namespace
}  // namespace csca
