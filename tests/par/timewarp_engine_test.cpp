// The bit-identity torture tests for the optimistic backend: whatever
// the conservative ShardEngine suite pins against the keyed sequential
// Network, the TimeWarpEngine must reproduce too — digests, full golden
// ledgers, per-node finish times, per-link per-class counts — at every
// worker count, under faults, and against a budget-sliced (resumed)
// sequential reference. Speculation must be invisible in every
// committed observable.
#include "par/timewarp_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/subjects.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace csca {
namespace {

void expect_stats_identical(const RunStats& a, const RunStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.algorithm_messages, b.algorithm_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.algorithm_cost, b.algorithm_cost) << label;
  EXPECT_EQ(a.control_cost, b.control_cost) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
}

void expect_hosts_identical(const ProcessHost& a, const ProcessHost& b,
                            const Graph& g, const std::string& label) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(a.finish_time(v), b.finish_time(v)) << label << " node " << v;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(a.edge_message_count(e), b.edge_message_count(e))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kAlgorithm),
              b.edge_message_count(e, MsgClass::kAlgorithm))
        << label << " edge " << e;
    EXPECT_EQ(a.edge_message_count(e, MsgClass::kControl),
              b.edge_message_count(e, MsgClass::kControl))
        << label << " edge " << e;
  }
}

// Every speculated event either committed or was rolled back, and every
// anti-message found its positive — the engine's internal conservation
// laws, asserted after any completed run.
void expect_speculation_conserved(const TimeWarpEngine& eng,
                                  const std::string& label) {
  EXPECT_EQ(eng.speculative_events(),
            eng.committed_events() + eng.rolled_back_events())
      << label;
  EXPECT_EQ(eng.anti_messages(), eng.annihilations()) << label;
}

// Same mixed-class TTL storm as the shard-engine suite.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}},
               cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<Storm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const Storm&>(saved);
  }

 private:
  std::int64_t ttl_;
};

// Garble-immune bounded storm (see fault_determinism_test.cpp): the
// payload carries {ttl, -ttl}, so a corrupted word breaks the pair and
// the receiver discards instead of amplifying.
class ClampedStorm final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {3, -3}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.at(0) + m.at(1) != 0) return;  // garbled in flight
    const std::int64_t ttl =
        std::min<std::int64_t>(std::max<std::int64_t>(m.at(0), 0), 3);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, -(ttl - 1)}}, cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<ClampedStorm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const ClampedStorm&>(saved);
  }
};

// The full determinism matrix on the optimistic backend: every builtin
// subject, on every smoke family, under every portfolio schedule, at 1,
// 2 and 4 shards — digest equal to the sequential run's, ledger
// identical across shard counts, and (on the deterministic schedules,
// where keyed and plain draws coincide) ledger identical to the
// sequential one bit-for-bit.
TEST(TimeWarpDeterminism, MatrixAcrossSubjectsFamiliesSchedulesShards) {
  const auto subjects = builtin_subjects();
  const auto families = builtin_families(/*smoke=*/true);
  const auto portfolio = default_portfolio();
  for (const CheckSubject& subject : subjects) {
    ASSERT_NE(subject.run_par, nullptr) << subject.name;
    for (const GraphFamily& family : families) {
      for (const ScheduleSpec& spec : portfolio) {
        const std::string label =
            subject.name + "/" + family.name + "/" + spec.name;
        const SubjectOutcome seq = subject.run(family.graph, spec);
        ASSERT_FALSE(seq.failed) << label << ": " << seq.error;
        EXPECT_TRUE(seq.violations.empty()) << label;

        const bool deterministic_schedule =
            spec.name == "exact" || spec.name.rfind("edgefrac", 0) == 0;

        SubjectOutcome first_par;
        for (const int shards : {1, 2, 4}) {
          const std::string plabel =
              label + "@" + std::to_string(shards) + "shards";
          const SubjectOutcome par = subject.run_par(
              family.graph, spec, shards, ParBackend::kTimeWarp);
          ASSERT_FALSE(par.failed) << plabel << ": " << par.error;
          EXPECT_TRUE(par.violations.empty()) << plabel;
          EXPECT_EQ(par.digest, seq.digest) << plabel;
          if (shards == 1) {
            first_par = par;
          } else {
            expect_stats_identical(par.stats, first_par.stats, plabel);
          }
          if (deterministic_schedule) {
            expect_stats_identical(par.stats, seq.stats, plabel);
          }
        }
      }
    }
  }
}

// Engine-level equivalence on the random schedules: the keyed
// sequential Network is the reference; the optimistic engine must
// reproduce its ledger, finish times and per-link counts exactly —
// while actually speculating (rollbacks observed at 2+ shards on this
// workload are the norm, and the conservation laws must hold
// regardless).
TEST(TimeWarpEngine, MatchesKeyedNetworkBitForBitOnRandomSchedules) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  struct Schedule {
    const char* name;
    std::function<std::unique_ptr<DelayModel>()> make;
    std::uint64_t seed;
  };
  const Schedule schedules[] = {
      {"uniform", [] { return make_uniform_delay(0.0, 1.0); }, 42},
      {"twopoint", [] { return make_two_point_delay(0.7); }, 99},
  };
  for (const Schedule& sched : schedules) {
    Network ref(g, factory, sched.make(), sched.seed);
    ref.set_keyed_delays(true);
    const RunStats ref_stats = ref.run();
    EXPECT_GT(ref_stats.events, 100) << "workload should be non-trivial";

    for (const int shards : {1, 2, 4}) {
      const std::string label = std::string(sched.name) + "@" +
                                std::to_string(shards) + "shards";
      TimeWarpEngine eng(g, factory, sched.make(), sched.seed,
                         TimeWarpEngine::Options{shards, 0, 256, {}});
      const RunStats par_stats = eng.run();
      expect_stats_identical(par_stats, ref_stats, label);
      expect_hosts_identical(eng, ref, g, label);
      EXPECT_EQ(eng.max_edge_message_count(), ref.max_edge_message_count())
          << label;
      expect_speculation_conserved(eng, label);
    }
  }
}

// Keyed fault fates ride the same per-channel send counts rollback
// rewinds, so faulted runs must replay bit-identically too — builtin
// plans drop1pct, link_flap and garble1pct, each at every shard count.
TEST(TimeWarpEngine, FaultedRunsMatchKeyedNetworkBitForBit) {
  Rng rng(3);
  const Graph g = connected_gnp(24, 0.2, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<ClampedStorm>(); };
  const std::uint64_t seed = 42;
  for (const char* plan_name : {"drop1pct", "link_flap", "garble1pct"}) {
    const FaultPlan plan = make_builtin_fault_plan(plan_name, g);
    const FaultInjector inj(plan, g, seed);
    Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
    ref.set_keyed_delays(true);
    ref.set_faults(&inj);
    const RunStats ref_stats = ref.run();
    EXPECT_GT(ref_stats.events, 0) << plan_name;

    for (const int shards : {1, 2, 4}) {
      const std::string label =
          std::string(plan_name) + "@" + std::to_string(shards) + "shards";
      TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                         TimeWarpEngine::Options{shards, 0, 256, {}});
      eng.set_faults(&inj);
      const RunStats par_stats = eng.run();
      expect_stats_identical(par_stats, ref_stats, label);
      expect_hosts_identical(eng, ref, g, label);
      expect_speculation_conserved(eng, label);
    }
  }
}

// The sequential engine may be run in budget slices (run(max_time)
// accumulates); the optimistic one-shot run must land on the exact
// ledger a resumed sequential reference accumulates — commit-time
// billing cannot depend on where the reference's budget boundaries
// fell.
TEST(TimeWarpEngine, MatchesBudgetSlicedSequentialReference) {
  Rng rng(6);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  const std::uint64_t seed = 77;

  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  // Resume in small slices: each call extends the clock budget.
  RunStats ref_stats;
  for (double budget = 0.5;; budget += 0.5) {
    ref_stats = ref.run(budget);
    if (ref.all_finished() || budget > 64.0) break;
  }
  const RunStats final_ref = ref.run();  // drain whatever remains
  EXPECT_GT(final_ref.events, 100);

  for (const int shards : {2, 4}) {
    const std::string label = std::to_string(shards) + "shards";
    TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                       TimeWarpEngine::Options{shards, 0, 256, {}});
    const RunStats par_stats = eng.run();
    expect_stats_identical(par_stats, final_ref, label);
    expect_hosts_identical(eng, ref, g, label);
  }
}

// The triple composition: faults (link_flap outage windows) x budget
// slicing x optimistic execution. The resumed, budget-sliced sequential
// reference re-evaluates link_down against the same virtual clock no
// matter where its slice boundaries fall, and the one-shot TimeWarp run
// — whose rollbacks re-derive outage answers purely — must land on the
// same committed state bit-for-bit.
TEST(TimeWarpEngine, FaultedBudgetSlicedReferenceMatchesBitForBit) {
  Rng rng(13);
  const Graph g = connected_gnp(20, 0.25, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  const std::uint64_t seed = 77;
  const FaultPlan plan = make_builtin_fault_plan("link_flap", g);
  ASSERT_FALSE(plan.outages.empty());
  const FaultInjector inj(plan, g, seed);

  Network ref(g, factory, make_uniform_delay(0.0, 1.0), seed);
  ref.set_keyed_delays(true);
  ref.set_faults(&inj);
  // Resume in slices deliberately unaligned with the flap period, so
  // outage boundaries fall inside slices and on their edges.
  RunStats ref_stats;
  for (double budget = 0.7;; budget += 0.7) {
    ref_stats = ref.run(budget);
    if (ref.all_finished() || budget > 96.0) break;
  }
  const RunStats final_ref = ref.run();  // drain whatever remains
  EXPECT_GT(final_ref.events, 0);

  for (const int shards : {1, 2, 4}) {
    const std::string label = std::to_string(shards) + "shards";
    TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 1.0), seed,
                       TimeWarpEngine::Options{shards, 0, 256, {}});
    eng.set_faults(&inj);
    const RunStats par_stats = eng.run();
    expect_stats_identical(par_stats, final_ref, label);
    expect_hosts_identical(eng, ref, g, label);
    expect_speculation_conserved(eng, label);
  }
}

// All-zero delays are the conservative engine's worst case (zero
// lookahead collapses it to wave rounds); the optimistic engine has no
// windows to collapse and must still commit the identical result.
TEST(TimeWarpEngine, ZeroDelayCascadeIsBitIdentical) {
  class Relay final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) {
        ctx.send(ctx.incident()[0], Message{1}, MsgClass::kAlgorithm);
      }
    }
    void on_message(Context& ctx, const Message& m) override {
      hops = m.type;
      for (EdgeId e : ctx.incident()) {
        if (ctx.neighbor(e) > ctx.self()) {
          ctx.send(e, Message{m.type + 1}, MsgClass::kAlgorithm);
        }
      }
      ctx.finish();
    }
    std::unique_ptr<Process> save_state() const override {
      return std::make_unique<Relay>(*this);
    }
    void restore_state(const Process& saved) override {
      *this = dynamic_cast<const Relay&>(saved);
    }
    int hops = 0;
  };
  Rng rng(7);
  const Graph g = path_graph(12, WeightSpec::constant(4), rng);
  const auto factory = [](NodeId) { return std::make_unique<Relay>(); };

  Network ref(g, factory, make_uniform_delay(0.0, 0.0), 5);
  ref.set_keyed_delays(true);
  const RunStats ref_stats = ref.run();
  EXPECT_EQ(ref_stats.completion_time, 0.0);

  TimeWarpEngine eng(g, factory, make_uniform_delay(0.0, 0.0), 5,
                     TimeWarpEngine::Options{3, 0, 256, {}});
  const RunStats par_stats = eng.run();
  expect_stats_identical(par_stats, ref_stats, "zero-delay cascade");
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(eng.process_as<Relay>(v).hops, ref.process_as<Relay>(v).hops)
        << "node " << v;
  }
  expect_speculation_conserved(eng, "zero-delay cascade");
}

TEST(TimeWarpEngine, RunIsSingleShot) {
  Rng rng(2);
  const Graph g = path_graph(4, WeightSpec::constant(1), rng);
  TimeWarpEngine eng(
      g, [](NodeId) { return std::make_unique<Storm>(1); },
      make_exact_delay(), 1, TimeWarpEngine::Options{2, 0, 256, {}});
  eng.run();
  EXPECT_THROW(eng.run(), std::exception);
}

TEST(TimeWarpEngine, ThreadCountMayDifferFromShardCount) {
  // Oversubscribed shards (threads < shards) change only who executes a
  // shard, never the result.
  Rng rng(4);
  const Graph g = connected_gnp(14, 0.3, WeightSpec::uniform(1, 8), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(2); };
  TimeWarpEngine wide(g, factory, make_uniform_delay(0.0, 1.0), 11,
                      TimeWarpEngine::Options{4, 0, 256, {}});
  const RunStats a = wide.run();
  TimeWarpEngine narrow(g, factory, make_uniform_delay(0.0, 1.0), 11,
                        TimeWarpEngine::Options{4, 1, 256, {}});
  const RunStats b = narrow.run();
  expect_stats_identical(a, b, "threads=4 vs threads=1");
}

// A tiny speculation quantum forces many more GVT rounds (and typically
// more rollback traffic) than the default; the committed result must
// not notice.
TEST(TimeWarpEngine, QuantumDoesNotChangeTheCommittedRun) {
  Rng rng(3);
  const Graph g = connected_gnp(16, 0.25, WeightSpec::uniform(1, 9), rng);
  const auto factory = [](NodeId) { return std::make_unique<Storm>(3); };
  TimeWarpEngine coarse(g, factory, make_uniform_delay(0.0, 1.0), 13,
                        TimeWarpEngine::Options{4, 0, 256, {}});
  const RunStats a = coarse.run();
  TimeWarpEngine fine(g, factory, make_uniform_delay(0.0, 1.0), 13,
                      TimeWarpEngine::Options{4, 0, 2, {}});
  const RunStats b = fine.run();
  EXPECT_GT(fine.rounds(), coarse.rounds());
  expect_stats_identical(a, b, "quantum=256 vs quantum=2");
  expect_speculation_conserved(fine, "quantum=2");
}

}  // namespace
}  // namespace csca
