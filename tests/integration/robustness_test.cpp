// Cross-module robustness matrix: every distributed algorithm x every
// delay model x adversarial topologies. The paper's model allows any
// delay in [0, w(e)]; protocols must produce correct outputs under all
// of them, including the two-point adversary that maximizes reordering.
#include <gtest/gtest.h>

#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"
#include "conn/spt_centr.h"
#include "core/global_compute.h"
#include "core/distributed_slt.h"
#include "core/slt.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "mst/ghs.h"
#include "mst/hybrid.h"
#include "spt/recur.h"
#include "spt/spt_synch.h"

namespace csca {
namespace {

enum class DelayKind { kExact, kUniform, kTwoPoint, kNearZero };

std::unique_ptr<DelayModel> make_delay(DelayKind kind) {
  switch (kind) {
    case DelayKind::kExact:
      return make_exact_delay();
    case DelayKind::kUniform:
      return make_uniform_delay(0.1, 1.0);
    case DelayKind::kTwoPoint:
      return make_two_point_delay(0.3);
    case DelayKind::kNearZero:
      return make_uniform_delay(0.0, 0.05);
  }
  return nullptr;
}

const char* delay_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kExact:
      return "exact";
    case DelayKind::kUniform:
      return "uniform";
    case DelayKind::kTwoPoint:
      return "two_point";
    case DelayKind::kNearZero:
      return "near_zero";
  }
  return "?";
}

std::vector<Graph> topologies() {
  Rng rng(404);
  std::vector<Graph> out;
  out.push_back(path_graph(12, WeightSpec::uniform(1, 30), rng));
  // Star: one hub, extreme degree skew.
  {
    Graph star(10);
    for (NodeId v = 1; v < 10; ++v) {
      star.add_edge(0, v, static_cast<Weight>(rng.uniform_int(1, 20)));
    }
    out.push_back(std::move(star));
  }
  out.push_back(complete_graph(9, WeightSpec::uniform(1, 50), rng));
  out.push_back(grid_graph(4, 4, WeightSpec::uniform(1, 9), rng));
  out.push_back(lower_bound_family(11, 5));
  out.push_back(random_geometric(20, 0.4, 30, rng));
  return out;
}

class RobustnessTest : public ::testing::TestWithParam<DelayKind> {};

TEST_P(RobustnessTest, ConnectivityAlgorithmsSpanEverywhere) {
  for (const Graph& g : topologies()) {
    for (std::uint64_t seed : {1u, 2u}) {
      EXPECT_TRUE(
          run_flood(g, 0, make_delay(GetParam()), seed).tree.spanning());
      EXPECT_TRUE(
          run_dfs(g, 0, make_delay(GetParam()), seed).tree.spanning());
      EXPECT_TRUE(run_con_hybrid(g, 0, make_delay(GetParam()), seed)
                      .tree.spanning());
    }
  }
}

TEST_P(RobustnessTest, MstAlgorithmsAgreeWithKruskalEverywhere) {
  for (const Graph& g : topologies()) {
    for (std::uint64_t seed : {3u, 4u}) {
      EXPECT_TRUE(is_minimum_spanning_forest(
          g, run_ghs(g, GhsMode::kSerialScan, make_delay(GetParam()),
                     seed)
                 .mst_edges))
          << delay_name(GetParam());
      EXPECT_TRUE(is_minimum_spanning_forest(
          g, run_ghs(g, GhsMode::kParallelGuess, make_delay(GetParam()),
                     seed)
                 .mst_edges))
          << delay_name(GetParam());
      EXPECT_TRUE(is_minimum_spanning_forest(
          g, run_mst_centr(g, 0, make_delay(GetParam()), seed)
                 .tree.edge_set()));
      const auto hybrid = run_mst_hybrid(
          g, 0, [&] { return make_delay(GetParam()); }, seed);
      EXPECT_TRUE(is_minimum_spanning_forest(g, hybrid.mst_edges));
    }
  }
}

TEST_P(RobustnessTest, SptAlgorithmsMatchDijkstraEverywhere) {
  for (const Graph& g : topologies()) {
    const auto sp = dijkstra(g, 0);
    for (std::uint64_t seed : {5u, 6u}) {
      const auto centr = run_spt_centr(g, 0, make_delay(GetParam()), seed);
      const auto recur =
          run_spt_recur(g, 0, 4, make_delay(GetParam()), seed);
      const auto synch =
          run_spt_synch(g, 0, 2, make_delay(GetParam()), seed);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const Weight want = sp.dist[static_cast<std::size_t>(v)];
        EXPECT_EQ(centr.dist[static_cast<std::size_t>(v)], want);
        EXPECT_EQ(recur.dist[static_cast<std::size_t>(v)], want)
            << delay_name(GetParam()) << " node " << v;
        EXPECT_EQ(synch.dist[static_cast<std::size_t>(v)], want);
      }
    }
  }
}

TEST_P(RobustnessTest, GlobalComputeOverDistributedSltPipeline) {
  // End-to-end: distributed MST -> SPT -> local stretch -> SPT on G'
  // (Thm 2.7), then aggregate over the resulting SLT — the full §2
  // pipeline under every delay model.
  Rng rng(9);
  Graph g = connected_gnp(12, 0.3, WeightSpec::uniform(1, 12), rng);
  const auto kind = GetParam();
  const auto slt = run_distributed_slt(
      g, 0, 2.0, [kind] { return make_delay(kind); }, 11);
  std::vector<std::int64_t> inputs(12);
  Rng in_rng(13);
  for (auto& x : inputs) x = in_rng.uniform_int(-50, 50);
  const auto agg = run_global_compute(g, slt.slt.tree, functions::sum(),
                                      inputs, make_delay(kind), 17);
  EXPECT_EQ(agg.result, fold(functions::sum(), inputs));
}

INSTANTIATE_TEST_SUITE_P(AllDelays, RobustnessTest,
                         ::testing::Values(DelayKind::kExact,
                                           DelayKind::kUniform,
                                           DelayKind::kTwoPoint,
                                           DelayKind::kNearZero),
                         [](const auto& info) {
                           return delay_name(info.param);
                         });

TEST(DelayModels, TwoPointStaysInModelRange) {
  Rng rng(1);
  TwoPointDelay d(0.5);
  int slow = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = d.delay(100, rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 100.0);
    if (x > 50) ++slow;
  }
  EXPECT_GT(slow, 400);
  EXPECT_LT(slow, 600);
  EXPECT_THROW(TwoPointDelay(1.5), PreconditionError);
}

}  // namespace
}  // namespace csca
