// Larger-network checks: the per-module suites stay small for breadth;
// these runs push node counts an order of magnitude higher to catch
// anything that only shows up at scale (deep recursions, counter
// widths, event-queue pressure, O(n^2) hot spots in protocols that
// should be near-linear).
#include <gtest/gtest.h>

#include "conn/hybrid.h"
#include "core/global_compute.h"
#include "core/slt.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "mst/ghs.h"
#include "spt/recur.h"

namespace csca {
namespace {

TEST(Scale, GhsOnTwoHundredNodes) {
  Rng rng(1);
  Graph g = connected_gnp(200, 0.04, WeightSpec::uniform(1, 1000), rng);
  const auto run = run_ghs(g, GhsMode::kSerialScan,
                           make_uniform_delay(0.1, 1.0), 7);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

TEST(Scale, MstFastOnTwoHundredNodes) {
  Rng rng(2);
  Graph g = connected_gnp(200, 0.04, WeightSpec::power_of_two(0, 10),
                          rng);
  const auto run = run_ghs(g, GhsMode::kParallelGuess,
                           make_uniform_delay(0.0, 1.0), 8);
  EXPECT_TRUE(is_minimum_spanning_forest(g, run.mst_edges));
}

TEST(Scale, SptRecurOnLargeGeometricNetwork) {
  Rng rng(3);
  Graph g = random_geometric(250, 0.15, 100, rng);
  const auto run = run_spt_recur(g, 0, 25, make_uniform_delay(0.2, 1.0));
  const auto sp = dijkstra(g, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_EQ(run.dist[static_cast<std::size_t>(v)],
              sp.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(Scale, ConHybridOnLargeLowerBoundFamily) {
  // X must satisfy X^3 >> n for the bypass weights to keep n*V below
  // script-E at this size (the regime Figure 7 is about).
  Graph g = lower_bound_family(129, 12);
  const auto run = run_con_hybrid(g, 0, make_exact_delay());
  EXPECT_TRUE(run.tree.spanning());
  EXPECT_FALSE(run.dfs_won);
  // Still in the n V regime, far below script-E.
  EXPECT_LT(run.stats.algorithm_cost, g.total_weight());
}

TEST(Scale, SltAndAggregationOnThreeHundredNodes) {
  Rng rng(4);
  Graph g = random_geometric(300, 0.12, 200, rng);
  const auto m = measure(g);
  const auto slt = build_slt(g, 0, 2.0);
  EXPECT_LE(static_cast<double>(slt.weight(g)),
            2.0 * static_cast<double>(m.comm_V));
  EXPECT_LE(static_cast<double>(slt.depth(g)),
            5.0 * static_cast<double>(m.comm_D));
  std::vector<std::int64_t> inputs(300, 1);
  const auto agg = run_global_compute(g, slt.tree, functions::sum(),
                                      inputs, make_exact_delay());
  EXPECT_EQ(agg.result, 300);
}

}  // namespace
}  // namespace csca
