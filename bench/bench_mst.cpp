// Figure 3: MST algorithms.
//
//   MST_ghs    O(script-E + script-V log n) comm,  same time
//   MST_centr  O(n script-V) comm,  O(n Diam(MST)) time
//   MST_fast   O(script-E log n log script-V) comm,
//              O(Diam(MST) log script-V log n) time
//   MST_hybrid O(min{script-E + script-V log n, n script-V}) comm
//
// cost_over_bound / time_over_bound divide measurements by the row's
// claim. The heavy_chords family shows MST_fast's raison d'etre: its
// *time* ratio stays flat where MST_ghs's serial scans stall; the
// lower_bound family shows MST_hybrid tracking the n script-V side.
#include <cmath>

#include "../bench/common.h"
#include "conn/mst_centr.h"
#include "graph/mst.h"
#include "mst/ghs.h"
#include "mst/hybrid.h"

namespace csca::bench {
namespace {

void BM_Mst(benchmark::State& state, const std::string& algo,
            const std::string& family, int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  const Weight mst_diam = mst_tree(g, 0).diameter(g);
  RunStats stats;
  for (auto _ : state) {
    if (algo == "ghs") {
      stats = run_ghs(g, GhsMode::kSerialScan, make_exact_delay()).stats;
    } else if (algo == "fast") {
      stats =
          run_ghs(g, GhsMode::kParallelGuess, make_exact_delay()).stats;
    } else if (algo == "centr") {
      stats = run_mst_centr(g, 0, make_exact_delay()).stats;
    } else {
      const auto run = run_mst_hybrid(
          g, 0, [] { return make_exact_delay(); });
      stats.algorithm_messages = run.total_messages();
      stats.algorithm_cost = run.total_cost();
      stats.completion_time = run.race_stats.completion_time +
                              run.ghs_stats.completion_time;
    }
  }
  report(state, m, stats);
  const double e = static_cast<double>(m.comm_E);
  const double v = static_cast<double>(m.comm_V);
  const double logn = std::log2(m.n + 2);
  const double logv = std::log2(v + 2);
  const double ghs_bill = e + v * logn;
  const double centr_bill = static_cast<double>(m.n) * v;
  double cost_bound = ghs_bill;
  double time_bound = ghs_bill;
  if (algo == "fast") {
    cost_bound = e * logn * logv;
    time_bound = static_cast<double>(mst_diam) * logv * logn;
  } else if (algo == "centr") {
    cost_bound = centr_bill;
    time_bound = static_cast<double>(m.n) * static_cast<double>(mst_diam);
  } else if (algo == "hybrid") {
    cost_bound = std::min(ghs_bill, centr_bill);
    time_bound = cost_bound;  // the paper gives no sharper time claim
  }
  state.counters["cost_over_bound"] =
      static_cast<double>(stats.total_cost()) / cost_bound;
  state.counters["time_over_bound"] =
      stats.completion_time / time_bound;
  state.counters["mst_diam"] = static_cast<double>(mst_diam);
}

void register_all() {
  for (const std::string family :
       {"gnp", "geometric", "heavy_chords", "lower_bound"}) {
    const int n = family == "lower_bound" ? 33 : 48;
    for (const std::string algo : {"ghs", "fast", "centr", "hybrid"}) {
      benchmark::RegisterBenchmark(
          ("mst/" + algo + "/" + family).c_str(),
          [algo, family, n](benchmark::State& s) {
            BM_Mst(s, algo, family, n);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
