// Figure 3: MST algorithms (MST_ghs, MST_fast, MST_centr, MST_hybrid).
// Rows and bounds live in src/bench_harness/tables/f3_mst.cpp; this
// binary selects table F3 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F3"}, argc, argv);
}
