// Corollary 5.1: controller overhead c_phi = O(c_pi log^2 c_pi), and
// containment of diverged protocols.
//
// Rows sweep the network size (hence c_pi) for the well-behaved
// broadcast-echo (overhead_over_bound should stay a flat small constant)
// and run the runaway spammer under a fixed budget (contained spending
// vs. the uncontrolled explosion).
#include <cmath>

#include "../bench/common.h"
#include "control/controller.h"
#include "control/protocols.h"

namespace csca::bench {
namespace {

void BM_ControlledEcho(benchmark::State& state, bool aggregate, int n) {
  const Graph g = make_graph("gnp", n, 42);
  const auto m = measure(g);
  const Weight c_pi = 4 * g.total_weight();
  ControlledRun run;
  for (auto _ : state) {
    run = run_controlled(
        g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); },
        0, ControllerConfig{2 * c_pi, aggregate}, make_exact_delay());
  }
  const double log_c = std::log2(static_cast<double>(c_pi) + 2);
  report(state, m, run.stats);
  state.counters["c_pi_bound"] = static_cast<double>(c_pi);
  state.counters["control_cost"] =
      static_cast<double>(run.stats.control_cost);
  state.counters["overhead_over_bound"] =
      static_cast<double>(run.stats.control_cost) /
      (static_cast<double>(c_pi) * log_c * log_c);
  state.counters["exhausted"] = run.exhausted ? 1 : 0;
}

void BM_Runaway(benchmark::State& state, bool controlled) {
  const Graph g = make_graph("gnp", 16, 42);
  const Weight budget = 2000;
  RunStats stats;
  bool exhausted = false;
  for (auto _ : state) {
    if (controlled) {
      const auto run = run_controlled(
          g, [](NodeId) { return std::make_unique<RunawaySpammer>(); },
          0, ControllerConfig{budget, true}, make_exact_delay());
      stats = run.stats;
      exhausted = run.exhausted;
    } else {
      const auto run = run_uncontrolled(
          g, [](NodeId) { return std::make_unique<RunawaySpammer>(); },
          0, make_exact_delay(), 1, /*max_time=*/3000.0);
      stats = run.stats;
    }
  }
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["protocol_cost"] =
      static_cast<double>(stats.algorithm_cost);
  state.counters["control_cost"] =
      static_cast<double>(stats.control_cost);
  state.counters["exhausted"] = exhausted ? 1 : 0;
}

void register_all() {
  for (int n : {12, 24, 48}) {
    for (bool aggregate : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("controller/echo/") +
           (aggregate ? "aggregating" : "naive") + "/n=" +
           std::to_string(n))
              .c_str(),
          [aggregate, n](benchmark::State& s) {
            BM_ControlledEcho(s, aggregate, n);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark(
      "controller/runaway/contained",
      [](benchmark::State& s) { BM_Runaway(s, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "controller/runaway/uncontrolled_3000_time_units",
      [](benchmark::State& s) { BM_Runaway(s, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
