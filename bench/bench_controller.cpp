// Corollary 5.1: controller overhead and containment of diverged
// protocols. Rows and bounds live in
// src/bench_harness/tables/s5_controller.cpp; this binary selects table
// S5 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"S5"}, argc, argv);
}
