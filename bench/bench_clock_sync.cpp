// Section 3: clock synchronization (alpha*, beta*, gamma*) on networks
// where d << W. Rows and bounds live in
// src/bench_harness/tables/s3_clock_sync.cpp; this binary selects table
// S3 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"S3"}, argc, argv);
}
