// §3 (clock synchronization): measured pulse delay of alpha*, beta*,
// gamma* on networks where d << W — the regime the section is about.
//
//   alpha*: pulse delay Theta(W)          (stalls on the heavy chords)
//   beta*:  pulse delay Theta(tree depth) (>= script-D)
//   gamma*: pulse delay O(d log^2 n)      (the §3 headline)
//
// gap_over_d and gap_over_W are the shape columns: gamma*'s gap_over_W
// collapses as W grows while alpha*'s stays ~1.
#include <cmath>

#include "../bench/common.h"
#include "graph/shortest_paths.h"
#include "partition/tree_edge_cover.h"
#include "sync/clock_sync.h"

namespace csca::bench {
namespace {

Graph chord_graph(int n, Weight heavy) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
  g.add_edge(0, n - 1, heavy);
  g.add_edge(1, n / 2, heavy);
  g.add_edge(2, (3 * n) / 4, heavy / 2);
  return g;
}

void BM_ClockSync(benchmark::State& state, const std::string& algo,
                  int n, Weight heavy) {
  const Graph g = chord_graph(n, heavy);
  const auto m = measure(g);
  const int pulses = 8;
  ClockSyncRun run;
  for (auto _ : state) {
    if (algo == "alpha") {
      run = run_clock_alpha(g, pulses, make_exact_delay());
    } else if (algo == "beta") {
      const auto tree = dijkstra(g, 0).tree(g);
      run = run_clock_beta(g, tree, pulses, make_exact_delay());
    } else {
      const auto cover = build_tree_edge_cover(g);
      run = run_clock_gamma(g, cover, pulses, make_exact_delay());
    }
  }
  const double logn = std::log2(m.n + 2);
  state.counters["n"] = static_cast<double>(m.n);
  state.counters["W"] = static_cast<double>(m.W);
  state.counters["d"] = static_cast<double>(m.d);
  state.counters["max_gap"] = run.max_gap;
  state.counters["mean_gap"] = run.mean_gap;
  state.counters["gap_over_d"] =
      run.max_gap / static_cast<double>(m.d);
  state.counters["gap_over_W"] =
      run.max_gap / static_cast<double>(m.W);
  state.counters["gap_over_dlog2n"] =
      run.max_gap / (static_cast<double>(m.d) * logn * logn);
  state.counters["cost_per_pulse"] = run.cost_per_pulse;
}

void register_all() {
  for (Weight heavy : {64, 256, 1024, 4096}) {
    for (const std::string algo : {"alpha", "beta", "gamma"}) {
      benchmark::RegisterBenchmark(
          ("clock_sync/" + algo + "/W=" + std::to_string(heavy)).c_str(),
          [algo, heavy](benchmark::State& s) {
            BM_ClockSync(s, algo, 24, heavy);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
