// Figures 7-8 / Lemma 7.2: the Omega(min{script-E, n script-V})
// connectivity lower bound, reproduced as a scaling experiment on the
// family G_n. As n doubles:
//   - script-E ~ n X^4 grows linearly, and the edge-scanners' (flood,
//     DFS) cost tracks it (cost_over_E flat);
//   - n script-V ~ n^2 X grows quadratically, and the tree-growers'
//     (MST_centr, CON_hybrid) cost tracks it (cost_over_nV flat) —
//     exactly Lemma 7.2's Theta(n^2 X) sum.
#include "../bench/common.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"

namespace csca::bench {
namespace {

void BM_LowerBound(benchmark::State& state, const std::string& algo,
                   int n) {
  const Graph g = make_graph("lower_bound", n, 0);
  const auto m = measure(g);
  RunStats stats;
  for (auto _ : state) {
    if (algo == "flood") {
      stats = run_flood(g, 0, make_exact_delay()).stats;
    } else if (algo == "dfs") {
      stats = run_dfs(g, 0, make_exact_delay()).stats;
    } else if (algo == "mst_centr") {
      stats = run_mst_centr(g, 0, make_exact_delay()).stats;
    } else {
      stats = run_con_hybrid(g, 0, make_exact_delay()).stats;
    }
  }
  report(state, m, stats);
  state.counters["cost_over_E"] =
      static_cast<double>(stats.total_cost()) /
      static_cast<double>(m.comm_E);
  state.counters["cost_over_nV"] =
      static_cast<double>(stats.total_cost()) /
      (static_cast<double>(m.n) * static_cast<double>(m.comm_V));
}

void register_all() {
  for (int n : {9, 17, 33, 65}) {
    for (const std::string algo :
         {"flood", "dfs", "mst_centr", "hybrid"}) {
      benchmark::RegisterBenchmark(
          ("lower_bound/" + algo + "/n=" + std::to_string(n)).c_str(),
          [algo, n](benchmark::State& s) { BM_LowerBound(s, algo, n); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
