// Figures 7-8 / Lemma 7.2: the Omega(min{script-E, n script-V}) lower
// bound as a scaling experiment on G_n and the split variant G_{n,i}.
// Rows and bounds live in src/bench_harness/tables/f7_f8_lower_bound.cpp;
// this binary selects tables F7 and F8 (flags: --smoke --jobs=N
// --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F7", "F8"}, argc, argv);
}
