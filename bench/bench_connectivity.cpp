// Figure 2: connectivity / spanning tree algorithms.
//
//   DFS        O(script-E) comm, O(script-E) time
//   CON_flood  O(script-E) comm, O(script-D) time
//   CON_hybrid O(min{script-E, n script-V}) comm
//   lower bound Omega(min{script-E, n script-V})
//
// The cost_over_bound counter divides the measured communication by the
// row's claimed bound; it should stay a small constant across families —
// including the Figure 7 lower-bound family, where script-E explodes and
// only CON_hybrid stays near n * script-V.
#include "../bench/common.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"

namespace csca::bench {
namespace {

void BM_Connectivity(benchmark::State& state, const std::string& algo,
                     const std::string& family, int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  RunStats stats;
  for (auto _ : state) {
    if (algo == "flood") {
      stats = run_flood(g, 0, make_exact_delay()).stats;
    } else if (algo == "dfs") {
      stats = run_dfs(g, 0, make_exact_delay()).stats;
    } else if (algo == "mst_centr") {
      stats = run_mst_centr(g, 0, make_exact_delay()).stats;
    } else {
      stats = run_con_hybrid(g, 0, make_exact_delay()).stats;
    }
  }
  report(state, m, stats);
  const double e = static_cast<double>(m.comm_E);
  const double nv = static_cast<double>(m.n) *
                    static_cast<double>(m.comm_V);
  double bound = e;  // flood, dfs
  if (algo == "mst_centr") bound = nv;
  if (algo == "hybrid") bound = std::min(e, nv);
  state.counters["bound"] = bound;
  state.counters["cost_over_bound"] =
      static_cast<double>(stats.total_cost()) / bound;
  state.counters["min_E_nV"] = std::min(e, nv);
}

void register_all() {
  for (const std::string family :
       {"gnp", "geometric", "lower_bound"}) {
    const int n = family == "lower_bound" ? 33 : 48;
    for (const std::string algo :
         {"dfs", "flood", "mst_centr", "hybrid"}) {
      benchmark::RegisterBenchmark(
          ("connectivity/" + algo + "/" + family).c_str(),
          [algo, family, n](benchmark::State& s) {
            BM_Connectivity(s, algo, family, n);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
