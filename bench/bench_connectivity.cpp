// Figure 2: connectivity / spanning tree algorithms (DFS, CON_flood,
// MST_centr, CON_hybrid). Rows and bounds live in
// src/bench_harness/tables/f2_connectivity.cpp; this binary selects
// table F2 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F2"}, argc, argv);
}
