// Lemma 4.8: synchronizer gamma_w amortized per-pulse overhead vs alpha
// and beta. Rows and bounds live in
// src/bench_harness/tables/s4_synchronizer.cpp; this binary selects
// table S4 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"S4"}, argc, argv);
}
