// Lemma 4.8: the amortized per-pulse overhead of synchronizer gamma_w,
//   C_p = O(k n log n)       (control cost per pulse)
//   T_p = O(log_k n log n)   (time dilation per pulse)
// measured against alpha and beta hosting the same in-synch flooding
// protocol on normalized networks with heavy chords (log W levels).
// alpha's per-pulse control cost carries the full script-E (it cleans
// every link every pulse); gamma_w's collapses because heavy levels run
// rarely. The k sweep shows gamma's communication/time dial.
#include <cmath>

#include "../bench/common.h"
#include "sim/sync_engine.h"
#include "sync/protocols.h"
#include "sync/synchronizer.h"

namespace csca::bench {
namespace {

Graph normalized_chords(int n) {
  // Dense unit-weight level-0 subgraph (so the gamma partition parameter
  // k genuinely trades cluster depth against inter-cluster edges) plus
  // heavy chords spanning three higher weight levels.
  Rng rng(99);
  Graph dense = connected_gnp(n, 0.25, WeightSpec::constant(1), rng);
  Graph g(n);
  const std::vector<std::pair<std::pair<NodeId, NodeId>, Weight>> chords{
      {{0, n - 1}, 256}, {{1, n / 2}, 128}, {{2, (3 * n) / 4}, 64}};
  for (const auto& [pair, w] : chords) {
    g.add_edge(pair.first, pair.second, w);
  }
  for (const Edge& e : dense.edges()) {
    if (!g.has_edge(e.u, e.v)) g.add_edge(e.u, e.v, e.w);
  }
  return g;
}

void BM_Synchronizer(benchmark::State& state, const std::string& kind,
                     int k, int n) {
  const Graph g = normalized_chords(n);
  const auto factory = [](NodeId v) {
    return std::make_unique<InSynchFlood>(v, 0);
  };
  SyncEngine ref(g, factory, /*enforce_in_synch=*/true);
  const RunStats pi = ref.run();
  const auto t_pi = static_cast<std::int64_t>(pi.completion_time) + 1;

  SynchronizerRun run;
  for (auto _ : state) {
    SynchronizerKind sk = SynchronizerKind::kGammaW;
    if (kind == "alpha") sk = SynchronizerKind::kAlpha;
    if (kind == "beta") sk = SynchronizerKind::kBeta;
    SynchronizedNetwork net(g, factory, sk, k, t_pi,
                            make_exact_delay());
    run = net.run();
  }
  const double tp = static_cast<double>(t_pi);
  const double logn = std::log2(n + 2);
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["t_pi"] = tp;
  state.counters["c_pi"] = static_cast<double>(pi.algorithm_cost);
  state.counters["control_cost"] =
      static_cast<double>(run.stats.control_cost);
  state.counters["control_msgs"] =
      static_cast<double>(run.stats.control_messages);
  // Lemma 4.8's amortized measures.
  state.counters["C_p"] =
      static_cast<double>(run.stats.control_cost) / tp;
  state.counters["T_p"] = run.stats.completion_time / tp;
  state.counters["C_p_over_knlogn"] =
      static_cast<double>(run.stats.control_cost) / tp /
      (k * n * logn);
  state.counters["finished"] = run.hosted_all_finished ? 1 : 0;
}

void register_all() {
  const int n = 24;
  for (const std::string kind : {"alpha", "beta"}) {
    benchmark::RegisterBenchmark(
        ("synchronizer/" + kind).c_str(),
        [kind, n](benchmark::State& s) {
          BM_Synchronizer(s, kind, 2, n);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int k : {2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("synchronizer/gamma_w/k=" + std::to_string(k)).c_str(),
        [k, n](benchmark::State& s) {
          BM_Synchronizer(s, "gamma", k, n);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
