// Figure 4: SPT algorithms (SPT_centr, SPT_recur, SPT_synch,
// SPT_hybrid). Rows and bounds live in
// src/bench_harness/tables/f4_spt.cpp; this binary selects table F4
// (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F4"}, argc, argv);
}
