// Figure 4: SPT algorithms.
//
//   SPT_centr  O(n w(SPT)) comm, O(n script-D) time
//   SPT_recur  strips: comm grows with sync sweeps, time with strips
//   SPT_synch  O(script-E + script-D k n log n) comm,
//              O(script-D log_k n log n) time
//   SPT_hybrid min of synch and recur
//
// cost_over_bound divides the measured total by each row's claim.
#include <cmath>

#include "../bench/common.h"
#include "conn/spt_centr.h"
#include "spt/hybrid.h"
#include "spt/recur.h"
#include "spt/spt_synch.h"

namespace csca::bench {
namespace {

void BM_Spt(benchmark::State& state, const std::string& algo,
            const std::string& family, int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  RunStats stats;
  Weight w_spt = 0;
  for (auto _ : state) {
    if (algo == "centr") {
      const auto run = run_spt_centr(g, 0, make_exact_delay());
      stats = run.stats;
      w_spt = run.tree.weight(g);
    } else if (algo == "recur") {
      const auto run = run_spt_recur(g, 0, 8, make_exact_delay());
      stats = run.stats;
      w_spt = run.tree.weight(g);
    } else if (algo == "synch") {
      const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
      stats = run.async_run.stats;
      stats.completion_time = run.async_run.stats.completion_time;
      w_spt = run.tree.weight(g);
      state.counters["t_pi"] = static_cast<double>(run.t_pi);
    } else {
      const auto run = run_spt_hybrid(
          g, 0, 2, 8, [] { return make_exact_delay(); });
      stats.algorithm_cost = run.total_cost();
      stats.algorithm_messages =
          run.synch_stats.total_messages() +
          run.recur_stats.total_messages();
      stats.completion_time =
          std::max(run.synch_stats.completion_time,
                   run.recur_stats.completion_time);
      w_spt = run.tree.weight(g);
      state.counters["synch_won"] = run.synch_won ? 1 : 0;
    }
  }
  report(state, m, stats);
  const double e = static_cast<double>(m.comm_E);
  const double d = static_cast<double>(m.comm_D);
  const double logn = std::log2(m.n + 2);
  const double synch_bill = e + d * 2 * m.n * logn;
  const double centr_bill = static_cast<double>(m.n) *
                            static_cast<double>(w_spt);
  double bound = centr_bill;
  if (algo == "synch") bound = synch_bill;
  if (algo == "recur") bound = e + (d / 8 + 2) * 2 * m.n;
  if (algo == "hybrid") {
    bound = std::min(synch_bill, e + (d / 8 + 2) * 2 * m.n);
  }
  state.counters["w_spt"] = static_cast<double>(w_spt);
  state.counters["bound"] = bound;
  state.counters["cost_over_bound"] =
      static_cast<double>(stats.total_cost()) / bound;
}

void register_all() {
  for (const std::string family : {"gnp_pow2", "geometric", "grid"}) {
    for (const std::string algo :
         {"centr", "recur", "synch", "hybrid"}) {
      benchmark::RegisterBenchmark(
          ("spt/" + algo + "/" + family).c_str(),
          [algo, family](benchmark::State& s) {
            BM_Spt(s, algo, family, 36);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
