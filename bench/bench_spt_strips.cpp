// Figure 9: the strip method (tau sweep on SPT_recur). Rows and bounds
// live in src/bench_harness/tables/f9_strips.cpp; this binary selects
// table F9 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F9"}, argc, argv);
}
