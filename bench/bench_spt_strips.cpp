// Figure 9: the strip method. Sweeping the strip width tau on SPT_recur
// exposes the communication/time dial:
//   small tau  -> many strips: control traffic (tree sweeps) dominates,
//                 but no wasted optimistic offers;
//   large tau  -> one strip: minimal syncs, extra correction offers on
//                 graphs with detours.
// strips, msgs, cost and time per row trace the curve.
#include "../bench/common.h"
#include "spt/recur.h"

namespace csca::bench {
namespace {

void BM_Strips(benchmark::State& state, const std::string& family, int n,
               Weight tau) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  RunStats stats;
  std::int64_t strips = 0;
  for (auto _ : state) {
    const auto run = run_spt_recur(g, 0, tau, make_exact_delay());
    stats = run.stats;
    strips = run.strips;
  }
  report(state, m, stats);
  state.counters["tau"] = static_cast<double>(tau);
  state.counters["strips"] = static_cast<double>(strips);
  state.counters["msgs_per_node"] =
      static_cast<double>(stats.total_messages()) /
      static_cast<double>(m.n);
}

void register_all() {
  for (const std::string family : {"gnp", "geometric", "grid"}) {
    for (Weight tau : {1, 2, 4, 8, 16, 32, 64, 1 << 20}) {
      benchmark::RegisterBenchmark(
          ("spt_strips/" + family + "/tau=" + std::to_string(tau))
              .c_str(),
          [family, tau](benchmark::State& s) {
            BM_Strips(s, family, 48, tau);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
