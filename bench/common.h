// Shared helpers for the table/figure-regeneration benches.
//
// Each bench binary reproduces one table or figure of the paper (see
// DESIGN.md §3). A "benchmark" here is one row: it runs the simulated
// algorithm once and reports the *simulated* cost-sensitive metrics as
// benchmark counters — communication cost (the weighted ledger), elapsed
// simulated time, and the ratio of the measurement to the bound the
// paper's table claims for that row. Wall-clock timing of the simulator
// itself is irrelevant and iterations are pinned to 1.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "graph/generators.h"
#include "graph/measures.h"
#include "sim/message.h"

namespace csca::bench {

/// The families the evaluation sweeps. Weighted so that the interesting
/// regimes appear: geometric = WAN-like (weights correlate with
/// distance), heavy_chords = d << W (clock sync / synchronizer regime),
/// lower_bound = Figure 7.
inline Graph make_graph(const std::string& family, int n,
                        std::uint64_t seed) {
  Rng rng(seed);
  if (family == "gnp") {
    return connected_gnp(n, 0.15, WeightSpec::uniform(1, 32), rng);
  }
  if (family == "gnp_pow2") {
    return connected_gnp(n, 0.15, WeightSpec::power_of_two(0, 5), rng);
  }
  if (family == "geometric") {
    return random_geometric(n, 0.3, 64, rng);
  }
  if (family == "grid") {
    const int side = std::max(2, static_cast<int>(std::sqrt(n)));
    return grid_graph(side, side, WeightSpec::uniform(1, 16), rng);
  }
  if (family == "cycle") {
    return cycle_graph(n, WeightSpec::constant(2), rng);
  }
  if (family == "lower_bound") {
    return lower_bound_family(n, 8);
  }
  if (family == "spt_heavy") {
    return spt_heavy_family(n);
  }
  if (family == "mst_deep") {
    return mst_deep_family(n);
  }
  if (family == "heavy_chords") {
    Graph g(n);
    for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
    g.add_edge(0, n - 1, 512);
    g.add_edge(1, n / 2, 512);
    g.add_edge(2, (3 * n) / 4, 256);
    return g;
  }
  throw PreconditionError("unknown graph family: " + family);
}

/// Publishes the standard cost-sensitive counters on a bench row.
inline void report(benchmark::State& state, const NetworkMeasures& m,
                   const RunStats& stats) {
  state.counters["n"] = static_cast<double>(m.n);
  state.counters["E_w"] = static_cast<double>(m.comm_E);
  state.counters["V_w"] = static_cast<double>(m.comm_V);
  state.counters["D_w"] = static_cast<double>(m.comm_D);
  state.counters["msgs"] = static_cast<double>(stats.total_messages());
  state.counters["cost"] = static_cast<double>(stats.total_cost());
  state.counters["time"] = stats.completion_time;
}

}  // namespace csca::bench
