// Figure 1: global function computation — upper bound O(script-V)
// communication / O(script-D) time via shallow-light trees, against the
// lower bounds Omega(script-V) / Omega(script-D) (Theorem 2.1).
//
// Rows: the aggregation tree used (MST / SPT / SLT(q=2)) x graph family.
// cost_over_V and time_over_D are the headline columns: for the SLT both
// stay bounded by small constants simultaneously; the MST's time ratio
// and the SPT's cost ratio blow up on adversarial families (the cycle is
// the classic bad case). Also reproduces Theorem 2.7 (distributed SLT
// construction cost, O(script-V n^2) / O(script-D n^2)) as *_over rows.
#include "../bench/common.h"
#include "core/distributed_slt.h"
#include "core/global_compute.h"
#include "core/slt.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace csca::bench {
namespace {

RootedTree make_tree(const std::string& kind, const Graph& g) {
  if (kind == "mst") return mst_tree(g, 0);
  if (kind == "spt") return dijkstra(g, 0).tree(g);
  return build_slt(g, 0, 2.0).tree;  // "slt"
}

void BM_GlobalCompute(benchmark::State& state, const std::string& tree,
                      const std::string& family, int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  const RootedTree t = make_tree(tree, g);
  std::vector<std::int64_t> inputs(
      static_cast<std::size_t>(g.node_count()));
  Rng rng(7);
  for (auto& x : inputs) x = rng.uniform_int(-1000, 1000);
  GlobalComputeRun run{};
  for (auto _ : state) {
    run = run_global_compute(g, t, functions::sum(), inputs,
                             make_exact_delay());
  }
  report(state, m, run.stats);
  state.counters["cost_over_V"] =
      static_cast<double>(run.stats.total_cost()) /
      static_cast<double>(m.comm_V);
  state.counters["time_over_D"] =
      run.completion_time / static_cast<double>(m.comm_D);
}

void BM_DistributedSlt(benchmark::State& state, const std::string& family,
                       int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  double cost = 0;
  double time = 0;
  for (auto _ : state) {
    const auto run = run_distributed_slt(
        g, 0, 2.0, [] { return make_exact_delay(); });
    cost = static_cast<double>(run.total_cost());
    time = run.total_time();
  }
  const double n2 = static_cast<double>(m.n) * static_cast<double>(m.n);
  state.counters["cost"] = cost;
  state.counters["time"] = time;
  state.counters["cost_over_Vn2"] =
      cost / (static_cast<double>(m.comm_V) * n2);
  state.counters["time_over_Dn2"] =
      time / (static_cast<double>(m.comm_D) * n2);
}

void register_all() {
  for (const std::string family : {"gnp", "geometric", "cycle"}) {
    const int n = family == "cycle" ? 64 : 48;
    for (const std::string tree : {"mst", "spt", "slt"}) {
      benchmark::RegisterBenchmark(
          ("global_function/" + tree + "/" + family).c_str(),
          [tree, family, n](benchmark::State& s) {
            BM_GlobalCompute(s, tree, family, n);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const std::string family : {"gnp", "grid"}) {
    benchmark::RegisterBenchmark(
        ("distributed_slt/" + family).c_str(),
        [family](benchmark::State& s) {
          BM_DistributedSlt(s, family, 24);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
