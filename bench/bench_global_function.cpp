// Figure 1 + Theorem 2.7: global function computation over MST / SPT /
// SLT / distributed-SLT aggregation trees. The row grid, bound formulas
// and tolerances live in src/bench_harness/tables/f1_global_function.cpp;
// this binary selects table F1 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F1"}, argc, argv);
}
