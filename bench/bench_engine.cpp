// Pure engine micro-benchmark: event throughput of the simulation hot
// path itself, with no protocol logic beyond trivial forwarding.
//
// Unlike the table/figure benches (which report *simulated* cost
// metrics and pin iterations to 1), this binary measures wall-clock
// events/sec of csca::Network and csca::SyncEngine — the hard ceiling
// on how large the reproduction sweeps can scale. Workloads:
//
//   * flood: TTL broadcast storm — every delivery with ttl > 0
//     re-broadcasts on all incident edges. Queue depth grows into the
//     millions; stresses heap sifts, payload moves, and the arena.
//   * ping_ring: k tokens relayed around a cycle — tiny queue, long
//     event chain; stresses per-event constant cost (pop/push latency).
//   * sync_flood: the storm on the weighted synchronous engine.
//
// Prints one row per workload and writes a machine-readable
// BENCH_engine.json so the perf trajectory is tracked PR over PR. The
// workload rows run through the shared bench_harness SweepRunner (pinned
// to jobs=1 — these rows time wall-clock, so running them concurrently
// would corrupt the measurement) and render with the common BENCH json
// schema; this table is deliberately NOT in builtin_tables(), because
// its wall-clock fields are outside the byte-identical JSON contract.
//
// Usage: bench_engine [--smoke] [--out=PATH]
//   --smoke     tiny inputs (~10^4 events/row); used by tools/check.sh
//   --out=PATH  JSON output path (default BENCH_engine.json)
// The flood workload is additionally run through a faithful replica of
// the seed engine's event loop (std::priority_queue of by-value event
// nodes, copy-on-top) so every bench run reports the tiered queue's
// speedup against the seed measured back-to-back on the same machine —
// immune to run-to-run machine drift.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <queue>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_harness/json.h"
#include "bench_harness/sweep.h"
#include "graph/generators.h"
#include "par/run_pool.h"
#include "par/shard_engine.h"
#include "sim/network.h"
#include "sim/sync_engine.h"

namespace csca {
namespace {

class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}}, MsgClass::kAlgorithm);
    }
  }

 private:
  std::int64_t ttl_;
};

class SyncStorm final : public SyncProcess {
 public:
  explicit SyncStorm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(SyncContext& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0, 0, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(SyncContext& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, m.at(1) + 1, ctx.self(), m.at(3)}}, MsgClass::kAlgorithm);
    }
  }

 private:
  std::int64_t ttl_;
};

// k equally spaced tokens each relayed `hops` times around a cycle.
class RingToken final : public Process {
 public:
  RingToken(NodeId self, int n, int k, std::int64_t hops)
      : self_(self), n_(n), k_(k), hops_(hops) {}
  void on_start(Context& ctx) override {
    if (self_ % (n_ / k_) != 0) return;
    forward(ctx, hops_);
  }
  void on_message(Context& ctx, const Message& m) override {
    if (m.at(0) > 0) forward(ctx, m.at(0));
  }

 private:
  void forward(Context& ctx, std::int64_t remaining) {
    if (succ_ == kNoEdge) {
      for (EdgeId e : ctx.incident()) {
        if (ctx.neighbor(e) == (self_ + 1) % n_) succ_ = e;
      }
    }
    ctx.send(succ_, Message{0, {remaining - 1, self_, 0, 0}}, MsgClass::kAlgorithm);
  }
  NodeId self_;
  int n_, k_;
  std::int64_t hops_;
  EdgeId succ_ = kNoEdge;
};

struct Row {
  std::string workload;
  std::string family;
  int n = 0;
  std::int64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  std::size_t peak_queue_depth = 0;
  double speedup_vs_seed = 0;  // > 0 only when a baseline run exists
};

// The seed engine's hot path, reproduced exactly: one by-value node per
// pending delivery in a binary std::priority_queue, `top()` copying the
// node out before `pop()` sifts, and the seed's Message layout — a
// heap-allocated std::vector<std::int64_t> payload per message. Delay
// draws, FIFO clamping and the flood handler match Network+Storm line
// for line, so the event sequence is identical (asserted by the caller)
// and only the queue and message representation differ.
struct SeedFlood {
  struct Msg {
    int type = 0;
    std::vector<std::int64_t> data;
  };
  struct Node {
    double arrival;
    std::uint64_t seq;
    NodeId to;
    Msg msg;
    bool operator>(const Node& o) const {
      return std::tie(arrival, seq) > std::tie(o.arrival, o.seq);
    }
  };

  const Graph& g;
  std::unique_ptr<DelayModel> delay;
  Rng rng;
  std::priority_queue<Node, std::vector<Node>, std::greater<>> queue;
  std::vector<double> last_arrival;
  std::uint64_t seq = 0;
  double now = 0;
  std::int64_t events = 0;
  std::size_t peak = 0;

  SeedFlood(const Graph& graph, std::uint64_t seed)
      : g(graph),
        delay(make_uniform_delay(0.1, 0.9)),
        rng(seed),
        last_arrival(static_cast<std::size_t>(2 * graph.edge_count()), 0.0) {}

  void send(NodeId from, EdgeId e, Msg m) {
    const Edge& edge = g.edge(e);
    const double d = delay->delay(edge.w, rng);
    const std::size_t channel =
        static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
    const double arrival = std::max(now + d, last_arrival[channel]);
    last_arrival[channel] = arrival;
    queue.push(Node{arrival, seq++, g.other(e, from), std::move(m)});
    peak = std::max(peak, queue.size());
  }

  void run(std::int64_t ttl) {
    for (EdgeId e : g.incident(0)) send(0, e, Msg{0, {ttl, 0, 0, 0}});
    while (!queue.empty()) {
      const Node ev = queue.top();
      queue.pop();
      now = ev.arrival;
      ++events;
      const std::int64_t t = ev.msg.data[0];
      if (t <= 0) continue;
      for (EdgeId e : g.incident(ev.to)) {
        send(ev.to, e,
             Msg{0, {t - 1, ev.msg.data[1] + 1, ev.to, ev.msg.data[3]}});
      }
    }
  }
};

template <typename Engine, typename Run>
Row timed(const std::string& workload, const std::string& family, int n,
          Engine& engine, Run run) {
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats stats = run();
  const auto t1 = std::chrono::steady_clock::now();
  Row row{workload, family, n, stats.events,
          std::chrono::duration<double>(t1 - t0).count()};
  row.events_per_sec =
      static_cast<double>(row.events) / std::max(row.seconds, 1e-12);
  row.peak_queue_depth = engine.peak_queue_depth();
  std::printf("%-18s %-10s n=%-6d events=%-9lld secs=%7.3f "
              "events/sec=%11.0f peak_queue=%zu\n",
              workload.c_str(), family.c_str(), n,
              static_cast<long long>(row.events), row.seconds,
              row.events_per_sec, row.peak_queue_depth);
  return row;
}

Row flood_grid(const std::string& name, int side, std::int64_t ttl,
               bool with_baseline = false) {
  Rng rng(7);
  Graph g = grid_graph(side, side, WeightSpec::uniform(1, 16), rng);
  Network net(
      g, [ttl](NodeId) { return std::make_unique<Storm>(ttl); },
      make_uniform_delay(0.1, 0.9), 1234);
  Row row = timed(name, "grid", side * side, net, [&] { return net.run(); });
  if (!with_baseline) return row;

  SeedFlood seed(g, 1234);
  const auto t0 = std::chrono::steady_clock::now();
  seed.run(ttl);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double seed_eps = static_cast<double>(seed.events) / secs;
  require(seed.events == row.events,
          "seed-queue replica diverged from the engine");
  row.speedup_vs_seed = row.events_per_sec / seed_eps;
  std::printf("%-18s %-10s n=%-6d events=%-9lld secs=%7.3f "
              "events/sec=%11.0f peak_queue=%zu  -> speedup %.2fx\n",
              (name + "_seedq").c_str(), "grid", side * side,
              static_cast<long long>(seed.events), secs, seed_eps, seed.peak,
              row.speedup_vs_seed);
  return row;
}

Row flood_gnp(const std::string& name, int n, std::int64_t ttl) {
  Rng rng(5);
  Graph g = connected_gnp(n, 0.15, WeightSpec::uniform(1, 32), rng);
  Network net(
      g, [ttl](NodeId) { return std::make_unique<Storm>(ttl); },
      make_uniform_delay(0.1, 0.9), 4321);
  return timed(name, "gnp", n, net, [&] { return net.run(); });
}

Row ping_ring(const std::string& name, int n, int tokens, int laps) {
  Rng rng(7);
  Graph g = cycle_graph(n, WeightSpec::constant(2), rng);
  const std::int64_t hops = static_cast<std::int64_t>(n) * laps;
  Network net(
      g,
      [&](NodeId v) { return std::make_unique<RingToken>(v, n, tokens, hops); },
      make_uniform_delay(0.1, 0.9), 99);
  return timed(name, "cycle", n, net, [&] { return net.run(); });
}

Row sync_flood_grid(const std::string& name, int side, std::int64_t ttl) {
  Rng rng(7);
  Graph g = grid_graph(side, side, WeightSpec::uniform(1, 16), rng);
  SyncEngine eng(g, [ttl](NodeId) { return std::make_unique<SyncStorm>(ttl); });
  return timed(name, "grid", side * side, eng, [&] { return eng.run(); });
}

// Runs the workload named by spec.algo and reports it as a harness row
// (metrics only, no bound checks — throughput has no paper claim).
bench::RowResult run_workload(const bench::RowSpec& spec) {
  Row row;
  if (spec.algo == "flood_grid_10k") {
    row = flood_grid(spec.algo, 16, 7, /*with_baseline=*/true);
  } else if (spec.algo == "ping_ring_10k") {
    row = ping_ring(spec.algo, 128, 8, 10);
  } else if (spec.algo == "sync_flood_10k") {
    row = sync_flood_grid(spec.algo, 16, 7);
  } else if (spec.algo == "flood_grid_100k") {
    row = flood_grid(spec.algo, 32, 8);
  } else if (spec.algo == "flood_grid_1M") {
    row = flood_grid(spec.algo, 64, 11, /*with_baseline=*/true);
  } else if (spec.algo == "flood_gnp_2M") {
    row = flood_gnp(spec.algo, 256, 3);
  } else if (spec.algo == "ping_ring_1M") {
    row = ping_ring(spec.algo, 1024, 32, 30);
  } else if (spec.algo == "ping_ring_10M") {
    row = ping_ring(spec.algo, 1024, 64, 150);
  } else {
    require(spec.algo == "sync_flood_1M",
            "bench_engine: unknown workload " + spec.algo);
    row = sync_flood_grid(spec.algo, 64, 11);
  }
  bench::RowResult out;
  out.measured.push_back({"events", static_cast<double>(row.events)});
  out.measured.push_back({"seconds", row.seconds});
  out.measured.push_back({"events_per_sec", row.events_per_sec});
  out.measured.push_back(
      {"peak_queue_depth", static_cast<double>(row.peak_queue_depth)});
  if (row.speedup_vs_seed > 0) {
    out.measured.push_back({"speedup_vs_seed", row.speedup_vs_seed});
  }
  return out;
}

bench::SweepSpec engine_spec() {
  bench::SweepSpec spec;
  spec.table = "engine";
  spec.title = "Engine event throughput (wall-clock, not a table repro)";
  spec.run = run_workload;
  spec.rows.push_back({"flood_grid_100k", "grid", 32 * 32});
  spec.rows.push_back({"flood_grid_1M", "grid", 64 * 64});
  spec.rows.push_back({"flood_gnp_2M", "gnp", 256});
  spec.rows.push_back({"ping_ring_1M", "cycle", 1024});
  spec.rows.push_back({"ping_ring_10M", "cycle", 1024});
  spec.rows.push_back({"sync_flood_1M", "grid", 64 * 64});
  spec.smoke_rows.push_back({"flood_grid_10k", "grid", 16 * 16});
  spec.smoke_rows.push_back({"ping_ring_10k", "cycle", 128});
  spec.smoke_rows.push_back({"sync_flood_10k", "grid", 16 * 16});
  bench::finalize_rows(spec);
  return spec;
}

// ---- parallel scaling (BENCH_parallel.json) -------------------------
//
// Two independent axes of parallelism, measured against the same-seed
// sequential execution run back-to-back on the same machine:
//
//   * shard_engine: one flood storm on the sharded conservative engine
//     at 1/2/4/8 shards (threads = shards), vs the keyed sequential
//     Network. The ledgers are asserted bit-identical before the timing
//     is trusted — a fast wrong engine is not a speedup.
//   * multi_run: a sweep of independent whole runs (split()-derived
//     seeds) through the RunPool harness at 1/2/4/8 workers, vs the
//     same sweep on one worker.
//
// speedup_vs_seq is recorded honestly for whatever machine runs this;
// hardware_concurrency is written alongside so a 1-core container's
// ~1x numbers are interpretable.

struct ParRow {
  int shards = 0;
  int threads = 0;
  std::int64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double speedup_vs_seq = 0;
};

struct MultiRow {
  int jobs = 0;
  int runs = 0;
  std::int64_t events = 0;
  double seconds = 0;
  double speedup_vs_seq = 0;
};

void write_parallel_json(const std::string& path, bool smoke,
                         const std::vector<ParRow>& shard_rows,
                         const std::vector<MultiRow>& multi_rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_engine: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"parallel_scaling\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"shard_engine\": [\n";
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    const ParRow& r = shard_rows[i];
    out << "    {\"shards\": " << r.shards << ", \"threads\": " << r.threads
        << ", \"events\": " << r.events << ", \"seconds\": " << r.seconds
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"speedup_vs_seq\": " << r.speedup_vs_seq << "}"
        << (i + 1 < shard_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"multi_run\": [\n";
  for (std::size_t i = 0; i < multi_rows.size(); ++i) {
    const MultiRow& r = multi_rows[i];
    out << "    {\"jobs\": " << r.jobs << ", \"runs\": " << r.runs
        << ", \"events\": " << r.events << ", \"seconds\": " << r.seconds
        << ", \"speedup_vs_seq\": " << r.speedup_vs_seq << "}"
        << (i + 1 < multi_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void bench_parallel(bool smoke, const std::string& path) {
  // Shard-engine scaling: one storm, keyed sequential reference.
  const int side = smoke ? 12 : 32;
  const std::int64_t ttl = smoke ? 6 : 8;
  Rng rng(7);
  Graph g = grid_graph(side, side, WeightSpec::uniform(1, 16), rng);
  const auto factory = [ttl](NodeId) { return std::make_unique<Storm>(ttl); };

  Network ref(g, factory, make_uniform_delay(0.1, 0.9), 1234);
  ref.set_keyed_delays(true);
  const auto r0 = std::chrono::steady_clock::now();
  const RunStats seq = ref.run();
  const double seq_secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - r0)
                              .count();
  std::printf("%-18s %-10s n=%-6d events=%-9lld secs=%7.3f (keyed seq "
              "reference)\n",
              "par_flood_seq", "grid", side * side,
              static_cast<long long>(seq.events), seq_secs);

  std::vector<ParRow> shard_rows;
  for (const int k : {1, 2, 4, 8}) {
    ShardEngine eng(g, factory, make_uniform_delay(0.1, 0.9), 1234,
                    ShardEngine::Options{k, 0, {}});
    const auto t0 = std::chrono::steady_clock::now();
    const RunStats stats = eng.run();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    require(stats.events == seq.events &&
                stats.completion_time == seq.completion_time &&
                stats.algorithm_cost == seq.algorithm_cost,
            "sharded engine diverged from the sequential reference");
    ParRow row;
    row.shards = k;
    row.threads = k;
    row.events = stats.events;
    row.seconds = secs;
    row.events_per_sec =
        static_cast<double>(stats.events) / std::max(secs, 1e-12);
    row.speedup_vs_seq = seq_secs / std::max(secs, 1e-12);
    std::printf("%-18s %-10s n=%-6d events=%-9lld secs=%7.3f "
                "events/sec=%11.0f  -> speedup %.2fx\n",
                ("par_flood_s" + std::to_string(k)).c_str(), "grid",
                side * side, static_cast<long long>(row.events), row.seconds,
                row.events_per_sec, row.speedup_vs_seq);
    shard_rows.push_back(row);
  }

  // Multi-run harness scaling: independent whole runs, split seeds.
  const int runs = 8;
  const int run_side = smoke ? 10 : 24;
  const std::int64_t run_ttl = smoke ? 5 : 7;
  Rng rng2(11);
  Graph g2 = grid_graph(run_side, run_side, WeightSpec::uniform(1, 16), rng2);
  Rng seeds(9000);
  const auto one_run = [&](std::size_t i) {
    Network net(
        g2, [run_ttl](NodeId) { return std::make_unique<Storm>(run_ttl); },
        make_uniform_delay(0.1, 0.9), seeds.split(i).seed());
    return net.run().events;
  };

  std::vector<MultiRow> multi_rows;
  double base_secs = 0;
  for (const int jobs : {1, 2, 4, 8}) {
    RunPool pool(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::int64_t> events = pool.map(runs, one_run);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::int64_t total = 0;
    for (const std::int64_t e : events) total += e;
    if (jobs == 1) base_secs = secs;
    MultiRow row;
    row.jobs = jobs;
    row.runs = runs;
    row.events = total;
    row.seconds = secs;
    row.speedup_vs_seq = base_secs / std::max(secs, 1e-12);
    std::printf("%-18s %-10s n=%-6d events=%-9lld secs=%7.3f "
                "jobs=%d  -> speedup %.2fx\n",
                "par_multirun", "grid", run_side * run_side,
                static_cast<long long>(total), secs, jobs,
                row.speedup_vs_seq);
    multi_rows.push_back(row);
  }

  write_parallel_json(path, smoke, shard_rows, multi_rows);
}

}  // namespace
}  // namespace csca

int main(int argc, char** argv) {
  using namespace csca;
  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  std::string par_out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--par-out=", 10) == 0) {
      par_out_path = argv[i] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine [--smoke] [--out=PATH] "
                   "[--par-out=PATH]\n");
      return 2;
    }
  }

  // jobs pinned to 1: the rows time wall-clock, so concurrency would
  // corrupt the measurement.
  const bench::SweepRunner runner({/*jobs=*/1, smoke});
  const bench::TableResult table = runner.run(engine_spec());
  std::ofstream out(out_path);
  if (out) {
    out << bench::render_table_json(table);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench_engine: cannot write %s\n", out_path.c_str());
  }
  bench_parallel(smoke, par_out_path);
  if (!table.pass()) {
    for (const auto& row : table.rows) {
      if (row.failed) {
        std::fprintf(stderr, "bench_engine: row %s failed: %s\n",
                     row.spec.algo.c_str(), row.error.c_str());
      }
    }
    return 1;
  }
  return 0;
}
