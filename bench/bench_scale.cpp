// Capacity-scaling bench front end: drives the registered `scale`
// table (src/bench_harness/tables/scale.cpp) through the shared
// SweepRunner at jobs=1 — the full rows time wall-clock throughput, so
// concurrent rows would corrupt the measurement — writes
// BENCH_scale.json, and prints the capacity summary the table's JSON
// cannot carry: the process peak RSS (getrusage), which bounds the
// whole sweep including the 10^6-node rows.
//
// Usage: bench_scale [--smoke] [--out-dir=PATH]
//   --smoke        small-n deterministic rows; used by tools/check.sh
//   --out-dir=PATH where BENCH_scale.json lands (default bench_out)
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_harness/json.h"
#include "bench_harness/sweep.h"
#include "bench_harness/tables.h"

int main(int argc, char** argv) {
  using namespace csca::bench;
  bool smoke = false;
  std::string out_dir = "bench_out";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out-dir=", 10) == 0) {
      out_dir = argv[i] + 10;
    } else {
      std::fprintf(stderr, "usage: bench_scale [--smoke] [--out-dir=PATH]\n");
      return 2;
    }
  }

  const std::vector<SweepSpec> registry = builtin_tables();
  const SweepSpec* spec = find_table(registry, "scale");
  if (spec == nullptr) {
    std::fprintf(stderr, "bench_scale: table 'scale' not registered\n");
    return 1;
  }

  const SweepRunner runner({/*jobs=*/1, smoke});
  const TableResult table = runner.run(*spec);
  for (const RowResult& row : table.rows) {
    std::printf("%-24s events=%-9.0f peak_queue=%-8.0f "
                "state_B/node=%-6.2f graph_B/node=%-8.2f",
                row.spec.name(table.param_name).c_str(),
                row.metric("events"), row.metric("peak_queue_depth"),
                row.metric("state_bytes_per_node"),
                row.metric("graph_bytes_per_node"));
    // Smoke rows are deterministic-only (no wall-clock fields).
    const double eps = row.metric("events_per_sec");
    if (eps > 0) std::printf("  ev/s=%.0f", eps);
    std::printf("\n");
  }

  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // Linux reports ru_maxrss in KiB.
    std::printf("peak_rss_mib=%.1f\n",
                static_cast<double>(ru.ru_maxrss) / 1024.0);
  }

  const std::string path = write_table_json(out_dir, table);
  if (path.empty()) {
    std::fprintf(stderr, "bench_scale: cannot write %s/BENCH_scale.json\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf("%s -> %s\n", table.pass() ? "PASS" : "FAIL", path.c_str());
  if (!table.pass()) {
    for (const RowResult& row : table.rows) {
      if (row.failed) {
        std::fprintf(stderr, "bench_scale: row %s: error: %s\n",
                     row.spec.name(table.param_name).c_str(),
                     row.error.c_str());
        continue;
      }
      for (const BoundCheck& check : row.checks) {
        if (!check.pass()) {
          std::fprintf(stderr,
                       "bench_scale: row %s: %s ratio %.4g outside "
                       "[%.4g, %.4g] (measured %.6g, bound %.6g)\n",
                       row.spec.name(table.param_name).c_str(),
                       check.name.c_str(), check.ratio(), check.min_ratio,
                       check.tolerance, check.measured, check.bound);
        }
      }
    }
    return 1;
  }
  return 0;
}
