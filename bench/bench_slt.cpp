// Figures 5-6: the SLT weight/depth trade-off (q sweep) and the [BKJ83]
// extremal families. Rows and the Lemma 2.4 / 2.5 checks live in
// src/bench_harness/tables/f5_f6_slt.cpp; this binary selects tables
// F5 and F6 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"F5", "F6"}, argc, argv);
}
