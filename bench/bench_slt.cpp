// Figures 5-6: the SLT algorithm — the weight/depth trade-off as the
// parameter q sweeps (Lemmas 2.4 / 2.5):
//   w(T)   <= (1 + 2/q) script-V
//   depth  <= (2q + 1) script-D
// weight_over_V should fall toward 1 and depth_over_D rise (bounded) as
// q grows; lemma_24_slack / lemma_25_slack are measured/bound ratios and
// must stay <= 1.
#include "../bench/common.h"
#include "core/slt.h"

namespace csca::bench {
namespace {

void BM_Slt(benchmark::State& state, const std::string& family, int n,
            double q) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  Weight weight = 0;
  Weight depth = 0;
  Weight diam = 0;
  int breakpoints = 0;
  for (auto _ : state) {
    const auto slt = build_slt(g, 0, q);
    weight = slt.weight(g);
    depth = slt.depth(g);
    diam = slt.diameter(g);
    breakpoints = static_cast<int>(slt.breakpoints.size());
  }
  state.counters["n"] = static_cast<double>(m.n);
  state.counters["q"] = q;
  state.counters["weight_over_V"] =
      static_cast<double>(weight) / static_cast<double>(m.comm_V);
  state.counters["depth_over_D"] =
      static_cast<double>(depth) / static_cast<double>(m.comm_D);
  state.counters["diam_over_D"] =
      static_cast<double>(diam) / static_cast<double>(m.comm_D);
  state.counters["breakpoints"] = static_cast<double>(breakpoints);
  state.counters["lemma_24_slack"] =
      (static_cast<double>(weight) / static_cast<double>(m.comm_V)) /
      (1.0 + 2.0 / q);
  state.counters["lemma_25_slack"] =
      (static_cast<double>(depth) / static_cast<double>(m.comm_D)) /
      (2.0 * q + 1.0);
}

void register_all() {
  for (const std::string family :
       {"cycle", "gnp", "geometric", "spt_heavy", "mst_deep"}) {
    const int n = family == "cycle" ? 96 : 64;
    for (double q : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
      benchmark::RegisterBenchmark(
          ("slt/" + family + "/q=" + std::to_string(q)).c_str(),
          [family, n, q](benchmark::State& s) { BM_Slt(s, family, n, q); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
