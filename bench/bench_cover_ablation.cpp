// DESIGN.md ablation for the [AP91] Thm 1.1 substitution: cover
// coarsening radius/degree and the tree-edge-cover measurements. Rows
// and bounds live in src/bench_harness/tables/a1_cover.cpp; this binary
// selects table A1 (flags: --smoke --jobs=N --out-dir=P).
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({"A1"}, argc, argv);
}
