// Ablation for the [AP91] Theorem 1.1 substitution (DESIGN.md): the
// greedy cluster-merging coarsening guarantees subsumption and the
// (2k-1) radius bound by construction; the max-degree property is the
// one we measure instead of prove. This bench sweeps k and reports
//   rad_slack    = Rad(T) / ((2k-1) Rad(S))        (must be <= 1)
//   degree_norm  = Delta(T) / (k |S|^{1/k})        (Thm 1.1(3) shape)
//   clusters     = |T|
// plus the induced tree-edge-cover's Def. 3.1 measurements (max depth
// over d log n, max edge sharing over log n).
#include <cmath>

#include "../bench/common.h"
#include "partition/cover.h"
#include "partition/tree_edge_cover.h"

namespace csca::bench {
namespace {

void BM_Coarsen(benchmark::State& state, const std::string& family, int n,
                int k) {
  const Graph g = make_graph(family, n, 42);
  const Cover s = neighborhood_path_cover(g);
  Cover t;
  for (auto _ : state) {
    t = coarsen(g, s, k);
  }
  const double rs = static_cast<double>(
      std::max<Weight>(1, cover_radius(g, s)));
  const double rt = static_cast<double>(cover_radius(g, t));
  const double deg = cover_max_degree(g, t);
  state.counters["k"] = k;
  state.counters["initial_clusters"] = s.size();
  state.counters["clusters"] = t.size();
  state.counters["rad_S"] = rs;
  state.counters["rad_T"] = rt;
  state.counters["rad_slack"] = rt / ((2.0 * k - 1.0) * rs);
  state.counters["max_degree"] = deg;
  state.counters["degree_norm"] =
      deg / (k * std::pow(static_cast<double>(s.size()), 1.0 / k));
}

void BM_TreeEdgeCover(benchmark::State& state, const std::string& family,
                      int n) {
  const Graph g = make_graph(family, n, 42);
  const auto m = measure(g);
  TreeEdgeCover tec;
  for (auto _ : state) {
    tec = build_tree_edge_cover(g);
  }
  const double logn = std::log2(n + 2);
  state.counters["trees"] = tec.size();
  state.counters["depth_over_dlogn"] =
      static_cast<double>(max_tree_depth(g, tec)) /
      (static_cast<double>(m.d) * logn);
  state.counters["sharing_over_logn"] =
      static_cast<double>(max_tree_edge_sharing(g, tec)) / logn;
}

void register_all() {
  for (const std::string family : {"gnp", "grid", "heavy_chords"}) {
    for (int k : {1, 2, 3, 5, 8}) {
      benchmark::RegisterBenchmark(
          ("coarsen/" + family + "/k=" + std::to_string(k)).c_str(),
          [family, k](benchmark::State& s) {
            BM_Coarsen(s, family, 32, k);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("tree_edge_cover/" + family).c_str(),
        [family](benchmark::State& s) { BM_TreeEdgeCover(s, family, 32); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace csca::bench

int main(int argc, char** argv) {
  csca::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
