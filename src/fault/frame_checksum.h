// The wire-frame checksum formula, header-only so it is usable both
// below csca_sim (fault_injector.cpp forges frames that must still
// verify) and above it (reliable_link.cpp builds and validates frames).
//
//   ck = c_0 * type + sum_i c_{i+1} * word_i,   c_j = mix64(j) | 1.
//
// Odd multipliers are units mod 2^64, so any single-word change moves
// the sum — the exact detection bound the ARQ layer's masking rule and
// FaultInjector::garble are calibrated against (see reliable_link.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace csca {

/// Checksum over a frame's type tag and its first n payload words.
inline std::int64_t frame_checksum(int type, const std::int64_t* words,
                                   std::size_t n) {
  std::uint64_t ck = (mix64(0) | 1) *
                     static_cast<std::uint64_t>(static_cast<std::int64_t>(type));
  for (std::size_t i = 0; i < n; ++i) {
    ck += (mix64(i + 1) | 1) * static_cast<std::uint64_t>(words[i]);
  }
  return static_cast<std::int64_t>(ck);
}

}  // namespace csca
