#include "fault/fault_injector.h"

#include <limits>

#include "util/require.h"

namespace csca {

FaultInjector::FaultInjector(const FaultPlan& plan, const Graph& g,
                             std::uint64_t run_seed)
    : plan_(plan),
      fate_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xFA7E)),
      dup_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xD0B1)),
      garble_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0x6A8B)),
      crash_time_(static_cast<std::size_t>(g.node_count()),
                  std::numeric_limits<double>::infinity()),
      outages_(static_cast<std::size_t>(g.edge_count())) {
  require(plan.drop_rate >= 0 && plan.dup_rate >= 0 &&
              plan.garble_rate >= 0 &&
              plan.drop_rate + plan.dup_rate + plan.garble_rate <= 1.0,
          "fault plan rates must be non-negative with "
          "drop + dup + garble <= 1");
  for (const CrashEvent& c : plan.crashes) {
    g.check_node(c.node);
    require(c.at >= 0, "crash time must be non-negative");
    double& t = crash_time_[static_cast<std::size_t>(c.node)];
    t = std::min(t, c.at);
  }
  for (const LinkOutage& o : plan.outages) {
    require(o.edge >= 0 && o.edge < g.edge_count(),
            "outage edge id out of range");
    require(o.down_at >= 0 && o.up_at > o.down_at,
            "outage interval must be non-empty with down_at >= 0");
    outages_[static_cast<std::size_t>(o.edge)].emplace_back(o.down_at,
                                                           o.up_at);
  }
}

}  // namespace csca
