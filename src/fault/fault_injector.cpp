#include "fault/fault_injector.h"

#include <limits>

#include "fault/frame_checksum.h"
#include "util/require.h"

namespace csca {

namespace {

// ARQ frame tags, mirrored from fault/reliable_link.h (csca_fault sits
// *above* csca_sim, so this layer cannot include it; the values are
// pinned by the wire-format tests).
constexpr int kFrameData = 71001;
constexpr int kFrameAck = 71002;

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const Graph& g,
                             std::uint64_t run_seed)
    : plan_(plan),
      fate_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xFA7E)),
      dup_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xD0B1)),
      garble_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0x6A8B)),
      byz_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xB42A)),
      equiv_seed_(derive_stream_seed(mix64(run_seed) ^ plan.salt, 0xE041)),
      crash_time_(static_cast<std::size_t>(g.node_count()),
                  std::numeric_limits<double>::infinity()),
      outages_(static_cast<std::size_t>(g.edge_count())) {
  plan.validate(g);
  for (const CrashEvent& c : plan.crashes) {
    double& t = crash_time_[static_cast<std::size_t>(c.node)];
    t = std::min(t, c.at);
  }
  for (const LinkOutage& o : plan.outages) {
    outages_[static_cast<std::size_t>(o.edge)].emplace_back(o.down_at,
                                                            o.up_at);
  }
  compile_byzantine(g);
}

FaultInjector::FaultInjector(const FaultPlan& plan, const ChurnPlan& churn,
                             const Graph& g, std::uint64_t run_seed)
    : FaultInjector(plan, g, run_seed) {
  churn.validate(g);
  compile_churn(churn, g);
}

void FaultInjector::compile_byzantine(const Graph& g) {
  if (plan_.byzantine.empty() ||
      (plan_.equivocate_rate == 0 && plan_.forge_rate == 0)) {
    return;
  }
  has_byzantine_ = true;
  is_byzantine_.assign(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId v : plan_.byzantine) {
    is_byzantine_[static_cast<std::size_t>(v)] = true;
  }
}

void FaultInjector::compile_churn(const ChurnPlan& churn, const Graph& g) {
  // Liveness sweep: walk the epochs in time order and turn the
  // alternating down/up (leave/join) events into half-open intervals.
  // A first event `up`/`join` opens an initial [0, t) span; a trailing
  // `down`/`leave` runs to +infinity.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> edge_down_since(
      static_cast<std::size_t>(g.edge_count()), -1.0);
  std::vector<bool> edge_saw_event(static_cast<std::size_t>(g.edge_count()),
                                   false);
  std::vector<double> node_gone_since(
      static_cast<std::size_t>(g.node_count()), -1.0);
  std::vector<bool> node_saw_event(static_cast<std::size_t>(g.node_count()),
                                   false);
  if (absences_.empty()) {
    absences_.resize(static_cast<std::size_t>(g.node_count()));
  }
  for (const ChurnEpoch& ep : churn.epochs) {
    if (ep.redraw_fraction > 0 || !ep.edges_down.empty() ||
        !ep.edges_up.empty() || !ep.leaves.empty() || !ep.joins.empty()) {
      churn_live_ = true;
    }
    for (EdgeId e : ep.edges_down) {
      edge_down_since[static_cast<std::size_t>(e)] = ep.at;
      edge_saw_event[static_cast<std::size_t>(e)] = true;
    }
    for (EdgeId e : ep.edges_up) {
      const auto i = static_cast<std::size_t>(e);
      const double since = edge_saw_event[i] ? edge_down_since[i] : 0.0;
      if (ep.at > since) outages_[i].emplace_back(since, ep.at);
      edge_down_since[i] = -1.0;
      edge_saw_event[i] = true;
    }
    for (NodeId v : ep.leaves) {
      node_gone_since[static_cast<std::size_t>(v)] = ep.at;
      node_saw_event[static_cast<std::size_t>(v)] = true;
    }
    for (NodeId v : ep.joins) {
      const auto i = static_cast<std::size_t>(v);
      const double since = node_saw_event[i] ? node_gone_since[i] : 0.0;
      if (ep.at > since) {
        absences_[i].emplace_back(since, ep.at);
        has_absences_ = true;
      }
      node_gone_since[i] = -1.0;
      node_saw_event[i] = true;
    }
  }
  for (std::size_t i = 0; i < edge_down_since.size(); ++i) {
    if (edge_down_since[i] >= 0) {
      outages_[i].emplace_back(edge_down_since[i], kInf);
    }
  }
  for (std::size_t i = 0; i < node_gone_since.size(); ++i) {
    if (node_gone_since[i] >= 0) {
      absences_[i].emplace_back(node_gone_since[i], kInf);
      has_absences_ = true;
    }
  }
}

void FaultInjector::forge(std::uint64_t channel, std::uint64_t count,
                          Message& m) const {
  const std::uint64_t k =
      derive_stream_seed(derive_stream_seed(byz_seed_, channel),
                         derive_stream_seed(count, 0xF063));
  if ((m.type == kFrameData || m.type == kFrameAck) && m.data.size() >= 2) {
    // Corrupt one non-checksum word, then re-patch the trailing
    // checksum so the forged frame still verifies.
    const std::size_t body = m.data.size() - 1;
    const std::size_t i =
        static_cast<std::size_t>(derive_stream_seed(k, 0x11D3) % body);
    m.data[i] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(m.data[i]) ^ (mix64(k) | 1));
    m.data[body] = frame_checksum(m.type, m.data.begin(), body);
    return;
  }
  corrupt_word(k, m);
}

}  // namespace csca
