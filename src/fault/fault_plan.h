// Declarative fault model for a single simulation run.
//
// A FaultPlan describes everything that can go wrong with the channel
// assumptions the paper's protocols rely on: crash-stop node failures at
// scheduled virtual times, link up/down outage intervals, and per-send
// drop / duplication draws. The plan is pure data — engines consume it
// through a FaultInjector (fault_injector.h), which turns the stochastic
// part into keyed per-channel draws so the bit-identical contract of the
// sharded engine survives faults at any shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace csca {

/// Node `node` halts (crash-stop) at virtual time `at`: it executes no
/// further handlers, sends nothing, and every message arriving at or
/// after `at` is lost. `at == 0` means the node never starts.
struct CrashEvent {
  NodeId node = kNoNode;
  double at = 0;
};

/// Edge `edge` carries no messages during [down_at, up_at): sends
/// attempted while down are lost at the sender, and messages already in
/// flight are lost if their arrival falls inside the interval.
struct LinkOutage {
  EdgeId edge = kNoEdge;
  double down_at = 0;
  double up_at = 0;
};

/// The full fault model for one run. Default-constructed plans are
/// inactive: attaching one to an engine is observably free (ledgers and
/// digests byte-identical to a no-fault run).
struct FaultPlan {
  /// Per-send probability that the message is silently lost. The draw
  /// is keyed by (run seed, salt, directed channel, send count), so it
  /// is independent of delay draws and of scheduling.
  double drop_rate = 0;
  /// Per-send probability that the channel delivers a second, phantom
  /// copy of the message (with its own delay draw). Disjoint with drop:
  /// one unit draw decides, so drop_rate + dup_rate must be <= 1.
  double dup_rate = 0;
  /// Per-send probability that the message is delivered with one keyed
  /// payload word XOR-corrupted (the type tag when the payload is
  /// empty). Third band of the same unit draw, so
  /// drop_rate + dup_rate + garble_rate must be <= 1 and a garbled send
  /// is never also dropped or duplicated.
  double garble_rate = 0;
  std::vector<CrashEvent> crashes;
  std::vector<LinkOutage> outages;
  /// The corruption set: nodes under adversarial control. Byzantine
  /// behavior is applied (with the keyed per-send rates below) only to
  /// messages *originating* at these nodes; everyone else's traffic is
  /// untouched. This is what the containment rule in
  /// check/byzantine_check.h asserts against.
  std::vector<NodeId> byzantine;
  /// Per-send probability that a byzantine sender equivocates: the
  /// payload is corrupted with a *channel-keyed* mask, so the copies a
  /// node sends to different neighbors in the same round disagree by
  /// construction. Keyed like send fates, on an independent stream.
  double equivocate_rate = 0;
  /// Per-send probability that a byzantine sender forges the frame:
  /// one payload word is corrupted and, when the message is an ARQ
  /// DATA/ACK frame, the trailing checksum is re-patched so
  /// arq_frame_valid still accepts it — damage the reliable-link layer
  /// cannot detect. Second band of the same byzantine unit draw, so
  /// equivocate_rate + forge_rate must be <= 1.
  double forge_rate = 0;
  /// Decorrelates the fault stream from everything else derived from
  /// the run seed (and lets two plans with equal rates draw different
  /// fates under the same seed).
  std::uint64_t salt = 0;

  /// True when the plan can affect a run at all.
  bool active() const {
    return drop_rate > 0 || dup_rate > 0 || garble_rate > 0 ||
           !crashes.empty() || !outages.empty() ||
           (!byzantine.empty() && (equivocate_rate > 0 || forge_rate > 0));
  }

  /// Validates the plan against a concrete graph: rates in range
  /// (drop + dup + garble <= 1, equivocate + forge <= 1), crash nodes /
  /// outage edges / byzantine nodes in range, non-negative times,
  /// well-formed non-empty outage intervals, and no two outage
  /// intervals overlapping on the same edge. Throws a named error on
  /// the first violation. Called by the FaultInjector constructor and
  /// by every engine's set_faults, so a malformed plan fails loudly
  /// instead of silently misbehaving.
  void validate(const Graph& g) const;
};

/// Names accepted by make_builtin_fault_plan, in presentation order:
/// none, drop1pct, drop5pct, dup1pct, garble1pct, crash_one, link_flap,
/// equiv2pct, forge2pct.
std::vector<std::string> builtin_fault_plan_names();

/// One-line description of a builtin fault plan (csca_check
/// --list-plans). Rejects unknown names.
std::string builtin_fault_plan_description(const std::string& name);

/// Builds a named builtin plan against a concrete graph (crash targets
/// and flapping links are picked from the graph, deterministically):
///  - none:      inactive plan (zero rates, no events).
///  - drop1pct:  1% keyed drop rate on every channel.
///  - drop5pct:  5% keyed drop rate on every channel.
///  - dup1pct:   1% keyed duplication rate on every channel.
///  - garble1pct: 1% keyed payload corruption on every channel.
///  - crash_one: node n/2 crash-stops at 1.5 * max edge weight.
///  - link_flap: three spread-out edges cycle down/up with period
///               2 * max edge weight, four outages each.
///  - equiv2pct: node n/2 is byzantine and equivocates on 2% of its
///               sends (channel-keyed conflicting payloads).
///  - forge2pct: node n/2 is byzantine and forges 2% of its sends
///               (corruption that passes the ARQ checksum).
/// Rejects unknown names.
FaultPlan make_builtin_fault_plan(const std::string& name, const Graph& g);

}  // namespace csca
