#include "fault/churn_plan.h"

#include <algorithm>
#include <map>

#include "util/require.h"
#include "util/rng.h"

namespace csca {

namespace {

// Stream tags for the two independent churn draws (decision / weight),
// disjoint from the injector's fate (0xFA7E), dup (0xD0B1) and garble
// (0x6A8B) streams.
constexpr std::uint64_t kRedrawPickStream = 0xC0D1;
constexpr std::uint64_t kRedrawWeightStream = 0xC0D2;

std::uint64_t churn_base(const ChurnPlan& plan, std::uint64_t run_seed,
                         std::uint64_t stream) {
  return derive_stream_seed(mix64(run_seed) ^ plan.salt, stream);
}

std::uint64_t churn_key(const ChurnPlan& plan, std::uint64_t run_seed,
                        std::uint64_t stream, std::size_t epoch, EdgeId e) {
  return derive_stream_seed(
      derive_stream_seed(churn_base(plan, run_seed, stream), epoch),
      static_cast<std::uint64_t>(e));
}

}  // namespace

bool ChurnPlan::active() const {
  for (const ChurnEpoch& ep : epochs) {
    if (ep.redraw_fraction > 0 || !ep.edges_down.empty() ||
        !ep.edges_up.empty() || !ep.leaves.empty() || !ep.joins.empty()) {
      return true;
    }
  }
  return false;
}

std::vector<double> ChurnPlan::epoch_times() const {
  std::vector<double> times;
  times.reserve(epochs.size());
  for (const ChurnEpoch& ep : epochs) times.push_back(ep.at);
  return times;
}

void ChurnPlan::validate(const Graph& g) const {
  double prev = -1.0;
  // id -> live state as of the last event seen (alternation tracking);
  // absent from the map = no event yet.
  std::map<EdgeId, bool> edge_up;
  std::map<NodeId, bool> node_present;
  for (std::size_t k = 0; k < epochs.size(); ++k) {
    const ChurnEpoch& ep = epochs[k];
    require(ep.at >= 0, "churn plan: epoch time must be non-negative");
    require(ep.at > prev,
            "churn plan: epoch times must be strictly increasing");
    prev = ep.at;
    require(ep.redraw_fraction >= 0 && ep.redraw_fraction <= 1,
            "churn plan: redraw fraction must be in [0, 1]");
    // Range + duplicate checks first: an id repeated inside one list
    // would otherwise trip the alternation rule below with a confusing
    // message.
    std::vector<EdgeId> epoch_edges;
    for (EdgeId e : ep.edges_down) {
      require(e >= 0 && e < g.edge_count(),
              "churn plan: edges_down id out of range");
      epoch_edges.push_back(e);
    }
    for (EdgeId e : ep.edges_up) {
      require(e >= 0 && e < g.edge_count(),
              "churn plan: edges_up id out of range");
      epoch_edges.push_back(e);
    }
    std::sort(epoch_edges.begin(), epoch_edges.end());
    require(std::adjacent_find(epoch_edges.begin(), epoch_edges.end()) ==
                epoch_edges.end(),
            "churn plan: edge listed twice in one epoch");
    std::vector<NodeId> epoch_nodes;
    for (NodeId v : ep.leaves) {
      require(v >= 0 && v < g.node_count(),
              "churn plan: leaves id out of range");
      epoch_nodes.push_back(v);
    }
    for (NodeId v : ep.joins) {
      require(v >= 0 && v < g.node_count(),
              "churn plan: joins id out of range");
      epoch_nodes.push_back(v);
    }
    std::sort(epoch_nodes.begin(), epoch_nodes.end());
    require(std::adjacent_find(epoch_nodes.begin(), epoch_nodes.end()) ==
                epoch_nodes.end(),
            "churn plan: node listed twice in one epoch");
    for (EdgeId e : ep.edges_down) {
      const auto it = edge_up.find(e);
      require(it == edge_up.end() || it->second,
              "churn plan: edges_down on an already-down edge");
      edge_up[e] = false;
    }
    for (EdgeId e : ep.edges_up) {
      const auto it = edge_up.find(e);
      // First event `up` = edge dark from time 0; otherwise must follow
      // a `down`.
      require(it == edge_up.end() || !it->second,
              "churn plan: edges_up on an edge that is already up");
      edge_up[e] = true;
    }
    for (NodeId v : ep.leaves) {
      const auto it = node_present.find(v);
      require(it == node_present.end() || it->second,
              "churn plan: leave of an already-absent node");
      node_present[v] = false;
    }
    for (NodeId v : ep.joins) {
      const auto it = node_present.find(v);
      // First event `join` = node absent from time 0 (late joiner).
      require(it == node_present.end() || !it->second,
              "churn plan: join of a node that is already present");
      node_present[v] = true;
    }
  }
  require(redraw_max_weight >= 0,
          "churn plan: redraw_max_weight must be non-negative");
}

bool churn_redraws_edge(const ChurnPlan& plan, std::size_t epoch,
                        std::uint64_t run_seed, EdgeId e) {
  require(epoch < plan.epochs.size(), "churn epoch index out of range");
  const double frac = plan.epochs[epoch].redraw_fraction;
  if (frac <= 0) return false;
  return key_to_unit(churn_key(plan, run_seed, kRedrawPickStream, epoch, e)) <
         frac;
}

Weight churn_redrawn_weight(const ChurnPlan& plan, std::size_t epoch,
                            std::uint64_t run_seed, EdgeId e, Weight max_w) {
  require(max_w >= 1, "churn redraw needs a positive max weight");
  const std::uint64_t k =
      churn_key(plan, run_seed, kRedrawWeightStream, epoch, e);
  return 1 + static_cast<Weight>(mix64(k) % static_cast<std::uint64_t>(max_w));
}

int apply_churn_weights(const ChurnPlan& plan, std::size_t epoch,
                        std::uint64_t run_seed, Graph& g) {
  require(epoch < plan.epochs.size(), "churn epoch index out of range");
  const Weight max_w = plan.redraw_max_weight > 0
                           ? plan.redraw_max_weight
                           : std::max<Weight>(g.max_weight(), 1);
  int changed = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!churn_redraws_edge(plan, epoch, run_seed, e)) continue;
    const Weight w = churn_redrawn_weight(plan, epoch, run_seed, e, max_w);
    if (w != g.weight(e)) {
      g.set_weight(e, w);
      ++changed;
    }
  }
  return changed;
}

std::vector<std::string> builtin_churn_plan_names() {
  return {"none",       "weights_mild", "weights_heavy",
          "edge_churn", "node_churn",   "full_churn"};
}

std::string builtin_churn_plan_description(const std::string& name) {
  if (name == "none") return "inactive plan (no epochs)";
  if (name == "weights_mild") {
    return "3 epochs re-drawing 10% of edge weights each";
  }
  if (name == "weights_heavy") {
    return "3 epochs re-drawing 50% of edge weights each";
  }
  if (name == "edge_churn") {
    return "three spread edges down at epoch 1, back at epoch 2; one flaps";
  }
  if (name == "node_churn") {
    return "node n/3 leaves then rejoins; node 2n/3 joins late";
  }
  if (name == "full_churn") {
    return "weights_mild + edge_churn + node_churn combined";
  }
  require(false, "unknown builtin churn plan: " + name);
  return {};
}

namespace {

double epoch_spacing(const Graph& g) {
  return 2.0 * static_cast<double>(std::max<Weight>(g.max_weight(), 1));
}

void add_weight_epochs(ChurnPlan& plan, const Graph& g, double fraction) {
  const double gap = epoch_spacing(g);
  for (int k = 1; k <= 3; ++k) {
    ChurnEpoch ep;
    ep.at = gap * static_cast<double>(k);
    ep.redraw_fraction = fraction;
    plan.epochs.push_back(ep);
  }
}

// Three spread-out edges (same picks as link_flap) down during
// [epoch 1, epoch 2); the first of them flaps again at epoch 3.
void add_edge_churn(ChurnPlan& plan, const Graph& g) {
  const double gap = epoch_spacing(g);
  while (plan.epochs.size() < 3) {
    ChurnEpoch ep;
    ep.at = gap * static_cast<double>(plan.epochs.size() + 1);
    plan.epochs.push_back(ep);
  }
  const EdgeId m = g.edge_count();
  std::vector<EdgeId> picks;
  for (const EdgeId e : {EdgeId{0}, m / 3, (2 * m) / 3}) {
    if (e < m && std::find(picks.begin(), picks.end(), e) == picks.end()) {
      picks.push_back(e);
    }
  }
  for (EdgeId e : picks) {
    plan.epochs[0].edges_down.push_back(e);
    plan.epochs[1].edges_up.push_back(e);
  }
  if (!picks.empty()) plan.epochs[2].edges_down.push_back(picks[0]);
}

void add_node_churn(ChurnPlan& plan, const Graph& g) {
  const double gap = epoch_spacing(g);
  while (plan.epochs.size() < 3) {
    ChurnEpoch ep;
    ep.at = gap * static_cast<double>(plan.epochs.size() + 1);
    plan.epochs.push_back(ep);
  }
  const NodeId n = g.node_count();
  const NodeId leaver = n / 3;
  const NodeId joiner = (2 * n) / 3;
  if (n >= 2 && leaver != joiner) {
    plan.epochs[0].leaves.push_back(leaver);
    plan.epochs[2].joins.push_back(leaver);
    // First event `join` = absent from time 0.
    plan.epochs[0].joins.push_back(joiner);
  }
}

}  // namespace

ChurnPlan make_builtin_churn_plan(const std::string& name, const Graph& g) {
  ChurnPlan plan;
  if (name == "none") return plan;
  if (name == "weights_mild") {
    add_weight_epochs(plan, g, 0.1);
    return plan;
  }
  if (name == "weights_heavy") {
    add_weight_epochs(plan, g, 0.5);
    return plan;
  }
  if (name == "edge_churn") {
    add_edge_churn(plan, g);
    return plan;
  }
  if (name == "node_churn") {
    add_node_churn(plan, g);
    return plan;
  }
  if (name == "full_churn") {
    add_weight_epochs(plan, g, 0.1);
    add_edge_churn(plan, g);
    add_node_churn(plan, g);
    return plan;
  }
  require(false, "unknown builtin churn plan: " + name);
  return plan;
}

}  // namespace csca
