// Per-edge ARQ: a reliable-link layer over faulty channels.
//
// The paper's protocols assume reliable FIFO links. A FaultPlan breaks
// that assumption (drops, duplicates, crashes, outages); this layer
// restores it, at a measurable weighted cost. Each node's process is
// wrapped in an ArqHost (via arq_factory), which frames every inner
// send as a sequence-numbered DATA message, acknowledges every DATA it
// receives with a cumulative ACK, and retransmits unacknowledged DATA
// on a deterministic exponential-backoff timer. Above the layer the
// inner protocol sees exactly the paper's channel model: exactly-once,
// FIFO-per-channel delivery.
//
// Cost accounting (the point of the exercise): the *first* copy of a
// DATA frame is billed in the inner send's own ledger class, so the
// algorithm ledger of a faulted+ARQ run equals the protocol's own send
// pattern; every retransmission and every ACK is billed as
// MsgClass::kControl. The reliability overhead factor is therefore
// directly readable from the ledger as total_cost / algorithm_cost
// (see docs/faults.md and the "fault" degradation table).
//
// Crash detection: a DATA frame retransmitted past max_retries marks
// the link peer-dead — retransmission stops, later inner sends on the
// edge are suppressed, and the run quiesces instead of hanging. The
// signal surfaces through peer_dead() / any_peer_dead().
//
// The wrapper is engine-agnostic: ArqHost is a plain Process that
// implements EngineBackend for its inner process (the same adapter
// pattern as the controller's host wrappers), so it runs unmodified on
// the Network, the SyncEngine-driven synchronizer stacks, and the
// sharded engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/message.h"

namespace csca {

/// ARQ frame type tags. Inner protocols must not use these values.
enum ArqTag : int {
  kArqData = 71001,   ///< [seq, inner type, inner payload..., checksum]
  kArqAck = 71002,    ///< [cumulative ack: next seq expected, checksum]
  kArqTimer = 71003,  ///< self only: [edge, seq, attempt]
  kArqSelf = 71004,   ///< wrapped inner self-delivery: [inner type, ...]
};

// ---------------------------------------------------------------------
// Wire framing, shared by the asynchronous ArqHost and the pulse-domain
// SyncArqHost (fault/sync_reliable_link.h) and by the invariant
// checker's replay. Every frame that crosses the wire carries a
// trailing checksum word: a positional sum with odd multipliers,
//
//   ck = c_0 * type + sum_i c_{i+1} * word_i,   c_j = mix64(j) | 1.
//
// Odd multipliers are units mod 2^64, so changing any single word w_j
// changes the sum by c_j * (w_j' - w_j) != 0 — the checksum provably
// detects every single-word corruption, which is exactly the damage
// class FaultInjector::garble inflicts (one keyed word XORed with a
// nonzero mask). Receivers silently discard invalid frames: an invalid
// DATA is not acknowledged, so the sender's retransmission heals it —
// garbling is masked the same way a drop is, at retransmission cost.
// What ARQ can NOT mask: garbles on unframed traffic (no checksum, no
// retransmission), and a garble-induced retransmit exhaustion still
// declares the peer dead. See docs/faults.md.
// ---------------------------------------------------------------------

/// Checksum over a frame's type tag and its first n payload words.
std::int64_t arq_checksum(int type, const std::int64_t* words,
                          std::size_t n);

/// Builds the DATA frame [seq, inner type, inner payload..., ck].
Message arq_make_data(std::int64_t seq, const Message& inner);

/// Builds the ACK frame [ack, ck].
Message arq_make_ack(std::int64_t ack);

/// True iff m is a structurally complete kArqData / kArqAck frame whose
/// trailing checksum matches the rest of the frame.
bool arq_frame_valid(const Message& m);

struct ArqConfig {
  /// Initial retransmit timeout on edge e is timeout_factor * w(e). A
  /// full data+ack round trip takes 2 w(e) under ExactDelay, so the
  /// default leaves a 4x margin before the first spurious retransmit.
  double timeout_factor = 8.0;
  /// Timeout multiplier per retransmission (exponential backoff).
  double backoff = 2.0;
  /// Retransmissions before the peer is declared dead. Attempt numbers
  /// run 0 (first transmission) through max_retries.
  int max_retries = 12;
  /// Optional shared control-cost meter. When set, every control-class
  /// wire transmission the host performs (ACKs, retransmissions, and
  /// first copies of inner kControl sends) adds w(e) to meter->billed
  /// at send time — the feedback path that lets the §5 controller's
  /// admission see physical retransmit cost (RunEnv::meter threads the
  /// same meter into ControllerConfig). Billed whether or not the
  /// channel then swallows the copy, matching the engines' ledger rule
  /// that transmission attempts are always charged.
  std::shared_ptr<ControlMeter> meter;
};

/// Wraps one node's process behind the ARQ layer. Built by arq_factory;
/// reached after a run via ProcessHost::process_as<ArqHost>(v).
class ArqHost final : public Process, private EngineBackend {
 public:
  ArqHost(NodeId self, std::unique_ptr<Process> inner, ArqConfig cfg);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  /// The wrapped protocol process (post-run state inspection).
  Process& inner() { return *inner_; }
  const Process& inner() const { return *inner_; }

  // Per-incident-edge link state, for tests and the invariant checker.
  // All take an edge incident to this node.
  std::int64_t data_sent(EdgeId e) const;      ///< DATA seqs consumed
  std::int64_t next_expected_in(EdgeId e) const;
  std::int64_t delivered_up(EdgeId e) const;   ///< inner deliveries
  std::int64_t retransmit_count(EdgeId e) const;
  /// Virtual times at which each retransmission of edge e fired, in
  /// order — the backoff schedule, deterministic per seed.
  const std::vector<double>& retransmit_times(EdgeId e) const;
  /// True once retransmission on e exhausted max_retries.
  bool peer_dead(EdgeId e) const;
  bool any_peer_dead() const;
  /// Inner sends suppressed because the link was already peer-dead.
  std::int64_t suppressed_sends(EdgeId e) const;
  /// Frames arriving on e that failed checksum validation and were
  /// silently discarded (healed by retransmission).
  std::int64_t corrupt_frames(EdgeId e) const;

 private:
  struct Pending {
    std::int64_t seq = 0;
    Message frame;  ///< the DATA frame, kept for retransmission
  };
  struct Link {
    EdgeId e = kNoEdge;
    // Sender side.
    std::int64_t next_seq = 0;
    std::vector<Pending> unacked;
    std::vector<double> retransmit_times;
    bool dead = false;
    std::int64_t suppressed = 0;
    // Receiver side.
    std::int64_t expected = 0;
    // Out-of-order inner msgs. Ordered map as a determinism proof
    // sketch (DET-1, docs/analysis.md): the drain walks find(expected)
    // in ascending seq, so delivery order is the sender's send order
    // regardless of the arrival schedule the injector produced.
    std::map<std::int64_t, Message> buffered;
    std::int64_t delivered = 0;
    std::int64_t corrupt = 0;  ///< invalid frames discarded
  };

  Link& link(EdgeId e);
  const Link& link(EdgeId e) const;
  double timeout(EdgeId e, int attempt) const;
  // Meter hook for a control-class wire send on e (no-op without one).
  void bill_control(EdgeId e);
  void handle_data(Context& ctx, const Message& frame);
  void handle_ack(const Message& frame);
  void handle_timer(Context& ctx, const Message& m);
  void deliver_up(Message inner_msg);

  // EngineBackend for the inner process: frame and forward.
  double engine_now() const override;
  const Graph& engine_graph() const override;
  void engine_send(NodeId from, EdgeId e, Message m, MsgClass cls) override;
  void engine_schedule_self(NodeId v, double delay, Message m) override;
  void engine_finish(NodeId v) override;

  NodeId self_;
  std::unique_ptr<Process> inner_;
  ArqConfig cfg_;
  const Graph* graph_ = nullptr;
  std::vector<Link> links_;  ///< one per incident edge, insertion order
  Context* cur_ = nullptr;   ///< the real context, valid during hooks
};

/// Wraps every process `inner` builds behind the ARQ layer.
ProcessFactory arq_factory(ProcessFactory inner, ArqConfig cfg = {});

/// Convenience accessors for wrapped hosts.
ArqHost& arq_host(ProcessHost& host, NodeId v);
Process& arq_inner(ProcessHost& host, NodeId v);

}  // namespace csca
