#include "fault/reliable_link.h"

#include <algorithm>
#include <utility>

#include "fault/frame_checksum.h"
#include "util/require.h"
#include "util/rng.h"

namespace csca {

std::int64_t arq_checksum(int type, const std::int64_t* words,
                          std::size_t n) {
  return frame_checksum(type, words, n);
}

Message arq_make_data(std::int64_t seq, const Message& inner) {
  Message frame(kArqData);
  frame.data.reserve(3 + inner.data.size());
  frame.data.push_back(seq);
  frame.data.push_back(inner.type);
  frame.data.insert(frame.data.end(), inner.data.begin(), inner.data.end());
  frame.data.push_back(
      arq_checksum(kArqData, frame.data.begin(), frame.data.size()));
  return frame;
}

Message arq_make_ack(std::int64_t ack) {
  Message frame(kArqAck);
  frame.data.push_back(ack);
  frame.data.push_back(arq_checksum(kArqAck, frame.data.begin(), 1));
  return frame;
}

bool arq_frame_valid(const Message& m) {
  if (m.type != kArqData && m.type != kArqAck) return false;
  // DATA needs at least [seq, inner type, ck]; ACK exactly [ack, ck].
  const std::size_t min_words = m.type == kArqData ? 3 : 2;
  if (m.data.size() < min_words) return false;
  const std::size_t n = m.data.size() - 1;
  return m.data[n] == arq_checksum(m.type, m.data.begin(), n);
}

namespace {

/// RAII guard: hooks run with cur_ pointing at the engine's real
/// context so inner sends minted through the ArqHost backend can reach
/// the wire; cleared on exit so stale contexts are never dereferenced.
class CurrentContext {
 public:
  CurrentContext(Context** slot, Context* ctx) : slot_(slot) { *slot_ = ctx; }
  ~CurrentContext() { *slot_ = nullptr; }
  CurrentContext(const CurrentContext&) = delete;
  CurrentContext& operator=(const CurrentContext&) = delete;

 private:
  Context** slot_;
};

}  // namespace

ArqHost::ArqHost(NodeId self, std::unique_ptr<Process> inner, ArqConfig cfg)
    : self_(self), inner_(std::move(inner)), cfg_(cfg) {
  require(inner_ != nullptr, "ArqHost requires an inner process");
  require(cfg_.timeout_factor > 0 && cfg_.backoff >= 1.0 &&
              cfg_.max_retries >= 0,
          "ArqConfig requires timeout_factor > 0, backoff >= 1, "
          "max_retries >= 0");
}

ArqHost::Link& ArqHost::link(EdgeId e) {
  for (Link& l : links_) {
    if (l.e == e) return l;
  }
  require(false, "edge is not incident to this ARQ host");
  return links_.front();
}

const ArqHost::Link& ArqHost::link(EdgeId e) const {
  return const_cast<ArqHost*>(this)->link(e);
}

double ArqHost::timeout(EdgeId e, int attempt) const {
  double t = cfg_.timeout_factor * static_cast<double>(graph_->weight(e));
  for (int i = 0; i < attempt; ++i) t *= cfg_.backoff;
  return t;
}

void ArqHost::on_start(Context& ctx) {
  graph_ = &ctx.graph();
  links_.clear();
  for (const EdgeId e : ctx.incident()) {
    Link l;
    l.e = e;
    links_.push_back(std::move(l));
  }
  CurrentContext guard(&cur_, &ctx);
  Context ictx = make_context(self_);
  inner_->on_start(ictx);
}

void ArqHost::on_message(Context& ctx, const Message& m) {
  CurrentContext guard(&cur_, &ctx);
  if (m.edge == kNoEdge) {
    if (m.type == kArqTimer) {
      handle_timer(ctx, m);
      return;
    }
    require(m.type == kArqSelf,
            "ArqHost received an unframed self-delivery");
    // Unwrap the inner self-scheduled message.
    Message inner_msg(static_cast<int>(m.at(0)),
                      Payload(m.data.begin() + 1, m.data.end()));
    inner_msg.from = self_;
    inner_msg.edge = kNoEdge;
    Context ictx = make_context(self_);
    inner_->on_message(ictx, inner_msg);
    return;
  }
  require(m.type == kArqData || m.type == kArqAck,
          "ArqHost received a foreign message type");
  if (!arq_frame_valid(m)) {
    // Garbled in transit: discard silently. An invalid DATA is not
    // acknowledged, so the sender's retransmission timer heals the
    // loss; an invalid ACK is healed by the next (cumulative) one.
    ++link(m.edge).corrupt;
    return;
  }
  if (m.type == kArqData) {
    handle_data(ctx, m);
    return;
  }
  handle_ack(m);
}

void ArqHost::handle_data(Context& ctx, const Message& frame) {
  const EdgeId e = frame.edge;
  Link& l = link(e);
  const std::int64_t seq = frame.at(0);
  if (seq == l.expected) {
    Message inner_msg(static_cast<int>(frame.at(1)),
                      Payload(frame.data.begin() + 2, frame.data.end() - 1));
    inner_msg.from = frame.from;
    inner_msg.edge = e;
    ++l.expected;
    ++l.delivered;
    deliver_up(std::move(inner_msg));
    // Drain buffered successors that are now in order. links_ is fixed
    // at on_start, so the reference stays valid across inner handlers.
    while (true) {
      auto it = l.buffered.find(l.expected);
      if (it == l.buffered.end()) break;
      Message next = std::move(it->second);
      l.buffered.erase(it);
      ++l.expected;
      ++l.delivered;
      deliver_up(std::move(next));
    }
  } else if (seq > l.expected) {
    // Out of order (the fault layer only reorders via duplicates, but
    // ARQ retransmissions themselves can leapfrog): hold the inner
    // message until the gap fills.
    if (l.buffered.find(seq) == l.buffered.end()) {
      Message inner_msg(static_cast<int>(frame.at(1)),
                        Payload(frame.data.begin() + 2, frame.data.end() - 1));
      inner_msg.from = frame.from;
      inner_msg.edge = e;
      l.buffered.emplace(seq, std::move(inner_msg));
    }
  }
  // else: stale duplicate below the cumulative ack — deliver nothing.
  //
  // Always (re-)acknowledge cumulatively: a lost ACK is healed by the
  // duplicate DATA the ensuing retransmission produces.
  bill_control(e);
  ctx.send(e, arq_make_ack(l.expected), MsgClass::kControl);
}

void ArqHost::handle_ack(const Message& frame) {
  Link& l = link(frame.edge);
  const std::int64_t ack = frame.at(0);
  l.unacked.erase(
      std::remove_if(l.unacked.begin(), l.unacked.end(),
                     [ack](const Pending& p) { return p.seq < ack; }),
      l.unacked.end());
}

void ArqHost::handle_timer(Context& ctx, const Message& m) {
  const EdgeId e = static_cast<EdgeId>(m.at(0));
  const std::int64_t seq = m.at(1);
  const int attempt = static_cast<int>(m.at(2));
  Link& l = link(e);
  if (l.dead) return;
  const auto it =
      std::find_if(l.unacked.begin(), l.unacked.end(),
                   [seq](const Pending& p) { return p.seq == seq; });
  if (it == l.unacked.end()) return;  // acked in the meantime
  if (attempt >= cfg_.max_retries) {
    // Retransmit exhaustion: declare the peer dead and stop. This is
    // the crash signal — the run quiesces instead of retrying forever.
    l.dead = true;
    l.unacked.clear();
    return;
  }
  // Retransmission is pure overhead: billed kControl regardless of the
  // inner send's class.
  bill_control(e);
  ctx.send(e, it->frame, MsgClass::kControl);
  l.retransmit_times.push_back(ctx.now());
  ctx.schedule_self(timeout(e, attempt + 1),
                    Message(kArqTimer, {e, seq, attempt + 1}));
}

void ArqHost::deliver_up(Message inner_msg) {
  Context ictx = make_context(self_);
  inner_->on_message(ictx, inner_msg);
}

double ArqHost::engine_now() const {
  require(cur_ != nullptr, "ArqHost inner call outside a handler");
  return cur_->now();
}

const Graph& ArqHost::engine_graph() const {
  require(graph_ != nullptr, "ArqHost used before on_start");
  return *graph_;
}

void ArqHost::engine_send(NodeId /*from*/, EdgeId e, Message m,
                          MsgClass cls) {
  require(cur_ != nullptr, "ArqHost inner send outside a handler");
  Link& l = link(e);
  if (l.dead) {
    // The peer was declared dead; nothing can be delivered there.
    ++l.suppressed;
    return;
  }
  const std::int64_t seq = l.next_seq++;
  Message frame = arq_make_data(seq, m);
  l.unacked.push_back(Pending{seq, frame});
  // First copy rides in the inner send's own class: the algorithm
  // ledger of a faulted+ARQ run records the protocol's own sends.
  if (cls == MsgClass::kControl) bill_control(e);
  cur_->send(e, std::move(frame), cls);
  cur_->schedule_self(timeout(e, 0), Message(kArqTimer, {e, seq, 0}));
}

void ArqHost::engine_schedule_self(NodeId /*v*/, double delay, Message m) {
  require(cur_ != nullptr, "ArqHost inner call outside a handler");
  Message wrapped(kArqSelf);
  wrapped.data.reserve(1 + m.data.size());
  wrapped.data.push_back(m.type);
  wrapped.data.insert(wrapped.data.end(), m.data.begin(), m.data.end());
  cur_->schedule_self(delay, std::move(wrapped));
}

void ArqHost::engine_finish(NodeId /*v*/) {
  require(cur_ != nullptr, "ArqHost inner call outside a handler");
  cur_->finish();
}

std::int64_t ArqHost::data_sent(EdgeId e) const { return link(e).next_seq; }

std::int64_t ArqHost::next_expected_in(EdgeId e) const {
  return link(e).expected;
}

std::int64_t ArqHost::delivered_up(EdgeId e) const {
  return link(e).delivered;
}

std::int64_t ArqHost::retransmit_count(EdgeId e) const {
  return static_cast<std::int64_t>(link(e).retransmit_times.size());
}

const std::vector<double>& ArqHost::retransmit_times(EdgeId e) const {
  return link(e).retransmit_times;
}

bool ArqHost::peer_dead(EdgeId e) const { return link(e).dead; }

bool ArqHost::any_peer_dead() const {
  return std::any_of(links_.begin(), links_.end(),
                     [](const Link& l) { return l.dead; });
}

std::int64_t ArqHost::suppressed_sends(EdgeId e) const {
  return link(e).suppressed;
}

std::int64_t ArqHost::corrupt_frames(EdgeId e) const {
  return link(e).corrupt;
}

void ArqHost::bill_control(EdgeId e) {
  if (cfg_.meter) cfg_.meter->billed += graph_->weight(e);
}

ProcessFactory arq_factory(ProcessFactory inner, ArqConfig cfg) {
  require(inner != nullptr, "arq_factory requires an inner factory");
  return [inner = std::move(inner), cfg](NodeId v) {
    auto p = inner(v);
    require(p != nullptr, "process factory returned null");
    return std::make_unique<ArqHost>(v, std::move(p), cfg);
  };
}

ArqHost& arq_host(ProcessHost& host, NodeId v) {
  return host.process_as<ArqHost>(v);
}

Process& arq_inner(ProcessHost& host, NodeId v) {
  return arq_host(host, v).inner();
}

}  // namespace csca
