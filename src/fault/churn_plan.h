// Declarative dynamic-topology model for a single simulation run.
//
// A ChurnPlan is a schedule of *epochs* at increasing virtual times;
// each epoch can re-draw a keyed fraction of the edge weights, take
// edges down or bring them back up, and let nodes leave or (re)join.
// Like a FaultPlan, the plan is pure data, and everything stochastic
// about it is a pure function of (run seed, plan salt, edge/node id,
// epoch index) — so a churned run is bit-identical on the sequential
// Network, the SyncEngine, the conservative ShardEngine and the
// optimistic TimeWarp backend, at any shard or job count.
//
// The support-graph trick keeps the engines' fixed-size world intact:
// the node and edge *sets* never change. "Down" edges and "absent"
// nodes are liveness intervals compiled into the FaultInjector (they
// reuse the outage / crash machinery, which every engine already
// honors on its send path and which TimeWarp's rollback already
// re-evaluates purely), and a node that joins at epoch k is simply
// absent during [0, t_k). Weight re-draws are the one mutation that
// cannot happen mid-flight — the conservative engine's lookahead and
// the pulse domain's arithmetic both assume w(e) is stable within a
// run slice — so they apply only at epoch boundaries, between run
// slices, via apply_churn_weights (the RestabilizingRun driver in
// control/restabilize.h is the canonical consumer). See docs/faults.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace csca {

/// One scheduled churn epoch at virtual time `at`.
struct ChurnEpoch {
  double at = 0;
  /// Fraction of edges whose weight is re-drawn at this epoch. The
  /// per-edge decision and the fresh weight are keyed draws (see
  /// churn_redraws_edge / churn_redrawn_weight).
  double redraw_fraction = 0;
  std::vector<EdgeId> edges_down;  ///< edges that go dark at `at`
  std::vector<EdgeId> edges_up;    ///< edges that come back (or appear)
  std::vector<NodeId> leaves;      ///< nodes that depart at `at`
  std::vector<NodeId> joins;       ///< nodes that (re)join at `at`
};

/// The full dynamic-topology schedule for one run. Default-constructed
/// plans are inactive. Liveness convention: per edge (and per node) the
/// events must alternate, and the *first* event fixes the initial
/// state — an edge whose first event is `edges_up` was dark from time 0
/// (it "appears"); a node whose first event is `joins` was absent from
/// time 0 (a late joiner). An edge/node with no events is always live.
struct ChurnPlan {
  std::vector<ChurnEpoch> epochs;  ///< strictly increasing `at`
  /// Re-drawn weights are uniform in [1, redraw_max_weight]; 0 means
  /// "use the graph's max_weight() at apply time".
  Weight redraw_max_weight = 0;
  /// Decorrelates churn draws from delay, fate and dup streams.
  std::uint64_t salt = 0xC4E7;

  /// True when the plan can affect a run at all.
  bool active() const;

  /// Validates the schedule against a concrete graph: epoch times
  /// strictly increasing and non-negative, redraw fractions in [0, 1],
  /// ids in range, no id listed twice in one epoch, and the
  /// alternation rule above. Throws a named error on the first
  /// violation.
  void validate(const Graph& g) const;

  /// The epoch times, in schedule order.
  std::vector<double> epoch_times() const;
};

/// Keyed per-edge decision: does edge e re-draw its weight at epoch k?
/// Pure function of (plan salt, run seed, epoch, edge).
bool churn_redraws_edge(const ChurnPlan& plan, std::size_t epoch,
                        std::uint64_t run_seed, EdgeId e);

/// The fresh weight for a re-drawn edge: uniform in [1, max_w], keyed
/// by (plan salt, run seed, epoch, edge) independently of the re-draw
/// decision.
Weight churn_redrawn_weight(const ChurnPlan& plan, std::size_t epoch,
                            std::uint64_t run_seed, EdgeId e, Weight max_w);

/// Applies epoch k's weight re-draws to g (Graph::set_weight) and
/// returns the number of edges whose weight actually changed. Must only
/// be called between run slices — never while an engine holds in-flight
/// events drawn against the old weights.
int apply_churn_weights(const ChurnPlan& plan, std::size_t epoch,
                        std::uint64_t run_seed, Graph& g);

/// Names accepted by make_builtin_churn_plan, in presentation order:
/// none, weights_mild, weights_heavy, edge_churn, node_churn, full_churn.
std::vector<std::string> builtin_churn_plan_names();

/// One-line description of a builtin churn plan (for --list-plans).
std::string builtin_churn_plan_description(const std::string& name);

/// Builds a named builtin plan against a concrete graph (epoch spacing
/// scales with the max edge weight; churned edges/nodes are picked from
/// the graph deterministically):
///  - none:          inactive plan (no epochs).
///  - weights_mild:  3 epochs re-drawing 10% of the edge weights each.
///  - weights_heavy: 3 epochs re-drawing 50% of the edge weights each.
///  - edge_churn:    three spread-out edges go down at epoch 1 and come
///                   back at epoch 2; one further edge flaps at epoch 3.
///  - node_churn:    node n/3 leaves at epoch 1 and rejoins at epoch 3;
///                   node 2n/3 joins late (absent until epoch 1).
///  - full_churn:    weights_mild + edge_churn + node_churn combined.
/// Rejects unknown names.
ChurnPlan make_builtin_churn_plan(const std::string& name, const Graph& g);

}  // namespace csca
