#include "fault/sync_reliable_link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/require.h"

namespace csca {

// Presents the inner protocol with the real graph and pulse clock while
// routing its actions through the ARQ layer.
class SyncArqHost::VirtualCtx final : public SyncContext {
 public:
  VirtualCtx(SyncArqHost& host, SyncContext& actual)
      : host_(&host), actual_(&actual) {}

  NodeId self() const override { return host_->self_; }
  const Graph& graph() const override { return actual_->graph(); }
  std::int64_t pulse() const override { return actual_->pulse(); }
  void send(EdgeId e, Message m, MsgClass cls) override {
    host_->inner_send(*actual_, e, std::move(m), cls);
  }
  void schedule_wakeup(std::int64_t at_pulse) override {
    host_->inner_wakeup(*actual_, at_pulse);
  }
  void finish() override { actual_->finish(); }

 private:
  SyncArqHost* host_;
  SyncContext* actual_;
};

SyncArqHost::SyncArqHost(NodeId self, std::unique_ptr<SyncProcess> inner,
                         ArqConfig cfg)
    : self_(self), inner_(std::move(inner)), cfg_(cfg) {
  require(inner_ != nullptr, "SyncArqHost requires an inner process");
  require(cfg_.timeout_factor > 0 && cfg_.backoff >= 1.0 &&
              cfg_.max_retries >= 0,
          "ArqConfig requires timeout_factor > 0, backoff >= 1, "
          "max_retries >= 0");
}

SyncArqHost::Link& SyncArqHost::link(EdgeId e) {
  for (Link& l : links_) {
    if (l.e == e) return l;
  }
  require(false, "edge is not incident to this sync ARQ host");
  return links_.front();
}

const SyncArqHost::Link& SyncArqHost::link(EdgeId e) const {
  return const_cast<SyncArqHost*>(this)->link(e);
}

std::int64_t SyncArqHost::timeout_pulses(EdgeId e, int attempt) const {
  double f = cfg_.timeout_factor;
  for (int i = 0; i < attempt; ++i) f *= cfg_.backoff;
  // Rounded to a whole number of transmissions so the timeout is an
  // integer multiple of w(e): retransmissions of an in-synch send then
  // land on pulses divisible by w(e), preserving Def. 4.2.
  std::int64_t k = std::llround(f);
  if (k < 1) k = 1;
  return k * graph_->weight(e);
}

void SyncArqHost::arm(SyncContext& ctx, EdgeId e, std::int64_t seq,
                      int attempt) {
  const std::int64_t due = ctx.pulse() + timeout_pulses(e, attempt);
  timers_[due].push_back(Timer{e, seq, attempt});
  // One engine wakeup serves every timer (and inner wakeup) at a pulse.
  if (armed_pulses_.insert(due).second) ctx.schedule_wakeup(due);
}

void SyncArqHost::bill_control(SyncContext& ctx, EdgeId e) {
  if (cfg_.meter) cfg_.meter->billed += ctx.edge_weight(e);
}

void SyncArqHost::on_start(SyncContext& ctx) {
  graph_ = &ctx.graph();
  links_.clear();
  for (const EdgeId e : ctx.incident()) {
    Link l;
    l.e = e;
    links_.push_back(std::move(l));
  }
  VirtualCtx vctx(*this, ctx);
  inner_->on_start(vctx);
}

void SyncArqHost::inner_send(SyncContext& ctx, EdgeId e, Message m,
                             MsgClass cls) {
  Link& l = link(e);
  if (l.dead) {
    ++l.suppressed;
    return;
  }
  const std::int64_t seq = l.next_seq++;
  Message frame = arq_make_data(seq, m);
  l.unacked.push_back(Pending{seq, frame});
  // First copy rides in the inner send's own class (cf. ArqHost).
  if (cls == MsgClass::kControl) bill_control(ctx, e);
  ctx.send(e, std::move(frame), cls);
  arm(ctx, e, seq, 0);
}

void SyncArqHost::inner_wakeup(SyncContext& ctx, std::int64_t at_pulse) {
  require(at_pulse > ctx.pulse(),
          "wakeup must be scheduled strictly ahead");
  inner_wakeups_.insert(at_pulse);
  if (armed_pulses_.insert(at_pulse).second) ctx.schedule_wakeup(at_pulse);
}

void SyncArqHost::on_message(SyncContext& ctx, const Message& m) {
  require(m.edge != kNoEdge, "SyncArqHost expects edge messages only");
  require(m.type == kArqData || m.type == kArqAck,
          "SyncArqHost received a foreign message type");
  if (!arq_frame_valid(m)) {
    // Garbled in transit: discard silently; no ACK, so the sender's
    // retransmission heals the loss (cf. ArqHost::on_message).
    ++link(m.edge).corrupt;
    return;
  }
  if (m.type == kArqData) {
    handle_data(ctx, m);
    return;
  }
  handle_ack(m);
}

void SyncArqHost::handle_data(SyncContext& ctx, const Message& frame) {
  const EdgeId e = frame.edge;
  Link& l = link(e);
  const std::int64_t seq = frame.at(0);
  const auto unwrap = [&](const Message& f) {
    Message inner_msg(static_cast<int>(f.at(1)),
                      Payload(f.data.begin() + 2, f.data.end() - 1));
    inner_msg.from = f.from;
    inner_msg.edge = e;
    return inner_msg;
  };
  if (seq == l.expected) {
    ++l.expected;
    ++l.delivered;
    VirtualCtx vctx(*this, ctx);
    const Message first = unwrap(frame);
    inner_->on_message(vctx, first);
    // Drain buffered successors now in order. links_ is fixed at
    // on_start, so the reference stays valid across inner handlers.
    while (true) {
      auto it = l.buffered.find(l.expected);
      if (it == l.buffered.end()) break;
      Message next = std::move(it->second);
      l.buffered.erase(it);
      ++l.expected;
      ++l.delivered;
      inner_->on_message(vctx, next);
    }
  } else if (seq > l.expected) {
    if (l.buffered.find(seq) == l.buffered.end()) {
      l.buffered.emplace(seq, unwrap(frame));
    }
  }
  // else: stale duplicate below the cumulative ack — deliver nothing.
  bill_control(ctx, e);
  ctx.send(e, arq_make_ack(l.expected), MsgClass::kControl);
}

void SyncArqHost::handle_ack(const Message& frame) {
  Link& l = link(frame.edge);
  const std::int64_t ack = frame.at(0);
  l.unacked.erase(
      std::remove_if(l.unacked.begin(), l.unacked.end(),
                     [ack](const Pending& p) { return p.seq < ack; }),
      l.unacked.end());
}

void SyncArqHost::fire_timer(SyncContext& ctx, const Timer& t) {
  Link& l = link(t.e);
  if (l.dead) return;
  const auto it =
      std::find_if(l.unacked.begin(), l.unacked.end(),
                   [&t](const Pending& p) { return p.seq == t.seq; });
  if (it == l.unacked.end()) return;  // acked in the meantime
  if (t.attempt >= cfg_.max_retries) {
    l.dead = true;
    l.unacked.clear();
    return;
  }
  bill_control(ctx, t.e);
  ctx.send(t.e, it->frame, MsgClass::kControl);
  l.retransmit_pulses.push_back(ctx.pulse());
  arm(ctx, t.e, t.seq, t.attempt + 1);
}

void SyncArqHost::on_wakeup(SyncContext& ctx) {
  const std::int64_t p = ctx.pulse();
  armed_pulses_.erase(p);
  // Due retransmit timers first, then the inner protocol's own wakeup —
  // the engine already delivered this pulse's messages, so ACKs that
  // arrived at p have cancelled their timers (as in the async host).
  const auto it = timers_.find(p);
  if (it != timers_.end()) {
    std::vector<Timer> due = std::move(it->second);
    timers_.erase(it);
    for (const Timer& t : due) fire_timer(ctx, t);
  }
  if (inner_wakeups_.erase(p) > 0) {
    VirtualCtx vctx(*this, ctx);
    inner_->on_wakeup(vctx);
  }
}

std::int64_t SyncArqHost::data_sent(EdgeId e) const {
  return link(e).next_seq;
}

std::int64_t SyncArqHost::next_expected_in(EdgeId e) const {
  return link(e).expected;
}

std::int64_t SyncArqHost::delivered_up(EdgeId e) const {
  return link(e).delivered;
}

std::int64_t SyncArqHost::retransmit_count(EdgeId e) const {
  return static_cast<std::int64_t>(link(e).retransmit_pulses.size());
}

const std::vector<std::int64_t>& SyncArqHost::retransmit_pulses(
    EdgeId e) const {
  return link(e).retransmit_pulses;
}

bool SyncArqHost::peer_dead(EdgeId e) const { return link(e).dead; }

bool SyncArqHost::any_peer_dead() const {
  return std::any_of(links_.begin(), links_.end(),
                     [](const Link& l) { return l.dead; });
}

std::int64_t SyncArqHost::suppressed_sends(EdgeId e) const {
  return link(e).suppressed;
}

std::int64_t SyncArqHost::corrupt_frames(EdgeId e) const {
  return link(e).corrupt;
}

std::function<std::unique_ptr<SyncProcess>(NodeId)> sync_arq_factory(
    std::function<std::unique_ptr<SyncProcess>(NodeId)> inner,
    ArqConfig cfg) {
  require(inner != nullptr, "sync_arq_factory requires an inner factory");
  return [inner = std::move(inner), cfg](NodeId v) {
    auto p = inner(v);
    require(p != nullptr, "process factory returned null");
    return std::make_unique<SyncArqHost>(v, std::move(p), cfg);
  };
}

}  // namespace csca
