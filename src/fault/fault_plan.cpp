#include "fault/fault_plan.h"

#include <algorithm>

#include "util/require.h"

namespace csca {

std::vector<std::string> builtin_fault_plan_names() {
  return {"none",      "drop1pct",  "drop5pct",  "dup1pct",
          "garble1pct", "crash_one", "link_flap"};
}

namespace {

double max_edge_weight(const Graph& g) {
  Weight w = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    w = std::max(w, g.edge(e).w);
  }
  return static_cast<double>(w);
}

}  // namespace

FaultPlan make_builtin_fault_plan(const std::string& name, const Graph& g) {
  FaultPlan plan;
  plan.salt = 0xFA17;
  if (name == "none") return plan;
  if (name == "drop1pct") {
    plan.drop_rate = 0.01;
    return plan;
  }
  if (name == "drop5pct") {
    plan.drop_rate = 0.05;
    return plan;
  }
  if (name == "dup1pct") {
    plan.dup_rate = 0.01;
    return plan;
  }
  if (name == "garble1pct") {
    plan.garble_rate = 0.01;
    return plan;
  }
  if (name == "crash_one") {
    // A mid-id node, late enough that the protocol is under way when it
    // dies: 1.5 heavy hops into the run.
    plan.crashes.push_back(
        {g.node_count() / 2, 1.5 * max_edge_weight(g)});
    return plan;
  }
  if (name == "link_flap") {
    const double period = 2.0 * max_edge_weight(g);
    const EdgeId m = g.edge_count();
    for (const EdgeId e : {EdgeId{0}, m / 3, (2 * m) / 3}) {
      if (e >= m) continue;
      for (int i = 0; i < 4; ++i) {
        // Down for the first half of each period, starting one period in.
        const double down = period * static_cast<double>(2 * i + 1);
        plan.outages.push_back({e, down, down + period / 2});
      }
    }
    return plan;
  }
  require(false, "unknown builtin fault plan: " + name);
  return plan;
}

}  // namespace csca
