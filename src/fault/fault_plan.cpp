#include "fault/fault_plan.h"

#include <algorithm>
#include <utility>

#include "util/require.h"

namespace csca {

std::vector<std::string> builtin_fault_plan_names() {
  return {"none",      "drop1pct",  "drop5pct",  "dup1pct",  "garble1pct",
          "crash_one", "link_flap", "equiv2pct", "forge2pct"};
}

std::string builtin_fault_plan_description(const std::string& name) {
  if (name == "none") return "inactive plan (zero rates, no events)";
  if (name == "drop1pct") return "1% keyed drop rate on every channel";
  if (name == "drop5pct") return "5% keyed drop rate on every channel";
  if (name == "dup1pct") return "1% keyed duplication rate on every channel";
  if (name == "garble1pct") {
    return "1% keyed payload corruption on every channel";
  }
  if (name == "crash_one") {
    return "node n/2 crash-stops at 1.5 * max edge weight";
  }
  if (name == "link_flap") {
    return "three spread edges cycle down/up, four outages each";
  }
  if (name == "equiv2pct") {
    return "byzantine node n/2 equivocates on 2% of its sends";
  }
  if (name == "forge2pct") {
    return "byzantine node n/2 forges 2% of its sends past the ARQ checksum";
  }
  require(false, "unknown builtin fault plan: " + name);
  return {};
}

void FaultPlan::validate(const Graph& g) const {
  require(drop_rate >= 0 && dup_rate >= 0 && garble_rate >= 0 &&
              drop_rate + dup_rate + garble_rate <= 1.0,
          "fault plan rates must be non-negative with "
          "drop + dup + garble <= 1");
  require(equivocate_rate >= 0 && forge_rate >= 0 &&
              equivocate_rate + forge_rate <= 1.0,
          "fault plan byzantine rates must be non-negative with "
          "equivocate + forge <= 1");
  for (const CrashEvent& c : crashes) {
    require(c.node >= 0 && c.node < g.node_count(),
            "fault plan crash node id out of range");
    require(c.at >= 0, "fault plan crash time must be non-negative");
  }
  // Per-edge interval lists, then a sort + sweep to reject overlaps:
  // two outages whose [down, up) windows intersect on the same edge
  // would make link_down's answer depend on which interval is checked
  // first in no useful way, and almost always indicate a plan bug.
  std::vector<std::vector<std::pair<double, double>>> per_edge(
      static_cast<std::size_t>(g.edge_count()));
  for (const LinkOutage& o : outages) {
    require(o.edge >= 0 && o.edge < g.edge_count(),
            "fault plan outage edge id out of range");
    require(o.down_at >= 0 && o.up_at > o.down_at,
            "fault plan outage interval must be non-empty with "
            "down_at >= 0");
    per_edge[static_cast<std::size_t>(o.edge)].emplace_back(o.down_at,
                                                            o.up_at);
  }
  for (auto& intervals : per_edge) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      require(intervals[i].first >= intervals[i - 1].second,
              "fault plan outage intervals overlap on the same edge");
    }
  }
  std::vector<NodeId> byz = byzantine;
  std::sort(byz.begin(), byz.end());
  require(std::adjacent_find(byz.begin(), byz.end()) == byz.end(),
          "fault plan byzantine node listed twice");
  for (NodeId v : byz) {
    require(v >= 0 && v < g.node_count(),
            "fault plan byzantine node id out of range");
  }
}

namespace {

double max_edge_weight(const Graph& g) {
  Weight w = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    w = std::max(w, g.edge(e).w);
  }
  return static_cast<double>(w);
}

}  // namespace

FaultPlan make_builtin_fault_plan(const std::string& name, const Graph& g) {
  FaultPlan plan;
  plan.salt = 0xFA17;
  if (name == "none") return plan;
  if (name == "drop1pct") {
    plan.drop_rate = 0.01;
    return plan;
  }
  if (name == "drop5pct") {
    plan.drop_rate = 0.05;
    return plan;
  }
  if (name == "dup1pct") {
    plan.dup_rate = 0.01;
    return plan;
  }
  if (name == "garble1pct") {
    plan.garble_rate = 0.01;
    return plan;
  }
  if (name == "crash_one") {
    // A mid-id node, late enough that the protocol is under way when it
    // dies: 1.5 heavy hops into the run.
    plan.crashes.push_back(
        {g.node_count() / 2, 1.5 * max_edge_weight(g)});
    return plan;
  }
  if (name == "link_flap") {
    const double period = 2.0 * max_edge_weight(g);
    const EdgeId m = g.edge_count();
    for (const EdgeId e : {EdgeId{0}, m / 3, (2 * m) / 3}) {
      if (e >= m) continue;
      for (int i = 0; i < 4; ++i) {
        // Down for the first half of each period, starting one period in.
        const double down = period * static_cast<double>(2 * i + 1);
        plan.outages.push_back({e, down, down + period / 2});
      }
    }
    return plan;
  }
  if (name == "equiv2pct") {
    plan.byzantine.push_back(g.node_count() / 2);
    plan.equivocate_rate = 0.02;
    return plan;
  }
  if (name == "forge2pct") {
    plan.byzantine.push_back(g.node_count() / 2);
    plan.forge_rate = 0.02;
    return plan;
  }
  require(false, "unknown builtin fault plan: " + name);
  return plan;
}

}  // namespace csca
