// Per-edge ARQ in the pulse domain: reliable links for SyncProcess
// protocols running on a faulted SyncEngine.
//
// The pulse-domain counterpart of ArqHost (fault/reliable_link.h),
// sharing its wire framing exactly — sequence-numbered DATA frames with
// a trailing checksum, cumulative ACKs, deterministic exponential
// backoff — so the invariant checker's replay rules and the garble
// masking story apply to both domains unchanged. Differences forced by
// the synchronous model:
//
//   - Time is pulses. A DATA sent at pulse p arrives at p + w(e) and is
//     acknowledged at that arrival pulse; the retransmit timeout for
//     attempt a is round(timeout_factor * backoff^a) * w(e) pulses — an
//     integer multiple of w(e), so every retransmission of an in-synch
//     send lands on a pulse divisible by w(e) and the wrapped protocol
//     remains in-synch (Def. 4.2). The defaults give timeouts of 8w,
//     16w, 32w, ... — the same schedule shape as the asynchronous host.
//   - Timers are pulse wakeups, not self-messages: due retransmissions
//     fire from on_wakeup, before any wakeup the inner protocol asked
//     for at the same pulse. The engine delivers messages before
//     wakeups within a pulse, so an ACK arriving at the timeout pulse
//     cancels the retransmission, matching the asynchronous semantics.
//
// Cost accounting is identical to ArqHost: the first copy of a DATA
// frame is billed in the inner send's own class, retransmissions and
// ACKs are MsgClass::kControl, and an ArqConfig::meter (when set) is
// billed w(e) for every control-class wire transmission.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/reliable_link.h"
#include "sim/sync_process.h"

namespace csca {

/// Wraps one node's synchronous process behind the ARQ layer. Built by
/// sync_arq_factory; reached after a run via
/// SyncEngine::process_as<SyncArqHost>(v).
class SyncArqHost final : public SyncProcess {
 public:
  SyncArqHost(NodeId self, std::unique_ptr<SyncProcess> inner,
              ArqConfig cfg);

  void on_start(SyncContext& ctx) override;
  void on_message(SyncContext& ctx, const Message& m) override;
  void on_wakeup(SyncContext& ctx) override;

  /// The wrapped protocol process (post-run state inspection).
  SyncProcess& inner() { return *inner_; }
  const SyncProcess& inner() const { return *inner_; }

  // Per-incident-edge link state (same surface as ArqHost).
  std::int64_t data_sent(EdgeId e) const;
  std::int64_t next_expected_in(EdgeId e) const;
  std::int64_t delivered_up(EdgeId e) const;
  std::int64_t retransmit_count(EdgeId e) const;
  /// Pulses at which each retransmission on e fired, in order.
  const std::vector<std::int64_t>& retransmit_pulses(EdgeId e) const;
  bool peer_dead(EdgeId e) const;
  bool any_peer_dead() const;
  std::int64_t suppressed_sends(EdgeId e) const;
  std::int64_t corrupt_frames(EdgeId e) const;

 private:
  class VirtualCtx;

  struct Pending {
    std::int64_t seq = 0;
    Message frame;
  };
  struct Link {
    EdgeId e = kNoEdge;
    // Sender side.
    std::int64_t next_seq = 0;
    std::vector<Pending> unacked;
    std::vector<std::int64_t> retransmit_pulses;
    bool dead = false;
    std::int64_t suppressed = 0;
    // Receiver side.
    std::int64_t expected = 0;
    // Ordered so the drain (find(expected), ascending seq) replays the
    // sender's send order under any loss/reorder pattern — the DET-1
    // proof sketch, same as the async layer (docs/analysis.md).
    std::map<std::int64_t, Message> buffered;
    std::int64_t delivered = 0;
    std::int64_t corrupt = 0;
  };
  struct Timer {
    EdgeId e = kNoEdge;
    std::int64_t seq = 0;
    int attempt = 0;
  };

  Link& link(EdgeId e);
  const Link& link(EdgeId e) const;
  std::int64_t timeout_pulses(EdgeId e, int attempt) const;
  /// Registers a retransmit timer for (e, seq, attempt) and makes sure
  /// an engine wakeup is armed at its due pulse (deduplicated — one
  /// engine wakeup serves every timer and inner wakeup at that pulse).
  void arm(SyncContext& ctx, EdgeId e, std::int64_t seq, int attempt);
  void handle_data(SyncContext& ctx, const Message& frame);
  void handle_ack(const Message& frame);
  void fire_timer(SyncContext& ctx, const Timer& t);
  void inner_send(SyncContext& ctx, EdgeId e, Message m, MsgClass cls);
  void inner_wakeup(SyncContext& ctx, std::int64_t at_pulse);
  void bill_control(SyncContext& ctx, EdgeId e);

  NodeId self_;
  std::unique_ptr<SyncProcess> inner_;
  ArqConfig cfg_;
  const Graph* graph_ = nullptr;
  std::vector<Link> links_;
  // Determinism proof sketch (DET-1, docs/analysis.md): timers_ is
  // read only through find(p) at the firing pulse, and each pulse's
  // vector fires in arm order, so retransmit order is a pure function
  // of the run history. The two sets are point-inserted/erased, never
  // iterated — their order cannot reach message order at all.
  std::map<std::int64_t, std::vector<Timer>> timers_;  ///< by due pulse
  std::set<std::int64_t> armed_pulses_;   ///< engine wakeups requested
  std::set<std::int64_t> inner_wakeups_;  ///< pulses the inner asked for
};

/// Wraps every process `inner` builds behind the pulse-domain ARQ layer.
std::function<std::unique_ptr<SyncProcess>(NodeId)> sync_arq_factory(
    std::function<std::unique_ptr<SyncProcess>(NodeId)> inner,
    ArqConfig cfg = {});

}  // namespace csca
