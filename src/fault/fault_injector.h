// Engine-facing view of a FaultPlan (and, optionally, a ChurnPlan).
//
// The injector materializes a plan against a concrete graph (per-node
// crash times, per-edge outage intervals) and answers the questions the
// engines ask on their send/schedule paths:
//
//   crashed(v, t)      — has v crash-stopped by t, or is it absent
//                        (churn: left / not yet joined) at t?
//   link_down(e, t)    — is edge e inside an outage or churn-down
//                        interval at t?
//   send_fate(ch, cnt) — is send number cnt on directed channel ch
//                        dropped, duplicated, or delivered normally?
//   byzantine_fate(..) — does byzantine sender corruption (equivocate /
//                        forge) apply to this send?
//
// send_fate is a pure function of (run seed, plan salt, channel, count)
// — the same keyed-per-channel-stream discipline as delay_keyed /
// channel_delay_key — so every engine (sequential, keyed sequential,
// sharded at any shard count, optimistic) draws identical fates for the
// same logical send, and the fault stream never perturbs delay draws.
// The churn liveness intervals are static data compiled at
// construction, so churned runs inherit the same bit-identity for free:
// every lookup is a pure function of (plan, id, t), which is also what
// makes them rollback-safe on the Time Warp backend (a re-executed send
// re-derives the identical answer; the undo journal already rewinds the
// per-channel counts the keyed draws consume).
//
// All fault decisions are made at *send* time (crash schedules and
// outage intervals are static data, and the arrival time is known when
// the message is enqueued), so the delivery hot loop stays fault-free.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "graph/graph.h"
#include "sim/message.h"  // header-only; no link edge onto csca_sim
#include "util/rng.h"

namespace csca {

class FaultInjector {
 public:
  /// Materializes `plan` against `g`. `run_seed` should be the engine's
  /// seed so fates are reproducible from the same single seed as
  /// everything else. Validates the plan (FaultPlan::validate): rejects
  /// out-of-range ids, malformed or overlapping outage intervals, and
  /// rates outside [0, 1].
  FaultInjector(const FaultPlan& plan, const Graph& g,
                std::uint64_t run_seed);

  /// Same, with a dynamic-topology schedule composed in: the churn
  /// plan's edge down/up transitions become extra outage-style
  /// intervals and its node leave/join spans become absence intervals
  /// folded into crashed(). (Weight re-draws are *not* consumed here —
  /// they mutate the Graph between run slices via apply_churn_weights;
  /// see churn_plan.h.) Both plans are validated.
  FaultInjector(const FaultPlan& plan, const ChurnPlan& churn,
                const Graph& g, std::uint64_t run_seed);

  /// False for a zero-rate, event-free plan; engines treat attaching an
  /// inactive injector exactly like attaching none.
  bool active() const { return plan_.active() || churn_live_; }
  const FaultPlan& plan() const { return plan_; }

  double crash_time(NodeId v) const {
    return crash_time_[static_cast<std::size_t>(v)];
  }
  /// Crash-stop *or* churn absence: true when v must not run handlers,
  /// send, or receive at time t. Unlike pure crash-stop this is not
  /// monotone in t — a churned node that joins at t_k is dead before
  /// t_k and live after (its on_start never runs; it participates from
  /// its first delivery).
  bool crashed(NodeId v, double t) const {
    if (t >= crash_time_[static_cast<std::size_t>(v)]) return true;
    if (!has_absences_) return false;
    for (const auto& [lo, hi] : absences_[static_cast<std::size_t>(v)]) {
      if (t >= lo && t < hi) return true;
    }
    return false;
  }
  bool any_crashes() const { return !plan_.crashes.empty() || has_absences_; }

  bool link_down(EdgeId e, double t) const {
    for (const auto& [down, up] : outages_[static_cast<std::size_t>(e)]) {
      if (t >= down && t < up) return true;
    }
    return false;
  }

  struct SendFate {
    bool drop = false;
    bool duplicate = false;
    bool garble = false;
  };

  /// Fate of send number `count` (0-based) on directed channel
  /// `channel` (2 * edge + direction, as in channel_delay_key). One
  /// keyed unit draw decides: u < drop_rate drops, u in
  /// [drop_rate, drop_rate + dup_rate) duplicates, u in
  /// [drop_rate + dup_rate, drop_rate + dup_rate + garble_rate)
  /// garbles. The bands are disjoint, so a garbled send is delivered
  /// exactly once (corrupted), never also dropped or duplicated.
  SendFate send_fate(std::uint64_t channel, std::uint64_t count) const {
    if (plan_.drop_rate == 0 && plan_.dup_rate == 0 &&
        plan_.garble_rate == 0) {
      return {};
    }
    const double u = key_to_unit(
        derive_stream_seed(derive_stream_seed(fate_seed_, channel), count));
    if (u < plan_.drop_rate) return {true, false, false};
    if (u < plan_.drop_rate + plan_.dup_rate) return {false, true, false};
    if (u < plan_.drop_rate + plan_.dup_rate + plan_.garble_rate) {
      return {false, false, true};
    }
    return {};
  }

  /// Delay-draw key for the phantom copy of a duplicated send: same
  /// keying discipline as channel_delay_key but from the fault stream,
  /// so the duplicate's delay is independent of the original's and of
  /// every other draw in the run.
  std::uint64_t dup_delay_key(std::uint64_t channel,
                              std::uint64_t count) const {
    return derive_stream_seed(derive_stream_seed(dup_seed_, channel), count);
  }

  /// Applies the corruption for a send whose fate came back garbled:
  /// XORs a keyed odd (hence nonzero) 64-bit mask into one keyed
  /// payload word, or into the type tag when the payload is empty. A
  /// pure function of (run seed, salt, channel, count), so every engine
  /// corrupts the same logical send identically and sharded runs stay
  /// bit-identical. The XOR is guaranteed to change the word, which is
  /// what makes the ARQ checksum's single-word detection bound exact.
  void garble(std::uint64_t channel, std::uint64_t count, Message& m) const {
    const std::uint64_t k =
        derive_stream_seed(derive_stream_seed(garble_seed_, channel), count);
    corrupt_word(k, m);
  }

  /// Is v in the plan's corruption set (with a byzantine rate > 0)?
  bool byzantine(NodeId v) const {
    return has_byzantine_ && is_byzantine_[static_cast<std::size_t>(v)];
  }
  bool any_byzantine() const { return has_byzantine_; }

  enum class ByzantineFate { kNone, kEquivocate, kForge };

  /// Byzantine action for send `count` on channel `channel`, drawn on
  /// its own keyed stream (independent of send_fate, so a send can be
  /// both e.g. duplicated and equivocated). Only meaningful when the
  /// sender is byzantine; callers gate on byzantine(from).
  ByzantineFate byzantine_fate(std::uint64_t channel,
                               std::uint64_t count) const {
    const double u = key_to_unit(
        derive_stream_seed(derive_stream_seed(byz_seed_, channel), count));
    if (u < plan_.equivocate_rate) return ByzantineFate::kEquivocate;
    if (u < plan_.equivocate_rate + plan_.forge_rate) {
      return ByzantineFate::kForge;
    }
    return ByzantineFate::kNone;
  }

  /// Equivocation: corrupts one keyed payload word with a mask keyed by
  /// the *directed channel*, so the copies a byzantine node emits to
  /// different neighbors in the same round disagree by construction.
  /// Pure function of (run seed, salt, channel, count).
  void equivocate(std::uint64_t channel, std::uint64_t count,
                  Message& m) const {
    corrupt_word(
        derive_stream_seed(derive_stream_seed(equiv_seed_, channel), count),
        m);
  }

  /// Forgery: corrupts one keyed payload word and then, when the frame
  /// is a checksummed ARQ DATA/ACK frame, re-patches the trailing
  /// checksum so arq_frame_valid accepts the forged frame — damage the
  /// reliable-link layer cannot detect or heal. On unframed traffic the
  /// corruption lands as-is (there is no checksum to forge past).
  void forge(std::uint64_t channel, std::uint64_t count, Message& m) const;

 private:
  void compile_churn(const ChurnPlan& churn, const Graph& g);
  void compile_byzantine(const Graph& g);
  // Shared corruption primitive: XOR mix64(k)|1 into payload word
  // (k % size), or the type tag when the payload is empty.
  static void corrupt_word(std::uint64_t k, Message& m) {
    const std::uint64_t mask = mix64(k) | 1;
    if (m.data.empty()) {
      m.type = static_cast<int>(static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(m.type)) ^
                                mask);
      return;
    }
    const std::size_t i = static_cast<std::size_t>(
        derive_stream_seed(k, 0x11D3) % m.data.size());
    m.data[i] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(m.data[i]) ^ mask);
  }

  FaultPlan plan_;
  std::uint64_t fate_seed_;
  std::uint64_t dup_seed_;
  std::uint64_t garble_seed_;
  std::uint64_t byz_seed_;
  std::uint64_t equiv_seed_;
  // Crash time per node, +infinity when the node never crashes.
  std::vector<double> crash_time_;
  // Outage intervals [down, up) per edge, in plan order (churn-derived
  // down spans appended after the plan's own outages).
  std::vector<std::vector<std::pair<double, double>>> outages_;
  // Churn absence intervals [lo, hi) per node; empty when no churn.
  bool churn_live_ = false;
  bool has_absences_ = false;
  std::vector<std::vector<std::pair<double, double>>> absences_;
  // Corruption-set membership, materialized for O(1) lookups.
  bool has_byzantine_ = false;
  std::vector<bool> is_byzantine_;
};

}  // namespace csca
