// Engine-facing view of a FaultPlan.
//
// The injector materializes a plan against a concrete graph (per-node
// crash times, per-edge outage intervals) and answers the three
// questions the engines ask on their send/schedule paths:
//
//   crashed(v, t)      — has v crash-stopped by time t?
//   link_down(e, t)    — is edge e inside an outage interval at t?
//   send_fate(ch, cnt) — is send number cnt on directed channel ch
//                        dropped, duplicated, or delivered normally?
//
// send_fate is a pure function of (run seed, plan salt, channel, count)
// — the same keyed-per-channel-stream discipline as delay_keyed /
// channel_delay_key — so every engine (sequential, keyed sequential,
// sharded at any shard count) draws identical fates for the same
// logical send, and the fault stream never perturbs delay draws.
//
// All fault decisions are made at *send* time (crash schedules and
// outage intervals are static data, and the arrival time is known when
// the message is enqueued), so the delivery hot loop stays fault-free.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "graph/graph.h"
#include "sim/message.h"  // header-only; no link edge onto csca_sim
#include "util/rng.h"

namespace csca {

class FaultInjector {
 public:
  /// Materializes `plan` against `g`. `run_seed` should be the engine's
  /// seed so fates are reproducible from the same single seed as
  /// everything else. Rejects out-of-range crash nodes / outage edges,
  /// malformed intervals, and drop_rate + dup_rate outside [0, 1].
  FaultInjector(const FaultPlan& plan, const Graph& g,
                std::uint64_t run_seed);

  /// False for a zero-rate, event-free plan; engines treat attaching an
  /// inactive injector exactly like attaching none.
  bool active() const { return plan_.active(); }
  const FaultPlan& plan() const { return plan_; }

  double crash_time(NodeId v) const {
    return crash_time_[static_cast<std::size_t>(v)];
  }
  bool crashed(NodeId v, double t) const {
    return t >= crash_time_[static_cast<std::size_t>(v)];
  }
  bool any_crashes() const { return !plan_.crashes.empty(); }

  bool link_down(EdgeId e, double t) const {
    for (const auto& [down, up] : outages_[static_cast<std::size_t>(e)]) {
      if (t >= down && t < up) return true;
    }
    return false;
  }

  struct SendFate {
    bool drop = false;
    bool duplicate = false;
    bool garble = false;
  };

  /// Fate of send number `count` (0-based) on directed channel
  /// `channel` (2 * edge + direction, as in channel_delay_key). One
  /// keyed unit draw decides: u < drop_rate drops, u in
  /// [drop_rate, drop_rate + dup_rate) duplicates, u in
  /// [drop_rate + dup_rate, drop_rate + dup_rate + garble_rate)
  /// garbles. The bands are disjoint, so a garbled send is delivered
  /// exactly once (corrupted), never also dropped or duplicated.
  SendFate send_fate(std::uint64_t channel, std::uint64_t count) const {
    if (plan_.drop_rate == 0 && plan_.dup_rate == 0 &&
        plan_.garble_rate == 0) {
      return {};
    }
    const double u = key_to_unit(
        derive_stream_seed(derive_stream_seed(fate_seed_, channel), count));
    if (u < plan_.drop_rate) return {true, false, false};
    if (u < plan_.drop_rate + plan_.dup_rate) return {false, true, false};
    if (u < plan_.drop_rate + plan_.dup_rate + plan_.garble_rate) {
      return {false, false, true};
    }
    return {};
  }

  /// Delay-draw key for the phantom copy of a duplicated send: same
  /// keying discipline as channel_delay_key but from the fault stream,
  /// so the duplicate's delay is independent of the original's and of
  /// every other draw in the run.
  std::uint64_t dup_delay_key(std::uint64_t channel,
                              std::uint64_t count) const {
    return derive_stream_seed(derive_stream_seed(dup_seed_, channel), count);
  }

  /// Applies the corruption for a send whose fate came back garbled:
  /// XORs a keyed odd (hence nonzero) 64-bit mask into one keyed
  /// payload word, or into the type tag when the payload is empty. A
  /// pure function of (run seed, salt, channel, count), so every engine
  /// corrupts the same logical send identically and sharded runs stay
  /// bit-identical. The XOR is guaranteed to change the word, which is
  /// what makes the ARQ checksum's single-word detection bound exact.
  void garble(std::uint64_t channel, std::uint64_t count, Message& m) const {
    const std::uint64_t k =
        derive_stream_seed(derive_stream_seed(garble_seed_, channel), count);
    const std::uint64_t mask = mix64(k) | 1;
    if (m.data.empty()) {
      m.type = static_cast<int>(static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(m.type)) ^
                                mask);
      return;
    }
    const std::size_t i = static_cast<std::size_t>(
        derive_stream_seed(k, 0x11D3) % m.data.size());
    m.data[i] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(m.data[i]) ^ mask);
  }

 private:
  FaultPlan plan_;
  std::uint64_t fate_seed_;
  std::uint64_t dup_seed_;
  std::uint64_t garble_seed_;
  // Crash time per node, +infinity when the node never crashes.
  std::vector<double> crash_time_;
  // Outage intervals [down, up) per edge, in plan order.
  std::vector<std::vector<std::pair<double, double>>> outages_;
};

}  // namespace csca
