#include "conn/hybrid.h"

#include "graph/traversal.h"

namespace csca {

HybridConnProcess::HybridConnProcess(const Graph& g, NodeId self,
                                     NodeId root)
    : self_(self), root_(root) {
  ProtocolArbiter* arb = self == root ? this : nullptr;
  dfs_ = std::make_unique<DfsProcess>(self, root, kDfsBase, arb, kDfsId);
  mst_ = std::make_unique<MstCentrProcess>(g, self, root, kMstBase, arb,
                                           kMstId);
}

void HybridConnProcess::on_start(Context& ctx) {
  dfs_->on_start(ctx);
  mst_->on_start(ctx);
}

void HybridConnProcess::on_message(Context& ctx, const Message& m) {
  if (m.type == kResumeTick) {
    const int id = resume_pending_;
    resume_pending_ = -1;
    if (id != -1 && waiting_[id] && winner_ == -1) resume(id, ctx);
    return;
  }
  if (m.type >= kMstBase) {
    mst_->on_message(ctx, m);
  } else {
    require(m.type >= kDfsBase, "message type outside sub-protocol ranges");
    dfs_->on_message(ctx, m);
  }
}

bool HybridConnProcess::may_proceed(int id, Context& ctx, Weight estimate) {
  ensure(self_ == root_, "arbitration must happen at the root");
  if (winner_ != -1) {
    // Someone already finished: keep the loser suspended forever.
    waiting_[id] = true;
    return false;
  }
  (id == kDfsId ? wa_ : wb_) = estimate;
  const int permitted = wa_ <= wb_ ? kDfsId : kMstId;
  if (permitted == id) return true;
  waiting_[id] = true;
  if (waiting_[permitted]) request_resume(ctx, permitted);
  return false;
}

void HybridConnProcess::request_resume(Context& ctx, int id) {
  if (resume_pending_ == id) return;
  resume_pending_ = id;
  ctx.schedule_self(0.0, Message{kResumeTick});
}

void HybridConnProcess::resume(int id, Context& ctx) {
  waiting_[id] = false;
  if (id == kDfsId) {
    dfs_->resume_root(ctx);
  } else {
    mst_->resume_root(ctx);
  }
}

void HybridConnProcess::completed(int id, Context& ctx) {
  if (winner_ == -1) winner_ = id;
  ctx.finish();
}

HybridConnRun run_con_hybrid(const Graph& g, NodeId root,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed) {
  g.check_node(root);
  require(is_connected(g), "run_con_hybrid requires a connected graph");
  Network net(
      g,
      [&g, root](NodeId v) {
        return std::make_unique<HybridConnProcess>(g, v, root);
      },
      std::move(delay), seed);
  RunStats stats = net.run();
  auto& root_proc = net.process_as<HybridConnProcess>(root);
  ensure(root_proc.winner() != -1,
         "one sub-protocol must terminate on a connected graph");
  const bool dfs_won = root_proc.winner() == HybridConnProcess::kDfsId;
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parents[static_cast<std::size_t>(v)] =
        dfs_won ? net.process_as<HybridConnProcess>(v).dfs().parent_edge()
                : root_proc.mst().tree_parent_edge(v);
  }
  return HybridConnRun{
      RootedTree::from_parent_edges(g, root, std::move(parents)), stats,
      dfs_won};
}

}  // namespace csca
