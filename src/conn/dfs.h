// Distributed depth-first search with root estimates (§6.2).
//
// A token performs a DFS traversal of the network. Fact 6.2: both the
// communication and the time complexity are O(script-E) — each edge
// carries O(1) token/reject/backtrack messages, each costing w(e).
//
// Following the paper, the algorithm maintains two estimates of the total
// weight traversed so far: the *center estimate* carried with the token
// (exact) and the *root estimate* held at the root (a lower bound within
// a factor of two, including the next edge to traverse). Whenever the
// center estimate is about to double past the root estimate, the token
// "reports in": an update walks up the DFS tree to the root and back.
// Because the root estimate doubles between reports, the walks sum to a
// geometric series and at most double the total communication. The pause
// at the root is the suspension point the hybrid algorithms arbitrate.
#pragma once

#include "conn/arbiter.h"
#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

class DfsProcess final : public Process {
 public:
  /// type_base offsets this protocol's message tags so a host process can
  /// multiplex it with another protocol; arbiter (optional, root only)
  /// gates continuation at root pauses; arbiter_id tags arbiter calls.
  DfsProcess(NodeId self, NodeId root, int type_base = 0,
             ProtocolArbiter* arbiter = nullptr, int arbiter_id = 0);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  /// Host entry point: continues a run suspended by the arbiter. Must be
  /// invoked on the root's process.
  void resume_root(Context& ctx);

  bool visited() const { return visited_; }
  EdgeId parent_edge() const { return parent_edge_; }
  bool done() const { return done_; }
  /// Exact total weight of token traversals (meaningful at the root after
  /// completion, and at the token holder during the run).
  Weight center_estimate() const { return est_; }
  Weight root_estimate() const { return est_root_; }

  // Optimistic-engine snapshots. The arbiter pointer is shared
  // configuration (owned by the host driving the run), not per-event
  // state, so the plain member copy is the correct deep copy.
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<DfsProcess>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const DfsProcess&>(saved);
  }

 private:
  enum MsgType {
    kVisit = 0,   // token moves forward; data = [est, estr]
    kReject = 1,  // receiver was already visited
    kBack = 2,    // token backtracks to parent; data = [est, estr]
    kUp = 3,      // estimate update walking toward root; data = [new_est]
    kResume = 4,  // root's answer walking back to the token; data = [estr]
  };
  int tag(MsgType t) const { return type_base_ + static_cast<int>(t); }
  MsgType untag(int type) const {
    return static_cast<MsgType>(type - type_base_);
  }

  /// Token-at-self continuation: picks the next traversal (visit or
  /// backtrack), handling the estimate-doubling report-to-root rule.
  void advance(Context& ctx);
  void complete(Context& ctx);

  NodeId self_;
  NodeId root_;
  int type_base_;
  ProtocolArbiter* arbiter_;
  int arbiter_id_;

  bool visited_ = false;
  bool done_ = false;
  EdgeId parent_edge_ = kNoEdge;
  std::size_t next_idx_ = 0;   // next incident-edge index to try
  std::size_t tried_idx_ = 0;  // index of the edge currently being tried
  Weight est_ = 0;             // center estimate (valid with token here)
  Weight est_known_root_ = 0;  // token's view of the root estimate
  Weight est_root_ = 0;        // root only: the actual root estimate
  EdgeId resume_child_edge_ = kNoEdge;  // kUp came in here; kResume goes back
  bool suspended_at_root_ = false;      // root holds a pending continuation
  bool pending_is_local_ = false;  // suspended continuation is the root's own
};

/// Outcome of a standalone DFS run.
struct DfsRun {
  RootedTree tree;  ///< the DFS spanning tree
  RunStats stats;
  Weight traversal_weight = 0;  ///< final center estimate at the root
};

/// Runs DFS from root to completion on a connected graph.
DfsRun run_dfs(const Graph& g, NodeId root,
               std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);

}  // namespace csca
