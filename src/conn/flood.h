// Algorithm CON_flood (§6.1): broadcast by flooding.
//
// Each vertex forwards the message to all neighbors on first receipt and
// ignores later arrivals. Fact 6.1: communication O(script-E) — every edge
// carries O(1) messages — and time O(script-D) — the wave follows shortest
// weighted paths when delays are at their w(e) bounds. The parent edges
// (first-receipt edges) form a spanning tree, which makes flooding a
// (communication-expensive) connectivity/spanning-tree algorithm, the
// CON_flood row of Figure 2.
#pragma once

#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

class FloodProcess final : public Process {
 public:
  /// initiator: the vertex that originates the broadcast.
  FloodProcess(NodeId self, NodeId initiator)
      : is_initiator_(self == initiator) {}

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  /// Edge over which this vertex first received the broadcast (kNoEdge
  /// for the initiator / unreached vertices).
  EdgeId parent_edge() const { return parent_edge_; }
  bool reached() const { return reached_; }

  // Optimistic-engine snapshots (plain value copy).
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<FloodProcess>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const FloodProcess&>(saved);
  }

 private:
  void spread(Context& ctx);

  bool is_initiator_;
  bool reached_ = false;
  EdgeId parent_edge_ = kNoEdge;
};

/// Outcome of one flooding run.
struct FloodRun {
  RootedTree tree;  ///< first-receipt spanning tree rooted at initiator
  RunStats stats;
};

/// Builds the network, floods from initiator, returns tree + ledger.
/// Requires g connected.
FloodRun run_flood(const Graph& g, NodeId initiator,
                   std::unique_ptr<DelayModel> delay,
                   std::uint64_t seed = 1);

}  // namespace csca
