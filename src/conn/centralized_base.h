// Shared skeleton of the full-information algorithms MST_centr (§6.3) and
// SPT_centr (§6.4).
//
// Both algorithms grow a tree from the root one vertex per phase and
// maintain the invariant that *every tree vertex knows the structure of
// the whole tree* (§6.3). A phase is: the root broadcasts a probe over
// the tree; each tree vertex computes its best "candidate" edge leaving
// the tree locally (it knows the graph and the tree, so no probing
// messages cross non-tree edges); candidates are convergecast to the
// root, which picks the global optimum, announces it over the tree, and
// the tree endpoint of the chosen edge streams the tree structure to the
// joining vertex. Per phase this costs O(w(T)) for the broadcast /
// convergecast plus O(|T| * w(e)) for the join stream, giving the
// O(n * V) total of Corollary 6.4 (and the O(n * w(SPT)) of Cor. 6.6).
//
// The two algorithms differ only in what a candidate's key is (edge
// weight for Prim, source distance label for Dijkstra) and in the
// auxiliary value attached to a joining vertex (nothing / its distance),
// which subclasses provide.
#pragma once

#include "conn/arbiter.h"
#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

class CentralizedTreeProcess : public Process {
 public:
  void on_start(Context& ctx) final;
  void on_message(Context& ctx, const Message& m) final;

  /// Host entry point: continues after an arbiter suspension (root only).
  void resume_root(Context& ctx);

  bool done() const { return done_; }
  bool in_tree() const {
    return in_tree_mask_[static_cast<std::size_t>(self_)] != 0;
  }
  /// This vertex's copy of the tree (valid for tree members).
  EdgeId tree_parent_edge(NodeId v) const {
    return parent_edge_of_[static_cast<std::size_t>(v)];
  }
  Weight tree_weight() const { return tree_weight_; }
  int tree_size() const { return tree_size_; }
  /// Root's running estimate of communication spent so far (§7.2's W_b);
  /// stays within a small constant of the true ledger cost.
  Weight spent_estimate() const { return spent_estimate_; }
  std::int64_t aux(NodeId v) const {
    return aux_of_[static_cast<std::size_t>(v)];
  }
  int phases_run() const { return phase_; }

 protected:
  /// A candidate edge leaving the tree; smaller key wins, ties broken by
  /// the deterministic edge order. kNoEdge means "no outgoing edge here".
  struct Candidate {
    EdgeId edge = kNoEdge;
    Weight key = 0;
  };

  CentralizedTreeProcess(const Graph& g, NodeId self, NodeId root,
                         int type_base, ProtocolArbiter* arbiter,
                         int arbiter_id);

  /// The best candidate leaving the tree at this vertex, or {kNoEdge}.
  virtual Candidate local_candidate() const = 0;

  /// Auxiliary value recorded for the vertex joining via `chosen`
  /// (e.g. its distance label in SPT_centr).
  virtual std::int64_t aux_for_new_node(const Candidate& chosen) const = 0;

  bool node_in_tree(NodeId v) const {
    return in_tree_mask_[static_cast<std::size_t>(v)] != 0;
  }
  const Graph& graph() const { return *graph_; }
  NodeId self() const { return self_; }

 private:
  enum MsgType {
    kProbe = 0,      // data = [phase]
    kReport = 1,     // data = [phase, edge or -1, key]
    kAdd = 2,        // data = [phase, edge, aux]
    kTreeEntry = 3,  // data = [node, parent_edge or -1, aux]
    kJoinEnd = 4,    // data = []
    kAccept = 5,     // data = []
    kDone = 6,       // data = []
  };
  enum class Pending { kNone, kStartPhase, kSendAdd };

  int tag(MsgType t) const { return type_base_ + static_cast<int>(t); }

  bool candidate_less(const Candidate& a, const Candidate& b) const;
  void merge_candidate(const Candidate& c);

  void start_phase(Context& ctx);
  void begin_local_report(Context& ctx);
  void report_ready(Context& ctx);
  void phase_complete(Context& ctx);
  void send_add(Context& ctx);
  void apply_add(Context& ctx, EdgeId e, std::int64_t aux_value);
  void finish_all(Context& ctx);

  const Graph* graph_;
  NodeId self_;
  NodeId root_;
  int type_base_;
  ProtocolArbiter* arbiter_;
  int arbiter_id_;

  // Tree copy (identical at every tree member).
  std::vector<char> in_tree_mask_;
  std::vector<EdgeId> parent_edge_of_;
  std::vector<std::int64_t> aux_of_;
  std::vector<EdgeId> my_children_edges_;
  int tree_size_ = 0;
  Weight tree_weight_ = 0;
  Weight spent_estimate_ = 0;  // root only

  int phase_ = 0;
  int reports_pending_ = 0;
  Candidate best_;
  Candidate chosen_;  // root only: this phase's winner
  Pending pending_ = Pending::kNone;
  bool done_ = false;
};

}  // namespace csca
