#include "conn/centralized_base.h"

#include "graph/mst.h"

namespace csca {

CentralizedTreeProcess::CentralizedTreeProcess(const Graph& g, NodeId self,
                                               NodeId root, int type_base,
                                               ProtocolArbiter* arbiter,
                                               int arbiter_id)
    : graph_(&g),
      self_(self),
      root_(root),
      type_base_(type_base),
      arbiter_(arbiter),
      arbiter_id_(arbiter_id),
      in_tree_mask_(static_cast<std::size_t>(g.node_count()), 0),
      parent_edge_of_(static_cast<std::size_t>(g.node_count()), kNoEdge),
      aux_of_(static_cast<std::size_t>(g.node_count()), 0) {}

bool CentralizedTreeProcess::candidate_less(const Candidate& a,
                                            const Candidate& b) const {
  if (a.edge == kNoEdge) return false;
  if (b.edge == kNoEdge) return true;
  if (a.key != b.key) return a.key < b.key;
  return edge_less(*graph_, a.edge, b.edge);
}

void CentralizedTreeProcess::merge_candidate(const Candidate& c) {
  if (candidate_less(c, best_)) best_ = c;
}

void CentralizedTreeProcess::on_start(Context& ctx) {
  if (self_ != root_) return;
  in_tree_mask_[static_cast<std::size_t>(root_)] = 1;
  tree_size_ = 1;
  start_phase(ctx);
}

void CentralizedTreeProcess::start_phase(Context& ctx) {
  if (tree_size_ == graph_->node_count()) {
    finish_all(ctx);
    return;
  }
  // The probe + report sweep about to happen costs ~2 w(T).
  spent_estimate_ += 2 * tree_weight_;
  if (arbiter_ != nullptr &&
      !arbiter_->may_proceed(arbiter_id_, ctx, spent_estimate_)) {
    pending_ = Pending::kStartPhase;
    return;
  }
  ++phase_;
  begin_local_report(ctx);
}

void CentralizedTreeProcess::begin_local_report(Context& ctx) {
  best_ = local_candidate();
  reports_pending_ = static_cast<int>(my_children_edges_.size());
  for (EdgeId e : my_children_edges_) {
    ctx.send(e, Message{tag(kProbe), {phase_}}, MsgClass::kAlgorithm);
  }
  if (reports_pending_ == 0) report_ready(ctx);
}

void CentralizedTreeProcess::report_ready(Context& ctx) {
  if (self_ == root_) {
    phase_complete(ctx);
    return;
  }
  ctx.send(parent_edge_of_[static_cast<std::size_t>(self_)],
           Message{tag(kReport),
                   {phase_, best_.edge == kNoEdge ? -1 : best_.edge,
                    best_.key}}, MsgClass::kAlgorithm);
}

void CentralizedTreeProcess::phase_complete(Context& ctx) {
  chosen_ = best_;
  if (chosen_.edge == kNoEdge) {
    // No edge leaves the tree: it spans the component.
    finish_all(ctx);
    return;
  }
  // Announcing the add costs ~w(T), the join stream |T| * w(e), and the
  // accept walk back up at most w(T) again.
  spent_estimate_ += 2 * tree_weight_ +
                     static_cast<Weight>(tree_size_ + 1) *
                         graph_->weight(chosen_.edge);
  if (arbiter_ != nullptr &&
      !arbiter_->may_proceed(arbiter_id_, ctx, spent_estimate_)) {
    pending_ = Pending::kSendAdd;
    return;
  }
  send_add(ctx);
}

void CentralizedTreeProcess::send_add(Context& ctx) {
  const std::int64_t aux_value = aux_for_new_node(chosen_);
  // Broadcast first (children edges reflect the pre-add tree), then apply.
  for (EdgeId e : my_children_edges_) {
    ctx.send(e, Message{tag(kAdd), {phase_, chosen_.edge, aux_value}}, MsgClass::kAlgorithm);
  }
  apply_add(ctx, chosen_.edge, aux_value);
}

void CentralizedTreeProcess::apply_add(Context& ctx, EdgeId e,
                                       std::int64_t aux_value) {
  const Edge& ed = graph_->edge(e);
  const NodeId fresh = node_in_tree(ed.u) ? ed.v : ed.u;
  const NodeId owner = graph_->other(e, fresh);
  ensure(node_in_tree(owner) && !node_in_tree(fresh),
         "chosen edge must leave the tree");
  in_tree_mask_[static_cast<std::size_t>(fresh)] = 1;
  parent_edge_of_[static_cast<std::size_t>(fresh)] = e;
  aux_of_[static_cast<std::size_t>(fresh)] = aux_value;
  ++tree_size_;
  tree_weight_ += ed.w;
  if (owner == self_) {
    my_children_edges_.push_back(e);
    // Stream the whole tree to the joining vertex (§6.3: "each vertex in
    // the tree knows the structure of the whole tree"). One message per
    // tree vertex, all over the join edge.
    for (NodeId t = 0; t < graph_->node_count(); ++t) {
      if (!node_in_tree(t)) continue;
      ctx.send(e,
               Message{tag(kTreeEntry),
                       {t,
                        parent_edge_of_[static_cast<std::size_t>(t)] ==
                                kNoEdge
                            ? -1
                            : parent_edge_of_[static_cast<std::size_t>(t)],
                        aux_of_[static_cast<std::size_t>(t)]}}, MsgClass::kAlgorithm);
    }
    ctx.send(e, Message{tag(kJoinEnd), {phase_}}, MsgClass::kAlgorithm);
  }
}

void CentralizedTreeProcess::finish_all(Context& ctx) {
  done_ = true;
  for (EdgeId e : my_children_edges_) {
    ctx.send(e, Message{tag(kDone)}, MsgClass::kAlgorithm);
  }
  ctx.finish();
  if (self_ == root_ && arbiter_ != nullptr) {
    arbiter_->completed(arbiter_id_, ctx);
  }
}

void CentralizedTreeProcess::resume_root(Context& ctx) {
  require(self_ == root_, "resume_root must run at the root");
  require(pending_ != Pending::kNone, "protocol is not suspended");
  // The host has decided to let this protocol run; no re-gating here.
  const Pending p = pending_;
  pending_ = Pending::kNone;
  if (p == Pending::kStartPhase) {
    ++phase_;
    begin_local_report(ctx);
  } else {
    send_add(ctx);
  }
}

void CentralizedTreeProcess::on_message(Context& ctx, const Message& m) {
  switch (static_cast<MsgType>(m.type - type_base_)) {
    case kProbe: {
      ensure(static_cast<int>(m.at(0)) == phase_ + 1,
             "probe phase mismatch");
      phase_ = static_cast<int>(m.at(0));
      begin_local_report(ctx);
      return;
    }
    case kReport: {
      ensure(static_cast<int>(m.at(0)) == phase_, "report phase mismatch");
      if (m.at(1) >= 0) {
        merge_candidate(
            Candidate{static_cast<EdgeId>(m.at(1)), m.at(2)});
      }
      --reports_pending_;
      ensure(reports_pending_ >= 0, "unexpected extra report");
      if (reports_pending_ == 0) report_ready(ctx);
      return;
    }
    case kAdd: {
      phase_ = static_cast<int>(m.at(0));
      for (EdgeId e : my_children_edges_) {
        ctx.send(e, Message{tag(kAdd), {m.at(0), m.at(1), m.at(2)}}, MsgClass::kAlgorithm);
      }
      apply_add(ctx, static_cast<EdgeId>(m.at(1)), m.at(2));
      return;
    }
    case kTreeEntry: {
      const NodeId t = static_cast<NodeId>(m.at(0));
      in_tree_mask_[static_cast<std::size_t>(t)] = 1;
      parent_edge_of_[static_cast<std::size_t>(t)] =
          m.at(1) < 0 ? kNoEdge : static_cast<EdgeId>(m.at(1));
      aux_of_[static_cast<std::size_t>(t)] = m.at(2);
      return;
    }
    case kJoinEnd: {
      // The stream includes this vertex's own entry; rebuild the derived
      // state from the received copy.
      ensure(in_tree(), "join stream must have included the joiner");
      phase_ = static_cast<int>(m.at(0));
      tree_size_ = 0;
      tree_weight_ = 0;
      my_children_edges_.clear();
      for (NodeId t = 0; t < graph_->node_count(); ++t) {
        if (!node_in_tree(t)) continue;
        ++tree_size_;
        const EdgeId pe = parent_edge_of_[static_cast<std::size_t>(t)];
        if (pe == kNoEdge) continue;
        tree_weight_ += graph_->weight(pe);
        if (graph_->other(pe, t) == self_) {
          my_children_edges_.push_back(pe);
        }
      }
      ctx.send(parent_edge_of_[static_cast<std::size_t>(self_)],
               Message{tag(kAccept)}, MsgClass::kAlgorithm);
      return;
    }
    case kAccept: {
      if (self_ == root_) {
        start_phase(ctx);
      } else {
        ctx.send(parent_edge_of_[static_cast<std::size_t>(self_)],
                 Message{tag(kAccept)}, MsgClass::kAlgorithm);
      }
      return;
    }
    case kDone: {
      done_ = true;
      for (EdgeId e : my_children_edges_) {
        ctx.send(e, Message{tag(kDone)}, MsgClass::kAlgorithm);
      }
      ctx.finish();
      return;
    }
  }
  ensure(false, "CentralizedTreeProcess received a foreign message type");
}

}  // namespace csca
