// Root arbitration hook used by the hybrid algorithms (§7.2, §8.2, §9.3).
//
// The paper's hybrid technique runs two protocols in parallel, both of
// which periodically pause at the root with a "root estimate" of their
// communication spent so far (always within a factor of two of the
// truth). The root enables only the protocol with the smaller estimate,
// so the combination costs at most four times the cheaper of the two.
// Protocols call may_proceed at each pause point; a false return leaves
// them suspended until the host calls their resume entry point.
#pragma once

#include "graph/graph.h"
#include "sim/network.h"

namespace csca {

class ProtocolArbiter {
 public:
  virtual ~ProtocolArbiter() = default;

  /// Invoked at the root when sub-protocol `id` pauses with a new root
  /// estimate. Return true to let it continue immediately; return false
  /// to suspend it (the host resumes it later).
  virtual bool may_proceed(int id, Context& ctx, Weight estimate) = 0;

  /// Invoked at the root when sub-protocol `id` has completed its task.
  virtual void completed(int id, Context& ctx) = 0;
};

}  // namespace csca
