// Algorithm CON_hybrid (§7.2): run DFS and MST_centr in parallel, let the
// root enable only the currently-cheaper one.
//
// Claim 7.3: communication O(min{script-E, n * script-V}). Both
// sub-protocols pause at the root with root estimates W_a (DFS) and W_b
// (MST_centr) that are within a factor of two of their true spending;
// the root's Permit goes to the smaller estimate, so the total cannot
// exceed four times the cheaper algorithm — matching the Figure 2 lower
// bound Omega(min{script-E, n * script-V}) up to constants.
#pragma once

#include "conn/dfs.h"
#include "conn/mst_centr.h"

namespace csca {

/// Hosts one DfsProcess and one MstCentrProcess per node; the root's
/// instance doubles as the arbiter implementing the Permit rule.
class HybridConnProcess final : public Process, public ProtocolArbiter {
 public:
  static constexpr int kDfsId = 0;
  static constexpr int kMstId = 1;

  HybridConnProcess(const Graph& g, NodeId self, NodeId root);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  bool may_proceed(int id, Context& ctx, Weight estimate) override;
  void completed(int id, Context& ctx) override;

  /// kDfsId or kMstId once some sub-protocol finished, -1 before.
  int winner() const { return winner_; }
  const DfsProcess& dfs() const { return *dfs_; }
  const MstCentrProcess& mst() const { return *mst_; }
  Weight dfs_estimate() const { return wa_; }
  Weight mst_estimate() const { return wb_; }

 private:
  static constexpr int kResumeTick = 1;
  static constexpr int kDfsBase = 100;
  static constexpr int kMstBase = 200;

  /// Resumption must leave the suspending protocol's call frame first
  /// (it records its suspension state only after may_proceed returns), so
  /// the arbiter requests it via a zero-delay self-event.
  void request_resume(Context& ctx, int id);
  void resume(int id, Context& ctx);

  NodeId self_;
  NodeId root_;
  std::unique_ptr<DfsProcess> dfs_;
  std::unique_ptr<MstCentrProcess> mst_;

  // Root-only arbitration state.
  Weight wa_ = 0;
  Weight wb_ = 0;
  bool waiting_[2] = {false, false};
  int resume_pending_ = -1;
  int winner_ = -1;
};

struct HybridConnRun {
  RootedTree tree;  ///< spanning tree found by the winning sub-protocol
  RunStats stats;
  bool dfs_won = false;
};

/// Runs CON_hybrid from root to completion on a connected graph.
HybridConnRun run_con_hybrid(const Graph& g, NodeId root,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed = 1);

}  // namespace csca
