// Algorithm SPT_centr (§6.4): full-information distributed Dijkstra.
//
// Corollary 6.6: communication O(n * w(SPT)) = O(n^2 * script-V), time
// O(n * script-D). Identical phase structure to MST_centr; the candidate
// key for a non-tree neighbor x of tree vertex y is the Dijkstra label
// dist(s, y) + w(y, x), and the label becomes the joining vertex's
// distance, stored as its auxiliary value.
#pragma once

#include "conn/centralized_base.h"

namespace csca {

class SptCentrProcess final : public CentralizedTreeProcess {
 public:
  /// allowed_edges (optional, must outlive the process) restricts the
  /// algorithm to a subgraph G' = (V, E'); used by the distributed SLT
  /// construction, which computes an SPT of the grafted subgraph.
  SptCentrProcess(const Graph& g, NodeId self, NodeId root,
                  int type_base = 0, ProtocolArbiter* arbiter = nullptr,
                  int arbiter_id = 0,
                  const std::vector<char>* allowed_edges = nullptr)
      : CentralizedTreeProcess(g, self, root, type_base, arbiter,
                               arbiter_id),
        allowed_edges_(allowed_edges) {}

  /// dist(source, v) as recorded in this vertex's tree copy.
  Weight dist(NodeId v) const { return aux(v); }

 protected:
  Candidate local_candidate() const override;
  std::int64_t aux_for_new_node(const Candidate& chosen) const override {
    return chosen.key;  // the Dijkstra label is the new vertex's distance
  }

 private:
  const std::vector<char>* allowed_edges_;
};

struct SptCentrRun {
  RootedTree tree;
  std::vector<Weight> dist;  ///< dist[v] = weighted distance from root
  RunStats stats;
};

/// Runs SPT_centr from root to completion on a connected graph; the
/// returned tree is a shortest-path tree of g rooted at root.
SptCentrRun run_spt_centr(const Graph& g, NodeId root,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed = 1);

}  // namespace csca
