// Algorithm MST_centr (§6.3): full-information distributed Prim.
//
// Corollary 6.4: communication O(n * script-V), time O(n * Diam(MST)).
// Grows the (unique, under the deterministic edge order) minimum spanning
// tree one vertex per phase; every tree vertex keeps a copy of the whole
// tree, so the minimum outgoing edge is found by local inspection plus a
// convergecast over the tree. Serves both as an MST algorithm (Figure 3)
// and as the communication-frugal half of CON_hybrid (Figure 2): on
// graphs whose total weight script-E dwarfs n * script-V — e.g. the
// Figure 7 family — it beats every edge-scanning algorithm.
#pragma once

#include "conn/centralized_base.h"

namespace csca {

class MstCentrProcess final : public CentralizedTreeProcess {
 public:
  MstCentrProcess(const Graph& g, NodeId self, NodeId root,
                  int type_base = 0, ProtocolArbiter* arbiter = nullptr,
                  int arbiter_id = 0)
      : CentralizedTreeProcess(g, self, root, type_base, arbiter,
                               arbiter_id) {}

 protected:
  Candidate local_candidate() const override;
  std::int64_t aux_for_new_node(const Candidate&) const override {
    return 0;
  }
};

struct MstCentrRun {
  RootedTree tree;
  RunStats stats;
};

/// Runs MST_centr from root to completion on a connected graph; the
/// returned tree is the unique MST.
MstCentrRun run_mst_centr(const Graph& g, NodeId root,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed = 1);

}  // namespace csca
