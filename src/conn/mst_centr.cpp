#include "conn/mst_centr.h"

#include "graph/mst.h"
#include "graph/traversal.h"

namespace csca {

CentralizedTreeProcess::Candidate MstCentrProcess::local_candidate() const {
  Candidate best;
  if (!in_tree()) return best;
  for (EdgeId e : graph().incident(self())) {
    if (node_in_tree(graph().other(e, self()))) continue;
    const Candidate c{e, graph().weight(e)};
    if (best.edge == kNoEdge || c.key < best.key ||
        (c.key == best.key && edge_less(graph(), c.edge, best.edge))) {
      best = c;
    }
  }
  return best;
}

MstCentrRun run_mst_centr(const Graph& g, NodeId root,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed) {
  g.check_node(root);
  require(is_connected(g), "run_mst_centr requires a connected graph");
  Network net(
      g,
      [&g, root](NodeId v) {
        return std::make_unique<MstCentrProcess>(g, v, root);
      },
      std::move(delay), seed);
  RunStats stats = net.run();
  auto& root_proc = net.process_as<MstCentrProcess>(root);
  ensure(root_proc.done(), "MST_centr must terminate on a connected graph");
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parents[static_cast<std::size_t>(v)] = root_proc.tree_parent_edge(v);
  }
  return MstCentrRun{
      RootedTree::from_parent_edges(g, root, std::move(parents)), stats};
}

}  // namespace csca
