#include "conn/flood.h"

#include "graph/traversal.h"

namespace csca {

namespace {
constexpr int kFloodMsg = 1;
}

void FloodProcess::on_start(Context& ctx) {
  if (is_initiator_) spread(ctx);
}

void FloodProcess::on_message(Context& ctx, const Message& m) {
  if (reached_ || is_initiator_) return;  // later arrival: ignore
  parent_edge_ = m.edge;
  spread(ctx);
}

void FloodProcess::spread(Context& ctx) {
  reached_ = true;
  for (EdgeId e : ctx.incident()) {
    if (e != parent_edge_) ctx.send(e, Message{kFloodMsg}, MsgClass::kAlgorithm);
  }
  ctx.finish();
}

FloodRun run_flood(const Graph& g, NodeId initiator,
                   std::unique_ptr<DelayModel> delay, std::uint64_t seed) {
  g.check_node(initiator);
  require(is_connected(g), "run_flood requires a connected graph");
  // Pooled store: all n FloodProcess states in one contiguous arena
  // (bytes/node, not allocations/node — see sim/process_store.h).
  Network net(g,
              Network::ProcessStore::pooled<FloodProcess>(
                  g.node_count(),
                  [initiator](NodeId v) {
                    return FloodProcess(v, initiator);
                  }),
              std::move(delay), seed);
  RunStats stats = net.run();
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parents[static_cast<std::size_t>(v)] =
        net.process_as<FloodProcess>(v).parent_edge();
  }
  return FloodRun{
      RootedTree::from_parent_edges(g, initiator, std::move(parents)),
      stats};
}

}  // namespace csca
