#include "conn/dfs.h"

#include "graph/traversal.h"

namespace csca {

DfsProcess::DfsProcess(NodeId self, NodeId root, int type_base,
                       ProtocolArbiter* arbiter, int arbiter_id)
    : self_(self),
      root_(root),
      type_base_(type_base),
      arbiter_(arbiter),
      arbiter_id_(arbiter_id) {}

void DfsProcess::on_start(Context& ctx) {
  if (self_ != root_) return;
  visited_ = true;
  advance(ctx);
}

void DfsProcess::advance(Context& ctx) {
  const auto edges = ctx.incident();
  while (next_idx_ < edges.size() && edges[next_idx_] == parent_edge_) {
    ++next_idx_;
  }
  // Choose the pending traversal: the next untried edge, or the parent
  // edge for backtracking, or completion at the root.
  EdgeId e = kNoEdge;
  bool backtracking = false;
  if (next_idx_ < edges.size()) {
    e = edges[next_idx_];
  } else if (self_ != root_) {
    e = parent_edge_;
    backtracking = true;
  } else {
    complete(ctx);
    return;
  }

  const Weight w = ctx.edge_weight(e);
  if (est_ + w > 2 * est_known_root_) {
    // Report the new estimate to the root before traversing (§6.2 rule 2).
    const Weight new_est = est_ + w;
    if (self_ == root_) {
      est_root_ = new_est;
      est_known_root_ = new_est;
      if (arbiter_ != nullptr &&
          !arbiter_->may_proceed(arbiter_id_, ctx, new_est)) {
        suspended_at_root_ = true;
        pending_is_local_ = true;
        return;
      }
      advance(ctx);  // the doubling check now passes
    } else {
      ctx.send(parent_edge_, Message{tag(kUp), {new_est}}, MsgClass::kAlgorithm);
    }
    return;
  }

  est_ += w;
  if (backtracking) {
    ctx.send(e, Message{tag(kBack), {est_, est_known_root_}}, MsgClass::kAlgorithm);
    ctx.finish();  // this node's subtree is fully explored
  } else {
    tried_idx_ = next_idx_;
    ctx.send(e, Message{tag(kVisit), {est_, est_known_root_}}, MsgClass::kAlgorithm);
  }
}

void DfsProcess::on_message(Context& ctx, const Message& m) {
  switch (untag(m.type)) {
    case kVisit: {
      if (visited_) {
        ctx.send(m.edge, Message{tag(kReject)}, MsgClass::kAlgorithm);
        return;
      }
      visited_ = true;
      parent_edge_ = m.edge;
      est_ = m.at(0);
      est_known_root_ = m.at(1);
      next_idx_ = 0;
      advance(ctx);
      return;
    }
    case kReject: {
      est_ += ctx.edge_weight(m.edge);
      next_idx_ = tried_idx_ + 1;
      advance(ctx);
      return;
    }
    case kBack: {
      est_ = m.at(0);
      est_known_root_ = m.at(1);
      next_idx_ = tried_idx_ + 1;
      advance(ctx);
      return;
    }
    case kUp: {
      if (self_ == root_) {
        est_root_ = m.at(0);
        resume_child_edge_ = m.edge;
        if (arbiter_ != nullptr &&
            !arbiter_->may_proceed(arbiter_id_, ctx, est_root_)) {
          suspended_at_root_ = true;
          pending_is_local_ = false;
          return;
        }
        ctx.send(resume_child_edge_, Message{tag(kResume), {est_root_}}, MsgClass::kAlgorithm);
        resume_child_edge_ = kNoEdge;
      } else {
        resume_child_edge_ = m.edge;
        ctx.send(parent_edge_, Message{tag(kUp), {m.at(0)}}, MsgClass::kAlgorithm);
      }
      return;
    }
    case kResume: {
      if (resume_child_edge_ != kNoEdge) {
        const EdgeId down = resume_child_edge_;
        resume_child_edge_ = kNoEdge;
        ctx.send(down, Message{tag(kResume), {m.at(0)}}, MsgClass::kAlgorithm);
      } else {
        // The token holder that initiated the report.
        est_known_root_ = m.at(0);
        advance(ctx);
      }
      return;
    }
  }
  ensure(false, "DfsProcess received a foreign message type");
}

void DfsProcess::resume_root(Context& ctx) {
  require(self_ == root_, "resume_root must run at the root");
  require(suspended_at_root_, "DFS is not suspended");
  suspended_at_root_ = false;
  if (pending_is_local_) {
    advance(ctx);
  } else {
    ctx.send(resume_child_edge_, Message{tag(kResume), {est_root_}}, MsgClass::kAlgorithm);
    resume_child_edge_ = kNoEdge;
  }
}

void DfsProcess::complete(Context& ctx) {
  done_ = true;
  est_root_ = est_;  // the traversal is over; the estimate is exact now
  ctx.finish();
  if (arbiter_ != nullptr) arbiter_->completed(arbiter_id_, ctx);
}

DfsRun run_dfs(const Graph& g, NodeId root,
               std::unique_ptr<DelayModel> delay, std::uint64_t seed) {
  g.check_node(root);
  require(is_connected(g), "run_dfs requires a connected graph");
  Network net(
      g, [root](NodeId v) { return std::make_unique<DfsProcess>(v, root); },
      std::move(delay), seed);
  RunStats stats = net.run();
  ensure(net.process_as<DfsProcess>(root).done(),
         "DFS must terminate on a connected graph");
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parents[static_cast<std::size_t>(v)] =
        net.process_as<DfsProcess>(v).parent_edge();
  }
  return DfsRun{
      RootedTree::from_parent_edges(g, root, std::move(parents)), stats,
      net.process_as<DfsProcess>(root).center_estimate()};
}

}  // namespace csca
