#include "partition/tree_edge_cover.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace csca {

namespace {
// Shortest-path tree of the subgraph induced by the cluster, rooted at
// the leader, expressed as a partial RootedTree over g.
RootedTree induced_spt(const Graph& g, const Cluster& cluster,
                       NodeId leader) {
  std::vector<char> in(static_cast<std::size_t>(g.node_count()), 0);
  for (NodeId v : cluster) in[static_cast<std::size_t>(v)] = 1;

  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.node_count()),
                             kNoEdge);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(leader)] = 0;
  heap.emplace(0, leader);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const Arc a : g.neighbors(v)) {
      const NodeId u = a.node;
      if (!in[static_cast<std::size_t>(u)]) continue;
      const Weight nd = d + g.weight(a.edge);
      Weight& du = dist[static_cast<std::size_t>(u)];
      if (du == -1 || nd < du) {
        du = nd;
        parent[static_cast<std::size_t>(u)] = a.edge;
        heap.emplace(nd, u);
      }
    }
  }
  for (NodeId v : cluster) {
    ensure(dist[static_cast<std::size_t>(v)] != -1,
           "cluster must induce a connected subgraph");
  }
  return RootedTree::from_parent_edges(g, leader, std::move(parent));
}
}  // namespace

std::vector<int> TreeEdgeCover::trees_covering_edge(const Graph& g,
                                                    EdgeId e) const {
  const Edge& ed = g.edge(e);
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    const Cluster& c = trees[static_cast<std::size_t>(i)].cluster;
    if (std::binary_search(c.begin(), c.end(), ed.u) &&
        std::binary_search(c.begin(), c.end(), ed.v)) {
      out.push_back(i);
    }
  }
  return out;
}

TreeEdgeCover build_tree_edge_cover(const Graph& g, int k) {
  require(k >= 1, "tree edge-cover requires k >= 1");
  require(g.edge_count() >= 1, "tree edge-cover requires at least one edge");
  const Cover paths = neighborhood_path_cover(g);
  const Cover coarse = coarsen(g, paths, k);
  TreeEdgeCover out;
  out.trees.reserve(coarse.clusters.size());
  for (const Cluster& c : coarse.clusters) {
    const NodeId leader = cluster_center(g, c);
    out.trees.push_back(CoverTree{c, leader, induced_spt(g, c, leader)});
  }
  return out;
}

TreeEdgeCover build_tree_edge_cover(const Graph& g) {
  const int n = g.node_count();
  const int k = std::max(
      1, static_cast<int>(std::ceil(std::log2(std::max(2, n)))));
  return build_tree_edge_cover(g, k);
}

bool covers_all_edges(const Graph& g, const TreeEdgeCover& tec) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (tec.trees_covering_edge(g, e).empty()) return false;
  }
  return true;
}

int max_tree_edge_sharing(const Graph& g, const TreeEdgeCover& tec) {
  std::vector<int> uses(static_cast<std::size_t>(g.edge_count()), 0);
  for (const CoverTree& ct : tec.trees) {
    for (EdgeId e : ct.tree.edge_set()) {
      ++uses[static_cast<std::size_t>(e)];
    }
  }
  return uses.empty() ? 0 : *std::max_element(uses.begin(), uses.end());
}

Weight max_tree_depth(const Graph& g, const TreeEdgeCover& tec) {
  Weight depth = 0;
  for (const CoverTree& ct : tec.trees) {
    depth = std::max(depth, ct.tree.height(g));
  }
  return depth;
}

}  // namespace csca
