// Tree edge-covers (Definition 3.1), the structure behind clock
// synchronizer gamma* (§3.3).
//
// A tree edge-cover is a collection M of (rooted) trees such that
//   1. every edge of G lies in few trees (paper: O(log n)),
//   2. each tree is shallow (paper: depth O(d log n)),
//   3. for each edge of G some tree contains both its endpoints.
// Lemma 3.2 builds one by coarsening the cover of shortest neighbor paths
// {Path(u, v, G) : (u,v) in E} with parameter k = log n, then taking a
// shortest-path spanning tree of every output cluster.
#pragma once

#include <vector>

#include "graph/tree.h"
#include "partition/cover.h"

namespace csca {

/// One tree of the edge-cover: its node set, its elected leader (the
/// cluster center, which coordinates the tree in gamma*), and its
/// shortest-path tree inside the induced subgraph.
struct CoverTree {
  Cluster cluster;
  NodeId leader = kNoNode;
  RootedTree tree;
};

struct TreeEdgeCover {
  std::vector<CoverTree> trees;

  int size() const { return static_cast<int>(trees.size()); }

  /// Indices of trees whose node set contains both endpoints of e.
  std::vector<int> trees_covering_edge(const Graph& g, EdgeId e) const;
};

/// Lemma 3.2 construction with explicit coarsening parameter k >= 1.
TreeEdgeCover build_tree_edge_cover(const Graph& g, int k);

/// Lemma 3.2 with the paper's choice k = ceil(log2 n) (min 1).
TreeEdgeCover build_tree_edge_cover(const Graph& g);

/// Property-3 check: every edge of g has a tree containing both endpoints.
bool covers_all_edges(const Graph& g, const TreeEdgeCover& tec);

/// Property-1 measurement: max over edges of g of the number of trees
/// whose own tree-edge set uses that edge.
int max_tree_edge_sharing(const Graph& g, const TreeEdgeCover& tec);

/// Property-2 measurement: max weighted depth (height) over the trees.
Weight max_tree_depth(const Graph& g, const TreeEdgeCover& tec);

}  // namespace csca
