// Clusters, covers, and the [AP91] cover-coarsening of Theorem 1.1.
//
// A cluster is a set of vertices whose induced subgraph is connected; a
// cover is a collection of clusters whose union is V. Theorem 1.1: given
// an initial cover S and k >= 1, one can build a cover T that (1) subsumes
// S, (2) has Rad(T) <= (2k-1) Rad(S), and (3) has small maximum degree.
// We implement the greedy cluster-merging procedure (Peleg's sparse-covers
// construction), which guarantees (1) and (2) exactly; see DESIGN.md for
// the status of (3), which we measure rather than prove.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace csca {

/// A cluster: vertex ids, sorted ascending, inducing a connected subgraph.
using Cluster = std::vector<NodeId>;

/// A collection of clusters covering V.
struct Cover {
  std::vector<Cluster> clusters;

  int size() const { return static_cast<int>(clusters.size()); }
};

/// Dijkstra from src restricted to the subgraph induced by the nodes with
/// allowed[v] != 0. dist is kUnreachable (-1) outside / disconnected.
std::vector<Weight> restricted_distances(const Graph& g, NodeId src,
                                         const std::vector<char>& allowed);

/// True iff the subgraph induced by the cluster is connected (and the
/// cluster is non-empty, sorted, duplicate-free, in range).
bool is_cluster(const Graph& g, const Cluster& s);

/// Rad(S) = min over v in S of the eccentricity of v in G(S).
/// Requires is_cluster. O(|S| * dijkstra).
Weight cluster_radius(const Graph& g, const Cluster& s);

/// A vertex realizing cluster_radius (the cluster's natural leader).
NodeId cluster_center(const Graph& g, const Cluster& s);

/// Rad of a cover: max cluster radius.
Weight cover_radius(const Graph& g, const Cover& cover);

/// deg_S(v): number of clusters containing v.
int cover_degree(const Cover& cover, NodeId v);

/// Delta(S) = max_v deg_S(v).
int cover_max_degree(const Graph& g, const Cover& cover);

/// True iff every vertex of g appears in some cluster and all clusters
/// are valid clusters.
bool is_cover(const Graph& g, const Cover& cover);

/// True iff for every cluster of s there is a cluster of t containing it.
bool subsumes(const Cover& t, const Cover& s);

/// [AP91] Theorem 1.1 coarsening: merges clusters of s into a cover t with
/// subsumes(t, s) and Rad(t) <= (2k-1) Rad(s). Requires is_cover(g, s) and
/// k >= 1.
Cover coarsen(const Graph& g, const Cover& s, int k);

/// The singleton cover {{v} : v in V}, radius 0.
Cover singleton_cover(const Graph& g);

/// The cover of all shortest-path clusters {Path(u, v, G) : (u, v) in E}
/// used to seed the tree edge-cover of §3.3; Rad <= d.
Cover neighborhood_path_cover(const Graph& g);

}  // namespace csca
