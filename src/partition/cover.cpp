#include "partition/cover.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/shortest_paths.h"

namespace csca {

std::vector<Weight> restricted_distances(const Graph& g, NodeId src,
                                         const std::vector<char>& allowed) {
  g.check_node(src);
  require(allowed.size() == static_cast<std::size_t>(g.node_count()),
          "allowed mask size must equal node count");
  require(allowed[static_cast<std::size_t>(src)] != 0,
          "source must be allowed");
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()),
                           ShortestPaths::kUnreachable);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const Arc a : g.neighbors(v)) {
      const NodeId u = a.node;
      if (!allowed[static_cast<std::size_t>(u)]) continue;
      const Weight nd = d + g.weight(a.edge);
      Weight& du = dist[static_cast<std::size_t>(u)];
      if (du == ShortestPaths::kUnreachable || nd < du) {
        du = nd;
        heap.emplace(nd, u);
      }
    }
  }
  return dist;
}

namespace {
std::vector<char> membership(const Graph& g, const Cluster& s) {
  std::vector<char> in(static_cast<std::size_t>(g.node_count()), 0);
  for (NodeId v : s) {
    g.check_node(v);
    in[static_cast<std::size_t>(v)] = 1;
  }
  return in;
}

// Eccentricity of src within the induced subgraph; kUnreachable if some
// cluster node cannot be reached inside the cluster.
Weight restricted_eccentricity(const Graph& g, const Cluster& s,
                               NodeId src, const std::vector<char>& in) {
  const auto dist = restricted_distances(g, src, in);
  Weight ecc = 0;
  for (NodeId v : s) {
    const Weight d = dist[static_cast<std::size_t>(v)];
    if (d == ShortestPaths::kUnreachable) return ShortestPaths::kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}
}  // namespace

bool is_cluster(const Graph& g, const Cluster& s) {
  if (s.empty()) return false;
  if (!std::is_sorted(s.begin(), s.end())) return false;
  if (std::adjacent_find(s.begin(), s.end()) != s.end()) return false;
  if (s.front() < 0 || s.back() >= g.node_count()) return false;
  const auto in = membership(g, s);
  return restricted_eccentricity(g, s, s.front(), in) !=
         ShortestPaths::kUnreachable;
}

namespace {
std::pair<NodeId, Weight> center_and_radius(const Graph& g,
                                            const Cluster& s) {
  require(is_cluster(g, s), "argument must be a valid cluster");
  const auto in = membership(g, s);
  NodeId best = s.front();
  Weight best_ecc = restricted_eccentricity(g, s, best, in);
  for (std::size_t i = 1; i < s.size(); ++i) {
    const Weight ecc = restricted_eccentricity(g, s, s[i], in);
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = s[i];
    }
  }
  return {best, best_ecc};
}
}  // namespace

Weight cluster_radius(const Graph& g, const Cluster& s) {
  return center_and_radius(g, s).second;
}

NodeId cluster_center(const Graph& g, const Cluster& s) {
  return center_and_radius(g, s).first;
}

Weight cover_radius(const Graph& g, const Cover& cover) {
  Weight r = 0;
  for (const Cluster& s : cover.clusters) {
    r = std::max(r, cluster_radius(g, s));
  }
  return r;
}

int cover_degree(const Cover& cover, NodeId v) {
  int deg = 0;
  for (const Cluster& s : cover.clusters) {
    if (std::binary_search(s.begin(), s.end(), v)) ++deg;
  }
  return deg;
}

int cover_max_degree(const Graph& g, const Cover& cover) {
  int max_deg = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    max_deg = std::max(max_deg, cover_degree(cover, v));
  }
  return max_deg;
}

bool is_cover(const Graph& g, const Cover& cover) {
  std::vector<char> covered(static_cast<std::size_t>(g.node_count()), 0);
  for (const Cluster& s : cover.clusters) {
    if (!is_cluster(g, s)) return false;
    for (NodeId v : s) covered[static_cast<std::size_t>(v)] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

bool subsumes(const Cover& t, const Cover& s) {
  for (const Cluster& si : s.clusters) {
    const bool contained = std::any_of(
        t.clusters.begin(), t.clusters.end(), [&](const Cluster& tj) {
          return std::includes(tj.begin(), tj.end(), si.begin(), si.end());
        });
    if (!contained) return false;
  }
  return true;
}

Cover coarsen(const Graph& g, const Cover& s, int k) {
  require(k >= 1, "coarsen requires k >= 1");
  require(is_cover(g, s), "coarsen requires a valid initial cover");

  const auto cluster_count = s.clusters.size();
  // Growth threshold |S|^(1/k): a merge round that does not multiply the
  // absorbed-cluster count by more than this factor terminates the
  // cluster, bounding rounds by k-1 and hence the radius by (2k-1)Rad(S).
  const double threshold =
      std::pow(static_cast<double>(cluster_count), 1.0 / k);

  std::vector<char> remaining(cluster_count, 1);
  std::size_t remaining_count = cluster_count;
  Cover out;

  // Per-vertex lists of the input clusters containing it, for fast
  // "which remaining clusters intersect Y" queries.
  std::vector<std::vector<int>> clusters_at(
      static_cast<std::size_t>(g.node_count()));
  for (std::size_t i = 0; i < cluster_count; ++i) {
    for (NodeId v : s.clusters[i]) {
      clusters_at[static_cast<std::size_t>(v)].push_back(
          static_cast<int>(i));
    }
  }

  std::size_t scan_from = 0;
  while (remaining_count > 0) {
    while (!remaining[scan_from]) ++scan_from;
    // Z: indices of absorbed clusters; Y: their union as a node mask.
    std::vector<int> z{static_cast<int>(scan_from)};
    std::vector<char> in_z(cluster_count, 0);
    in_z[scan_from] = 1;
    std::vector<char> y_mask(static_cast<std::size_t>(g.node_count()), 0);
    std::vector<NodeId> y_nodes;
    auto absorb = [&](int ci) {
      for (NodeId v : s.clusters[static_cast<std::size_t>(ci)]) {
        if (!y_mask[static_cast<std::size_t>(v)]) {
          y_mask[static_cast<std::size_t>(v)] = 1;
          y_nodes.push_back(v);
        }
      }
    };
    absorb(static_cast<int>(scan_from));

    while (true) {
      // Z' = remaining clusters intersecting Y.
      std::vector<int> z_next;
      std::vector<char> in_z_next(cluster_count, 0);
      for (NodeId v : y_nodes) {
        for (int ci : clusters_at[static_cast<std::size_t>(v)]) {
          if (remaining[static_cast<std::size_t>(ci)] &&
              !in_z_next[static_cast<std::size_t>(ci)]) {
            in_z_next[static_cast<std::size_t>(ci)] = 1;
            z_next.push_back(ci);
          }
        }
      }
      if (static_cast<double>(z_next.size()) <=
          threshold * static_cast<double>(z.size())) {
        break;  // growth stalled; emit Y built from the current Z
      }
      for (int ci : z_next) {
        if (!in_z[static_cast<std::size_t>(ci)]) absorb(ci);
      }
      z = std::move(z_next);
      in_z = std::move(in_z_next);
    }

    for (int ci : z) {
      ensure(remaining[static_cast<std::size_t>(ci)] != 0,
             "absorbed cluster must still be remaining");
      remaining[static_cast<std::size_t>(ci)] = 0;
      --remaining_count;
    }
    std::sort(y_nodes.begin(), y_nodes.end());
    out.clusters.push_back(std::move(y_nodes));
  }

  ensure(is_cover(g, out), "coarsened result must be a cover");
  ensure(subsumes(out, s), "coarsened result must subsume the input");
  return out;
}

Cover singleton_cover(const Graph& g) {
  Cover out;
  out.clusters.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.clusters.push_back(Cluster{v});
  }
  return out;
}

Cover neighborhood_path_cover(const Graph& g) {
  Cover out;
  out.clusters.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    const auto sp = dijkstra(g, ed.u);
    auto p = sp.path_to(g, ed.v);
    Cluster c{ed.u};
    NodeId cur = ed.u;
    for (EdgeId pe : p) {
      cur = g.other(pe, cur);
      c.push_back(cur);
    }
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    out.clusters.push_back(std::move(c));
  }
  return out;
}

}  // namespace csca
