#include "graph/traversal.h"

#include <algorithm>
#include <queue>

namespace csca {

Components connected_components(const Graph& g) {
  Components out;
  out.component.assign(static_cast<std::size_t>(g.node_count()), -1);
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (out.component[static_cast<std::size_t>(start)] != -1) continue;
    const int id = out.count++;
    std::vector<NodeId> stack{start};
    out.component[static_cast<std::size_t>(start)] = id;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Arc a : g.neighbors(v)) {
        if (out.component[static_cast<std::size_t>(a.node)] == -1) {
          out.component[static_cast<std::size_t>(a.node)] = id;
          stack.push_back(a.node);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.node_count() <= 1 || connected_components(g).count == 1;
}

std::vector<int> hop_distances(const Graph& g, NodeId src) {
  g.check_node(src);
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const Arc a : g.neighbors(v)) {
      const NodeId u = a.node;
      if (dist[static_cast<std::size_t>(u)] != -1) continue;
      dist[static_cast<std::size_t>(u)] =
          dist[static_cast<std::size_t>(v)] + 1;
      q.push(u);
    }
  }
  return dist;
}

int hop_diameter(const Graph& g) {
  require(is_connected(g), "hop_diameter requires a connected graph");
  int diam = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto dist = hop_distances(g, v);
    diam = std::max(diam, *std::max_element(dist.begin(), dist.end()));
  }
  return diam;
}

std::vector<NodeId> euler_tour(const Graph& g, const RootedTree& t) {
  auto children = t.children_edges(g);
  std::vector<NodeId> tour;
  tour.reserve(static_cast<std::size_t>(2 * t.size() - 1));
  // Iterative DFS emitting the node each time the token visits it.
  struct Frame {
    NodeId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{t.root()}};
  tour.push_back(t.root());
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& kids = children[static_cast<std::size_t>(f.node)];
    if (f.next_child < kids.size()) {
      const EdgeId e = kids[f.next_child++];
      const NodeId child = g.other(e, f.node);
      tour.push_back(child);
      stack.push_back({child});
    } else {
      stack.pop_back();
      if (!stack.empty()) tour.push_back(stack.back().node);
    }
  }
  ensure(tour.size() == static_cast<std::size_t>(2 * t.size() - 1),
         "euler tour must have 2s-1 entries");
  return tour;
}

}  // namespace csca
