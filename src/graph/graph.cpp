#include "graph/graph.h"

#include <algorithm>

namespace csca {

namespace {

// splitmix64 finisher: full-avalanche mix of the packed endpoint pair.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Graph::Graph(int n) : n_(n) {
  require(n >= 0, "node count must be non-negative");
  degree_.resize(static_cast<std::size_t>(n), 0);
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  csr_dirty_ = false;  // the empty CSR is valid for an edgeless graph
}

std::uint64_t Graph::pair_key(NodeId u, NodeId v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return (lo << 32) | hi;
}

void Graph::index_grow(std::size_t min_slots) {
  std::size_t slots = 16;
  while (slots < min_slots) slots *= 2;
  index_.assign(slots, kNoEdge);
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& ed = edges_[static_cast<std::size_t>(id)];
    index_insert(pair_key(ed.u, ed.v), id);
  }
}

void Graph::index_insert(std::uint64_t key, EdgeId id) {
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = mix(key) & mask;
  while (index_[slot] != kNoEdge) slot = (slot + 1) & mask;
  index_[slot] = id;
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  check_node(u);
  check_node(v);
  require(u != v, "self-loops are not allowed");
  require(w >= 1, "edge weights must be >= 1");
  require(!has_edge(u, v), "parallel edges are not allowed");
  const EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, w});
  // Keep the probe chains short: grow at 1/2 load.
  if (index_.empty() || (edges_.size() + 1) * 2 > index_.size()) {
    index_grow((edges_.size() + 1) * 4);
  } else {
    index_insert(pair_key(u, v), id);
  }
  ++degree_[static_cast<std::size_t>(u)];
  ++degree_[static_cast<std::size_t>(v)];
  total_weight_ += w;
  max_weight_ = std::max(max_weight_, w);
  csr_dirty_ = true;
  return id;
}

void Graph::set_weight(EdgeId e, Weight w) {
  require(e >= 0 && e < edge_count(), "edge id out of range");
  require(w >= 1, "edge weights must be >= 1");
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  total_weight_ += w - ed.w;
  const bool shrank_max = ed.w == max_weight_ && w < max_weight_;
  ed.w = w;
  if (w > max_weight_) {
    max_weight_ = w;
  } else if (shrank_max) {
    max_weight_ = 0;
    for (const Edge& x : edges_) max_weight_ = std::max(max_weight_, x.w);
  }
}

void Graph::reserve_edges(std::size_t m) {
  edges_.reserve(m);
  if ((m + 1) * 2 > index_.size()) index_grow((m + 1) * 4);
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (index_.empty() || u == v) return kNoEdge;
  const std::uint64_t key = pair_key(u, v);
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = mix(key) & mask;
  while (index_[slot] != kNoEdge) {
    const Edge& ed = edges_[static_cast<std::size_t>(index_[slot])];
    if (pair_key(ed.u, ed.v) == key) return index_[slot];
    slot = (slot + 1) & mask;
  }
  return kNoEdge;
}

void Graph::build_csr() const {
  // Counting sort by endpoint: one pass to place each edge id (and the
  // opposite endpoint) into both endpoints' slices. Edges are scanned in
  // id order, so each node's slice comes out in insertion order —
  // byte-identical to the historical per-node push_back layout.
  const std::size_t n = static_cast<std::size_t>(n_);
  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v + 1] =
        offsets_[v] + static_cast<std::size_t>(degree_[v]);
  }
  const std::size_t arcs = offsets_[n];
  csr_edges_.assign(arcs, kNoEdge);
  csr_nodes_.assign(arcs, kNoNode);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& ed = edges_[static_cast<std::size_t>(id)];
    const std::size_t su = cursor[static_cast<std::size_t>(ed.u)]++;
    csr_edges_[su] = id;
    csr_nodes_[su] = ed.v;
    const std::size_t sv = cursor[static_cast<std::size_t>(ed.v)]++;
    csr_edges_[sv] = id;
    csr_nodes_[sv] = ed.u;
  }
  csr_dirty_ = false;
}

std::size_t Graph::memory_bytes() const {
  if (csr_dirty_) build_csr();
  return edges_.capacity() * sizeof(Edge) +
         degree_.capacity() * sizeof(int) +
         index_.capacity() * sizeof(EdgeId) +
         offsets_.capacity() * sizeof(std::size_t) +
         csr_edges_.capacity() * sizeof(EdgeId) +
         csr_nodes_.capacity() * sizeof(NodeId);
}

Weight total_weight(const Graph& g, std::span<const EdgeId> edge_set) {
  Weight sum = 0;
  for (EdgeId e : edge_set) sum += g.weight(e);
  return sum;
}

}  // namespace csca
