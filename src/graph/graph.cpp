#include "graph/graph.h"

namespace csca {

Graph::Graph(int n) {
  require(n >= 0, "node count must be non-negative");
  incident_.resize(static_cast<std::size_t>(n));
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  check_node(u);
  check_node(v);
  require(u != v, "self-loops are not allowed");
  require(w >= 1, "edge weights must be >= 1");
  require(!has_edge(u, v), "parallel edges are not allowed");
  const EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, w});
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  total_weight_ += w;
  max_weight_ = std::max(max_weight_, w);
  return id;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  // Scan from the lower-degree endpoint.
  const NodeId from = degree(u) <= degree(v) ? u : v;
  const NodeId to = from == u ? v : u;
  for (EdgeId e : incident(from)) {
    if (other(e, from) == to) return e;
  }
  return kNoEdge;
}

Weight total_weight(const Graph& g, std::span<const EdgeId> edge_set) {
  Weight sum = 0;
  for (EdgeId e : edge_set) sum += g.weight(e);
  return sum;
}

}  // namespace csca
