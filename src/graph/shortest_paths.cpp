#include "graph/shortest_paths.h"

#include <queue>

namespace csca {

RootedTree ShortestPaths::tree(const Graph& g) const {
  std::vector<EdgeId> pe = parent_edge;
  return RootedTree::from_parent_edges(g, source, std::move(pe));
}

std::vector<EdgeId> ShortestPaths::path_to(const Graph& g, NodeId v) const {
  require(reachable(v), "node unreachable from source");
  std::vector<EdgeId> rev;
  NodeId cur = v;
  while (cur != source) {
    const EdgeId pe = parent_edge[static_cast<std::size_t>(cur)];
    rev.push_back(pe);
    cur = g.other(pe, cur);
  }
  return {rev.rbegin(), rev.rend()};
}

namespace {
ShortestPaths dijkstra_impl(const Graph& g, NodeId src,
                            const std::vector<char>* allowed_edges) {
  g.check_node(src);
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPaths out;
  out.source = src;
  out.dist.assign(n, ShortestPaths::kUnreachable);
  out.parent_edge.assign(n, kNoEdge);

  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<char> done(n, 0);
  out.dist[static_cast<std::size_t>(src)] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(v)]) continue;
    done[static_cast<std::size_t>(v)] = 1;
    for (const Arc a : g.neighbors(v)) {
      const EdgeId e = a.edge;
      if (allowed_edges != nullptr &&
          !(*allowed_edges)[static_cast<std::size_t>(e)]) {
        continue;
      }
      const NodeId u = a.node;
      const Weight nd = d + g.weight(e);
      Weight& du = out.dist[static_cast<std::size_t>(u)];
      if (du == ShortestPaths::kUnreachable || nd < du) {
        du = nd;
        out.parent_edge[static_cast<std::size_t>(u)] = e;
        heap.emplace(nd, u);
      }
    }
  }
  return out;
}
}  // namespace

ShortestPaths dijkstra(const Graph& g, NodeId src) {
  return dijkstra_impl(g, src, nullptr);
}

ShortestPaths dijkstra_subgraph(const Graph& g, NodeId src,
                                const std::vector<char>& allowed_edges) {
  require(allowed_edges.size() == static_cast<std::size_t>(g.edge_count()),
          "allowed_edges mask size must equal edge count");
  return dijkstra_impl(g, src, &allowed_edges);
}

Weight distance(const Graph& g, NodeId u, NodeId v) {
  return dijkstra(g, u).dist[static_cast<std::size_t>(v)];
}

std::int64_t spt_route_violations(const Graph& g, NodeId src,
                                  const std::vector<Weight>& dist) {
  require(dist.size() == static_cast<std::size_t>(g.node_count()),
          "dist must have one entry per node");
  g.check_node(src);
  std::int64_t violations = 0;
  if (dist[static_cast<std::size_t>(src)] != 0) ++violations;
  // No relaxing edge may remain: |dist[u] - dist[v]| <= w(e).
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    const Weight du = dist[static_cast<std::size_t>(ed.u)];
    const Weight dv = dist[static_cast<std::size_t>(ed.v)];
    const Weight gap = du >= dv ? du - dv : dv - du;
    if (gap > ed.w) ++violations;
  }
  // Every non-source node needs a tight incident edge to route home.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == src) continue;
    const Weight dv = dist[static_cast<std::size_t>(v)];
    bool tight = false;
    for (const EdgeId e : g.incident(v)) {
      const NodeId u = g.other(e, v);
      if (dist[static_cast<std::size_t>(u)] + g.weight(e) == dv) {
        tight = true;
        break;
      }
    }
    if (!tight) ++violations;
  }
  return violations;
}

}  // namespace csca
