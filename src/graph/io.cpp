#include "graph/io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace csca {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

namespace {
// Next non-comment, non-blank line; false at EOF.
bool next_payload_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  require(next_payload_line(in, line), "edge list: missing header line");
  std::istringstream header(line);
  long long n = -1;
  long long m = -1;
  require(static_cast<bool>(header >> n >> m),
          "edge list: header must be 'n m'");
  require(n >= 0 && m >= 0, "edge list: negative counts");
  Graph g(static_cast<int>(n));
  for (long long i = 0; i < m; ++i) {
    require(next_payload_line(in, line),
            "edge list: fewer edges than the header promised");
    std::istringstream row(line);
    long long u = 0;
    long long v = 0;
    long long w = 0;
    require(static_cast<bool>(row >> u >> v >> w),
            "edge list: edge lines must be 'u v w'");
    require(u >= 0 && u < n && v >= 0 && v < n,
            "edge list: endpoint out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v),
               static_cast<Weight>(w));
  }
  return g;
}

std::string to_dot(const Graph& g, const DotOptions& options) {
  require(options.node_labels.empty() ||
              options.node_labels.size() ==
                  static_cast<std::size_t>(g.node_count()),
          "node_labels must be empty or one per node");
  std::vector<char> bold(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : options.highlight) {
    require(e >= 0 && e < g.edge_count(),
            "highlight edge id out of range");
    bold[static_cast<std::size_t>(e)] = 1;
  }
  std::ostringstream out;
  out << "graph " << options.graph_name << " {\n";
  out << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  n" << v;
    if (!options.node_labels.empty()) {
      out << " [label=\"" << v << "\\n"
          << options.node_labels[static_cast<std::size_t>(v)] << "\"]";
    }
    out << ";\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    out << "  n" << ed.u << " -- n" << ed.v << " [label=\"" << ed.w
        << '"';
    if (bold[static_cast<std::size_t>(e)]) {
      out << ", penwidth=3, color=\"#1f77b4\"";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace csca
