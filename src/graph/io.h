// Plain-text graph exchange: a weighted edge-list format for getting
// networks in and out of the library, and Graphviz DOT export for
// looking at them (trees and other edge subsets can be highlighted).
//
// Edge-list format ("csca v1"):
//   line 1:  n m
//   m lines: u v w          (0-based endpoints, weight >= 1)
// Comment lines start with '#' and are skipped anywhere.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace csca {

/// Writes g in the edge-list format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the edge-list format; throws PreconditionError on malformed
/// input (wrong counts, bad endpoints, weight < 1, duplicate edges).
Graph read_edge_list(std::istream& in);

struct DotOptions {
  /// Edges to render bold/colored (e.g. a spanning tree); empty = none.
  std::vector<EdgeId> highlight;
  /// Optional per-node extra label (e.g. distances); empty = ids only.
  std::vector<std::string> node_labels;
  std::string graph_name = "csca";
};

/// Renders g as an undirected Graphviz graph with edge weights as labels.
std::string to_dot(const Graph& g, const DotOptions& options = {});

}  // namespace csca
