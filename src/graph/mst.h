// Centralized minimum spanning tree construction and edge ordering.
//
// Kruskal is the reference oracle for every distributed MST algorithm.
// The total order on edges (weight, then endpoints) is shared with the
// distributed GHS implementation: GHS requires distinct edge weights, and
// this lexicographic tie-break is the standard way to guarantee a unique
// MST without actually perturbing weights.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace csca {

/// Strict total order on edges: by weight, then by smaller endpoint pair.
/// Guarantees a unique MST on any connected graph.
bool edge_less(const Graph& g, EdgeId a, EdgeId b);

/// Kruskal's algorithm under edge_less. Returns the edge ids of the unique
/// MST (or minimum spanning forest if g is disconnected).
std::vector<EdgeId> kruskal_mst(const Graph& g);

/// Weight of the minimum spanning forest: the paper's script-V on
/// connected graphs.
Weight mst_weight(const Graph& g);

/// The unique MST rooted at root as a RootedTree. Requires g connected.
RootedTree mst_tree(const Graph& g, NodeId root);

/// True iff edge_set is exactly the unique minimum spanning forest of g
/// (order-insensitive).
bool is_minimum_spanning_forest(const Graph& g,
                                std::vector<EdgeId> edge_set);

/// Cycle-property certificate check (the KKP-style verification rule):
/// a claimed tree edge set (in_tree[e] != 0) is the minimum spanning
/// forest iff it is acyclic, spans every component, and no non-tree
/// edge is edge_less than the heaviest tree edge on the cycle it
/// closes. Returns the number of violated conditions — 0 iff in_tree is
/// the unique MSF of g (after, e.g., churn re-drew edge weights under
/// the structure). Counts: one per cycle among tree edges, one per
/// component-splitting deficit, and one per cycle-property-violating
/// non-tree edge.
std::int64_t mst_cycle_violations(const Graph& g,
                                  const std::vector<char>& in_tree);

}  // namespace csca
