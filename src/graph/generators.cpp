#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace csca {

WeightSpec WeightSpec::constant(Weight w) {
  require(w >= 1, "constant weight must be >= 1");
  return WeightSpec(Kind::kConstant, w, w);
}

WeightSpec WeightSpec::uniform(Weight lo, Weight hi) {
  require(lo >= 1 && lo <= hi, "uniform weight range invalid");
  return WeightSpec(Kind::kUniform, lo, hi);
}

WeightSpec WeightSpec::power_of_two(int lo_exp, int hi_exp) {
  require(lo_exp >= 0 && lo_exp <= hi_exp && hi_exp < 62,
          "power_of_two exponent range invalid");
  return WeightSpec(Kind::kPowerOfTwo, lo_exp, hi_exp);
}

Weight WeightSpec::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kConstant:
      return lo_;
    case Kind::kUniform:
      return rng.uniform_int(lo_, hi_);
    case Kind::kPowerOfTwo:
      return Weight{1} << rng.uniform_int(lo_, hi_);
  }
  ensure(false, "unreachable weight kind");
  return 1;
}

Graph path_graph(int n, WeightSpec weights, Rng& rng) {
  require(n >= 1, "path_graph requires n >= 1");
  Graph g(n);
  g.reserve_edges(n > 0 ? static_cast<std::size_t>(n) : 0);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, weights.sample(rng));
  }
  return g;
}

Graph cycle_graph(int n, WeightSpec weights, Rng& rng) {
  require(n >= 3, "cycle_graph requires n >= 3");
  Graph g = path_graph(n, weights, rng);
  g.add_edge(n - 1, 0, weights.sample(rng));
  return g;
}

Graph grid_graph(int rows, int cols, WeightSpec weights, Rng& rng) {
  require(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
  Graph g(rows * cols);
  g.reserve_edges(static_cast<std::size_t>(2) * rows * cols);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.add_edge(id(r, c), id(r, c + 1), weights.sample(rng));
      }
      if (r + 1 < rows) {
        g.add_edge(id(r, c), id(r + 1, c), weights.sample(rng));
      }
    }
  }
  return g;
}

Graph complete_graph(int n, WeightSpec weights, Rng& rng) {
  require(n >= 1, "complete_graph requires n >= 1");
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      g.add_edge(u, v, weights.sample(rng));
    }
  }
  return g;
}

Graph random_tree(int n, WeightSpec weights, Rng& rng) {
  require(n >= 1, "random_tree requires n >= 1");
  Graph g(n);
  g.reserve_edges(n > 0 ? static_cast<std::size_t>(n) - 1 : 0);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        static_cast<NodeId>(rng.uniform_int(0, v - 1));
    g.add_edge(parent, v, weights.sample(rng));
  }
  return g;
}

Graph connected_gnp(int n, double p, WeightSpec weights, Rng& rng) {
  require(n >= 1, "connected_gnp requires n >= 1");
  require(p >= 0.0 && p <= 1.0, "probability out of range");
  // Random attachment tree over a shuffled labelling keeps the backbone
  // unbiased, then each remaining pair appears independently.
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  Graph g(n);
  for (int i = 1; i < n; ++i) {
    const int j = static_cast<int>(rng.uniform_int(0, i - 1));
    g.add_edge(perm[static_cast<std::size_t>(i)],
               perm[static_cast<std::size_t>(j)], weights.sample(rng));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.chance(p)) {
        g.add_edge(u, v, weights.sample(rng));
      }
    }
  }
  return g;
}

Graph random_geometric(int n, double radius, Weight scale, Rng& rng) {
  require(n >= 1, "random_geometric requires n >= 1");
  require(radius > 0.0, "radius must be positive");
  require(scale >= 1, "scale must be >= 1");
  std::vector<std::pair<double, double>> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p = {rng.uniform_real(0.0, 1.0), rng.uniform_real(0.0, 1.0)};
  }
  const auto dist = [&](int a, int b) {
    const double dx = pts[static_cast<std::size_t>(a)].first -
                      pts[static_cast<std::size_t>(b)].first;
    const double dy = pts[static_cast<std::size_t>(a)].second -
                      pts[static_cast<std::size_t>(b)].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto w_of = [&](double d) {
    return std::max<Weight>(
        1, static_cast<Weight>(std::ceil(d * static_cast<double>(scale))));
  };
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double d = dist(u, v);
      if (d <= radius) g.add_edge(u, v, w_of(d));
    }
  }
  // Connectivity backbone: a path through points sorted by x-coordinate,
  // which keeps backbone edges geometrically short.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return pts[static_cast<std::size_t>(a)] <
           pts[static_cast<std::size_t>(b)];
  });
  for (int i = 0; i + 1 < n; ++i) {
    const NodeId a = order[static_cast<std::size_t>(i)];
    const NodeId b = order[static_cast<std::size_t>(i + 1)];
    if (!g.has_edge(a, b)) g.add_edge(a, b, w_of(dist(a, b)));
  }
  return g;
}

Graph spt_heavy_family(int n) {
  require(n >= 3, "spt_heavy_family requires n >= 3");
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(2) * n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
  for (NodeId v = 2; v < n; ++v) g.add_edge(0, v, 2 * v - 1);
  return g;
}

Graph mst_deep_family(int n) {
  require(n >= 4, "mst_deep_family requires n >= 4");
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(2) * n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v, 2);
  for (NodeId v = 1; v + 1 < n; ++v) g.add_edge(v, v + 1, 1);
  return g;
}

namespace {
Weight pow4(Weight x) {
  require(x >= 2, "lower-bound family requires X >= 2");
  require(x <= 50000, "X too large: X^4 would overflow Weight");
  return x * x * x * x;
}
}  // namespace

Graph lower_bound_family(int n, Weight x) {
  require(n >= 4, "lower_bound_family requires n >= 4");
  const Weight heavy = pow4(x);
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(3) * n / 2);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, x);
  for (int j = 0; j < n / 2; ++j) {
    const int mirror = n - 1 - j;
    if (mirror > j + 1) g.add_edge(j, mirror, heavy);
  }
  return g;
}

Graph lower_bound_family_split(int n, Weight x, int i) {
  require(n >= 4, "lower_bound_family_split requires n >= 4");
  const int mirror = n - 1 - i;
  require(i >= 0 && i < n / 2 && mirror > i + 1,
          "i must index an existing bypass edge");
  const Weight heavy = pow4(x);
  Graph g(n + 2);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, x);
  for (int j = 0; j < n / 2; ++j) {
    const int m = n - 1 - j;
    if (m <= j + 1) continue;
    if (j == i) {
      g.add_edge(j, n, heavy);       // pendant replacing one endpoint
      g.add_edge(m, n + 1, heavy);   // pendant replacing the other
    } else {
      g.add_edge(j, m, heavy);
    }
  }
  return g;
}

}  // namespace csca
