// Centralized traversals: connectivity, hop-BFS, and the DFS Euler tour
// used by the SLT algorithm of §2.2 (the "line version" L of the MST).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace csca {

/// component[v] = dense component index in [0, #components).
struct Components {
  std::vector<int> component;
  int count = 0;

  bool connected() const { return count <= 1; }
};

Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Hop distances (unweighted BFS) from src; -1 where unreachable.
std::vector<int> hop_distances(const Graph& g, NodeId src);

/// Unweighted (hop) diameter of a connected graph.
int hop_diameter(const Graph& g);

/// The DFS Euler tour of a rooted tree: the sequence v(0), ..., v(2s-2)
/// of node ids visited by a depth-first traversal that walks each tree
/// edge exactly twice (s = tree size). v(0) == v(2s-2) == root. This is
/// exactly the paper's "mileage" sequence in step 2 of the SLT algorithm.
std::vector<NodeId> euler_tour(const Graph& g, const RootedTree& t);

}  // namespace csca
