#include "graph/families.h"

#include <cmath>

namespace csca {

Graph heavy_chords_graph(int n, Weight heavy) {
  require(n >= 6, "heavy_chords_graph requires n >= 6");
  require(heavy >= 2, "heavy_chords_graph requires heavy >= 2");
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
  g.add_edge(0, n - 1, heavy);
  g.add_edge(1, n / 2, heavy);
  g.add_edge(2, (3 * n) / 4, heavy / 2);
  return g;
}

Graph normalized_chords_graph(int n, std::uint64_t seed) {
  require(n >= 6, "normalized_chords_graph requires n >= 6");
  Rng rng(seed);
  const Graph dense = connected_gnp(n, 0.25, WeightSpec::constant(1), rng);
  Graph g(n);
  g.add_edge(0, n - 1, 256);
  g.add_edge(1, n / 2, 128);
  g.add_edge(2, (3 * n) / 4, 64);
  for (const Edge& e : dense.edges()) {
    if (!g.has_edge(e.u, e.v)) g.add_edge(e.u, e.v, e.w);
  }
  return g;
}

Graph make_family(const std::string& family, int n, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "gnp") {
    return connected_gnp(n, 0.15, WeightSpec::uniform(1, 32), rng);
  }
  if (family == "gnp_pow2") {
    return connected_gnp(n, 0.15, WeightSpec::power_of_two(0, 5), rng);
  }
  if (family == "gnp_dense") {
    return connected_gnp(n, 0.4, WeightSpec::uniform(1, 12), rng);
  }
  if (family == "geometric") {
    return random_geometric(n, 0.3, 64, rng);
  }
  if (family == "geometric_small") {
    return random_geometric(n, 0.5, 8, rng);
  }
  if (family == "grid") {
    const int side = std::max(2, static_cast<int>(std::sqrt(n)));
    return grid_graph(side, side, WeightSpec::uniform(1, 16), rng);
  }
  if (family == "grid_pow2") {
    const int side = std::max(2, static_cast<int>(std::sqrt(n)));
    return grid_graph(side, side, WeightSpec::power_of_two(0, 4), rng);
  }
  if (family == "path") {
    return path_graph(n, WeightSpec::uniform(1, 8), rng);
  }
  if (family == "cycle") {
    return cycle_graph(n, WeightSpec::constant(2), rng);
  }
  if (family == "lower_bound") {
    return lower_bound_family(n, 8);
  }
  if (family == "lower_bound_x2") {
    return lower_bound_family(n, 2);
  }
  if (family == "lower_bound_split") {
    // The Figure 8 variant with the middle bypass edge split; n >= 8 so
    // the replaced edge (n/4, n-1-n/4) exists and is non-degenerate.
    return lower_bound_family_split(n, 8, n / 4);
  }
  if (family == "spt_heavy") {
    return spt_heavy_family(n);
  }
  if (family == "mst_deep") {
    return mst_deep_family(n);
  }
  if (family == "heavy_chords") {
    return heavy_chords_graph(n, 512);
  }
  throw PreconditionError("unknown graph family: " + family);
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names{
      "gnp",          "gnp_pow2",       "gnp_dense",
      "geometric",    "geometric_small", "grid",
      "grid_pow2",    "path",           "cycle",
      "lower_bound",  "lower_bound_x2", "lower_bound_split",
      "spt_heavy",    "mst_deep",       "heavy_chords"};
  return names;
}

std::vector<GraphFamily> builtin_families(bool smoke) {
  // Display names carry the instance size; seeds are per-entry streams
  // of one base so adding an entry never reshuffles the others.
  const auto seed = [](std::uint64_t i) {
    return derive_stream_seed(2026, i);
  };
  std::vector<GraphFamily> out;
  if (smoke) {
    out.push_back({"path6", make_family("path", 6, seed(0))});
    out.push_back({"grid3x3", make_family("grid_pow2", 9, seed(1))});
    out.push_back({"gnp8", make_family("gnp_dense", 8, seed(2))});
    return out;
  }
  out.push_back({"path16", make_family("path", 16, seed(0))});
  out.push_back({"grid4x4", make_family("grid_pow2", 16, seed(1))});
  out.push_back({"gnp14", make_family("gnp_dense", 14, seed(2))});
  out.push_back({"geo12", make_family("geometric_small", 12, seed(3))});
  out.push_back({"lower8", make_family("lower_bound_x2", 8, seed(4))});
  return out;
}

}  // namespace csca
