#include "graph/tree.h"

#include <algorithm>
#include <queue>

namespace csca {

RootedTree::RootedTree(int n, NodeId root)
    : root_(root), parent_edge_(static_cast<std::size_t>(n), kNoEdge) {
  require(n >= 1, "tree host must have at least one node");
  require(root >= 0 && root < n, "root out of range");
}

RootedTree RootedTree::from_parent_edges(const Graph& g, NodeId root,
                                         std::vector<EdgeId> parent_edge) {
  g.check_node(root);
  require(static_cast<int>(parent_edge.size()) == g.node_count(),
          "parent_edge size must equal node count");
  require(parent_edge[static_cast<std::size_t>(root)] == kNoEdge,
          "root must not have a parent edge");
  RootedTree t(g.node_count(), root);
  t.parent_edge_ = std::move(parent_edge);
  // Validate: walking parents from every present node must reach the root
  // without revisiting (acyclic, connected).
  t.size_ = 0;
  std::vector<char> verified(static_cast<std::size_t>(g.node_count()), 0);
  verified[static_cast<std::size_t>(root)] = 1;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!t.contains(v)) continue;
    std::vector<NodeId> chain;
    NodeId cur = v;
    while (!verified[static_cast<std::size_t>(cur)]) {
      chain.push_back(cur);
      const EdgeId pe = t.parent_edge_[static_cast<std::size_t>(cur)];
      require(pe != kNoEdge, "tree node disconnected from root");
      const NodeId parent = g.other(pe, cur);
      require(std::find(chain.begin(), chain.end(), parent) == chain.end(),
              "cycle in parent edges");
      cur = parent;
    }
    for (NodeId u : chain) verified[static_cast<std::size_t>(u)] = 1;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (t.contains(v)) ++t.size_;
  }
  return t;
}

NodeId RootedTree::parent(const Graph& g, NodeId v) const {
  require(contains(v), "node not in tree");
  if (v == root_) return kNoNode;
  return g.other(parent_edge(v), v);
}

void RootedTree::attach(const Graph& g, NodeId v, EdgeId e) {
  g.check_node(v);
  require(!contains(v), "node already in tree");
  const NodeId p = g.other(e, v);
  require(contains(p), "attachment edge must lead into the tree");
  parent_edge_[static_cast<std::size_t>(v)] = e;
  ++size_;
}

std::vector<std::vector<EdgeId>> RootedTree::children_edges(
    const Graph& g) const {
  std::vector<std::vector<EdgeId>> children(
      static_cast<std::size_t>(host_node_count()));
  for (NodeId v = 0; v < host_node_count(); ++v) {
    if (v == root_ || !contains(v)) continue;
    const NodeId p = g.other(parent_edge(v), v);
    children[static_cast<std::size_t>(p)].push_back(parent_edge(v));
  }
  return children;
}

std::vector<NodeId> RootedTree::nodes_preorder(const Graph& g) const {
  auto children = children_edges(g);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(size_));
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (EdgeId e : children[static_cast<std::size_t>(v)]) {
      stack.push_back(g.other(e, v));
    }
  }
  return order;
}

Weight RootedTree::weight(const Graph& g) const {
  Weight sum = 0;
  for (NodeId v = 0; v < host_node_count(); ++v) {
    if (v != root_ && contains(v)) sum += g.weight(parent_edge(v));
  }
  return sum;
}

Weight RootedTree::depth(const Graph& g, NodeId v) const {
  require(contains(v), "node not in tree");
  Weight d = 0;
  NodeId cur = v;
  while (cur != root_) {
    const EdgeId pe = parent_edge(cur);
    d += g.weight(pe);
    cur = g.other(pe, cur);
  }
  return d;
}

Weight RootedTree::height(const Graph& g) const {
  Weight h = 0;
  for (NodeId v = 0; v < host_node_count(); ++v) {
    if (contains(v)) h = std::max(h, depth(g, v));
  }
  return h;
}

namespace {
// Farthest tree node from start and its distance, by BFS over tree edges.
std::pair<NodeId, Weight> farthest_in_tree(const Graph& g,
                                           const RootedTree& t,
                                           NodeId start) {
  std::vector<Weight> dist(static_cast<std::size_t>(t.host_node_count()),
                           -1);
  // Build adjacency restricted to tree edges.
  auto children = t.children_edges(g);
  std::vector<std::vector<EdgeId>> adj(
      static_cast<std::size_t>(t.host_node_count()));
  for (NodeId v = 0; v < t.host_node_count(); ++v) {
    if (v != t.root() && t.contains(v)) {
      const EdgeId pe = t.parent_edge(v);
      adj[static_cast<std::size_t>(v)].push_back(pe);
      adj[static_cast<std::size_t>(g.other(pe, v))].push_back(pe);
    }
  }
  std::queue<NodeId> q;
  q.push(start);
  dist[static_cast<std::size_t>(start)] = 0;
  std::pair<NodeId, Weight> best{start, 0};
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (EdgeId e : adj[static_cast<std::size_t>(v)]) {
      const NodeId u = g.other(e, v);
      if (dist[static_cast<std::size_t>(u)] >= 0) continue;
      dist[static_cast<std::size_t>(u)] =
          dist[static_cast<std::size_t>(v)] + g.weight(e);
      if (dist[static_cast<std::size_t>(u)] > best.second) {
        best = {u, dist[static_cast<std::size_t>(u)]};
      }
      q.push(u);
    }
  }
  return best;
}
}  // namespace

Weight RootedTree::diameter(const Graph& g) const {
  // Two-sweep: trees have the property that a farthest node from any node
  // is a diameter endpoint. Edge weights are positive, so BFS order does
  // not matter (we relax each tree edge exactly once in each sweep).
  const auto [a, da] = farthest_in_tree(g, *this, root_);
  (void)da;
  const auto [b, db] = farthest_in_tree(g, *this, a);
  (void)b;
  return db;
}

std::vector<EdgeId> RootedTree::path(const Graph& g, NodeId x,
                                     NodeId y) const {
  require(contains(x) && contains(y), "path endpoints must be in tree");
  // Climb both to the root, then trim the common suffix.
  auto climb = [&](NodeId v) {
    std::vector<EdgeId> up;
    while (v != root_) {
      up.push_back(parent_edge(v));
      v = g.other(parent_edge(v), v);
    }
    return up;
  };
  std::vector<EdgeId> px = climb(x);
  std::vector<EdgeId> py = climb(y);
  while (!px.empty() && !py.empty() && px.back() == py.back()) {
    px.pop_back();
    py.pop_back();
  }
  px.insert(px.end(), py.rbegin(), py.rend());
  return px;
}

std::vector<EdgeId> RootedTree::edge_set() const {
  std::vector<EdgeId> out;
  out.reserve(static_cast<std::size_t>(size_ > 0 ? size_ - 1 : 0));
  for (NodeId v = 0; v < host_node_count(); ++v) {
    if (v != root_ && contains(v)) out.push_back(parent_edge(v));
  }
  return out;
}

}  // namespace csca
