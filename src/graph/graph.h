// Weighted undirected communication graph G = (V, E, w).
//
// This is the static network model of the paper (§1.2): the weight w(e) of
// an edge is both the cost of transmitting one message over e and the upper
// bound on its delay. Nodes are dense integers [0, n); edges are dense
// integers [0, m) referring into a single edge table, so protocols and
// algorithms can key per-edge state by EdgeId.
//
// Storage is CSR (compressed sparse row): adjacency lives in two flat
// arrays sliced by a shared offset table, rather than one heap vector per
// node. The CSR arrays are rebuilt lazily after mutation — add_edge only
// appends to the edge table and bumps degrees, and the first adjacency
// read after a mutation runs one O(n + m) counting pass that lays out
// every node's incident list (in edge-insertion order, so reads are
// byte-identical to the historical per-node push_back layout). Graphs
// here are built once and then read millions of times, so amortized this
// is one rebuild per graph; the payoff is 10^6-node adjacency in three
// contiguous allocations instead of n + 1.
//
// Duplicate-edge rejection and find_edge use an open-addressing hash
// index over endpoint pairs (O(1) expected), so building an m-edge graph
// is O(n + m) instead of O(sum of min-degrees).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.h"

namespace csca {

using NodeId = int;
using EdgeId = int;
using Weight = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

/// One undirected weighted edge. Endpoints are stored in insertion order;
/// use Graph::other() to walk from either side.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight w = 0;
};

/// One incident arc as seen from a fixed node v: the edge id and the
/// endpoint that is not v. What a hot traversal loop needs per hop,
/// without an edge-table load or an endpoint comparison.
struct Arc {
  EdgeId edge;
  NodeId node;
};

/// Zero-copy view over a node's incident arcs, in edge-insertion order.
/// Backed by two parallel CSR slices; iteration touches only those two
/// contiguous arrays. Invalidated, like any span, by graph mutation.
class NeighborView {
 public:
  class iterator {
   public:
    Arc operator*() const { return Arc{*e_, *n_}; }
    iterator& operator++() {
      ++e_;
      ++n_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return e_ != o.e_; }
    bool operator==(const iterator& o) const { return e_ == o.e_; }

   private:
    friend class NeighborView;
    iterator(const EdgeId* e, const NodeId* n) : e_(e), n_(n) {}
    const EdgeId* e_;
    const NodeId* n_;
  };

  NeighborView(const EdgeId* edges, const NodeId* nodes, std::size_t size)
      : edges_(edges), nodes_(nodes), size_(size) {}

  iterator begin() const { return iterator(edges_, nodes_); }
  iterator end() const { return iterator(edges_ + size_, nodes_ + size_); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Arc operator[](std::size_t i) const { return Arc{edges_[i], nodes_[i]}; }

 private:
  const EdgeId* edges_;
  const NodeId* nodes_;
  std::size_t size_;
};

/// Weighted undirected multigraph-free graph. Immutable node count; edges
/// are appended via add_edge. Self-loops and parallel edges are rejected,
/// matching the standard network model.
class Graph {
 public:
  /// Creates a graph with n isolated nodes. Requires n >= 0.
  explicit Graph(int n);

  /// Adds edge {u, v} with weight w >= 1 and returns its id.
  /// Requires valid distinct endpoints and that the edge not already exist.
  EdgeId add_edge(NodeId u, NodeId v, Weight w);

  /// Pre-sizes the edge table (and the duplicate-rejection index) for m
  /// edges, so generators building million-edge graphs don't pay
  /// geometric regrowth.
  void reserve_edges(std::size_t m);

  int node_count() const { return n_; }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const {
    require(e >= 0 && e < edge_count(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Ids of edges incident to v, in insertion order.
  std::span<const EdgeId> incident(NodeId v) const {
    check_node(v);
    if (csr_dirty_) build_csr();
    const std::size_t b = offsets_[static_cast<std::size_t>(v)];
    const std::size_t e = offsets_[static_cast<std::size_t>(v) + 1];
    return {csr_edges_.data() + b, e - b};
  }

  /// Incident arcs of v — (edge id, other endpoint) pairs — in insertion
  /// order, straight out of the CSR arrays. The hot-loop API: one hop
  /// costs two contiguous loads and no edge-table lookup, vs.
  /// incident() + other() which re-reads the 16-byte Edge record and
  /// branches on which endpoint is v.
  NeighborView neighbors(NodeId v) const {
    check_node(v);
    if (csr_dirty_) build_csr();
    const std::size_t b = offsets_[static_cast<std::size_t>(v)];
    const std::size_t e = offsets_[static_cast<std::size_t>(v) + 1];
    return NeighborView(csr_edges_.data() + b, csr_nodes_.data() + b, e - b);
  }

  int degree(NodeId v) const {
    check_node(v);
    return degree_[static_cast<std::size_t>(v)];
  }

  /// The endpoint of e that is not v. Requires v to be an endpoint of e.
  NodeId other(EdgeId e, NodeId v) const {
    const Edge& ed = edge(e);
    require(ed.u == v || ed.v == v, "node is not an endpoint of edge");
    return ed.u == v ? ed.v : ed.u;
  }

  Weight weight(EdgeId e) const { return edge(e).w; }

  /// Re-assigns w(e) (churn epochs between run slices; docs/faults.md).
  /// Requires w >= 1. Maintains total_weight_/max_weight_ and leaves the
  /// CSR arrays alone — they store ids, not weights — so no rebuild.
  void set_weight(EdgeId e, Weight w);

  /// Id of the edge {u, v}, or kNoEdge if absent. O(1) expected via the
  /// endpoint-pair hash index.
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kNoEdge;
  }

  /// Sum of all edge weights: the paper's script-E.
  Weight total_weight() const { return total_weight_; }

  /// Maximum edge weight W. Zero on an edgeless graph.
  Weight max_weight() const { return max_weight_; }

  /// Heap bytes held by the topology: edge table + CSR arrays + degree
  /// and offset tables + the endpoint-pair index. The denominator side
  /// of the bench_scale bytes/node accounting (docs/scale.md).
  std::size_t memory_bytes() const;

  void check_node(NodeId v) const {
    require(v >= 0 && v < node_count(), "node id out of range");
  }

 private:
  void build_csr() const;
  void index_insert(std::uint64_t key, EdgeId id);
  void index_grow(std::size_t min_slots);
  static std::uint64_t pair_key(NodeId u, NodeId v);

  int n_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> degree_;
  Weight total_weight_ = 0;
  Weight max_weight_ = 0;

  // Open-addressing index: slot -> edge id (kNoEdge = empty). Keys are
  // recomputed from the edge table on probe, so the index itself is one
  // flat int array. Linear probing, load factor <= 1/2, power-of-two
  // sized; insertion order never affects reads, so it is deterministic.
  std::vector<EdgeId> index_;

  // Lazily (re)built CSR adjacency. `mutable` + dirty flag: all mutation
  // happens during single-threaded graph construction, and the first
  // adjacency read (also single-threaded — engines and partitioners
  // touch adjacency before spawning workers) triggers the rebuild, so
  // concurrent readers only ever see a clean CSR.
  mutable bool csr_dirty_ = true;
  mutable std::vector<std::size_t> offsets_;  // n + 1 entries
  mutable std::vector<EdgeId> csr_edges_;     // 2m entries
  mutable std::vector<NodeId> csr_nodes_;     // 2m entries, parallel
};

/// Total weight of a set of edges of g.
Weight total_weight(const Graph& g, std::span<const EdgeId> edge_set);

}  // namespace csca
