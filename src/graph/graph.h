// Weighted undirected communication graph G = (V, E, w).
//
// This is the static network model of the paper (§1.2): the weight w(e) of
// an edge is both the cost of transmitting one message over e and the upper
// bound on its delay. Nodes are dense integers [0, n); edges are dense
// integers [0, m) referring into a single edge table, so protocols and
// algorithms can key per-edge state by EdgeId.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.h"

namespace csca {

using NodeId = int;
using EdgeId = int;
using Weight = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

/// One undirected weighted edge. Endpoints are stored in insertion order;
/// use Graph::other() to walk from either side.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight w = 0;
};

/// Weighted undirected multigraph-free graph. Immutable node count; edges
/// are appended via add_edge. Self-loops and parallel edges are rejected,
/// matching the standard network model.
class Graph {
 public:
  /// Creates a graph with n isolated nodes. Requires n >= 0.
  explicit Graph(int n);

  /// Adds edge {u, v} with weight w >= 1 and returns its id.
  /// Requires valid distinct endpoints and that the edge not already exist.
  EdgeId add_edge(NodeId u, NodeId v, Weight w);

  int node_count() const { return static_cast<int>(incident_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId e) const {
    require(e >= 0 && e < edge_count(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Ids of edges incident to v, in insertion order.
  std::span<const EdgeId> incident(NodeId v) const {
    check_node(v);
    return incident_[static_cast<std::size_t>(v)];
  }

  int degree(NodeId v) const {
    return static_cast<int>(incident(v).size());
  }

  /// The endpoint of e that is not v. Requires v to be an endpoint of e.
  NodeId other(EdgeId e, NodeId v) const {
    const Edge& ed = edge(e);
    require(ed.u == v || ed.v == v, "node is not an endpoint of edge");
    return ed.u == v ? ed.v : ed.u;
  }

  Weight weight(EdgeId e) const { return edge(e).w; }

  /// Id of the edge {u, v}, or kNoEdge if absent. O(min-degree).
  EdgeId find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kNoEdge;
  }

  /// Sum of all edge weights: the paper's script-E.
  Weight total_weight() const { return total_weight_; }

  /// Maximum edge weight W. Zero on an edgeless graph.
  Weight max_weight() const { return max_weight_; }

  void check_node(NodeId v) const {
    require(v >= 0 && v < node_count(), "node id out of range");
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  Weight total_weight_ = 0;
  Weight max_weight_ = 0;
};

/// Total weight of a set of edges of g.
Weight total_weight(const Graph& g, std::span<const EdgeId> edge_set);

}  // namespace csca
