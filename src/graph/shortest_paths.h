// Centralized single-source shortest paths (Dijkstra).
//
// Serves two roles: (1) the reference oracle every distributed SPT
// algorithm is validated against, and (2) a substrate inside centralized
// constructions (the SLT algorithm of §2.2 builds an SPT twice).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace csca {

/// Result of a single-source shortest-path computation. dist[v] is the
/// weighted distance from the source (kUnreachable if disconnected);
/// parent_edge[v] is the last edge on one shortest path to v.
struct ShortestPaths {
  static constexpr Weight kUnreachable = -1;

  NodeId source = kNoNode;
  std::vector<Weight> dist;
  std::vector<EdgeId> parent_edge;

  bool reachable(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] != kUnreachable;
  }

  /// The shortest-path tree as a RootedTree (paper's SPT). Requires the
  /// graph used to compute this result.
  RootedTree tree(const Graph& g) const;

  /// Edge ids of one shortest path source -> v. Requires reachable(v).
  std::vector<EdgeId> path_to(const Graph& g, NodeId v) const;
};

/// Dijkstra from src over non-negative integer weights.
ShortestPaths dijkstra(const Graph& g, NodeId src);

/// Dijkstra restricted to the subgraph G' = (V, E') where E' is the set
/// of edges with allowed_edges[e] != 0. Used by the SLT construction
/// (§2.2 step 6 computes an SPT of the subgraph G').
ShortestPaths dijkstra_subgraph(const Graph& g, NodeId src,
                                const std::vector<char>& allowed_edges);

/// Weighted distance between two nodes (kUnreachable if disconnected).
Weight distance(const Graph& g, NodeId u, NodeId v);

/// Route-consistency certificate check for a claimed distance vector:
/// dist is the single-source shortest-path solution from src iff
/// dist[src] == 0, every edge satisfies the triangle inequality
/// |dist[u] - dist[v]| <= w(e) (no relaxing edge remains), and every
/// non-source node has some incident edge achieving
/// dist[v] == dist[u] + w(e) (a consistent route to follow home).
/// Returns the number of violated conditions — 0 iff dist matches
/// dijkstra(g, src) on a connected graph. Used by the self-stabilizing
/// wrapper to detect an SPT invalidated by churn without re-running the
/// protocol.
std::int64_t spt_route_violations(const Graph& g, NodeId src,
                                  const std::vector<Weight>& dist);

}  // namespace csca
