// The sweep graph families — the single source of truth shared by the
// bench harness (src/bench_harness/), the protocol-analysis sweep
// (tools/csca_check via check/subjects.h) and the tests. Each family is
// defined exactly once, keyed by name, with the size n and the seed as
// the only free parameters; the table drivers and the check sweeps both
// build their graphs through make_family, so a family tweak moves every
// consumer at once.
//
// Weighted so the interesting regimes appear: geometric = WAN-like
// (weights correlate with distance), heavy_chords = d << W (clock sync /
// synchronizer regime), lower_bound = Figure 7, lower_bound_split =
// Figure 8.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.h"

namespace csca {

/// Builds the named family at size n; all randomness derives from seed,
/// so two calls with equal (family, n, seed) are bit-identical. Throws
/// PreconditionError on an unknown family name.
Graph make_family(const std::string& family, int n, std::uint64_t seed);

/// Every name make_family accepts, in a stable order.
const std::vector<std::string>& family_names();

/// The §3 clock-synchronization topology: a light backbone path
/// (weight-2 edges) plus three chords of weight `heavy` / `heavy` /
/// `heavy / 2` — the d << W regime. make_family("heavy_chords") pins
/// heavy = 512; the S3 table sweeps it. Requires n >= 5.
Graph heavy_chords_graph(int n, Weight heavy);

/// The Lemma 4.8 synchronizer topology: a dense unit-weight level-0
/// subgraph (so the gamma partition parameter k genuinely trades cluster
/// depth against inter-cluster edges) plus heavy chords spanning three
/// higher weight levels (64 / 128 / 256). Requires n >= 5.
Graph normalized_chords_graph(int n, std::uint64_t seed);

/// A named sweep graph.
struct GraphFamily {
  std::string name;
  Graph graph;
};

/// The standard pre-built sweep set (shared by tools/csca_check and the
/// determinism tests). Weights mix constant, uniform and power-of-two
/// specs so in-synch protocols and the gamma_w partition see non-trivial
/// weight structure. smoke selects the tiny ctest-gate set; otherwise
/// the full set.
std::vector<GraphFamily> builtin_families(bool smoke);

}  // namespace csca
