#include "graph/mst.h"

#include <algorithm>
#include <tuple>

#include "graph/disjoint_sets.h"

namespace csca {

bool edge_less(const Graph& g, EdgeId a, EdgeId b) {
  const Edge& ea = g.edge(a);
  const Edge& eb = g.edge(b);
  const auto key = [](const Edge& e) {
    return std::tuple(e.w, std::min(e.u, e.v), std::max(e.u, e.v));
  };
  return key(ea) < key(eb);
}

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    order[static_cast<std::size_t>(e)] = e;
  }
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return edge_less(g, a, b); });
  DisjointSets sets(g.node_count());
  std::vector<EdgeId> mst;
  for (EdgeId e : order) {
    if (sets.unite(g.edge(e).u, g.edge(e).v)) mst.push_back(e);
  }
  return mst;
}

Weight mst_weight(const Graph& g) {
  const auto mst = kruskal_mst(g);
  return total_weight(g, mst);
}

RootedTree mst_tree(const Graph& g, NodeId root) {
  const auto mst = kruskal_mst(g);
  require(static_cast<int>(mst.size()) == g.node_count() - 1,
          "mst_tree requires a connected graph");
  // Orient the edge set away from root by BFS.
  std::vector<std::vector<EdgeId>> adj(
      static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : mst) {
    adj[static_cast<std::size_t>(g.edge(e).u)].push_back(e);
    adj[static_cast<std::size_t>(g.edge(e).v)].push_back(e);
  }
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.node_count()),
                             kNoEdge);
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  seen[static_cast<std::size_t>(root)] = 1;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : adj[static_cast<std::size_t>(v)]) {
      const NodeId u = g.other(e, v);
      if (seen[static_cast<std::size_t>(u)]) continue;
      seen[static_cast<std::size_t>(u)] = 1;
      parent[static_cast<std::size_t>(u)] = e;
      stack.push_back(u);
    }
  }
  return RootedTree::from_parent_edges(g, root, std::move(parent));
}

bool is_minimum_spanning_forest(const Graph& g,
                                std::vector<EdgeId> edge_set) {
  auto reference = kruskal_mst(g);
  std::sort(edge_set.begin(), edge_set.end());
  std::sort(reference.begin(), reference.end());
  return edge_set == reference;
}

}  // namespace csca
