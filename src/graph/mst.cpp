#include "graph/mst.h"

#include <algorithm>
#include <tuple>

#include "graph/disjoint_sets.h"

namespace csca {

bool edge_less(const Graph& g, EdgeId a, EdgeId b) {
  const Edge& ea = g.edge(a);
  const Edge& eb = g.edge(b);
  const auto key = [](const Edge& e) {
    return std::tuple(e.w, std::min(e.u, e.v), std::max(e.u, e.v));
  };
  return key(ea) < key(eb);
}

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    order[static_cast<std::size_t>(e)] = e;
  }
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return edge_less(g, a, b); });
  DisjointSets sets(g.node_count());
  std::vector<EdgeId> mst;
  for (EdgeId e : order) {
    if (sets.unite(g.edge(e).u, g.edge(e).v)) mst.push_back(e);
  }
  return mst;
}

Weight mst_weight(const Graph& g) {
  const auto mst = kruskal_mst(g);
  return total_weight(g, mst);
}

RootedTree mst_tree(const Graph& g, NodeId root) {
  const auto mst = kruskal_mst(g);
  require(static_cast<int>(mst.size()) == g.node_count() - 1,
          "mst_tree requires a connected graph");
  // Orient the edge set away from root by BFS.
  std::vector<std::vector<EdgeId>> adj(
      static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : mst) {
    adj[static_cast<std::size_t>(g.edge(e).u)].push_back(e);
    adj[static_cast<std::size_t>(g.edge(e).v)].push_back(e);
  }
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.node_count()),
                             kNoEdge);
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  seen[static_cast<std::size_t>(root)] = 1;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : adj[static_cast<std::size_t>(v)]) {
      const NodeId u = g.other(e, v);
      if (seen[static_cast<std::size_t>(u)]) continue;
      seen[static_cast<std::size_t>(u)] = 1;
      parent[static_cast<std::size_t>(u)] = e;
      stack.push_back(u);
    }
  }
  return RootedTree::from_parent_edges(g, root, std::move(parent));
}

std::int64_t mst_cycle_violations(const Graph& g,
                                  const std::vector<char>& in_tree) {
  require(in_tree.size() == static_cast<std::size_t>(g.edge_count()),
          "in_tree must have one flag per edge");
  const auto n = static_cast<std::size_t>(g.node_count());
  std::int64_t violations = 0;

  // Acyclicity and span: unite along claimed tree edges; a tree edge
  // closing a cycle is one violation, and each missing merge (the
  // forest has more components than the graph) is one violation.
  DisjointSets tree_sets(g.node_count());
  std::vector<std::vector<EdgeId>> adj(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)] == 0) continue;
    const Edge& ed = g.edge(e);
    if (!tree_sets.unite(ed.u, ed.v)) {
      ++violations;
      continue;
    }
    adj[static_cast<std::size_t>(ed.u)].push_back(e);
    adj[static_cast<std::size_t>(ed.v)].push_back(e);
  }
  DisjointSets graph_sets(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (graph_sets.unite(ed.u, ed.v) && tree_sets.unite(ed.u, ed.v)) {
      // This edge merges two graph components the claimed forest left
      // separate (the unite just merged them in tree_sets too, so the
      // deficit is counted once per missing merge).
      ++violations;
    }
  }

  // Root every forest component to answer path-max queries by walking
  // parent pointers from both endpoints to their LCA.
  std::vector<EdgeId> parent(n, kNoEdge);
  std::vector<NodeId> parent_node(n, kNoNode);
  std::vector<int> depth(n, -1);
  for (NodeId r = 0; r < g.node_count(); ++r) {
    if (depth[static_cast<std::size_t>(r)] >= 0) continue;
    depth[static_cast<std::size_t>(r)] = 0;
    std::vector<NodeId> stack{r};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (EdgeId e : adj[static_cast<std::size_t>(v)]) {
        const NodeId u = g.other(e, v);
        if (depth[static_cast<std::size_t>(u)] >= 0) continue;
        depth[static_cast<std::size_t>(u)] =
            depth[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(u)] = e;
        parent_node[static_cast<std::size_t>(u)] = v;
        stack.push_back(u);
      }
    }
  }

  // Cycle property: a non-tree edge whose endpoints the forest connects
  // must not be edge_less than the heaviest (edge_less-max) tree edge
  // on the path between them — otherwise swapping it in improves the
  // forest and the claim is not minimum.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)] != 0) continue;
    const Edge& ed = g.edge(e);
    NodeId a = ed.u;
    NodeId b = ed.v;
    if (depth[static_cast<std::size_t>(a)] < 0 ||
        depth[static_cast<std::size_t>(b)] < 0) {
      continue;
    }
    EdgeId heaviest = kNoEdge;
    bool connected = true;
    const auto step = [&](NodeId& v) {
      const EdgeId pe = parent[static_cast<std::size_t>(v)];
      if (pe == kNoEdge) {
        connected = false;
        return;
      }
      if (heaviest == kNoEdge || edge_less(g, heaviest, pe)) heaviest = pe;
      v = parent_node[static_cast<std::size_t>(v)];
    };
    while (connected && a != b) {
      if (depth[static_cast<std::size_t>(a)] >=
          depth[static_cast<std::size_t>(b)]) {
        step(a);
      } else {
        step(b);
      }
    }
    if (connected && heaviest != kNoEdge && edge_less(g, e, heaviest)) {
      ++violations;
    }
  }
  return violations;
}

bool is_minimum_spanning_forest(const Graph& g,
                                std::vector<EdgeId> edge_set) {
  auto reference = kruskal_mst(g);
  std::sort(edge_set.begin(), edge_set.end());
  std::sort(reference.begin(), reference.end());
  return edge_set == reference;
}

}  // namespace csca
