// The paper's cost-sensitive network parameters (§1.3):
//
//   script-E = w(G)        total cost of sending one message on every edge
//   script-V = w(MST)      minimal cost of reaching all vertices
//   script-D = Diam(G)     maximal cost of transmitting between two nodes
//   d        = max_{(u,v) in E} dist(u, v)   (clock-sync parameter, §1.4.2)
//   W        = max edge weight
//
// Script names clash with the unweighted E, V, D, so in code they are
// comm_E / comm_V / comm_D.
#pragma once

#include "graph/graph.h"

namespace csca {

/// All weighted parameters of a connected network, computed once.
struct NetworkMeasures {
  Weight comm_E = 0;  ///< total edge weight w(G)
  Weight comm_V = 0;  ///< MST weight
  Weight comm_D = 0;  ///< weighted diameter
  Weight d = 0;       ///< max over edges (u,v) of dist(u, v)
  Weight W = 0;       ///< max edge weight
  int n = 0;          ///< |V|
  int m = 0;          ///< |E|
};

/// Weighted diameter Diam(G). Requires g connected. O(n * m log n).
Weight weighted_diameter(const Graph& g);

/// Weighted radius from v: Rad(v, G) = max_u dist(v, u).
Weight weighted_radius(const Graph& g, NodeId v);

/// The clock-synchronization parameter d = max_{(u,v) in E} dist(u, v):
/// the largest weighted distance between *neighbors*. Requires g connected.
Weight max_neighbor_distance(const Graph& g);

/// Computes every parameter. Requires g connected.
NetworkMeasures measure(const Graph& g);

}  // namespace csca
