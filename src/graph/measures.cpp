#include "graph/measures.h"

#include <algorithm>

#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"

namespace csca {

Weight weighted_radius(const Graph& g, NodeId v) {
  const auto sp = dijkstra(g, v);
  Weight r = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    require(sp.reachable(u), "weighted_radius requires a connected graph");
    r = std::max(r, sp.dist[static_cast<std::size_t>(u)]);
  }
  return r;
}

Weight weighted_diameter(const Graph& g) {
  require(is_connected(g), "weighted_diameter requires a connected graph");
  Weight diam = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    diam = std::max(diam, weighted_radius(g, v));
  }
  return diam;
}

Weight max_neighbor_distance(const Graph& g) {
  require(is_connected(g),
          "max_neighbor_distance requires a connected graph");
  Weight d = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto sp = dijkstra(g, v);
    for (const Arc a : g.neighbors(v)) {
      d = std::max(d, sp.dist[static_cast<std::size_t>(a.node)]);
    }
  }
  return d;
}

NetworkMeasures measure(const Graph& g) {
  require(is_connected(g), "measure requires a connected graph");
  NetworkMeasures out;
  out.n = g.node_count();
  out.m = g.edge_count();
  out.comm_E = g.total_weight();
  out.comm_V = mst_weight(g);
  out.W = g.max_weight();
  out.comm_D = 0;
  out.d = 0;
  // One Dijkstra per node serves both the diameter and d.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto sp = dijkstra(g, v);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      out.comm_D =
          std::max(out.comm_D, sp.dist[static_cast<std::size_t>(u)]);
    }
    for (const Arc a : g.neighbors(v)) {
      out.d = std::max(out.d, sp.dist[static_cast<std::size_t>(a.node)]);
    }
  }
  return out;
}

}  // namespace csca
