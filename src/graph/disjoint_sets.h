// Union-find with path compression and union by size.
//
// Used by Kruskal's algorithm, connectivity references, and the fragment
// bookkeeping in MST validation.
#pragma once

#include <numeric>
#include <vector>

#include "util/require.h"

namespace csca {

class DisjointSets {
 public:
  explicit DisjointSets(int n)
      : parent_(static_cast<std::size_t>(n)),
        size_(static_cast<std::size_t>(n), 1) {
    require(n >= 0, "size must be non-negative");
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    check(x);
    while (parent_[static_cast<std::size_t>(x)] != x) {
      // Path halving.
      int& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];
      x = p;
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] <
        size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] +=
        size_[static_cast<std::size_t>(b)];
    return true;
  }

  bool same(int a, int b) { return find(a) == find(b); }

  int set_size(int x) { return size_[static_cast<std::size_t>(find(x))]; }

 private:
  void check(int x) const {
    require(x >= 0 && x < static_cast<int>(parent_.size()),
            "element out of range");
  }

  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace csca
