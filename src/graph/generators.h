// Graph families used by tests, examples, and the benchmark harnesses.
//
// Includes the paper's lower-bound family G_n of Figure 7 and its split
// variant G'_{n,i} of Figure 8, plus the standard families the complexity
// tables are exercised on (paths, grids, random graphs, geometric graphs).
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace csca {

/// How edge weights are drawn by a generator.
class WeightSpec {
 public:
  /// Every edge has weight w.
  static WeightSpec constant(Weight w);
  /// Uniform integer in [lo, hi].
  static WeightSpec uniform(Weight lo, Weight hi);
  /// 2^j with j uniform in [lo_exp, hi_exp]; produces normalized networks.
  static WeightSpec power_of_two(int lo_exp, int hi_exp);

  Weight sample(Rng& rng) const;

 private:
  enum class Kind { kConstant, kUniform, kPowerOfTwo };
  WeightSpec(Kind kind, Weight lo, Weight hi)
      : kind_(kind), lo_(lo), hi_(hi) {}
  Kind kind_;
  Weight lo_;
  Weight hi_;
};

/// Path 0 - 1 - ... - n-1.
Graph path_graph(int n, WeightSpec weights, Rng& rng);

/// Cycle on n >= 3 nodes.
Graph cycle_graph(int n, WeightSpec weights, Rng& rng);

/// rows x cols grid (4-neighborhood); node (r, c) has id r * cols + c.
Graph grid_graph(int rows, int cols, WeightSpec weights, Rng& rng);

/// Complete graph K_n.
Graph complete_graph(int n, WeightSpec weights, Rng& rng);

/// Uniform random spanning tree shape (random attachment), n >= 1.
Graph random_tree(int n, WeightSpec weights, Rng& rng);

/// Erdos-Renyi G(n, p) plus a random spanning tree so the result is
/// always connected.
Graph connected_gnp(int n, double p, WeightSpec weights, Rng& rng);

/// Random geometric graph: n points in the unit square; nodes within
/// `radius` are joined, weight = ceil(scale * euclidean distance) >= 1.
/// A spanning path through the points is added for connectivity. Weights
/// correlate with distance, the WAN-like regime the paper motivates.
Graph random_geometric(int n, double radius, Weight scale, Rng& rng);

/// The Figure 7 lower-bound family G_n: a path 0..n-1 whose edges have
/// weight X, plus "bypassing" edges (j, n-1-j) of weight X^4 for
/// 0 <= j < n/2 (skipping degenerate pairs). Any correct connectivity /
/// spanning-tree algorithm must spend Omega(n * V) communication here.
/// Requires n >= 4 and X >= 2 with X^4 within Weight range.
Graph lower_bound_family(int n, Weight x);

/// The Figure 8 variant G'_{n,i}: G_n with bypass edge (i, n-1-i)
/// replaced by pendant edges (i, n) and (n-1-i, n+1) to two new nodes,
/// both of weight X^4. Used by the indistinguishability argument.
Graph lower_bound_family_split(int n, Weight x, int i);

/// The [BKJ83] family where the SPT is maximally heavy, w(T_S) =
/// Theta(n * script-V): a light path 0-1-...-n-1 (weight 2 edges, the
/// MST) plus direct edges (0, v) of weight 2v - 1 — one unit below the
/// path distance, so the SPT from 0 takes every direct edge. §2.2 cites
/// this to motivate shallow-light trees. Requires n >= 3.
Graph spt_heavy_family(int n);

/// The [BKJ83] family where the MST is maximally deep, Diam(T_M) =
/// Theta(n * script-D): a hub connected to every rim node by weight-2
/// edges (script-D <= 4) while the rim forms a weight-1 path the MST
/// prefers, making the MST a long chain. Requires n >= 4.
Graph mst_deep_family(int n);

}  // namespace csca
