// Rooted spanning / partial trees over a Graph.
//
// Trees show up everywhere in the paper: MSTs, shortest-path trees,
// shallow-light trees, synchronizer cluster trees, controller execution
// trees. A RootedTree references edges of its host graph by id, so tree
// weight and tree paths are always consistent with the graph's weights.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace csca {

/// A rooted tree over a subset of the nodes of a host graph. Node v is in
/// the tree iff v == root or parent_edge[v] != kNoEdge. Every parent edge
/// must be an edge of the host graph with v as one endpoint.
class RootedTree {
 public:
  /// Creates the single-node tree {root} over a graph with n nodes.
  RootedTree(int n, NodeId root);

  /// Builds a rooted tree from a parent-edge array (kNoEdge everywhere a
  /// node is absent; root's entry must be kNoEdge). Validates acyclicity
  /// and connectivity to the root against g.
  static RootedTree from_parent_edges(const Graph& g, NodeId root,
                                      std::vector<EdgeId> parent_edge);

  NodeId root() const { return root_; }
  int host_node_count() const {
    return static_cast<int>(parent_edge_.size());
  }

  bool contains(NodeId v) const {
    return v == root_ ||
           parent_edge_[static_cast<std::size_t>(v)] != kNoEdge;
  }

  /// Number of nodes currently in the tree.
  int size() const { return size_; }

  EdgeId parent_edge(NodeId v) const {
    return parent_edge_[static_cast<std::size_t>(v)];
  }

  /// Parent of v in the tree (kNoNode for the root). Requires contains(v).
  NodeId parent(const Graph& g, NodeId v) const;

  /// Attaches node v via edge e (whose other endpoint must already be in
  /// the tree). Requires v not yet in the tree.
  void attach(const Graph& g, NodeId v, EdgeId e);

  /// All nodes of the tree, root first, in BFS order over tree edges.
  std::vector<NodeId> nodes_preorder(const Graph& g) const;

  /// children[v] lists tree edges from v to its children.
  std::vector<std::vector<EdgeId>> children_edges(const Graph& g) const;

  /// Sum of parent-edge weights: w(T).
  Weight weight(const Graph& g) const;

  /// Weighted distance from root to v along tree edges.
  Weight depth(const Graph& g, NodeId v) const;

  /// max_v depth(v): weighted radius of the tree as seen from the root.
  Weight height(const Graph& g) const;

  /// Weighted diameter of the tree: max over tree node pairs of their
  /// tree-path weight. O(size) via two-sweep.
  Weight diameter(const Graph& g) const;

  /// Tree path from x to y as a list of edge ids (paper's Path(x, y, T)).
  std::vector<EdgeId> path(const Graph& g, NodeId x, NodeId y) const;

  /// The distinct edge ids making up the tree.
  std::vector<EdgeId> edge_set() const;

  /// True iff the tree spans all n nodes of the host graph.
  bool spanning() const { return size_ == host_node_count(); }

 private:
  NodeId root_;
  std::vector<EdgeId> parent_edge_;
  int size_ = 1;
};

}  // namespace csca
