// Precondition / invariant checking helpers.
//
// Library entry points validate their arguments with require(); internal
// invariants that indicate a bug in this library (not in the caller) use
// ensure(). Both throw, so misuse is never silently ignored; the distinction
// is purely in the exception type and message prefix, which makes test
// failures self-explanatory.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace csca {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of this library is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const std::string& message,
                                     std::source_location where);
[[noreturn]] void throw_invariant(const std::string& message,
                                  std::source_location where);
}  // namespace detail

/// Validates a caller-facing precondition; throws PreconditionError on
/// failure with the failing source location in the message.
inline void require(
    bool condition, const std::string& message,
    std::source_location where = std::source_location::current()) {
  if (!condition) detail::throw_precondition(message, where);
}

/// Validates an internal invariant; throws InvariantError on failure.
inline void ensure(
    bool condition, const std::string& message,
    std::source_location where = std::source_location::current()) {
  if (!condition) detail::throw_invariant(message, where);
}

}  // namespace csca
