#include "util/require.h"

namespace csca::detail {

namespace {
std::string format(const char* kind, const std::string& message,
                   const std::source_location& where) {
  std::string out{kind};
  out += ": ";
  out += message;
  out += " [";
  out += where.file_name();
  out += ":";
  out += std::to_string(where.line());
  out += "]";
  return out;
}
}  // namespace

void throw_precondition(const std::string& message,
                        std::source_location where) {
  throw PreconditionError(format("precondition violated", message, where));
}

void throw_invariant(const std::string& message, std::source_location where) {
  throw InvariantError(format("invariant violated", message, where));
}

}  // namespace csca::detail
