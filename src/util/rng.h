// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (random graph generators, random
// delay models) flows through Rng so that every test and benchmark run is
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/require.h"

namespace csca {

/// splitmix64 output function: advances x by the golden-ratio increment
/// and finalizes it. mix64(s), mix64(s + kGolden), mix64(s + 2*kGolden),
/// ... is exactly the splitmix64 stream seeded at s, so any integer
/// index can be mixed into an independent-looking 64-bit value in O(1).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed for logical stream `stream` of a base seed: the stream-th output
/// of splitmix64 seeded at base. Concurrent runs (and per-shard draws)
/// derive their seeds through this instead of seed + i arithmetic, so
/// sibling streams share no generator state and are decorrelated even
/// for adjacent indices.
inline std::uint64_t derive_stream_seed(std::uint64_t base,
                                        std::uint64_t stream) {
  return mix64(base + stream * 0x9e3779b97f4a7c15ULL);
}

/// Maps a 64-bit key to a uniform double in [0, 1) (53 high bits).
inline double key_to_unit(std::uint64_t key) {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

/// Seeded deterministic random source. Thin wrapper over std::mt19937_64
/// with convenience samplers; cheap to copy (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "uniform_int requires lo <= hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi) {
    require(lo <= hi, "uniform_real requires lo <= hi");
    if (lo == hi) return lo;
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    require(p >= 0.0 && p <= 1.0, "chance requires p in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream so adding draws in one place does not
  /// perturb another. Consumes one draw from this generator, so the
  /// child depends on how many draws preceded the fork.
  Rng fork() { return Rng(engine_()); }

  /// Derives the generator for logical stream `stream` of this
  /// generator's seed, without consuming any state (unlike fork()):
  /// split(i) is a pure function of (construction seed, i). The
  /// multi-run harness gives run i the stream-i generator so runs are
  /// identical whether they execute concurrently, in any order, or
  /// alone — and so no two runs ever share generator state.
  Rng split(std::uint64_t stream) const {
    return Rng(derive_stream_seed(seed_, stream));
  }

  /// The seed this generator was constructed with (split() keys off it).
  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace csca
