// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (random graph generators, random
// delay models) flows through Rng so that every test and benchmark run is
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/require.h"

namespace csca {

/// Seeded deterministic random source. Thin wrapper over std::mt19937_64
/// with convenience samplers; cheap to copy (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "uniform_int requires lo <= hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi) {
    require(lo <= hi, "uniform_real requires lo <= hi");
    if (lo == hi) return lo;
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    require(p >= 0.0 && p <= 1.0, "chance requires p in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream so adding draws in one place does not
  /// perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace csca
