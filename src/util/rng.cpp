#include "util/rng.h"

// Rng is header-only today; this translation unit anchors the library so
// that csca_util always has at least one object file.
