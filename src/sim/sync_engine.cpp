#include "sim/sync_engine.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace csca {

SyncEngine::SyncEngine(const Graph& g, const ProcessFactory& factory,
                       bool enforce_in_synch)
    : SyncEngine(g, ProcessStore::from_factory(g.node_count(), factory),
                 enforce_in_synch) {}

SyncEngine::SyncEngine(const Graph& g, ProcessStore store,
                       bool enforce_in_synch)
    : graph_(&g),
      processes_(std::move(store)),
      enforce_in_synch_(enforce_in_synch),
      finished_(static_cast<std::size_t>(g.node_count()), 0) {
  require(processes_.size() == g.node_count(),
          "process store size must match the node count");
  // Pre-size the tiered queue from the topology (cf. Network): the
  // pulse engine's far horizon fills with one event per in-flight
  // transmission, O(n + m) for the synchronous wavefront protocols.
  queue_.reserve(static_cast<std::size_t>(g.node_count()) +
                 static_cast<std::size_t>(g.edge_count()));
}

void SyncEngine::do_send(NodeId from, EdgeId e, Message m, MsgClass cls) {
  const Edge& edge = graph_->edge(e);
  require(edge.u == from || edge.v == from,
          "process may only send on its own incident edges");
  if (enforce_in_synch_) {
    require(pulse_ % edge.w == 0,
            "in-synch protocol may send on edge e only at pulses "
            "divisible by w(e)");
  }
  m.from = from;
  m.edge = e;
  const auto charge = [&] {
    if (cls == MsgClass::kAlgorithm) {
      ++stats_.algorithm_messages;
      stats_.algorithm_cost += edge.w;
    } else if (cls == MsgClass::kControl) {
      ++stats_.control_messages;
      stats_.control_cost += edge.w;
    } else {
      ++stats_.recovery_messages;
      stats_.recovery_cost += edge.w;
    }
  };
  if (faults_ != nullptr) {
    // Mirror of Network::engine_send_faulty in the pulse domain: the
    // attempt is always charged, fates are keyed by the per-channel
    // send count, and loss is decided at send time (arrival pulses are
    // known exactly).
    if (faults_->crashed(from, static_cast<double>(pulse_))) return;
    const std::size_t channel =
        static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
    const std::uint64_t count = channel_sends_[channel]++;
    charge();
    const NodeId to = graph_->other(e, from);
    const double arrival = static_cast<double>(pulse_ + edge.w);
    const FaultInjector::SendFate fate = faults_->send_fate(channel, count);
    if (fate.drop || faults_->link_down(e, static_cast<double>(pulse_)) ||
        faults_->link_down(e, arrival) || faults_->crashed(to, arrival)) {
      return;
    }
    // Corrupts the delivered copy only (the charge above is that of a
    // healthy-looking send); same keyed mask as the async engines.
    if (fate.garble) faults_->garble(channel, count, m);
    // Byzantine sender corruption, before the duplicate splits off —
    // same order as Network::engine_send_faulty.
    if (faults_->byzantine(from)) {
      const auto byz = faults_->byzantine_fate(channel, count);
      if (byz == FaultInjector::ByzantineFate::kEquivocate) {
        faults_->equivocate(channel, count, m);
      } else if (byz == FaultInjector::ByzantineFate::kForge) {
        faults_->forge(channel, count, m);
      }
    }
    check_event_bounds(pulse_ + edge.w);
    if (fate.duplicate) {
      // The phantom copy arrives one transmission later (p + 2w), the
      // pulse-domain analogue of an independent second delay draw.
      const double arr2 = static_cast<double>(pulse_ + 2 * edge.w);
      if (!faults_->link_down(e, arr2) && !faults_->crashed(to, arr2)) {
        Message dup = m;
        check_event_bounds(pulse_ + 2 * edge.w);
        queue_.push(event_key(pulse_ + edge.w, 0, seq_++), std::move(m));
        queue_.push(event_key(pulse_ + 2 * edge.w, 0, seq_++),
                    std::move(dup));
        return;
      }
    }
    queue_.push(event_key(pulse_ + edge.w, 0, seq_++), std::move(m));
    return;
  }
  check_event_bounds(pulse_ + edge.w);
  queue_.push(event_key(pulse_ + edge.w, 0, seq_++), std::move(m));
  charge();
}

void SyncEngine::set_faults(const FaultInjector* f) {
  require(!started_, "faults must be attached before the first step");
  faults_ = (f != nullptr && f->active()) ? f : nullptr;
  if (faults_ != nullptr) faults_->plan().validate(*graph_);
  if (faults_ != nullptr && channel_sends_.empty()) {
    channel_sends_.assign(static_cast<std::size_t>(2 * graph_->edge_count()),
                          0);
  }
}

void SyncEngine::do_wakeup(NodeId v, std::int64_t at_pulse) {
  require(at_pulse > pulse_, "wakeup must be scheduled strictly ahead");
  // Wakeups die with their owner (cf. Network::engine_schedule_self).
  if (faults_ != nullptr && faults_->crashed(v, static_cast<double>(at_pulse)))
    return;
  check_event_bounds(at_pulse);
  Message m;
  m.from = v;
  queue_.push(event_key(at_pulse, 1, seq_++), std::move(m));
}

void SyncEngine::do_finish(NodeId v) {
  finished_[static_cast<std::size_t>(v)] = 1;
}

void SyncEngine::ensure_started() {
  if (started_) return;
  started_ = true;
  pulse_ = 0;
  for (NodeId v = 0; v < graph_->node_count(); ++v) {
    if (faults_ != nullptr && faults_->crashed(v, 0.0)) continue;
    EngineContext ctx(*this, v);
    processes_.at(v).on_start(ctx);
  }
}

RunStats SyncEngine::run(std::int64_t max_pulse) {
  ensure_started();
  // Peek before popping: an event beyond the pulse budget must stay
  // queued so a later run() call resumes with it (popping it first and
  // then checking would silently destroy it).
  while (!queue_.empty()) {
    const HeapKey key = queue_.top_key();
    if (key.t > static_cast<double>(max_pulse)) break;
    const bool is_wakeup = (key.aux >> 31) != 0;
    const Message msg = queue_.pop();
    pulse_ = static_cast<std::int64_t>(key.t);
    stats_.completion_time = static_cast<double>(pulse_);
    ++stats_.events;
    const NodeId to =
        msg.edge == kNoEdge ? msg.from : graph_->other(msg.edge, msg.from);
    EngineContext ctx(*this, to);
    if (!is_wakeup) {
      processes_.at(to).on_message(ctx, msg);
    } else {
      processes_.at(to).on_wakeup(ctx);
    }
  }
  return stats_;
}

bool SyncEngine::all_finished() const {
  return std::all_of(finished_.begin(), finished_.end(),
                     [](char f) { return f != 0; });
}

}  // namespace csca
