#include "sim/sync_engine.h"

#include <algorithm>

namespace csca {

SyncEngine::SyncEngine(const Graph& g, const ProcessFactory& factory,
                       bool enforce_in_synch)
    : graph_(&g),
      enforce_in_synch_(enforce_in_synch),
      finished_(static_cast<std::size_t>(g.node_count()), 0) {
  processes_.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto p = factory(v);
    require(p != nullptr, "process factory returned null");
    processes_.push_back(std::move(p));
  }
}

void SyncEngine::do_send(NodeId from, EdgeId e, Message m) {
  const Edge& edge = graph_->edge(e);
  require(edge.u == from || edge.v == from,
          "process may only send on its own incident edges");
  if (enforce_in_synch_) {
    require(pulse_ % edge.w == 0,
            "in-synch protocol may send on edge e only at pulses "
            "divisible by w(e)");
  }
  m.from = from;
  m.edge = e;
  queue_.push(Event{pulse_ + edge.w, 0, seq_++, graph_->other(e, from),
                    std::move(m)});
  ++stats_.algorithm_messages;
  stats_.algorithm_cost += edge.w;
}

void SyncEngine::do_wakeup(NodeId v, std::int64_t at_pulse) {
  require(at_pulse > pulse_, "wakeup must be scheduled strictly ahead");
  queue_.push(Event{at_pulse, 1, seq_++, v, Message{}});
}

void SyncEngine::do_finish(NodeId v) {
  finished_[static_cast<std::size_t>(v)] = 1;
}

RunStats SyncEngine::run(std::int64_t max_pulse) {
  require(!ran_, "SyncEngine::run may only be called once");
  ran_ = true;
  pulse_ = 0;
  for (NodeId v = 0; v < graph_->node_count(); ++v) {
    EngineContext ctx(*this, v);
    processes_[static_cast<std::size_t>(v)]->on_start(ctx);
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.pulse > max_pulse) break;
    pulse_ = ev.pulse;
    stats_.completion_time = static_cast<double>(pulse_);
    ++stats_.events;
    EngineContext ctx(*this, ev.to);
    if (ev.kind == 0) {
      processes_[static_cast<std::size_t>(ev.to)]->on_message(ctx, ev.msg);
    } else {
      processes_[static_cast<std::size_t>(ev.to)]->on_wakeup(ctx);
    }
  }
  return stats_;
}

bool SyncEngine::all_finished() const {
  return std::all_of(finished_.begin(), finished_.end(),
                     [](char f) { return f != 0; });
}

}  // namespace csca
