// The asynchronous message-passing engine.
//
// A Network hosts one Process per node of a weighted Graph and delivers
// messages along edges with delays drawn from a DelayModel, clamped so
// that each directed edge is a FIFO channel (the standard static-network
// assumption; GHS and the synchronizers rely on it). Sending a message on
// edge e adds w(e) to the communication-cost ledger — the paper's
// cost-sensitive communication measure — and the run's completion time is
// the cost-sensitive time measure when the delay model is ExactDelay.
//
// Context / Process / the engine interfaces live in sim/engine.h; the
// Network is the sequential reference implementation of both surfaces
// (EngineBackend for its processes, ProcessHost for the analysis layer).
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "graph/graph.h"
#include "sim/delay.h"
#include "sim/engine.h"
#include "sim/event_heap.h"
#include "sim/message.h"
#include "sim/process_store.h"
#include "util/rng.h"

namespace csca {

class Network;
class FaultInjector;

/// Why a fault swallowed a send attempt (see InvariantObserver::on_drop).
enum class FaultDropReason {
  kChannelDrop,      // keyed per-send drop draw
  kLinkDown,         // edge inside an outage interval at send or arrival
  kReceiverCrashed,  // destination crash-stops before the arrival time
};

/// Passive hook interface for the protocol analysis layer (src/check/).
/// When attached via Network::set_observer, the engine invokes one hook
/// per state transition; with no observer attached each hook site costs
/// a single predicted-not-taken branch. Hooks fire *after* the
/// transition is applied (counters updated, event queued, finish time
/// stamped), so checkers can cross-validate the engine's bookkeeping
/// against their own. See check/invariants.h for the default checker.
/// Observers are a sequential-engine feature: they receive the Network
/// mid-step, which has no meaning across the parallel engine's shards.
class InvariantObserver {
 public:
  virtual ~InvariantObserver() = default;

  /// A send by `from` on edge e was queued. `delay` is the raw
  /// DelayModel output, `arrival` the FIFO-clamped delivery time.
  virtual void on_send(const Network&, NodeId /*from*/, EdgeId /*e*/,
                       MsgClass /*cls*/, double /*delay*/,
                       double /*arrival*/) {}

  /// A self-delivery by v was queued `delay` time units ahead.
  virtual void on_self_schedule(const Network&, NodeId /*v*/,
                                double /*delay*/) {}

  /// An event is about to be handed to node `to` (now() == t). Fires
  /// before the process handler runs.
  virtual void on_deliver(const Network&, NodeId /*to*/,
                          const Message& /*m*/, double /*t*/) {}

  /// Node v called Context::finish() for the first time, at time t.
  virtual void on_finish(const Network&, NodeId /*v*/, double /*t*/) {}

  /// A send attempt by `from` on edge e was swallowed by a fault. The
  /// ledger charges the attempt (transmission cost is paid whether or
  /// not the message survives the channel) but nothing was queued and
  /// nothing will be delivered for it. Only fires with faults attached.
  virtual void on_drop(const Network&, NodeId /*from*/, EdgeId /*e*/,
                       MsgClass /*cls*/, FaultDropReason /*reason*/) {}

  /// The channel duplicated a send by `from` on edge e: a phantom copy
  /// was queued to arrive at `arrival`. Duplicates are channel noise,
  /// not protocol sends — they are *not* charged to the ledger or the
  /// per-edge counters. Only fires with faults attached.
  virtual void on_duplicate(const Network&, NodeId /*from*/, EdgeId /*e*/,
                            double /*arrival*/) {}

  /// A send by `from` on edge e was queued *corrupted* (one keyed
  /// payload word XORed — see FaultInjector::garble) and will arrive at
  /// `arrival`. Fires right after the on_send hook for the same send;
  /// the ledger charged the attempt normally. Only fires with faults
  /// attached.
  virtual void on_garble(const Network&, NodeId /*from*/, EdgeId /*e*/,
                         double /*arrival*/) {}

  /// A byzantine sender corrupted its own send on edge e before it hit
  /// the wire: `forged` distinguishes a checksum-patched forgery from
  /// an equivocation (channel-keyed conflicting payload). Fires right
  /// after the on_send hook for the same send; the ledger charged the
  /// attempt normally. Only fires with faults attached. The containment
  /// checker (check/byzantine_check.h) asserts `from` stays inside the
  /// plan's configured corruption set.
  virtual void on_byzantine(const Network&, NodeId /*from*/, EdgeId /*e*/,
                            bool /*forged*/, double /*arrival*/) {}
};

/// Simulation host: graph + processes + event queue + cost ledger.
class Network : public ProcessHost, private EngineBackend {
 public:
  using ProcessFactory = csca::ProcessFactory;
  using ProcessStore = PooledStore<Process>;

  /// Builds one process per node via factory. The delay model services
  /// every edge; seed drives all its randomness.
  Network(const Graph& g, const ProcessFactory& factory,
          std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);

  /// Hosts a pre-built (typically pooled — see sim/process_store.h)
  /// store of g.node_count() processes. The million-node entry point:
  /// no per-node allocation happens inside the engine.
  Network(const Graph& g, ProcessStore store,
          std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);

  /// Switches delay draws to the keyed entry point
  /// (DelayModel::delay_keyed with channel_delay_key(seed, channel,
  /// count)): each draw becomes a pure function of the run seed, the
  /// directed channel, and that channel's send count, independent of
  /// the global interleaving of sends. This is the discipline the
  /// sharded engine always uses, so a keyed Network is its sequential
  /// reference for random delay models. Default off: the shared-stream
  /// discipline below is pinned by the golden-ledger test and stays the
  /// behaviour of every existing single-threaded experiment. Must be
  /// called before the first step.
  void set_keyed_delays(bool on);

  /// Runs to quiescence (empty event queue) or until the next pending
  /// event lies beyond max_time. Returns the accumulated ledger. May be
  /// called again to resume a run cut short by max_time.
  ///
  /// Resume clock contract: events with arrival <= max_time are
  /// delivered (inclusive); every later event stays queued, untouched.
  /// When the run is cut short, now() is advanced to max_time — the
  /// budget slice consumes the whole interval — so interleaved budget
  /// slices observe a monotone clock and a resumed run delivers the
  /// exact same event sequence as an unbudgeted run would have. After
  /// quiescence, now() is the time of the last delivered event.
  RunStats run(double max_time = std::numeric_limits<double>::infinity());

  /// Delivers the single next event (calling on_start hooks first on the
  /// first step). Returns false when the queue is empty. Together with
  /// stats(), lets a driver interleave two protocol executions under a
  /// cost budget, the mechanism behind the paper's hybrid algorithms.
  bool step();

  /// True when no deliveries are pending.
  bool idle() const { return queue_.empty(); }

  /// The simulated clock (see run() for the budget-slice contract).
  double now() const { return now_; }

  /// Ledger accumulated so far (final after run() returns).
  const RunStats& stats() const override { return stats_; }

  /// Peak number of simultaneously pending deliveries so far.
  std::size_t peak_queue_depth() const { return queue_.peak_size(); }

  std::int64_t edge_message_count(EdgeId e) const override {
    require(e >= 0 && e < graph_->edge_count(), "edge id out of range");
    const auto i = static_cast<std::size_t>(e);
    return edge_messages_[0][i] + edge_messages_[1][i] +
           edge_messages_[2][i];
  }

  std::int64_t edge_message_count(EdgeId e, MsgClass cls) const override {
    require(e >= 0 && e < graph_->edge_count(), "edge id out of range");
    return edge_messages_[class_index(cls)][static_cast<std::size_t>(e)];
  }

  std::int64_t max_edge_message_count() const override;

  std::int64_t max_edge_message_count(MsgClass cls) const override;

  Process& process(NodeId v) override {
    graph_->check_node(v);
    return processes_.at(v);
  }

  /// Bytes of pooled per-node protocol state (see docs/scale.md).
  std::size_t process_state_bytes() const {
    return processes_.state_bytes();
  }

  const Graph& graph() const override { return *graph_; }
  bool finished(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)] >= 0;
  }
  double finish_time(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)];
  }
  bool all_finished() const override;

  double last_finish_time() const override;

  /// Attaches a passive observer (nullptr detaches). The observer is
  /// not owned and must outlive the network or be detached first; for
  /// complete bookkeeping it must be attached before the first step.
  void set_observer(InvariantObserver* obs) { observer_ = obs; }
  InvariantObserver* observer() const { return observer_; }

  /// Attaches a fault injector (nullptr detaches; not owned, must
  /// outlive the network). All fault decisions happen at send /
  /// schedule time — see fault/fault_injector.h — so the delivery loop
  /// is untouched. An *inactive* injector (zero rates, no events) is
  /// discarded here, keeping the no-faults hot path byte-identical
  /// whether or not a plan was attached. Must be called before the
  /// first step.
  void set_faults(const FaultInjector* f);
  const FaultInjector* faults() const { return faults_; }

  /// Recovery-billing mode: every send is billed to MsgClass::kRecovery
  /// regardless of the class named at the send site. This is how a
  /// re-executed protocol (control/restabilize.h) charges its entire
  /// traffic to the recovery side of the ledger without its send sites
  /// — whose explicit classes the COST-1 analyzer rule pins — knowing
  /// they are running inside a recovery pass. Must be set before the
  /// first step.
  void set_recovery_billing(bool on) {
    require(!started_,
            "recovery billing must be chosen before the first step");
    recovery_billing_ = on;
  }
  bool recovery_billing() const { return recovery_billing_; }

 private:
  // Pending deliveries are pooled Messages keyed by (arrival, send
  // sequence) — the seq tie-break makes the order total, so delivery
  // order is deterministic FIFO. The 32-bit sequence bounds a single
  // network at 2^32 - 1 sends+self-schedules over its lifetime
  // (enforced in engine_send / engine_schedule_self). Arrival time and
  // destination are not stored in the node: the time lives in the heap
  // key and the destination is recomputed from the stamped from/edge
  // metadata, keeping each pooled node to one cache line.

  static std::size_t class_index(MsgClass cls) {
    return cls == MsgClass::kAlgorithm ? 0
           : cls == MsgClass::kControl ? 1
                                       : 2;
  }

  double engine_now() const override { return now_; }
  const Graph& engine_graph() const override { return *graph_; }
  void engine_send(NodeId from, EdgeId e, Message m, MsgClass cls) override;
  // Cold continuation of engine_send when a fault injector is attached:
  // fate draw, loss checks at send and arrival time, phantom duplicate.
  void engine_send_faulty(NodeId from, EdgeId e, const Edge& edge,
                          std::size_t channel, Message m, MsgClass cls);
  void engine_schedule_self(NodeId v, double delay, Message m) override;
  void engine_finish(NodeId v) override;
  void ensure_started();
  // Pops and delivers the event whose key the caller just peeked.
  void deliver(HeapKey key);

  const Graph* graph_;
  ProcessStore processes_;
  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  std::uint64_t seed_;
  double now_ = 0;
  std::uint32_t seq_ = 0;
  EventHeap<Message> queue_;
  // last arrival time per directed edge (2 * edge + direction bit).
  std::vector<double> last_arrival_;
  // per-link message counts, indexed [class][edge].
  std::array<std::vector<std::int64_t>, kMsgClassCount> edge_messages_;
  std::vector<double> finish_time_;
  RunStats stats_;
  InvariantObserver* observer_ = nullptr;
  bool started_ = false;
  // Keyed-draw mode (set_keyed_delays): per-directed-channel send
  // counts, allocated on enable. Fault fates are keyed by the same
  // counts, so attaching an active injector also allocates them.
  bool keyed_delays_ = false;
  std::vector<std::uint64_t> channel_sends_;
  const FaultInjector* faults_ = nullptr;
  bool recovery_billing_ = false;
};

}  // namespace csca
