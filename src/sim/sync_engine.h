// The weighted synchronous engine (§4.1's simulation target).
//
// In a weighted synchronous network the delay on edge e is *exactly* w(e).
// This engine runs a SyncProcess per node under those semantics. It serves
// three purposes:
//   1. reference executions that synchronizer-driven asynchronous runs are
//      validated against (same outputs required),
//   2. the measurement of c_pi and t_pi, the synchronous protocol's own
//      complexity, which Lemma 4.8's amortized overheads are defined
//      against,
//   3. a home for synchronous algorithms (SPT_synch's Bellman-Ford).
//
// The engine is event driven: empty pulses are skipped, so running a
// protocol for D = n * W pulses costs only the work of its events. A
// process that needs to act at a pulse with no arrivals schedules a wakeup.
#pragma once

#include <functional>
#include <memory>
#include <queue>

#include "graph/graph.h"
#include "sim/message.h"
#include "sim/sync_process.h"

namespace csca {

class SyncEngine {
 public:
  using ProcessFactory = std::function<std::unique_ptr<SyncProcess>(NodeId)>;

  /// If enforce_in_synch, sends on an edge of weight w are only legal at
  /// pulses divisible by w (Def. 4.2); a violating protocol throws.
  SyncEngine(const Graph& g, const ProcessFactory& factory,
             bool enforce_in_synch = false);

  /// Runs until quiescence or until pulse > max_pulse. completion_time in
  /// the returned stats is the last pulse at which anything happened.
  RunStats run(std::int64_t max_pulse = (std::int64_t{1} << 56));

  SyncProcess& process(NodeId v) {
    graph_->check_node(v);
    return *processes_[static_cast<std::size_t>(v)];
  }

  template <typename T>
  T& process_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&process(v));
    require(p != nullptr, "process has unexpected concrete type");
    return *p;
  }

  const Graph& graph() const { return *graph_; }
  bool all_finished() const;

 private:
  class EngineContext final : public SyncContext {
   public:
    EngineContext(SyncEngine& eng, NodeId self) : eng_(&eng), self_(self) {}
    NodeId self() const override { return self_; }
    const Graph& graph() const override { return *eng_->graph_; }
    std::int64_t pulse() const override { return eng_->pulse_; }
    void send(EdgeId e, Message m) override {
      eng_->do_send(self_, e, std::move(m));
    }
    void schedule_wakeup(std::int64_t at_pulse) override {
      eng_->do_wakeup(self_, at_pulse);
    }
    void finish() override { eng_->do_finish(self_); }

   private:
    SyncEngine* eng_;
    NodeId self_;
  };

  struct Event {
    std::int64_t pulse;
    int kind;  // 0 = message delivery, 1 = wakeup (delivered after msgs)
    std::uint64_t seq;
    NodeId to;
    Message msg;
    bool operator>(const Event& o) const {
      return std::tie(pulse, kind, seq) > std::tie(o.pulse, o.kind, o.seq);
    }
  };

  void do_send(NodeId from, EdgeId e, Message m);
  void do_wakeup(NodeId v, std::int64_t at_pulse);
  void do_finish(NodeId v);

  const Graph* graph_;
  std::vector<std::unique_ptr<SyncProcess>> processes_;
  bool enforce_in_synch_;
  std::int64_t pulse_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<char> finished_;
  RunStats stats_;
  bool ran_ = false;
};

}  // namespace csca
