// The weighted synchronous engine (§4.1's simulation target).
//
// In a weighted synchronous network the delay on edge e is *exactly* w(e).
// This engine runs a SyncProcess per node under those semantics. It serves
// three purposes:
//   1. reference executions that synchronizer-driven asynchronous runs are
//      validated against (same outputs required),
//   2. the measurement of c_pi and t_pi, the synchronous protocol's own
//      complexity, which Lemma 4.8's amortized overheads are defined
//      against,
//   3. a home for synchronous algorithms (SPT_synch's Bellman-Ford).
//
// The engine is event driven: empty pulses are skipped, so running a
// protocol for D = n * W pulses costs only the work of its events. A
// process that needs to act at a pulse with no arrivals schedules a wakeup.
#pragma once

#include <functional>
#include <memory>

#include "graph/graph.h"
#include "sim/event_heap.h"
#include "sim/message.h"
#include "sim/process_store.h"
#include "sim/sync_process.h"

namespace csca {

class FaultInjector;

class SyncEngine {
 public:
  using ProcessFactory = std::function<std::unique_ptr<SyncProcess>(NodeId)>;
  using ProcessStore = PooledStore<SyncProcess>;

  /// If enforce_in_synch, sends on an edge of weight w are only legal at
  /// pulses divisible by w (Def. 4.2); a violating protocol throws.
  SyncEngine(const Graph& g, const ProcessFactory& factory,
             bool enforce_in_synch = false);

  /// Hosts a pre-built (typically pooled) store of g.node_count()
  /// processes; no per-node allocation inside the engine.
  SyncEngine(const Graph& g, ProcessStore store,
             bool enforce_in_synch = false);

  /// Runs until quiescence or until the next pending event lies beyond
  /// max_pulse. completion_time in the returned stats is the last pulse
  /// at which anything happened.
  ///
  /// Same resume contract as Network::run: events at pulses <= max_pulse
  /// are processed (inclusive); an over-budget event stays queued and is
  /// processed by a later run() call, so budgeted slices compose into
  /// exactly the unbudgeted execution. The hybrid drivers rely on this
  /// to charge a synchronous contestant one pulse budget at a time.
  RunStats run(std::int64_t max_pulse = (std::int64_t{1} << 56));

  /// True when no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Ledger accumulated so far (final once idle()).
  const RunStats& stats() const { return stats_; }

  /// Peak number of simultaneously pending events so far.
  std::size_t peak_queue_depth() const { return queue_.peak_size(); }

  SyncProcess& process(NodeId v) {
    graph_->check_node(v);
    return processes_.at(v);
  }

  /// Bytes of pooled per-node protocol state (see docs/scale.md).
  std::size_t process_state_bytes() const {
    return processes_.state_bytes();
  }

  template <typename T>
  T& process_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&process(v));
    require(p != nullptr, "process has unexpected concrete type");
    return *p;
  }

  const Graph& graph() const { return *graph_; }
  bool all_finished() const;

  /// Attaches a fault injector (nullptr detaches; not owned). Same
  /// contract as Network::set_faults: decisions at send/wakeup time in
  /// the pulse domain (a send at pulse p arrives at p + w, a duplicate
  /// at p + 2w), inactive injectors are discarded, and it must be
  /// called before the first step.
  void set_faults(const FaultInjector* f);

 private:
  class EngineContext final : public SyncContext {
   public:
    EngineContext(SyncEngine& eng, NodeId self) : eng_(&eng), self_(self) {}
    NodeId self() const override { return self_; }
    const Graph& graph() const override { return *eng_->graph_; }
    std::int64_t pulse() const override { return eng_->pulse_; }
    void send(EdgeId e, Message m, MsgClass cls) override {
      eng_->do_send(self_, e, std::move(m), cls);
    }
    void schedule_wakeup(std::int64_t at_pulse) override {
      eng_->do_wakeup(self_, at_pulse);
    }
    void finish() override { eng_->do_finish(self_); }

   private:
    SyncEngine* eng_;
    NodeId self_;
  };

  // Events are pooled Messages; everything else lives in the heap key:
  // t = pulse (exact for pulses below 2^53), aux = kind bit (0 =
  // message delivery, 1 = wakeup, delivered after messages) then a
  // 31-bit sequence — so messages precede wakeups at the same pulse and
  // the seq tie-break makes the order total/deterministic. Both bounds
  // are enforced where events are queued. The destination is
  // recomputed from the stamped from/edge metadata on delivery.
  static HeapKey event_key(std::int64_t pulse, int kind,
                           std::uint32_t seq) {
    return HeapKey{static_cast<double>(pulse),
                   (static_cast<std::uint32_t>(kind) << 31) | seq};
  }

  // Pulses must stay below 2^53 so their double image in the heap key
  // is exact, and the 31-bit sequence bounds one engine at 2^31 - 1
  // queued events over its lifetime.
  void check_event_bounds(std::int64_t pulse) const {
    require(pulse < (std::int64_t{1} << 53), "pulse too large for event key");
    require(seq_ < (std::uint32_t{1} << 31),
            "event sequence space exhausted");
  }

  void do_send(NodeId from, EdgeId e, Message m, MsgClass cls);
  void do_wakeup(NodeId v, std::int64_t at_pulse);
  void do_finish(NodeId v);
  void ensure_started();

  const Graph* graph_;
  ProcessStore processes_;
  bool enforce_in_synch_;
  std::int64_t pulse_ = 0;
  std::uint32_t seq_ = 0;
  EventHeap<Message> queue_;
  std::vector<char> finished_;
  RunStats stats_;
  bool started_ = false;
  const FaultInjector* faults_ = nullptr;
  // Per-directed-channel send counts keying fault fates; allocated by
  // set_faults (the pulse engine has no keyed-delay mode of its own).
  std::vector<std::uint64_t> channel_sends_;
};

}  // namespace csca
