// The event queue behind both simulation engines.
//
// A tiered timer queue around a shared arena of pooled event nodes. All
// tiers hold compact 16-byte entries — (time, aux, slot) where slot is
// a 32-bit index into the arena — so ordering work never touches the
// events themselves, and pop() moves the event *out* of its slot (no
// copy); freed slots go on a free list, so in steady state a run
// allocates nothing per event.
//
//   * run tier — entries below the current time horizon, sorted
//     descending once per sweep; pop is a compare plus pop_back, no
//     per-pop sifting, and consecutive pops walk the same cache lines.
//   * young tier — a small 4-ary indexed min-heap catching events
//     pushed *after* the sweep but scheduled before the horizon (e.g.
//     zero-delay self-deliveries). It stays tiny — a few thousand
//     entries — so its sifts run in L1/L2.
//   * far tier — an unsorted staging vector for events at or beyond
//     the horizon; pushing there is a plain append. When run and young
//     drain, one sweep partitions the staging vector against a new
//     horizon and sorts the slice below it into the run tier.
//
// The tiers are what make deep queues fast: a flood workload keeps
// 10^5+ events pending, but ordering work only ever happens on the
// slice inside the horizon (one streaming sort per sweep) instead of on
// a multi-MB heap with a dependent cache-miss chain per pop. The
// horizon width self-tunes (doubling/halving against a target slice
// size), which affects only *when* entries migrate between tiers —
// never the order they leave in.
//
// Ordering: entries leave in ascending (t, aux) order. t is the
// scheduled time; aux is a 32-bit tie-break the engines derive from a
// per-run sequence number (and, for the synchronous engine, an event
// kind bit), making the order total. The tiers partition strictly by
// time (run/young < horizon <= far), so min(run.back, young.top) is the
// global minimum and pop order equals that of any correct priority
// queue over the full key — run ledgers stay bit-identical across
// queue implementations (the golden-ledger test).
//
// All tiers and the arena persist across run() calls of the owning
// engine, so resumed / repeated runs reuse the same storage.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/require.h"

namespace csca {

/// Scheduling key: time plus a 32-bit tie-break, ordered
/// lexicographically. Engines must keep (t, aux) unique per pending
/// event so the pop order is total.
struct HeapKey {
  double t;
  std::uint32_t aux;

  friend bool operator<(const HeapKey& a, const HeapKey& b) {
    return a.t < b.t || (a.t == b.t && a.aux < b.aux);
  }
  friend bool operator==(const HeapKey& a, const HeapKey& b) {
    return a.t == b.t && a.aux == b.aux;
  }
};

template <typename Event>
class EventHeap {
 public:
  bool empty() const {
    return run_.empty() && young_.empty() && far_.empty();
  }
  std::size_t size() const {
    return run_.size() + young_.size() + far_.size();
  }

  /// High-water mark of size() over the heap's lifetime (peak number of
  /// simultaneously pending events; benches report it per workload).
  std::size_t peak_size() const { return peak_; }

  /// Number of arena slots ever allocated == peak concurrent events,
  /// since popped slots are recycled.
  std::size_t arena_slots() const { return arena_.size(); }

  void reserve(std::size_t n) {
    arena_.reserve(n);
    far_.reserve(n);
    free_.reserve(n);
  }

  /// Key of the earliest event. May migrate far-tier entries into the
  /// run tier first (hence non-const); the result is unaffected.
  HeapKey top_key() {
    const Entry& e = top_entry();
    return HeapKey{e.t, e.aux};
  }

  const Event& top() { return arena_[top_entry().slot]; }

  void push(HeapKey key, Event&& ev) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      arena_[slot] = std::move(ev);
    } else {
      require(arena_.size() < UINT32_MAX, "EventHeap arena full");
      slot = static_cast<std::uint32_t>(arena_.size());
      arena_.push_back(std::move(ev));
    }
    if (key.t < horizon_) {
      young_.push_back(Entry{key.t, key.aux, slot});
      sift_up(young_.size() - 1);
    } else {
      far_min_ = std::min(far_min_, key.t);
      far_.push_back(Entry{key.t, key.aux, slot});
    }
    peak_ = std::max(peak_, size());
  }

  /// Removes and returns the earliest event. The event is moved out of
  /// its arena slot and the slot is recycled.
  Event pop() {
    const bool from_young = top_is_young();
    const std::uint32_t slot =
        from_young ? young_.front().slot : run_.back().slot;
    Event out = std::move(arena_[slot]);
    free_.push_back(slot);
    if (from_young) {
      Entry last = young_.back();
      young_.pop_back();
      if (!young_.empty()) {
        young_[0] = last;
        sift_down(0);
      }
    } else {
      run_.pop_back();
    }
    // The next pop's arena slot is already known; start pulling it into
    // cache while the caller processes the current event.
    if (!run_.empty()) prefetch_slot(run_.back().slot);
    if (!young_.empty()) prefetch_slot(young_.front().slot);
    return out;
  }

 private:
  struct Entry {
    double t;
    std::uint32_t aux;
    std::uint32_t slot;
  };
  static_assert(sizeof(Entry) == 16, "heap entries should stay compact");

  static bool less(const Entry& a, const Entry& b) {
    return a.t < b.t || (a.t == b.t && a.aux < b.aux);
  }

  void prefetch_slot(std::uint32_t slot) const {
    const char* p = reinterpret_cast<const char*>(&arena_[slot]);
    __builtin_prefetch(p);
    if (sizeof(Event) > 64) __builtin_prefetch(p + 64);
  }

  /// True if the global minimum sits in the young heap rather than at
  /// the back of the run; refills the run from the far tier when both
  /// ordered tiers are empty. Keys are never equal across tiers (the
  /// aux component is unique), so strict < decides exactly.
  bool top_is_young() {
    require(!empty(), "EventHeap::top/pop on empty heap");
    if (run_.empty() && young_.empty()) sweep();
    if (young_.empty()) return false;
    if (run_.empty()) return true;
    return less(young_.front(), run_.back());
  }

  Entry& top_entry() {
    return top_is_young() ? young_.front() : run_.back();
  }

  /// Refills the empty run tier from the far tier: picks a new horizon
  /// just past the earliest staged event, moves every entry below it
  /// into the run and sorts that slice descending (so pops come off the
  /// back in key order). The horizon width adapts toward a slice of
  /// ~1/8 of the pending entries, capped so the slice stays a few
  /// hundred KB — small enough to sort in cache, large enough to
  /// amortize the O(far) partition scan.
  void sweep() {
    // far_min_ is maintained incrementally by push(), so one partition
    // pass suffices; it recomputes the min of what it keeps (and the
    // min of what it moves, which seeds the bucket sort).
    horizon_ = far_min_ + width_;
    far_min_ = std::numeric_limits<double>::infinity();
    double run_min = std::numeric_limits<double>::infinity();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < far_.size(); ++i) {
      const Entry e = far_[i];
      if (e.t < horizon_) {
        run_min = std::min(run_min, e.t);
        run_.push_back(e);
      } else {
        far_min_ = std::min(far_min_, e.t);
        far_[kept] = e;
        ++kept;
      }
    }
    far_.resize(kept);
    sort_run_descending(run_min);
    const std::size_t target = std::clamp<std::size_t>(
        (run_.size() + far_.size()) / 8, 1024, 32768);
    if (run_.size() > 2 * target) {
      width_ *= 0.5;
    } else if (run_.size() < target / 2) {
      width_ *= 2.0;
    }
  }

  /// Sorts the freshly refilled run slice descending. Large slices are
  /// first scattered into time-range buckets — the bucket index is a
  /// monotone function of t, so bucket order is consistent with key
  /// order and the comparison sort only ever runs inside small buckets.
  /// The result is the exact (t, aux) order a full sort would produce;
  /// bucketing merely replaces most of its compares with two linear
  /// passes.
  void sort_run_descending(double run_min) {
    const auto desc = [](const Entry& a, const Entry& b) {
      return less(b, a);
    };
    const std::size_t n = run_.size();
    const double span = horizon_ - run_min;
    if (n < 4096 || !(span > 0)) {
      std::sort(run_.begin(), run_.end(), desc);
      return;
    }
    const std::size_t buckets = std::min<std::size_t>(n / 8, 1u << 16);
    const double scale = static_cast<double>(buckets) / span;
    // Bucket 0 holds the latest times so the slice comes out
    // back-to-front ready (pops come off the back).
    const auto bucket_of = [&](double t) {
      const auto b = static_cast<std::size_t>((t - run_min) * scale);
      return buckets - 1 - std::min(b, buckets - 1);
    };
    counts_.assign(buckets + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts_[bucket_of(run_[i].t) + 1];
    }
    for (std::size_t b = 1; b <= buckets; ++b) counts_[b] += counts_[b - 1];
    scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch_[counts_[bucket_of(run_[i].t)]++] = run_[i];
    }
    run_.swap(scratch_);
    // counts_[b] now marks the end of bucket b; sort each bucket.
    std::size_t begin = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t end = counts_[b];
      if (end - begin > 1) {
        std::sort(run_.begin() + static_cast<std::ptrdiff_t>(begin),
                  run_.begin() + static_cast<std::ptrdiff_t>(end), desc);
      }
      begin = end;
    }
  }

  // Children of young-heap position i live at 4i+1 .. 4i+4.
  void sift_up(std::size_t i) {
    const Entry moving = young_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!less(moving, young_[parent])) break;
      young_[i] = young_[parent];
      i = parent;
    }
    young_[i] = moving;
  }

  void sift_down(std::size_t i) {
    const Entry moving = young_[i];
    const std::size_t n = young_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (less(young_[c], young_[best])) best = c;
      }
      if (!less(young_[best], moving)) break;
      young_[i] = young_[best];
      i = best;
    }
    young_[i] = moving;
  }

  std::vector<Event> arena_;         // pooled event nodes (all tiers)
  std::vector<std::uint32_t> free_;  // recycled arena slots
  std::vector<Entry> run_;           // below horizon, sorted descending
  std::vector<Entry> young_;         // below horizon, pushed post-sweep
  std::vector<Entry> far_;           // at/beyond horizon, unsorted
  // Events with time < horizon_ go to run/young; the rest are staged.
  // Starts at -inf so the first sweep sets it from real data.
  double horizon_ = -std::numeric_limits<double>::infinity();
  // Min time in far_, maintained by push() and sweep().
  double far_min_ = std::numeric_limits<double>::infinity();
  double width_ = 1.0;  // adaptive horizon advance per sweep
  std::vector<Entry> scratch_;        // bucket-sort scatter buffer
  std::vector<std::size_t> counts_;   // bucket-sort offsets
  std::size_t peak_ = 0;
};

}  // namespace csca
