#include "sim/network.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace csca {

Network::Network(const Graph& g, const ProcessFactory& factory,
                 std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : Network(g, ProcessStore::from_factory(g.node_count(), factory),
              std::move(delay), seed) {}

Network::Network(const Graph& g, ProcessStore store,
                 std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : graph_(&g),
      processes_(std::move(store)),
      delay_(std::move(delay)),
      rng_(seed),
      seed_(seed),
      last_arrival_(static_cast<std::size_t>(2 * g.edge_count()), 0.0),
      edge_messages_{
          std::vector<std::int64_t>(static_cast<std::size_t>(g.edge_count()), 0),
          std::vector<std::int64_t>(static_cast<std::size_t>(g.edge_count()), 0),
          std::vector<std::int64_t>(static_cast<std::size_t>(g.edge_count()), 0)},
      finish_time_(static_cast<std::size_t>(g.node_count()), -1.0) {
  require(delay_ != nullptr, "delay model must not be null");
  require(processes_.size() == g.node_count(),
          "process store size must match the node count");
  // Pre-size the tiered queue from the topology: wavefront workloads
  // hold O(n + m) deliveries in flight at peak, and million-event runs
  // should not pay repeated far-tier regrowth to discover that.
  queue_.reserve(static_cast<std::size_t>(g.node_count()) +
                 static_cast<std::size_t>(g.edge_count()));
}

void Network::set_keyed_delays(bool on) {
  require(!started_,
          "keyed-delay mode must be chosen before the first step");
  keyed_delays_ = on;
  if (on && channel_sends_.empty()) {
    channel_sends_.assign(
        static_cast<std::size_t>(2 * graph_->edge_count()), 0);
  }
}

void Network::engine_send(NodeId from, EdgeId e, Message m, MsgClass cls) {
  // Recovery passes re-bill everything the re-executed protocol sends
  // (see set_recovery_billing); the remap happens before any counter is
  // touched so the per-class ledgers stay conserved.
  if (recovery_billing_) cls = MsgClass::kRecovery;
  const Edge& edge = graph_->edge(e);
  require(edge.u == from || edge.v == from,
          "process may only send on its own incident edges");
  // FIFO per directed edge: never deliver before an earlier send on the
  // same channel.
  const std::size_t channel =
      static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
  if (faults_) {
    engine_send_faulty(from, e, edge, channel, std::move(m), cls);
    return;
  }
  const double d =
      keyed_delays_
          ? delay_->delay_keyed(
                e, edge.w,
                channel_delay_key(seed_, channel, channel_sends_[channel]++))
          : delay_->delay_on(e, edge.w, rng_);
  require(d >= 0.0 && d <= static_cast<double>(edge.w),
          "delay model produced delay outside [0, w(e)]");
  double arrival = std::max(now_ + d, last_arrival_[channel]);
  last_arrival_[channel] = arrival;

  m.from = from;
  m.edge = e;
  require(seq_ != UINT32_MAX, "event sequence space exhausted");
  queue_.push(HeapKey{arrival, seq_++}, std::move(m));
  ++edge_messages_[class_index(cls)][static_cast<std::size_t>(e)];

  if (cls == MsgClass::kAlgorithm) {
    ++stats_.algorithm_messages;
    stats_.algorithm_cost += edge.w;
  } else if (cls == MsgClass::kControl) {
    ++stats_.control_messages;
    stats_.control_cost += edge.w;
  } else {
    ++stats_.recovery_messages;
    stats_.recovery_cost += edge.w;
  }
  if (observer_) observer_->on_send(*this, from, e, cls, d, arrival);
}

void Network::engine_send_faulty(NodeId from, EdgeId e, const Edge& edge,
                                 std::size_t channel, Message m,
                                 MsgClass cls) {
  // Crash-stop belt-and-braces: a crashed node never runs another
  // handler, but nothing it emits at its crash instant may leave either.
  if (faults_->crashed(from, now_)) return;
  // Fault fates are keyed by the same per-channel send count as keyed
  // delay draws, so the sharded engine draws the identical fate for the
  // identical logical send (set_faults allocates the counters even in
  // unkeyed mode).
  const std::uint64_t count = channel_sends_[channel]++;
  // Transmission attempts are charged whether or not the message
  // survives the channel: the sender paid for the send (see
  // docs/faults.md).
  const auto charge = [&] {
    ++edge_messages_[class_index(cls)][static_cast<std::size_t>(e)];
    if (cls == MsgClass::kAlgorithm) {
      ++stats_.algorithm_messages;
      stats_.algorithm_cost += edge.w;
    } else if (cls == MsgClass::kControl) {
      ++stats_.control_messages;
      stats_.control_cost += edge.w;
    } else {
      ++stats_.recovery_messages;
      stats_.recovery_cost += edge.w;
    }
  };
  const FaultInjector::SendFate fate = faults_->send_fate(channel, count);
  if (fate.drop || faults_->link_down(e, now_)) {
    charge();
    if (observer_) {
      observer_->on_drop(*this, from, e, cls,
                         fate.drop ? FaultDropReason::kChannelDrop
                                   : FaultDropReason::kLinkDown);
    }
    return;
  }
  const double d =
      keyed_delays_
          ? delay_->delay_keyed(e, edge.w,
                                channel_delay_key(seed_, channel, count))
          : delay_->delay_on(e, edge.w, rng_);
  require(d >= 0.0 && d <= static_cast<double>(edge.w),
          "delay model produced delay outside [0, w(e)]");
  const double arrival = std::max(now_ + d, last_arrival_[channel]);
  const NodeId to = graph_->other(e, from);
  // Lost in transit: the link goes down before the message lands, or
  // the receiver has crash-stopped by then. The FIFO clamp is only
  // committed by messages that are actually delivered.
  if (faults_->link_down(e, arrival) || faults_->crashed(to, arrival)) {
    charge();
    if (observer_) {
      observer_->on_drop(*this, from, e, cls,
                         faults_->link_down(e, arrival)
                             ? FaultDropReason::kLinkDown
                             : FaultDropReason::kReceiverCrashed);
    }
    return;
  }
  last_arrival_[channel] = arrival;
  m.from = from;
  m.edge = e;
  // Garbling corrupts the delivered copy only; the ledger charge and
  // the FIFO clamp are those of a normal send (the attempt looked
  // healthy to the sender).
  if (fate.garble) faults_->garble(channel, count, m);
  // Byzantine sender corruption rides its own keyed draw stream and is
  // applied before the duplicate copy splits off, so a duplicated
  // equivocation delivers two identically-corrupted copies — the same
  // order every engine follows.
  auto byz = FaultInjector::ByzantineFate::kNone;
  if (faults_->byzantine(from)) {
    byz = faults_->byzantine_fate(channel, count);
    if (byz == FaultInjector::ByzantineFate::kEquivocate) {
      faults_->equivocate(channel, count, m);
    } else if (byz == FaultInjector::ByzantineFate::kForge) {
      faults_->forge(channel, count, m);
    }
  }
  Message dup;
  if (fate.duplicate) dup = m;
  require(seq_ != UINT32_MAX, "event sequence space exhausted");
  queue_.push(HeapKey{arrival, seq_++}, std::move(m));
  charge();
  if (observer_) {
    observer_->on_send(*this, from, e, cls, d, arrival);
    if (fate.garble) observer_->on_garble(*this, from, e, arrival);
    if (byz != FaultInjector::ByzantineFate::kNone) {
      observer_->on_byzantine(*this, from, e,
                              byz == FaultInjector::ByzantineFate::kForge,
                              arrival);
    }
  }
  if (fate.duplicate) {
    // Phantom copy with its own keyed delay draw; clamped behind the
    // original (the clamp was just committed) but never committing the
    // clamp itself, and never charged: duplication is channel noise,
    // not a protocol send. It does consume the next event sequence
    // number, exactly like the sharded engine's next send index.
    const double d2 =
        keyed_delays_
            ? delay_->delay_keyed(e, edge.w,
                                  faults_->dup_delay_key(channel, count))
            : delay_->delay_on(e, edge.w, rng_);
    require(d2 >= 0.0 && d2 <= static_cast<double>(edge.w),
            "delay model produced delay outside [0, w(e)]");
    const double arr2 = std::max(now_ + d2, last_arrival_[channel]);
    if (!faults_->link_down(e, arr2) && !faults_->crashed(to, arr2)) {
      require(seq_ != UINT32_MAX, "event sequence space exhausted");
      queue_.push(HeapKey{arr2, seq_++}, std::move(dup));
      if (observer_) observer_->on_duplicate(*this, from, e, arr2);
    }
  }
}

void Network::set_faults(const FaultInjector* f) {
  require(!started_, "faults must be attached before the first step");
  faults_ = (f != nullptr && f->active()) ? f : nullptr;
  // Re-validate against *this* network's graph: the injector validated
  // at construction, but attaching it to a different topology would
  // silently mis-target every id-keyed event.
  if (faults_ != nullptr) faults_->plan().validate(*graph_);
  if (faults_ != nullptr && channel_sends_.empty()) {
    channel_sends_.assign(static_cast<std::size_t>(2 * graph_->edge_count()),
                          0);
  }
}

void Network::engine_schedule_self(NodeId v, double delay, Message m) {
  require(delay >= 0.0, "self-delivery delay must be non-negative");
  // A timer that would fire at or after its owner's crash time dies
  // with the node: it is silently never queued (so crashed nodes hold
  // no pending retransmit timers and runs quiesce instead of hanging).
  if (faults_ != nullptr && faults_->crashed(v, now_ + delay)) return;
  m.from = v;
  m.edge = kNoEdge;
  require(seq_ != UINT32_MAX, "event sequence space exhausted");
  queue_.push(HeapKey{now_ + delay, seq_++}, std::move(m));
  if (observer_) observer_->on_self_schedule(*this, v, delay);
}

void Network::engine_finish(NodeId v) {
  double& t = finish_time_[static_cast<std::size_t>(v)];
  if (t < 0) {
    t = now_;
    if (observer_) observer_->on_finish(*this, v, now_);
  }
}

void Network::ensure_started() {
  if (started_) return;
  started_ = true;
  now_ = 0;
  for (NodeId v = 0; v < graph_->node_count(); ++v) {
    // A node crashed at time 0 never participates at all.
    if (faults_ != nullptr && faults_->crashed(v, 0.0)) continue;
    Context ctx = make_context(v);
    processes_.at(v).on_start(ctx);
  }
}

bool Network::step() {
  ensure_started();
  if (queue_.empty()) return false;
  deliver(queue_.top_key());
  return true;
}

void Network::deliver(HeapKey key) {
  now_ = key.t;
  const Message msg = queue_.pop();
  // The delivery target is not stored with the pooled node; an edge
  // message goes to the endpoint opposite its stamped sender, a
  // self-delivery back to the sender itself.
  const NodeId to =
      msg.edge == kNoEdge ? msg.from : graph_->other(msg.edge, msg.from);
  // completion_time is the paper's time measure: the clock of the last
  // *edge* delivery. Free self-deliveries (deferred local computation)
  // advance the clock but must not inflate the measured time.
  if (msg.edge != kNoEdge) stats_.completion_time = now_;
  ++stats_.events;
  if (observer_) observer_->on_deliver(*this, to, msg, now_);
  Context ctx = make_context(to);
  processes_.at(to).on_message(ctx, msg);
}

RunStats Network::run(double max_time) {
  ensure_started();
  // The loop peeks once per event: the key that passes the budget test
  // is handed straight to deliver() instead of being recomputed.
  while (!queue_.empty()) {
    const HeapKey key = queue_.top_key();
    if (key.t > max_time) break;
    deliver(key);
  }
  // Cut short by the budget: the slice consumed the full interval, so
  // advance the clock to the boundary (see the contract in network.h).
  // Events already queued beyond max_time stay queued for the resume.
  if (!queue_.empty() && now_ < max_time) now_ = max_time;
  return stats_;
}

bool Network::all_finished() const {
  return std::all_of(finish_time_.begin(), finish_time_.end(),
                     [](double t) { return t >= 0; });
}

std::int64_t Network::max_edge_message_count() const {
  std::int64_t best = 0;
  for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
    best = std::max(best, edge_message_count(e));
  }
  return best;
}

std::int64_t Network::max_edge_message_count(MsgClass cls) const {
  const auto& counts = edge_messages_[class_index(cls)];
  if (counts.empty()) return 0;
  return *std::max_element(counts.begin(), counts.end());
}

double Network::last_finish_time() const {
  require(all_finished(), "not all nodes have finished");
  return *std::max_element(finish_time_.begin(), finish_time_.end());
}

}  // namespace csca
