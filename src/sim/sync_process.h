// The synchronous-protocol abstraction shared by the weighted synchronous
// engine (sim/sync_engine.h) and the network synchronizers (§4).
//
// A SyncProcess sees the world in pulses: a message sent on edge e at
// pulse p arrives at pulse p + w(e) (the weighted synchronous model). The
// same protocol object can run on the SyncEngine (reference semantics,
// used to measure c_pi and t_pi) or on an asynchronous network under a
// synchronizer (which synthesizes these calls) — Lemma 4.4's correctness
// statement is checked in tests by comparing the two executions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "graph/graph.h"
#include "sim/message.h"

namespace csca {

/// Abstract window onto a (real or simulated) synchronous network.
class SyncContext {
 public:
  virtual ~SyncContext() = default;

  virtual NodeId self() const = 0;
  virtual const Graph& graph() const = 0;
  /// The current pulse number.
  virtual std::int64_t pulse() const = 0;

  /// Sends m over incident edge e; it arrives at pulse() + w(e). Under
  /// the in-synch discipline (Def. 4.2), pulse() must be divisible by
  /// w(e). `cls` picks the ledger side the transmission is billed to:
  /// protocol traffic is kAlgorithm, wrapper overhead (the pulse-domain
  /// ARQ layer's retransmits and acks) is kControl.
  virtual void send(EdgeId e, Message m, MsgClass cls) = 0;

  /// Requests an on_wakeup call at the given future pulse (> pulse()).
  virtual void schedule_wakeup(std::int64_t at_pulse) = 0;

  virtual void finish() = 0;

  std::span<const EdgeId> incident() const {
    return graph().incident(self());
  }
  NodeId neighbor(EdgeId e) const { return graph().other(e, self()); }
  Weight edge_weight(EdgeId e) const { return graph().weight(e); }
};

/// A synchronous per-node protocol.
class SyncProcess {
 public:
  virtual ~SyncProcess() = default;

  /// Invoked once at pulse 0.
  virtual void on_start(SyncContext&) {}

  /// Invoked at the arrival pulse of each message (before any wakeup at
  /// that pulse).
  virtual void on_message(SyncContext&, const Message& m) = 0;

  /// Invoked at pulses requested via schedule_wakeup.
  virtual void on_wakeup(SyncContext&) {}

  /// Deep copy for optimistic-engine state saving: synchronizer hosts
  /// running under the Time Warp backend (par/timewarp_engine.h) clone
  /// their hosted protocol when they snapshot themselves. Default:
  /// unsupported (null) — the host's save then fails with a clear
  /// message instead of slicing the hosted state.
  virtual std::unique_ptr<SyncProcess> clone_state() const {
    return nullptr;
  }
};

}  // namespace csca
