#include "sim/delay.h"

namespace csca {

UniformDelay::UniformDelay(double lo_frac, double hi_frac)
    : lo_frac_(lo_frac), hi_frac_(hi_frac) {
  require(lo_frac >= 0.0 && lo_frac <= hi_frac && hi_frac <= 1.0,
          "delay fractions must satisfy 0 <= lo <= hi <= 1");
}

double UniformDelay::delay(Weight w, Rng& rng) {
  const double wd = static_cast<double>(w);
  return rng.uniform_real(lo_frac_ * wd, hi_frac_ * wd);
}

TwoPointDelay::TwoPointDelay(double slow_prob) : slow_prob_(slow_prob) {
  require(slow_prob >= 0.0 && slow_prob <= 1.0,
          "slow probability must be in [0, 1]");
}

double TwoPointDelay::delay(Weight w, Rng& rng) {
  const double wd = static_cast<double>(w);
  return rng.chance(slow_prob_) ? wd : wd * 0.001;
}

std::unique_ptr<DelayModel> make_exact_delay() {
  return std::make_unique<ExactDelay>();
}

std::unique_ptr<DelayModel> make_uniform_delay(double lo_frac,
                                               double hi_frac) {
  return std::make_unique<UniformDelay>(lo_frac, hi_frac);
}

std::unique_ptr<DelayModel> make_two_point_delay(double slow_prob) {
  return std::make_unique<TwoPointDelay>(slow_prob);
}

}  // namespace csca
