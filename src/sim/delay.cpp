#include "sim/delay.h"

namespace csca {

double DelayModel::delay_keyed(EdgeId, Weight, std::uint64_t) const {
  require(false,
          "delay model does not implement keyed draws; the sharded "
          "engine needs delay_keyed to make schedules independent of "
          "send interleaving");
  return 0.0;  // unreachable
}

UniformDelay::UniformDelay(double lo_frac, double hi_frac)
    : lo_frac_(lo_frac), hi_frac_(hi_frac) {
  require(lo_frac >= 0.0 && lo_frac <= hi_frac && hi_frac <= 1.0,
          "delay fractions must satisfy 0 <= lo <= hi <= 1");
}

double UniformDelay::delay(Weight w, Rng& rng) {
  const double wd = static_cast<double>(w);
  return rng.uniform_real(lo_frac_ * wd, hi_frac_ * wd);
}

TwoPointDelay::TwoPointDelay(double slow_prob) : slow_prob_(slow_prob) {
  require(slow_prob >= 0.0 && slow_prob <= 1.0,
          "slow probability must be in [0, 1]");
}

double TwoPointDelay::delay(Weight w, Rng& rng) {
  const double wd = static_cast<double>(w);
  return rng.chance(slow_prob_) ? wd : wd * kFastFraction;
}

double EdgeFractionDelay::delay(Weight, Rng&) {
  require(false,
          "EdgeFractionDelay assigns delays per edge; the caller must "
          "use delay_on(e, w, rng)");
  return 0.0;  // unreachable
}

double EdgeFractionDelay::fraction(EdgeId e) const {
  const std::uint64_t h =
      mix64(salt_ ^ (static_cast<std::uint64_t>(e) + 1));
  // 53 high bits -> [0, 1); the weight multiply keeps it within [0, w].
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double EdgeFractionDelay::delay_on(EdgeId e, Weight w, Rng&) {
  return fraction(e) * static_cast<double>(w);
}

std::unique_ptr<DelayModel> make_exact_delay() {
  return std::make_unique<ExactDelay>();
}

std::unique_ptr<DelayModel> make_uniform_delay(double lo_frac,
                                               double hi_frac) {
  return std::make_unique<UniformDelay>(lo_frac, hi_frac);
}

std::unique_ptr<DelayModel> make_two_point_delay(double slow_prob) {
  return std::make_unique<TwoPointDelay>(slow_prob);
}

std::unique_ptr<DelayModel> make_edge_fraction_delay(std::uint64_t salt) {
  return std::make_unique<EdgeFractionDelay>(salt);
}

}  // namespace csca
