// Edge-delay models for the asynchronous engine.
//
// The paper's model (§1.3): the delay on edge e varies between 0 and w(e).
// ExactDelay pins every delay to w(e) (the adversarial maximum; time
// complexity is measured against this model). UniformDelay samples a
// uniform fraction of w(e), exercising genuinely asynchronous schedules.
// EdgeFractionDelay fixes a deterministic per-edge fraction, giving the
// schedule-exploration checker (check/schedule_check.h) reproducible
// adversaries that do not depend on the order delays are drawn in.
#pragma once

#include <memory>

#include "graph/graph.h"
#include "util/rng.h"

namespace csca {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay, in time units, for one message over an edge of weight w.
  /// Must return a value in [0, w].
  virtual double delay(Weight w, Rng& rng) = 0;

  /// Engine entry point: delay for one message over edge e of weight w.
  /// The default ignores the edge identity; per-edge adversaries
  /// (EdgeFractionDelay) override this instead of delay(). Concrete
  /// weight-only models also override it (forwarding to their own
  /// sampler) purely to skip the double virtual dispatch on the
  /// engine's send path.
  virtual double delay_on(EdgeId /*e*/, Weight w, Rng& rng) {
    return delay(w, rng);
  }
};

/// delay(e) == w(e): the worst case permitted by the model, and also the
/// behaviour of the paper's weighted *synchronous* network.
class ExactDelay final : public DelayModel {
 public:
  double delay(Weight w, Rng&) override {
    return static_cast<double>(w);
  }
  double delay_on(EdgeId, Weight w, Rng&) override {
    return static_cast<double>(w);
  }
};

/// delay(e) uniform in [lo_frac * w(e), hi_frac * w(e)].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double lo_frac, double hi_frac);
  double delay(Weight w, Rng& rng) override;
  double delay_on(EdgeId, Weight w, Rng& rng) override {
    return delay(w, rng);
  }

 private:
  double lo_frac_;
  double hi_frac_;
};

/// Two-point adversary: each message independently either crawls at the
/// full w(e) bound (probability slow_prob) or arrives almost instantly.
/// Maximizes reordering across different edges — the stress case for
/// protocols whose correctness argument leans on "usually similar"
/// delays (GHS merges, hybrid races, strip relaxation).
class TwoPointDelay final : public DelayModel {
 public:
  explicit TwoPointDelay(double slow_prob);
  double delay(Weight w, Rng& rng) override;
  double delay_on(EdgeId, Weight w, Rng& rng) override {
    return delay(w, rng);
  }

 private:
  double slow_prob_;
};

/// Deterministic per-edge adversary: edge e always delays by
/// fraction(e) * w(e), where fraction(e) in [0, 1] is a fixed hash of
/// (salt, e). Unlike the random models, the schedule it induces is a
/// pure function of the salt and the topology — independent of the
/// order sends happen in and of the network seed — so a divergence it
/// exposes reproduces exactly from the reported salt. Different salts
/// give unrelated delay landscapes (fast/slow edge mixtures), the
/// "fixed but arbitrary" delay assignments the paper's §1.3 correctness
/// quantifier ranges over.
class EdgeFractionDelay final : public DelayModel {
 public:
  explicit EdgeFractionDelay(std::uint64_t salt) : salt_(salt) {}

  /// Not usable without the edge identity; the engine calls delay_on.
  double delay(Weight, Rng&) override;
  double delay_on(EdgeId e, Weight w, Rng&) override;

  /// The fixed fraction assigned to edge e (exposed for tests).
  double fraction(EdgeId e) const;

 private:
  std::uint64_t salt_;
};

std::unique_ptr<DelayModel> make_exact_delay();
std::unique_ptr<DelayModel> make_uniform_delay(double lo_frac,
                                               double hi_frac);
std::unique_ptr<DelayModel> make_two_point_delay(double slow_prob);
std::unique_ptr<DelayModel> make_edge_fraction_delay(std::uint64_t salt);

}  // namespace csca
