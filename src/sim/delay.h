// Edge-delay models for the asynchronous engine.
//
// The paper's model (§1.3): the delay on edge e varies between 0 and w(e).
// ExactDelay pins every delay to w(e) (the adversarial maximum; time
// complexity is measured against this model). UniformDelay samples a
// uniform fraction of w(e), exercising genuinely asynchronous schedules.
#pragma once

#include <memory>

#include "graph/graph.h"
#include "util/rng.h"

namespace csca {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay, in time units, for one message over an edge of weight w.
  /// Must return a value in [0, w].
  virtual double delay(Weight w, Rng& rng) = 0;
};

/// delay(e) == w(e): the worst case permitted by the model, and also the
/// behaviour of the paper's weighted *synchronous* network.
class ExactDelay final : public DelayModel {
 public:
  double delay(Weight w, Rng&) override {
    return static_cast<double>(w);
  }
};

/// delay(e) uniform in [lo_frac * w(e), hi_frac * w(e)].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double lo_frac, double hi_frac);
  double delay(Weight w, Rng& rng) override;

 private:
  double lo_frac_;
  double hi_frac_;
};

/// Two-point adversary: each message independently either crawls at the
/// full w(e) bound (probability slow_prob) or arrives almost instantly.
/// Maximizes reordering across different edges — the stress case for
/// protocols whose correctness argument leans on "usually similar"
/// delays (GHS merges, hybrid races, strip relaxation).
class TwoPointDelay final : public DelayModel {
 public:
  explicit TwoPointDelay(double slow_prob);
  double delay(Weight w, Rng& rng) override;

 private:
  double slow_prob_;
};

std::unique_ptr<DelayModel> make_exact_delay();
std::unique_ptr<DelayModel> make_uniform_delay(double lo_frac,
                                               double hi_frac);
std::unique_ptr<DelayModel> make_two_point_delay(double slow_prob);

}  // namespace csca
