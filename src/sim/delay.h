// Edge-delay models for the asynchronous engine.
//
// The paper's model (§1.3): the delay on edge e varies between 0 and w(e).
// ExactDelay pins every delay to w(e) (the adversarial maximum; time
// complexity is measured against this model). UniformDelay samples a
// uniform fraction of w(e), exercising genuinely asynchronous schedules.
// EdgeFractionDelay fixes a deterministic per-edge fraction, giving the
// schedule-exploration checker (check/schedule_check.h) reproducible
// adversaries that do not depend on the order delays are drawn in.
#pragma once

#include <memory>

#include "graph/graph.h"
#include "util/rng.h"

namespace csca {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay, in time units, for one message over an edge of weight w.
  /// Must return a value in [0, w].
  virtual double delay(Weight w, Rng& rng) = 0;

  /// Engine entry point: delay for one message over edge e of weight w.
  /// The default ignores the edge identity; per-edge adversaries
  /// (EdgeFractionDelay) override this instead of delay(). Concrete
  /// weight-only models also override it (forwarding to their own
  /// sampler) purely to skip the double virtual dispatch on the
  /// engine's send path.
  virtual double delay_on(EdgeId /*e*/, Weight w, Rng& rng) {
    return delay(w, rng);
  }

  /// Keyed draw: the delay for the message whose 64-bit key this is.
  /// Unlike delay_on, the result is a pure function of (e, w, key) —
  /// independent of how many draws other edges made before this one —
  /// which is what makes random schedules reproducible across engines
  /// that interleave sends differently (the sharded engine draws only
  /// through this entry point, keying by per-channel send counts; see
  /// channel_delay_key). Must return a value in [min_delay(e, w), w].
  /// The base implementation rejects: models opt in explicitly so a
  /// silently-unkeyed model cannot masquerade as schedule-stable.
  virtual double delay_keyed(EdgeId e, Weight w, std::uint64_t key) const;

  /// A lower bound on every delay this model can produce on edge e
  /// (through either entry point). The conservative parallel engine
  /// uses it as the per-boundary-edge lookahead: a message crossing e
  /// arrives at least min_delay after it was sent, so a shard knows how
  /// far it may safely advance past its neighbors. 0 is always sound;
  /// tighter bounds buy larger safe windows.
  virtual double min_delay(EdgeId /*e*/, Weight /*w*/) const { return 0.0; }
};

/// Derivation key for the keyed draw of send number `count` (0-based)
/// on directed channel `channel` (2 * edge + direction) of the run
/// seeded with `seed`. Two splitmix64 derivations: seed -> channel
/// stream -> per-send key, so channels are mutually independent and
/// successive sends on one channel are decorrelated.
inline std::uint64_t channel_delay_key(std::uint64_t seed,
                                       std::uint64_t channel,
                                       std::uint64_t count) {
  return derive_stream_seed(derive_stream_seed(seed, channel), count);
}

/// delay(e) == w(e): the worst case permitted by the model, and also the
/// behaviour of the paper's weighted *synchronous* network.
class ExactDelay final : public DelayModel {
 public:
  double delay(Weight w, Rng&) override {
    return static_cast<double>(w);
  }
  double delay_on(EdgeId, Weight w, Rng&) override {
    return static_cast<double>(w);
  }
  double delay_keyed(EdgeId, Weight w, std::uint64_t) const override {
    return static_cast<double>(w);
  }
  double min_delay(EdgeId, Weight w) const override {
    return static_cast<double>(w);
  }
};

/// delay(e) uniform in [lo_frac * w(e), hi_frac * w(e)].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double lo_frac, double hi_frac);
  double delay(Weight w, Rng& rng) override;
  double delay_on(EdgeId, Weight w, Rng& rng) override {
    return delay(w, rng);
  }
  double delay_keyed(EdgeId, Weight w, std::uint64_t key) const override {
    const double wd = static_cast<double>(w);
    return lo_frac_ * wd + key_to_unit(key) * (hi_frac_ - lo_frac_) * wd;
  }
  double min_delay(EdgeId, Weight w) const override {
    return lo_frac_ * static_cast<double>(w);
  }

 private:
  double lo_frac_;
  double hi_frac_;
};

/// Two-point adversary: each message independently either crawls at the
/// full w(e) bound (probability slow_prob) or arrives almost instantly.
/// Maximizes reordering across different edges — the stress case for
/// protocols whose correctness argument leans on "usually similar"
/// delays (GHS merges, hybrid races, strip relaxation).
class TwoPointDelay final : public DelayModel {
 public:
  static constexpr double kFastFraction = 0.001;

  explicit TwoPointDelay(double slow_prob);
  double delay(Weight w, Rng& rng) override;
  double delay_on(EdgeId, Weight w, Rng& rng) override {
    return delay(w, rng);
  }
  double delay_keyed(EdgeId, Weight w, std::uint64_t key) const override {
    const double wd = static_cast<double>(w);
    return key_to_unit(key) < slow_prob_ ? wd : wd * kFastFraction;
  }
  double min_delay(EdgeId, Weight w) const override {
    return static_cast<double>(w) * kFastFraction;
  }

 private:
  double slow_prob_;
};

/// Deterministic per-edge adversary: edge e always delays by
/// fraction(e) * w(e), where fraction(e) in [0, 1] is a fixed hash of
/// (salt, e). Unlike the random models, the schedule it induces is a
/// pure function of the salt and the topology — independent of the
/// order sends happen in and of the network seed — so a divergence it
/// exposes reproduces exactly from the reported salt. Different salts
/// give unrelated delay landscapes (fast/slow edge mixtures), the
/// "fixed but arbitrary" delay assignments the paper's §1.3 correctness
/// quantifier ranges over.
class EdgeFractionDelay final : public DelayModel {
 public:
  explicit EdgeFractionDelay(std::uint64_t salt) : salt_(salt) {}

  /// Not usable without the edge identity; the engine calls delay_on.
  double delay(Weight, Rng&) override;
  double delay_on(EdgeId e, Weight w, Rng&) override;
  double delay_keyed(EdgeId e, Weight w, std::uint64_t) const override {
    return fraction(e) * static_cast<double>(w);
  }
  double min_delay(EdgeId e, Weight w) const override {
    return fraction(e) * static_cast<double>(w);
  }

  /// The fixed fraction assigned to edge e (exposed for tests).
  double fraction(EdgeId e) const;

 private:
  std::uint64_t salt_;
};

std::unique_ptr<DelayModel> make_exact_delay();
std::unique_ptr<DelayModel> make_uniform_delay(double lo_frac,
                                               double hi_frac);
std::unique_ptr<DelayModel> make_two_point_delay(double slow_prob);
std::unique_ptr<DelayModel> make_edge_fraction_delay(std::uint64_t salt);

}  // namespace csca
