// Pooled per-node protocol state.
//
// Engines host one process per node. The historical representation — a
// vector of unique_ptr built from a factory — costs one heap allocation
// per node and scatters protocol state across the allocator's arenas,
// which is exactly the footprint shape the bench_scale bytes/node
// accounting exists to kill (ROADMAP item 2; same idiom as the pooled
// Message arena in sim/message.h and the EventHeap slot arena).
//
// A PooledStore interns all n processes of one concrete type into a
// single contiguous array and erases the type behind a function-pointer
// thunk, so engines address "process v" without knowing the concrete
// type and without a pointer chase per node. The factory path stays as a
// fallback (PooledStore::from_factory) for heterogeneous or
// move-averse process types; every engine constructor taking a
// ProcessFactory simply wraps it.
//
// State lifetime: the store owns the processes; engines take the store
// by value (it is a couple of pointers plus a shared_ptr) and the
// analysis layer keeps reading protocol state through
// ProcessHost::process_as after the run, exactly as before.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/require.h"

namespace csca {

namespace detail {

/// Snapshot slab for PooledStore elements of concrete type T: one typed
/// deque with a slot free list (arena-style — no per-snapshot heap
/// object). Each consumer (e.g. one optimistic-engine shard) owns its
/// own slab, so concurrent snapshotting of disjoint node sets needs no
/// locks.
template <typename T>
struct SnapshotSlab {
  std::deque<T> slots;
  std::vector<std::uint32_t> free;
};

}  // namespace detail

/// Type-erased contiguous store of n objects derived from Base.
/// Base = Process for the asynchronous engines, SyncProcess for the
/// pulse engine.
template <typename Base>
class PooledStore {
 public:
  using Factory = std::function<std::unique_ptr<Base>(NodeId)>;

  PooledStore() = default;

  /// Interns n processes of concrete type T into one contiguous arena.
  /// make(v) returns the T for node v by value; T must be movable.
  template <typename T, typename MakeFn>
  static PooledStore pooled(int n, MakeFn make) {
    static_assert(std::is_base_of_v<Base, T>,
                  "pooled element type must derive from the store base");
    require(n >= 0, "store size must be non-negative");
    auto arena = std::make_shared<std::vector<T>>();
    arena->reserve(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) arena->emplace_back(make(v));
    PooledStore s;
    s.count_ = n;
    s.data_ = arena->data();
    s.at_ = [](void* data, std::size_t i) -> Base* {
      return static_cast<T*>(data) + i;
    };
    s.state_bytes_ = static_cast<std::size_t>(n) * sizeof(T);
    if constexpr (std::is_copy_constructible_v<T> &&
                  std::is_copy_assignable_v<T>) {
      // Snapshot thunks for the optimistic engine: saving copies the
      // element into a caller-owned slab of the same concrete type
      // (detail::SnapshotSlab — one deque, slots recycled through a
      // free list, so the SCALE-1 allocation model holds), restoring
      // copy-assigns it back. Copy-averse types simply get no thunks
      // and fall back to the Process::save_state virtuals.
      using Slab = detail::SnapshotSlab<T>;
      s.make_slab_ = []() -> std::shared_ptr<void> {
        return std::make_shared<Slab>();
      };
      s.save_ = [](void* snap, void* data, std::size_t i) -> std::uint32_t {
        auto& sl = *static_cast<Slab*>(snap);
        const T& src = *(static_cast<T*>(data) + i);
        if (!sl.free.empty()) {
          const std::uint32_t h = sl.free.back();
          sl.free.pop_back();
          sl.slots[h] = src;
          return h;
        }
        sl.slots.push_back(src);
        return static_cast<std::uint32_t>(sl.slots.size() - 1);
      };
      s.restore_ = [](void* snap, void* data, std::size_t i,
                      std::uint32_t h) {
        auto& sl = *static_cast<Slab*>(snap);
        *(static_cast<T*>(data) + i) = sl.slots[h];
      };
      s.drop_ = [](void* snap, std::uint32_t h) {
        static_cast<Slab*>(snap)->free.push_back(h);
      };
    }
    s.owner_ = std::move(arena);
    return s;
  }

  /// Fallback: one heap object per node via the historical factory.
  /// Keeps arbitrary (non-movable, heterogeneous) process types working;
  /// state_bytes() then counts only the pointer array, since element
  /// footprints are behind opaque vtables.
  static PooledStore from_factory(int n, const Factory& factory) {
    require(n >= 0, "store size must be non-negative");
    auto slots = std::make_shared<std::vector<std::unique_ptr<Base>>>();
    slots->reserve(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      auto p = factory(v);
      require(p != nullptr, "process factory returned null");
      slots->push_back(std::move(p));
    }
    PooledStore s;
    s.count_ = n;
    s.data_ = slots->data();
    s.at_ = [](void* data, std::size_t i) -> Base* {
      return (*(static_cast<std::unique_ptr<Base>*>(data) + i)).get();
    };
    s.state_bytes_ =
        static_cast<std::size_t>(n) * sizeof(std::unique_ptr<Base>);
    s.owner_ = std::move(slots);
    return s;
  }

  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  Base& at(NodeId v) const {
    require(v >= 0 && v < count_, "process store index out of range");
    return *at_(data_, static_cast<std::size_t>(v));
  }

  /// Bytes of pooled protocol state (the numerator of the bench_scale
  /// bytes/node metric for the arena path; see docs/scale.md).
  std::size_t state_bytes() const { return state_bytes_; }

  /// True when the store can snapshot elements by slab copy (the pooled
  /// path with a copyable element type). When false, optimistic engines
  /// fall back to the per-process save_state/restore_state virtuals.
  bool snapshots_supported() const { return save_ != nullptr; }

  /// Allocates a fresh snapshot slab. Each concurrent consumer (one
  /// optimistic-engine shard, say) owns its own slab; the store itself
  /// stays immutable, so disjoint node sets snapshot without locks.
  std::shared_ptr<void> make_snapshot_slab() const {
    require(make_slab_ != nullptr, "store has no snapshot support");
    return make_slab_();
  }

  /// Copies element v into a slot of `slab` and returns its handle.
  std::uint32_t save_snapshot(void* slab, NodeId v) const {
    require(v >= 0 && v < count_, "process store index out of range");
    return save_(slab, data_, static_cast<std::size_t>(v));
  }

  /// Copy-assigns the snapshot in `handle` back over element v. The
  /// handle stays live (restore does not consume it).
  void restore_snapshot(void* slab, NodeId v, std::uint32_t handle) const {
    require(v >= 0 && v < count_, "process store index out of range");
    restore_(slab, data_, static_cast<std::size_t>(v), handle);
  }

  /// Releases a snapshot slot of `slab` for reuse (fossil collection).
  void drop_snapshot(void* slab, std::uint32_t handle) const {
    drop_(slab, handle);
  }

 private:
  int count_ = 0;
  void* data_ = nullptr;
  Base* (*at_)(void*, std::size_t) = nullptr;
  std::size_t state_bytes_ = 0;
  std::shared_ptr<void> owner_;

  // Optional snapshot thunks (pooled path, copyable T only).
  std::shared_ptr<void> (*make_slab_)() = nullptr;
  std::uint32_t (*save_)(void*, void*, std::size_t) = nullptr;
  void (*restore_)(void*, void*, std::size_t, std::uint32_t) = nullptr;
  void (*drop_)(void*, std::uint32_t) = nullptr;
};

}  // namespace csca
