// Messages exchanged by simulated protocols.
//
// A message carries a protocol-defined integer type tag and a small
// sequence of integers as payload; protocols define their own enum of
// type tags and encode/decode payload fields positionally. Delivery
// metadata (sender, edge) is stamped by the engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <iterator>

#include "graph/graph.h"

namespace csca {

/// Traffic class for cost accounting. The paper repeatedly separates the
/// cost of the simulated algorithm from the overhead of the transformer
/// wrapped around it (synchronizer pulses/acks, controller permits);
/// keeping the classes distinct in the engine lets benches report each
/// side of the ledger exactly as the paper defines it.
enum class MsgClass {
  kAlgorithm,  ///< messages of the protocol under study
  kControl,    ///< synchronizer / controller overhead messages
  kRecovery,   ///< re-stabilization traffic after topology churn
};

/// Number of MsgClass values; per-class engine arrays size from this so
/// adding a class is a one-line change plus the billing branches.
inline constexpr int kMsgClassCount = 3;

/// Payload storage with a small-buffer optimization. Almost every
/// protocol message in this repo carries at most 4 int64 fields (tags,
/// levels, distances); those live inline and a send allocates nothing.
/// Longer payloads (the synchronizer/controller wrappers prepend fields,
/// full-information tree streams) spill to the heap transparently. The
/// interface is the subset of std::vector the protocols use. Size and
/// capacity are 32-bit so a Message packs into a single cache line
/// (payloads beyond 2^32 - 1 fields are rejected).
class Payload {
 public:
  using value_type = std::int64_t;
  using iterator = std::int64_t*;
  using const_iterator = const std::int64_t*;

  static constexpr std::size_t kInlineCapacity = 4;

  Payload() = default;
  Payload(std::initializer_list<std::int64_t> init) {
    append(init.begin(), init.end());
  }
  template <typename It>
  Payload(It first, It last) {
    append(first, last);
  }

  Payload(const Payload& o) { append(o.begin(), o.end()); }
  Payload(Payload&& o) noexcept { steal(o); }
  Payload& operator=(const Payload& o) {
    if (this != &o) {
      size_ = 0;
      append(o.begin(), o.end());
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      release();
      data_ = inline_;
      capacity_ = kInlineCapacity;
      steal(o);
    }
    return *this;
  }
  ~Payload() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_; }

  std::int64_t& operator[](std::size_t i) { return data_[i]; }
  std::int64_t operator[](std::size_t i) const { return data_[i]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void push_back(std::int64_t v) {
    if (size_ == capacity_) grow(std::size_t{2} * capacity_);
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }

  template <typename It>
  void assign(It first, It last) {
    size_ = 0;
    append(first, last);
  }

  /// Inserts [first, last) before pos. The range must not alias this
  /// payload's own storage.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    const std::size_t count =
        static_cast<std::size_t>(std::distance(first, last));
    reserve(size_ + count);
    iterator p = data_ + at;
    std::move_backward(p, data_ + size_, data_ + size_ + count);
    std::copy(first, last, p);
    size_ += static_cast<std::uint32_t>(count);
    return p;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  template <typename It>
  void append(It first, It last) {
    const std::size_t count =
        static_cast<std::size_t>(std::distance(first, last));
    reserve(size_ + count);
    std::copy(first, last, data_ + size_);
    size_ += static_cast<std::uint32_t>(count);
  }

  void grow(std::size_t want) {
    const std::size_t cap = std::max(want, std::size_t{2} * capacity_);
    require(cap <= UINT32_MAX, "payload too large");
    std::int64_t* fresh = new std::int64_t[cap];
    std::copy(data_, data_ + size_, fresh);
    release();
    data_ = fresh;
    capacity_ = static_cast<std::uint32_t>(cap);
  }

  void release() {
    if (data_ != inline_) delete[] data_;
  }

  // Leaves o empty with inline storage.
  //
  // The copy below is bounded by o.size_, so it never reads an
  // uninitialized inline word; GCC 12's inliner cannot prove that for
  // a moved-from temporary and flags -Wmaybe-uninitialized spuriously
  // at some call sites under -O2 (observed in sanitizer builds).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void steal(Payload& o) noexcept {
    if (o.data_ == o.inline_) {
      std::copy(o.data_, o.data_ + o.size_, inline_);
      data_ = inline_;
      size_ = o.size_;
      capacity_ = kInlineCapacity;
    } else {
      data_ = o.data_;
      size_ = o.size_;
      capacity_ = o.capacity_;
      o.data_ = o.inline_;
      o.capacity_ = kInlineCapacity;
    }
    o.size_ = 0;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  std::int64_t* data_ = inline_;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = kInlineCapacity;
  std::int64_t inline_[kInlineCapacity];
};

struct alignas(64) Message {
  int type = 0;

  // Delivery metadata, stamped by the engine on receipt.
  NodeId from = kNoNode;
  EdgeId edge = kNoEdge;

  Payload data;

  Message() = default;
  explicit Message(int type_tag) : type(type_tag) {}
  Message(int type_tag, Payload payload)
      : type(type_tag), data(std::move(payload)) {}

  /// Payload accessor with bounds checking; protocols read fields by index.
  std::int64_t at(std::size_t i) const {
    require(i < data.size(), "message payload index out of range");
    return data[i];
  }
};

// The engines pool Messages in an event arena and read/write one per
// delivery; a single-cache-line layout keeps that to one miss each way.
static_assert(sizeof(Payload) == 48, "payload should stay compact");
static_assert(sizeof(Message) == 64, "message should fill one cache line");

/// Cumulative cost ledger of one simulation run.
struct RunStats {
  std::int64_t algorithm_messages = 0;
  std::int64_t control_messages = 0;
  std::int64_t recovery_messages = 0;
  Weight algorithm_cost = 0;  ///< sum of w(e) over algorithm messages
  Weight control_cost = 0;    ///< sum of w(e) over control messages
  Weight recovery_cost = 0;   ///< sum of w(e) over recovery messages
  double completion_time = 0; ///< time of the last delivered edge message
  std::int64_t events = 0;    ///< total deliveries processed

  std::int64_t total_messages() const {
    return algorithm_messages + control_messages + recovery_messages;
  }
  Weight total_cost() const {
    return algorithm_cost + control_cost + recovery_cost;
  }
};

/// Shared running total of control-class transmission cost, written by
/// an overhead layer (the ARQ reliable links) and read by an admission
/// authority (the §5 controller's root) inside the same sequential run.
/// This is how physical overhead that never asks for permits — ARQ
/// retransmits and ACKs under a fault plan — still counts against the
/// root's permit threshold: the root treats `billed` as implicitly
/// issued. Sequential-engine only: writer and reader share one event
/// loop, so there is no synchronization (and must not be any need for
/// it). See control/controller.h (RunEnv::meter) and docs/faults.md.
struct ControlMeter {
  Weight billed = 0;
};

}  // namespace csca
