// Messages exchanged by simulated protocols.
//
// A message carries a protocol-defined integer type tag and a small vector
// of integers as payload; protocols define their own enum of type tags and
// encode/decode payload fields positionally. Delivery metadata (sender,
// edge) is stamped by the engine.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace csca {

/// Traffic class for cost accounting. The paper repeatedly separates the
/// cost of the simulated algorithm from the overhead of the transformer
/// wrapped around it (synchronizer pulses/acks, controller permits);
/// keeping the classes distinct in the engine lets benches report each
/// side of the ledger exactly as the paper defines it.
enum class MsgClass {
  kAlgorithm,  ///< messages of the protocol under study
  kControl,    ///< synchronizer / controller overhead messages
};

struct Message {
  int type = 0;
  std::vector<std::int64_t> data;

  // Delivery metadata, stamped by the engine on receipt.
  NodeId from = kNoNode;
  EdgeId edge = kNoEdge;

  Message() = default;
  explicit Message(int type_tag) : type(type_tag) {}
  Message(int type_tag, std::vector<std::int64_t> payload)
      : type(type_tag), data(std::move(payload)) {}

  /// Payload accessor with bounds checking; protocols read fields by index.
  std::int64_t at(std::size_t i) const {
    require(i < data.size(), "message payload index out of range");
    return data[i];
  }
};

/// Cumulative cost ledger of one simulation run.
struct RunStats {
  std::int64_t algorithm_messages = 0;
  std::int64_t control_messages = 0;
  Weight algorithm_cost = 0;  ///< sum of w(e) over algorithm messages
  Weight control_cost = 0;    ///< sum of w(e) over control messages
  double completion_time = 0; ///< time of the last delivered event
  std::int64_t events = 0;    ///< total deliveries processed

  std::int64_t total_messages() const {
    return algorithm_messages + control_messages;
  }
  Weight total_cost() const { return algorithm_cost + control_cost; }
};

}  // namespace csca
