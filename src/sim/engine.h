// Engine interfaces shared by the sequential Network and the sharded
// conservative engine (par/shard_engine.h).
//
// Protocols never see a concrete engine. They see two narrow surfaces:
//
//   * EngineBackend — the send side. A Context forwards a process's
//     send / schedule_self / finish calls to whichever backend created
//     it, so the same Process implementation runs unmodified on any
//     engine (including one backend per shard inside the parallel
//     engine, each with its own clock).
//   * ProcessHost — the result side. Everything the analysis layer
//     reads after (or between) runs: the graph, the cost ledger,
//     per-node processes and finish times, per-link message counts.
//     check/ digests are written against ProcessHost, which is what
//     lets one digest validate both engines bit-for-bit.
//
// Network implements both; ShardEngine implements ProcessHost and owns
// one internal EngineBackend per shard.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "graph/graph.h"
#include "sim/message.h"

namespace csca {

class EngineBackend;

/// The only window a protocol has onto the world: its own id, the local
/// clock, the topology, and sends over incident edges. Handed to Process
/// hooks by the engine; never stored by protocols beyond the call.
class Context {
 public:
  NodeId self() const { return self_; }
  double now() const;
  const Graph& graph() const;

  std::span<const EdgeId> incident() const {
    return graph().incident(self_);
  }
  /// Incident arcs (edge id, other endpoint) straight out of the CSR
  /// arrays — the zero-copy form of the incident()/neighbor() pair for
  /// per-hop loops (see graph/graph.h).
  NeighborView neighbors() const { return graph().neighbors(self_); }
  NodeId neighbor(EdgeId e) const { return graph().other(e, self_); }
  Weight edge_weight(EdgeId e) const { return graph().weight(e); }

  /// Sends m to the other endpoint of incident edge e. Costs w(e) in the
  /// ledger class cls. The class is deliberately not defaulted: the
  /// paper's analyses split every measure into algorithm vs control
  /// cost, so each send site must say which side of the ledger it bills
  /// (COST-1 in docs/analysis.md).
  void send(EdgeId e, Message m, MsgClass cls);

  /// Schedules m for delivery to this node itself after `delay` time
  /// units (>= 0). Local computation is free in the model, so this costs
  /// nothing in the ledger; it exists so protocols can defer work out of
  /// the current handler (e.g. the hybrid arbiter's resume).
  void schedule_self(double delay, Message m);

  /// Marks this node as locally finished (used for termination checks and
  /// per-node completion times). Idempotent.
  void finish();

 private:
  friend class EngineBackend;
  Context(EngineBackend& backend, NodeId self)
      : backend_(&backend), self_(self) {}
  EngineBackend* backend_;
  NodeId self_;
};

/// One per-node protocol instance. Implementations keep all their state as
/// members and interact exclusively through the Context passed to hooks.
class Process {
 public:
  virtual ~Process() = default;

  /// Invoked once at time 0, before any delivery.
  virtual void on_start(Context&) {}

  /// Invoked for each delivered message.
  virtual void on_message(Context&, const Message& m) = 0;

  /// Deep copy of the protocol state, for engines that need to undo
  /// deliveries (the optimistic backend in par/timewarp_engine.h saves
  /// before every speculative delivery and restores on rollback). The
  /// default returns null — "not supported" — and the optimistic engine
  /// refuses to host such a process; conservative engines never call
  /// it. Concrete protocols opt in with a two-line override pair
  /// (copy-construct / copy-assign).
  virtual std::unique_ptr<Process> save_state() const { return nullptr; }

  /// Restores this process to the state captured by save_state().
  /// `saved` is a value returned from save_state() on this same object.
  virtual void restore_state(const Process& saved) {
    (void)saved;
    require(false, "process does not implement restore_state");
  }
};

/// Builds the process for node v. Engines call it once per node.
using ProcessFactory = std::function<std::unique_ptr<Process>(NodeId)>;

/// The send side of an engine: what a Context needs to service protocol
/// calls. One instance per independent event loop — the sequential
/// Network is one backend, the sharded engine is one backend per shard
/// (each shard has its own clock and queue, so `engine_now` is a
/// per-shard question there).
class EngineBackend {
 public:
  virtual ~EngineBackend() = default;

 protected:
  /// Contexts are engine-internal; engines mint them per hook call.
  Context make_context(NodeId v) { return Context(*this, v); }

 private:
  friend class Context;
  virtual double engine_now() const = 0;
  virtual const Graph& engine_graph() const = 0;
  virtual void engine_send(NodeId from, EdgeId e, Message m,
                           MsgClass cls) = 0;
  virtual void engine_schedule_self(NodeId v, double delay, Message m) = 0;
  virtual void engine_finish(NodeId v) = 0;
};

inline double Context::now() const { return backend_->engine_now(); }
inline const Graph& Context::graph() const {
  return backend_->engine_graph();
}
inline void Context::send(EdgeId e, Message m, MsgClass cls) {
  backend_->engine_send(self_, e, std::move(m), cls);
}
inline void Context::schedule_self(double delay, Message m) {
  backend_->engine_schedule_self(self_, delay, std::move(m));
}
inline void Context::finish() { backend_->engine_finish(self_); }

/// The result side of an engine: post-run (and, for the sequential
/// engine, mid-run) access to everything the analysis layer measures.
/// All methods are single-threaded reads; the parallel engine's workers
/// are quiescent whenever a ProcessHost is handed out.
class ProcessHost {
 public:
  virtual ~ProcessHost() = default;

  virtual const Graph& graph() const = 0;

  /// Ledger accumulated so far (final after the run completes).
  virtual const RunStats& stats() const = 0;

  /// Post-run access to protocol state, e.g. a computed tree or output.
  virtual Process& process(NodeId v) = 0;

  template <typename T>
  T& process_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&process(v));
    require(p != nullptr, "process has unexpected concrete type");
    return *p;
  }

  virtual bool finished(NodeId v) const = 0;
  virtual double finish_time(NodeId v) const = 0;
  /// True iff every node called Context::finish().
  virtual bool all_finished() const = 0;
  /// Latest finish() timestamp across nodes; requires all_finished().
  virtual double last_finish_time() const = 0;

  /// Messages sent over edge e so far (both directions, all classes).
  /// Lets analyses measure per-link load — e.g. the congestion factor in
  /// clock synchronizer gamma*, which the paper bounds by the tree
  /// edge-cover's O(log n) sharing property.
  virtual std::int64_t edge_message_count(EdgeId e) const = 0;

  /// Messages of one ledger class sent over edge e. The paper's
  /// congestion analyses (gamma* sharing) reason about the protocol's
  /// own traffic, so per-link measures must not be polluted by
  /// transformer overhead running on the same network.
  virtual std::int64_t edge_message_count(EdgeId e, MsgClass cls) const = 0;

  /// max over edges of edge_message_count.
  virtual std::int64_t max_edge_message_count() const = 0;

  /// max over edges of edge_message_count(e, cls).
  virtual std::int64_t max_edge_message_count(MsgClass cls) const = 0;
};

}  // namespace csca
