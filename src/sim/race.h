// Cost-budget interleaving of two protocol executions — the driver-side
// form of the paper's hybrid technique (§7.2, §8.2, §9.3).
//
// The paper implements the interleaving *inside* the network: both
// protocols keep root estimates of their spending and the root enables
// the cheaper one. CON_hybrid (conn/hybrid.h) reproduces that in-protocol
// mechanism. For algorithm pairs whose activity is not root-centered
// (SPT_synch under a synchronizer vs SPT_recur), we interleave at the
// simulation driver instead: always advance the execution that has spent
// less so far, stopping when either completes. The cost guarantee is the
// same as the paper's: the loser is never more than one message ahead of
// the winner's final bill, so the combined cost is at most ~2x the
// cheaper algorithm (the root-estimate version pays up to 4x).
#pragma once

#include <functional>

#include "sim/network.h"

namespace csca {

struct RaceOutcome {
  int winner = -1;  ///< 0 = first network, 1 = second
  RunStats first_stats;
  RunStats second_stats;

  Weight total_cost() const {
    return first_stats.total_cost() + second_stats.total_cost();
  }
};

/// Steps the cheaper-so-far network until one of the finished predicates
/// holds. Both predicates must eventually become true under exhaustive
/// stepping of their own network; a network that goes idle without
/// finishing stalls the race toward the other side.
inline RaceOutcome race_networks(
    Network& first, const std::function<bool(Network&)>& first_finished,
    Network& second,
    const std::function<bool(Network&)>& second_finished) {
  // The predicates are consulted before every step: a side that is
  // already finished (or finishes during its on_start hooks, at time 0)
  // wins without either execution delivering one event past its
  // predicate, so the winner's ledger never includes post-finish
  // deliveries and the loser is never advanced gratuitously.
  while (true) {
    if (first_finished(first)) {
      return RaceOutcome{0, first.stats(), second.stats()};
    }
    if (second_finished(second)) {
      return RaceOutcome{1, first.stats(), second.stats()};
    }
    Network* next =
        first.stats().total_cost() <= second.stats().total_cost()
            ? &first
            : &second;
    if (!next->step()) {
      // The preferred side is idle. Its failed step may still have run
      // its on_start hooks (a protocol can finish at time 0 with no
      // events pending), so re-check before declaring it stalled.
      if (first_finished(first)) {
        return RaceOutcome{0, first.stats(), second.stats()};
      }
      if (second_finished(second)) {
        return RaceOutcome{1, first.stats(), second.stats()};
      }
      // Idle but unfinished; advance the other side instead. Its own
      // failed step gets the same on-start re-check before the race is
      // declared deadlocked.
      Network* other = next == &first ? &second : &first;
      if (!other->step()) {
        if (first_finished(first)) {
          return RaceOutcome{0, first.stats(), second.stats()};
        }
        if (second_finished(second)) {
          return RaceOutcome{1, first.stats(), second.stats()};
        }
        require(false,
                "both executions idle but neither finished: deadlock");
      }
    }
  }
}

}  // namespace csca
