#include "mst/hybrid.h"

#include "conn/hybrid.h"
#include "graph/traversal.h"

namespace csca {

MstHybridRun run_mst_hybrid(const Graph& g, NodeId root,
                            const MstDelayFactory& delay,
                            std::uint64_t seed) {
  require(is_connected(g), "run_mst_hybrid requires a connected graph");
  MstHybridRun out;
  if (g.node_count() <= 1) return out;

  // Stage 1: the §7.2 race. The DFS side is the controlled wake-up; the
  // MST_centr side may finish the whole job outright.
  Network race(
      g,
      [&g, root](NodeId v) {
        return std::make_unique<HybridConnProcess>(g, v, root);
      },
      delay(), seed);
  out.race_stats = race.run();
  auto& root_proc = race.process_as<HybridConnProcess>(root);
  ensure(root_proc.winner() != -1, "race must terminate");

  if (root_proc.winner() == HybridConnProcess::kMstId) {
    // MST_centr (Prim) finished first: its tree is the MST.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == root) continue;
      out.mst_edges.push_back(root_proc.mst().tree_parent_edge(v));
    }
    return out;
  }

  // Stage 2: the DFS wake-up won, meaning script-E is the cheaper bill;
  // run GHS, which costs O(script-E + script-V log n).
  out.used_ghs = true;
  GhsRun ghs = run_ghs(g, GhsMode::kSerialScan, delay(), seed + 1);
  out.ghs_stats = ghs.stats;
  out.mst_edges = std::move(ghs.mst_edges);
  return out;
}

}  // namespace csca
