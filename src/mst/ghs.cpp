#include "mst/ghs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "graph/mst.h"
#include "graph/traversal.h"

namespace csca {

namespace {
// Set CSCA_GHS_TRACE=1 to stream per-message protocol events to stderr;
// invaluable when diagnosing fragment stalls.
bool trace_enabled() {
  static const bool enabled = std::getenv("CSCA_GHS_TRACE") != nullptr;
  return enabled;
}
}  // namespace

GhsProcess::GhsProcess(const Graph& g, NodeId self, GhsMode mode)
    : g_(&g),
      self_(self),
      mode_(mode),
      edge_states_(g.incident(self).size(), kBasic) {}

GhsProcess::EdgeState& GhsProcess::edge_state(EdgeId e) {
  const auto edges = g_->incident(self_);
  const auto it = std::find(edges.begin(), edges.end(), e);
  ensure(it != edges.end(), "edge not incident to this node");
  return edge_states_[static_cast<std::size_t>(it - edges.begin())];
}

bool GhsProcess::branch(EdgeId e) const {
  const auto edges = g_->incident(self_);
  const auto it = std::find(edges.begin(), edges.end(), e);
  ensure(it != edges.end(), "edge not incident to this node");
  return edge_states_[static_cast<std::size_t>(it - edges.begin())] ==
         kBranchEdge;
}

bool GhsProcess::moe_less(EdgeId a, EdgeId b) const {
  if (a == kNoEdge) return false;
  if (b == kNoEdge) return true;
  return edge_less(*g_, a, b);
}

std::string GhsProcess::debug_string() const {
  std::string out = "node " + std::to_string(self_) +
                    " state=" + std::to_string(static_cast<int>(state_)) +
                    " lvl=" + std::to_string(level_) +
                    " frag=" + std::to_string(fragment_) +
                    " parent=" + std::to_string(parent_edge_) +
                    " find_count=" + std::to_string(find_count_) +
                    " tests=" + std::to_string(tests_outstanding_) +
                    " reported=" + std::to_string(reported_) +
                    " deferred=" + std::to_string(deferred_.size());
  for (const Message& m : deferred_) {
    out += " [def type=" + std::to_string(m.type) +
           " edge=" + std::to_string(m.edge) + "]";
  }
  return out;
}

void GhsProcess::on_start(Context& ctx) {
  if (state_ == kSleeping) wakeup(ctx);
}

void GhsProcess::wakeup(Context& ctx) {
  // Join the MST via the minimum incident edge as a level-0 fragment.
  const auto edges = g_->incident(self_);
  ensure(!edges.empty(), "GHS requires every node to have an edge");
  EdgeId m = edges[0];
  for (EdgeId e : edges) {
    if (edge_less(*g_, e, m)) m = e;
  }
  edge_state(m) = kBranchEdge;
  level_ = 0;
  state_ = kFound;
  find_count_ = 0;
  ctx.send(m, Message{kConnect, {0}}, MsgClass::kAlgorithm);
}

void GhsProcess::on_message(Context& ctx, const Message& m) {
  handle(ctx, m);
  drain_deferred(ctx);
}

void GhsProcess::drain_deferred(Context& ctx) {
  // Re-attempt deferred messages until a full pass makes no progress.
  bool progress = true;
  while (progress && !deferred_.empty()) {
    progress = false;
    const std::size_t rounds = deferred_.size();
    for (std::size_t i = 0; i < rounds; ++i) {
      Message msg = deferred_.front();
      deferred_.pop_front();
      const std::size_t before = deferred_.size();
      handle(ctx, msg);
      if (deferred_.size() == before) progress = true;
    }
  }
}

void GhsProcess::handle(Context& ctx, const Message& m) {
  if (trace_enabled()) {
    std::fprintf(stderr,
                 "[ghs t=%.2f] node %d <- type %d edge %d from %d data",
                 ctx.now(), self_, m.type, m.edge, m.from);
    for (auto d : m.data) std::fprintf(stderr, " %lld", (long long)d);
    std::fprintf(stderr, " | %s\n", debug_string().c_str());
  }
  if (done_) return;  // post-halt stragglers are harmless
  switch (static_cast<MsgType>(m.type)) {
    case kConnect: {
      if (state_ == kSleeping) wakeup(ctx);
      const int l = static_cast<int>(m.at(0));
      if (l < level_) {
        // Absorb the lower-level fragment.
        edge_state(m.edge) = kBranchEdge;
        ctx.send(m.edge, Message{kInitiate,
                                 {level_, fragment_, state_, guess_}}, MsgClass::kAlgorithm);
        if (state_ == kFind) ++find_count_;
      } else if (edge_state(m.edge) == kBasic) {
        defer(m);
      } else {
        // Both ends chose this edge: merge into a level l+1 fragment
        // whose identity is the core edge.
        ctx.send(m.edge,
                 Message{kInitiate, {level_ + 1, m.edge, kFind, 1}}, MsgClass::kAlgorithm);
      }
      return;
    }
    case kInitiate: {
      level_ = static_cast<int>(m.at(0));
      fragment_ = m.at(1);
      state_ = static_cast<NodeState>(m.at(2));
      guess_ = m.at(3);
      parent_edge_ = m.edge;
      best_moe_ = kNoEdge;
      best_route_ = kNoEdge;
      subtree_has_more_ = false;
      reported_ = false;
      local_accepted_ = false;
      find_count_ = 0;
      for (EdgeId e : g_->incident(self_)) {
        if (e == m.edge || edge_state(e) != kBranchEdge) continue;
        ctx.send(e, Message{kInitiate,
                            {level_, fragment_, state_, guess_}}, MsgClass::kAlgorithm);
        if (state_ == kFind) ++find_count_;
      }
      if (state_ == kFind) start_tests(ctx);
      return;
    }
    case kTest: {
      if (state_ == kSleeping) wakeup(ctx);
      const int l = static_cast<int>(m.at(0));
      if (l > level_) {
        defer(m);
        return;
      }
      if (m.at(1) != fragment_) {
        ctx.send(m.edge, Message{kAccept}, MsgClass::kAlgorithm);
        return;
      }
      if (edge_state(m.edge) == kBasic) edge_state(m.edge) = kRejected;
      // If we are testing this edge too, both sides drop it silently.
      const auto it =
          std::find(outstanding_test_edges_.begin(),
                    outstanding_test_edges_.end(), m.edge);
      if (it != outstanding_test_edges_.end()) {
        outstanding_test_edges_.erase(it);
        --tests_outstanding_;
        local_test_result(ctx, m.edge, /*accepted=*/false);
      } else {
        ctx.send(m.edge, Message{kReject}, MsgClass::kAlgorithm);
      }
      return;
    }
    case kAccept: {
      const auto it =
          std::find(outstanding_test_edges_.begin(),
                    outstanding_test_edges_.end(), m.edge);
      ensure(it != outstanding_test_edges_.end(),
             "ACCEPT for an edge we are not testing");
      outstanding_test_edges_.erase(it);
      --tests_outstanding_;
      local_accepted_ = true;
      if (moe_less(m.edge, best_moe_)) {
        best_moe_ = m.edge;
        best_route_ = m.edge;
      }
      // Serial scan stops at the first (minimum) accepted edge; the
      // parallel mode just counts the reply either way.
      local_test_result(ctx, m.edge, /*accepted=*/true);
      return;
    }
    case kReject: {
      if (edge_state(m.edge) == kBasic) edge_state(m.edge) = kRejected;
      const auto it =
          std::find(outstanding_test_edges_.begin(),
                    outstanding_test_edges_.end(), m.edge);
      ensure(it != outstanding_test_edges_.end(),
             "REJECT for an edge we are not testing");
      outstanding_test_edges_.erase(it);
      --tests_outstanding_;
      local_test_result(ctx, m.edge, /*accepted=*/false);
      return;
    }
    case kReport: {
      const EdgeId b = m.at(0) < 0 ? kNoEdge
                                   : static_cast<EdgeId>(m.at(0));
      const bool hm = m.at(1) != 0;
      if (m.edge != parent_edge_) {
        // A child's subtree result.
        --find_count_;
        if (moe_less(b, best_moe_)) {
          best_moe_ = b;
          best_route_ = m.edge;
        }
        subtree_has_more_ = subtree_has_more_ || hm;
        maybe_report(ctx);
        return;
      }
      // The other core node's result.
      if (state_ == kFind) {
        defer(m);
        return;
      }
      if (moe_less(b, best_moe_)) {
        return;  // their side owns the MOE; they will change root
      }
      if (best_moe_ != kNoEdge) {
        ensure(moe_less(best_moe_, b),
               "both core sides claim the same outgoing edge");
        change_root(ctx);
        return;
      }
      // Neither side found an outgoing edge.
      if (mode_ == GhsMode::kParallelGuess &&
          (my_reported_has_more_ || hm)) {
        // Some basic edge above the guess remains: double and retry.
        guess_ *= 2;
        state_ = kFind;
        reported_ = false;
        local_accepted_ = false;
        best_moe_ = kNoEdge;
        best_route_ = kNoEdge;
        subtree_has_more_ = false;
        find_count_ = 0;
        for (EdgeId e : g_->incident(self_)) {
          if (e == parent_edge_ || edge_state(e) != kBranchEdge) continue;
          ctx.send(e, Message{kRetry, {guess_}}, MsgClass::kAlgorithm);
          ++find_count_;
        }
        start_tests(ctx);
        return;
      }
      // This node sits on the final core edge: the higher-id endpoint
      // becomes the elected leader, announced with the HALT wave.
      halt(ctx, std::max(g_->edge(static_cast<EdgeId>(fragment_)).u,
                         g_->edge(static_cast<EdgeId>(fragment_)).v));
      return;
    }
    case kChangeRoot: {
      change_root(ctx);
      return;
    }
    case kRetry: {
      guess_ = m.at(0);
      state_ = kFind;
      reported_ = false;
      local_accepted_ = false;
      best_moe_ = kNoEdge;
      best_route_ = kNoEdge;
      subtree_has_more_ = false;
      find_count_ = 0;
      parent_edge_ = m.edge;
      for (EdgeId e : g_->incident(self_)) {
        if (e == m.edge || edge_state(e) != kBranchEdge) continue;
        ctx.send(e, Message{kRetry, {guess_}}, MsgClass::kAlgorithm);
        ++find_count_;
      }
      start_tests(ctx);
      return;
    }
    case kHalt: {
      halt(ctx, static_cast<NodeId>(m.at(0)));
      return;
    }
  }
  ensure(false, "GhsProcess received a foreign message type");
}

void GhsProcess::start_tests(Context& ctx) {
  outstanding_test_edges_.clear();
  tests_outstanding_ = 0;
  if (mode_ == GhsMode::kSerialScan) {
    // Probe the minimum basic edge; continue on reject.
    EdgeId t = kNoEdge;
    for (EdgeId e : g_->incident(self_)) {
      if (edge_state(e) == kBasic && moe_less(e, t)) t = e;
    }
    if (t != kNoEdge) {
      outstanding_test_edges_.push_back(t);
      tests_outstanding_ = 1;
      ctx.send(t, Message{kTest, {level_, fragment_}}, MsgClass::kAlgorithm);
      return;
    }
  } else {
    for (EdgeId e : g_->incident(self_)) {
      if (edge_state(e) == kBasic && g_->weight(e) <= guess_) {
        outstanding_test_edges_.push_back(e);
      }
    }
    tests_outstanding_ =
        static_cast<int>(outstanding_test_edges_.size());
    for (EdgeId e : outstanding_test_edges_) {
      ctx.send(e, Message{kTest, {level_, fragment_}}, MsgClass::kAlgorithm);
    }
    if (tests_outstanding_ > 0) return;
  }
  maybe_report(ctx);
}

void GhsProcess::local_test_result(Context& ctx, EdgeId, bool) {
  if (mode_ == GhsMode::kSerialScan) {
    if (tests_outstanding_ == 0 && !local_accepted_ &&
        state_ == kFind && !reported_) {
      start_tests(ctx);  // scan the next minimum basic edge
      return;
    }
  }
  maybe_report(ctx);
}

void GhsProcess::maybe_report(Context& ctx) {
  if (state_ != kFind || reported_) return;
  if (find_count_ > 0 || tests_outstanding_ > 0) return;
  reported_ = true;
  state_ = kFound;
  bool has_more = subtree_has_more_;
  if (mode_ == GhsMode::kParallelGuess && best_moe_ == kNoEdge) {
    for (EdgeId e : g_->incident(self_)) {
      if (edge_state(e) == kBasic) {
        has_more = true;
        break;
      }
    }
  }
  my_reported_has_more_ = has_more;
  ctx.send(parent_edge_,
           Message{kReport,
                   {best_moe_ == kNoEdge ? -1 : best_moe_,
                    has_more ? 1 : 0}}, MsgClass::kAlgorithm);
}

void GhsProcess::change_root(Context& ctx) {
  ensure(best_route_ != kNoEdge, "change_root without a best edge");
  if (edge_state(best_route_) == kBranchEdge) {
    ctx.send(best_route_, Message{kChangeRoot}, MsgClass::kAlgorithm);
  } else {
    edge_state(best_route_) = kBranchEdge;
    ctx.send(best_route_, Message{kConnect, {level_}}, MsgClass::kAlgorithm);
  }
}

void GhsProcess::halt(Context& ctx, NodeId leader) {
  if (done_) return;
  done_ = true;
  leader_ = leader;
  for (EdgeId e : g_->incident(self_)) {
    if (e != parent_edge_ && edge_state(e) == kBranchEdge) {
      ctx.send(e, Message{kHalt, {leader}}, MsgClass::kAlgorithm);
    }
  }
  ctx.finish();
}

GhsRun run_ghs(const Graph& g, GhsMode mode,
               std::unique_ptr<DelayModel> delay, std::uint64_t seed) {
  require(g.node_count() >= 2, "run_ghs requires at least two nodes");
  require(is_connected(g), "run_ghs requires a connected graph");
  Network net(
      g,
      [&g, mode](NodeId v) {
        return std::make_unique<GhsProcess>(g, v, mode);
      },
      std::move(delay), seed);
  RunStats stats = net.run();
  GhsRun out;
  out.stats = stats;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& pu = net.process_as<GhsProcess>(g.edge(e).u);
    const auto& pv = net.process_as<GhsProcess>(g.edge(e).v);
    ensure(pu.done() && pv.done(), "GHS must terminate everywhere");
    ensure(pu.branch(e) == pv.branch(e),
           "edge state must agree at both endpoints");
    if (pu.branch(e)) out.mst_edges.push_back(e);
  }
  out.leader = net.process_as<GhsProcess>(0).leader();
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ensure(net.process_as<GhsProcess>(v).leader() == out.leader,
           "all nodes must agree on the leader");
  }
  return out;
}

}  // namespace csca
