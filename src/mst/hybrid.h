// Algorithm MST_hybrid (§8.2): O(min{script-E + script-V log n,
// n * script-V}) communication.
//
// Following the paper's two-step plan: (1) the wake-up is performed with
// the *controlled* DFS of §6.2, whose root estimate exposes script-E to
// the root; (2) it is combined with MST_centr exactly as in §7.2 — the
// root-arbitrated race of CON_hybrid. If MST_centr wins the race, its
// tree already is the MST (cost O(n * script-V)). If the DFS wake-up
// wins (script-E is the smaller bill), GHS runs to completion for an
// extra O(script-E + script-V log n). Either way the total is within a
// constant of min{script-E + script-V log n, n * script-V}.
#pragma once

#include <functional>

#include "mst/ghs.h"
#include "sim/delay.h"

namespace csca {

struct MstHybridRun {
  std::vector<EdgeId> mst_edges;
  RunStats race_stats;  ///< the DFS vs MST_centr arbitrated race
  RunStats ghs_stats;   ///< the GHS stage (empty if MST_centr won)
  bool used_ghs = false;

  std::int64_t total_messages() const {
    return race_stats.total_messages() + ghs_stats.total_messages();
  }
  Weight total_cost() const {
    return race_stats.total_cost() + ghs_stats.total_cost();
  }
};

using MstDelayFactory = std::function<std::unique_ptr<DelayModel>()>;

/// Runs MST_hybrid from root on a connected graph.
MstHybridRun run_mst_hybrid(const Graph& g, NodeId root,
                            const MstDelayFactory& delay,
                            std::uint64_t seed = 1);

}  // namespace csca
