// Applications §8 inherits from [Awe87]: leader election and counting,
// both reductions to MST construction. GHS's final core edge breaks all
// symmetry (exactly one pair of nodes exchanges the terminating reports),
// so its higher-id endpoint becomes the leader at zero extra asymptotic
// cost; counting is one symmetric-compact aggregation (§1.4.1) over the
// tree GHS just built.
#pragma once

#include <functional>

#include "graph/tree.h"
#include "mst/ghs.h"

namespace csca {

struct LeaderElectionRun {
  NodeId leader = kNoNode;
  std::vector<EdgeId> mst_edges;  ///< the tree that elected the leader
  RunStats stats;
};

/// Elects a unique leader on an anonymous-start network (every node
/// wakes spontaneously; no distinguished initiator): GHS + the core-edge
/// rule. O(script-E + script-V log n) communication (Lemma 8.1).
LeaderElectionRun run_leader_election(const Graph& g,
                                      std::unique_ptr<DelayModel> delay,
                                      std::uint64_t seed = 1);

struct CountingRun {
  std::int64_t count = 0;   ///< |V|, learned by every node
  NodeId leader = kNoNode;  ///< root of the counting tree
  RunStats ghs_stats;       ///< tree construction ledger
  RunStats count_stats;     ///< aggregation ledger (2 w(MST))
};

/// Counts the network's nodes without anyone knowing n a priori:
/// leader election, then a sum-of-ones aggregation over the MST.
CountingRun run_counting(
    const Graph& g,
    const std::function<std::unique_ptr<DelayModel>()>& delay,
    std::uint64_t seed = 1);

}  // namespace csca
