#include "mst/applications.h"

#include "core/global_compute.h"

namespace csca {

LeaderElectionRun run_leader_election(const Graph& g,
                                      std::unique_ptr<DelayModel> delay,
                                      std::uint64_t seed) {
  GhsRun ghs = run_ghs(g, GhsMode::kSerialScan, std::move(delay), seed);
  return LeaderElectionRun{ghs.leader, std::move(ghs.mst_edges),
                           ghs.stats};
}

CountingRun run_counting(
    const Graph& g,
    const std::function<std::unique_ptr<DelayModel>()>& delay,
    std::uint64_t seed) {
  const GhsRun ghs =
      run_ghs(g, GhsMode::kSerialScan, delay(), seed);

  // Orient the MST at the leader.
  std::vector<std::vector<EdgeId>> adj(
      static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : ghs.mst_edges) {
    adj[static_cast<std::size_t>(g.edge(e).u)].push_back(e);
    adj[static_cast<std::size_t>(g.edge(e).v)].push_back(e);
  }
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.node_count()),
                             kNoEdge);
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  seen[static_cast<std::size_t>(ghs.leader)] = 1;
  std::vector<NodeId> stack{ghs.leader};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : adj[static_cast<std::size_t>(v)]) {
      const NodeId u = g.other(e, v);
      if (seen[static_cast<std::size_t>(u)]) continue;
      seen[static_cast<std::size_t>(u)] = 1;
      parent[static_cast<std::size_t>(u)] = e;
      stack.push_back(u);
    }
  }
  const RootedTree tree =
      RootedTree::from_parent_edges(g, ghs.leader, std::move(parent));

  const std::vector<std::int64_t> ones(
      static_cast<std::size_t>(g.node_count()), 1);
  const GlobalComputeRun agg = run_global_compute(
      g, tree, functions::sum(), ones, delay(), seed + 1);
  return CountingRun{agg.result, ghs.leader, ghs.stats, agg.stats};
}

}  // namespace csca
