// Distributed minimum spanning tree: algorithm MST_ghs ([GHS83], §8.1)
// and its MST_fast modification (§8.3).
//
// GHS grows fragments that merge along minimum outgoing edges (MOE),
// with fragment levels gating asynchronous interactions. Weighted
// complexity (Lemma 8.1): O(script-E + script-V log n) communication —
// every non-tree edge is scanned O(1) times, every tree edge O(log n)
// times.
//
// MST_fast changes only the MOE search inside a fragment: instead of
// each vertex probing its basic edges serially in weight order, the
// fragment root maintains a doubling *guess* for the MOE weight and all
// vertices probe every basic edge up to the guess in parallel; a failed
// round doubles the guess and retries. Corollary 8.3: communication
// O(script-E log n log script-V), time O(Diam(MST) log script-V log n) —
// it stops paying the serial-scan latency on heavy edges.
//
// Both share one implementation parameterized by the scan mode; fragment
// identities use the deterministic total edge order of graph/mst.h
// (distinct "weights" as GHS requires).
#pragma once

#include <deque>
#include <string>

#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

enum class GhsMode {
  kSerialScan,     // classic GHS (MST_ghs)
  kParallelGuess,  // MST_fast: test all basic edges <= guess in parallel
};

class GhsProcess final : public Process {
 public:
  GhsProcess(const Graph& g, NodeId self, GhsMode mode);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  bool done() const { return done_; }
  /// True iff e was selected into the MST (edge state Branch).
  bool branch(EdgeId e) const;
  int level() const { return level_; }

  /// The elected leader: the higher-id endpoint of the final core edge,
  /// announced with the HALT wave. GHS-based leader election is the
  /// classic [Awe87] application §8 builds on: once the MST spans the
  /// graph, exactly one core pair exists, breaking all symmetry.
  NodeId leader() const {
    require(done_, "leader is known only after termination");
    return leader_;
  }

  /// One-line state dump for stall diagnostics.
  std::string debug_string() const;

  // Optimistic-engine snapshots (plain value copy; the graph pointer is
  // shared topology, everything else is per-node value state).
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<GhsProcess>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const GhsProcess&>(saved);
  }

 private:
  enum MsgType {
    kConnect = 0,    // data = [level]
    kInitiate = 1,   // data = [level, fragment, state, guess]
    kTest = 2,       // data = [level, fragment]
    kAccept = 3,
    kReject = 4,
    kReport = 5,     // data = [best edge or -1, has_more]
    kChangeRoot = 6,
    kRetry = 7,      // data = [guess] (kParallelGuess only)
    kHalt = 8,
  };
  enum NodeState { kSleeping = 0, kFind = 1, kFound = 2 };
  enum EdgeState { kBasic = 0, kBranchEdge = 1, kRejected = 2 };

  void wakeup(Context& ctx);
  void handle(Context& ctx, const Message& m);
  void drain_deferred(Context& ctx);
  void defer(const Message& m) { deferred_.push_back(m); }

  void begin_find(Context& ctx);
  void start_tests(Context& ctx);
  void local_test_result(Context& ctx, EdgeId e, bool accepted);
  void maybe_report(Context& ctx);
  void change_root(Context& ctx);
  void halt(Context& ctx, NodeId leader);

  EdgeState& edge_state(EdgeId e);
  bool moe_less(EdgeId a, EdgeId b) const;  // -1 acts as +infinity

  const Graph* g_;
  NodeId self_;
  GhsMode mode_;

  NodeState state_ = kSleeping;
  int level_ = 0;
  std::int64_t fragment_ = -1;  // core edge id
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeState> edge_states_;  // indexed by incident slot
  int find_count_ = 0;  // outstanding child REPORTs

  // MOE search state.
  Weight guess_ = 1;
  int tests_outstanding_ = 0;
  std::vector<EdgeId> outstanding_test_edges_;
  EdgeId best_moe_ = kNoEdge;    // global edge id of subtree MOE
  EdgeId best_route_ = kNoEdge;  // incident edge toward it
  bool subtree_has_more_ = false;
  bool reported_ = false;
  bool my_reported_has_more_ = false;
  bool local_accepted_ = false;  // serial scan found this node's MOE

  std::deque<Message> deferred_;
  bool done_ = false;
  NodeId leader_ = kNoNode;
};

struct GhsRun {
  std::vector<EdgeId> mst_edges;
  NodeId leader = kNoNode;  ///< agreed-on leader (see GhsProcess::leader)
  RunStats stats;
};

/// Runs GHS (or MST_fast) to completion with every node waking
/// spontaneously at time 0. Requires g connected and n >= 2.
GhsRun run_ghs(const Graph& g, GhsMode mode,
               std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);

}  // namespace csca
