#include "core/distributed_slt.h"

#include "conn/mst_centr.h"
#include "conn/spt_centr.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace csca {

DistributedSltRun run_distributed_slt(const Graph& g, NodeId root, double q,
                                      const DelayFactory& delay,
                                      std::uint64_t seed) {
  require(q > 0, "SLT parameter q must be positive");

  // Stage 1: MST_centr. Afterwards every vertex knows the whole MST.
  const auto mst_run = run_mst_centr(g, root, delay(), seed);
  ensure(is_minimum_spanning_forest(g, mst_run.tree.edge_set()),
         "stage 1 must produce the MST");

  // Stage 2: SPT_centr on G gives every vertex the tree T_S (and thus
  // all source distances).
  const auto spt_run = run_spt_centr(g, root, delay(), seed + 1);

  // Stage 3 (local): every vertex deterministically stretches the MST
  // into the line, scans for breakpoints and derives the subgraph G'.
  // This costs no communication; we reuse the centralized routine as the
  // shared deterministic computation.
  ShallowLightTree local = build_slt(g, root, q);

  // Stage 4: SPT_centr restricted to G' produces the final tree T.
  Network net(
      g,
      [&](NodeId v) {
        return std::make_unique<SptCentrProcess>(
            g, v, root, 0, nullptr, 0, &local.subgraph_edges);
      },
      delay(), seed + 2);
  RunStats final_stats = net.run();
  auto& root_proc = net.process_as<SptCentrProcess>(root);
  ensure(root_proc.done(), "stage 4 must terminate");

  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parents[static_cast<std::size_t>(v)] = root_proc.tree_parent_edge(v);
  }
  RootedTree final_tree =
      RootedTree::from_parent_edges(g, root, std::move(parents));

  // Sanity: the distributed SPT on G' realizes the same distances as the
  // centralized SLT (the trees may differ on equal-length ties).
  const auto sp_sub = dijkstra_subgraph(g, root, local.subgraph_edges);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ensure(final_tree.depth(g, v) ==
               sp_sub.dist[static_cast<std::size_t>(v)],
           "distributed SLT distances must match the centralized ones");
  }

  DistributedSltRun out{std::move(local), mst_run.stats, spt_run.stats,
                        final_stats};
  out.slt.tree = std::move(final_tree);
  return out;
}

}  // namespace csca
