#include "core/global_function.h"

#include <array>
#include <limits>

namespace csca {

namespace functions {

SymmetricFunction sum() {
  return {"sum", 0, [](std::int64_t a, std::int64_t b) { return a + b; }};
}

SymmetricFunction max() {
  return {"max", std::numeric_limits<std::int64_t>::min(),
          [](std::int64_t a, std::int64_t b) { return a > b ? a : b; }};
}

SymmetricFunction min() {
  return {"min", std::numeric_limits<std::int64_t>::max(),
          [](std::int64_t a, std::int64_t b) { return a < b ? a : b; }};
}

SymmetricFunction bit_xor() {
  return {"xor", 0, [](std::int64_t a, std::int64_t b) { return a ^ b; }};
}

SymmetricFunction bit_and() {
  return {"and", ~std::int64_t{0},
          [](std::int64_t a, std::int64_t b) { return a & b; }};
}

SymmetricFunction bit_or() {
  return {"or", 0, [](std::int64_t a, std::int64_t b) { return a | b; }};
}

std::span<const SymmetricFunction> all() {
  // arg_min is excluded: its domain is packed pairs, not raw integers.
  static const std::array<SymmetricFunction, 6> kAll{
      sum(), max(), min(), bit_xor(), bit_and(), bit_or()};
  return kAll;
}

}  // namespace functions

std::int64_t pack_value_id(std::int32_t value, std::int32_t id) {
  // Order-preserving in `value` when compared as int64 (value in the
  // high 32 bits with the sign handled by the shift), ties by id.
  return (static_cast<std::int64_t>(value) << 32) |
         static_cast<std::uint32_t>(id);
}

std::int32_t packed_value(std::int64_t packed) {
  return static_cast<std::int32_t>(packed >> 32);
}

std::int32_t packed_id(std::int64_t packed) {
  return static_cast<std::int32_t>(packed & 0xffffffff);
}

SymmetricFunction arg_min() {
  return {"arg_min", std::numeric_limits<std::int64_t>::max(),
          [](std::int64_t a, std::int64_t b) { return a < b ? a : b; }};
}

std::int64_t fold(const SymmetricFunction& f,
                  std::span<const std::int64_t> inputs) {
  require(f.combine != nullptr, "symmetric function needs a combiner");
  std::int64_t acc = f.identity;
  for (std::int64_t x : inputs) acc = f.combine(acc, x);
  return acc;
}

}  // namespace csca
