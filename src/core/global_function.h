// Symmetric compact functions (§1.4.1, after [GS86]).
//
// A family f_n : X^n -> X is symmetric (argument order is irrelevant) and
// compact (any subset of arguments can be summarized in one value):
// f_n(x_1..x_n) = g(f_k(x_1..x_k), f_{n-k}(x_{k+1}..x_n)). We model such
// a family by its two-argument combiner g plus an identity element, i.e.
// a commutative monoid over int64 — covering the paper's examples
// (maximum, sum, XOR, AND, OR) and anything downstream users supply.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "util/require.h"

namespace csca {

struct SymmetricFunction {
  /// Must be commutative and associative with `identity` as the neutral
  /// element. May capture state (std::function), so users can encode
  /// richer aggregates — e.g. argmin via packed (value, id) pairs.
  using Combine = std::function<std::int64_t(std::int64_t, std::int64_t)>;

  std::string name;
  std::int64_t identity = 0;
  Combine combine;
};

/// argmin as a symmetric compact function: inputs and outputs are packed
/// (value, id) pairs via pack_value_id; the aggregate is the pair with
/// the smallest value (ties to the smaller id). §1.4.1's point that many
/// tasks — here, electing the node holding the minimum — reduce to one
/// aggregation.
std::int64_t pack_value_id(std::int32_t value, std::int32_t id);
std::int32_t packed_value(std::int64_t packed);
std::int32_t packed_id(std::int64_t packed);
SymmetricFunction arg_min();

namespace functions {
SymmetricFunction sum();
SymmetricFunction max();
SymmetricFunction min();
SymmetricFunction bit_xor();
SymmetricFunction bit_and();
SymmetricFunction bit_or();
/// All of the above, for parameterized tests and benches.
std::span<const SymmetricFunction> all();
}  // namespace functions

/// Reference evaluation: folds f over the inputs (the value every
/// distributed computation must reproduce).
std::int64_t fold(const SymmetricFunction& f,
                  std::span<const std::int64_t> inputs);

}  // namespace csca
