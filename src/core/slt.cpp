#include "core/slt.h"

#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"

namespace csca {

namespace {
// Weighted distance between two tree nodes along tree edges.
Weight tree_distance(const Graph& g, const RootedTree& t, NodeId a,
                     NodeId b) {
  return total_weight(g, t.path(g, a, b));
}
}  // namespace

ShallowLightTree build_slt(const Graph& g, NodeId root, double q) {
  g.check_node(root);
  require(q > 0, "SLT parameter q must be positive");
  require(is_connected(g), "build_slt requires a connected graph");

  // Step 1: the MST T_M and the SPT T_S, both rooted at the root.
  const RootedTree tm = mst_tree(g, root);
  const ShortestPaths sp = dijkstra(g, root);
  const RootedTree ts = sp.tree(g);

  // Step 2-3: the line L = Euler tour of T_M with prefix weights.
  const std::vector<NodeId> line = euler_tour(g, tm);
  std::vector<Weight> prefix(line.size(), 0);
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const EdgeId e = g.find_edge(line[i], line[i + 1]);
    ensure(e != kNoEdge, "euler tour steps must follow edges");
    prefix[i + 1] = prefix[i] + g.weight(e);
  }

  // Step 4-5: scan for breakpoints; graft Path(v(X), v(Y), T_S) whenever
  // the line distance exceeds q times the SPT-path distance.
  std::vector<char> in_subgraph(static_cast<std::size_t>(g.edge_count()),
                                0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v != root) {
      in_subgraph[static_cast<std::size_t>(tm.parent_edge(v))] = 1;
    }
  }
  std::vector<int> breakpoints{0};
  std::size_t x = 0;
  for (std::size_t y = 1; y < line.size(); ++y) {
    const Weight line_dist = prefix[y] - prefix[x];
    const Weight ts_dist = tree_distance(g, ts, line[x], line[y]);
    if (static_cast<double>(line_dist) >
        q * static_cast<double>(ts_dist)) {
      for (EdgeId e : ts.path(g, line[x], line[y])) {
        in_subgraph[static_cast<std::size_t>(e)] = 1;
      }
      breakpoints.push_back(static_cast<int>(y));
      x = y;
    }
  }

  // Step 6: a shortest-path tree of G' = (V, E') rooted at the root.
  const ShortestPaths sp_sub = dijkstra_subgraph(g, root, in_subgraph);
  ShallowLightTree out{sp_sub.tree(g), q, std::move(breakpoints),
                       line, std::move(in_subgraph)};
  ensure(out.tree.spanning(), "SLT must span the graph");
  return out;
}

}  // namespace csca
