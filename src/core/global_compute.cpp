#include "core/global_compute.h"

namespace csca {

GlobalComputeProcess::GlobalComputeProcess(const Graph& g,
                                           const RootedTree& tree,
                                           NodeId self,
                                           const SymmetricFunction& f,
                                           std::int64_t input)
    : self_(self), is_root_(tree.root() == self), f_(f), acc_(input) {
  require(tree.spanning(), "global compute requires a spanning tree");
  require(f.combine != nullptr, "symmetric function needs a combiner");
  if (!is_root_) parent_edge_ = tree.parent_edge(self);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == tree.root()) continue;
    const EdgeId pe = tree.parent_edge(v);
    if (g.other(pe, v) == self) children_edges_.push_back(pe);
  }
  reports_pending_ = static_cast<int>(children_edges_.size());
}

void GlobalComputeProcess::on_start(Context& ctx) { try_report(ctx); }

void GlobalComputeProcess::try_report(Context& ctx) {
  if (reports_pending_ > 0) return;
  if (is_root_) {
    result_ = acc_;
    has_result_ = true;
    for (EdgeId e : children_edges_) {
      ctx.send(e, Message{kDown, {result_}}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  } else {
    ctx.send(parent_edge_, Message{kUp, {acc_}}, MsgClass::kAlgorithm);
  }
}

void GlobalComputeProcess::on_message(Context& ctx, const Message& m) {
  switch (static_cast<MsgType>(m.type)) {
    case kUp: {
      acc_ = f_.combine(acc_, m.at(0));
      --reports_pending_;
      ensure(reports_pending_ >= 0, "unexpected extra report");
      try_report(ctx);
      return;
    }
    case kDown: {
      result_ = m.at(0);
      has_result_ = true;
      for (EdgeId e : children_edges_) {
        ctx.send(e, Message{kDown, {result_}}, MsgClass::kAlgorithm);
      }
      ctx.finish();
      return;
    }
  }
  ensure(false, "GlobalComputeProcess received a foreign message type");
}

GlobalComputeRun run_global_compute(const Graph& g, const RootedTree& tree,
                                    const SymmetricFunction& f,
                                    std::span<const std::int64_t> inputs,
                                    std::unique_ptr<DelayModel> delay,
                                    std::uint64_t seed) {
  require(inputs.size() == static_cast<std::size_t>(g.node_count()),
          "one input per vertex required");
  Network net(
      g,
      [&](NodeId v) {
        return std::make_unique<GlobalComputeProcess>(
            g, tree, v, f, inputs[static_cast<std::size_t>(v)]);
      },
      std::move(delay), seed);
  RunStats stats = net.run();
  ensure(net.all_finished(), "all vertices must learn the result");
  const std::int64_t result =
      net.process_as<GlobalComputeProcess>(tree.root()).result();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ensure(net.process_as<GlobalComputeProcess>(v).result() == result,
           "all vertices must agree on the result");
  }
  return GlobalComputeRun{result, stats, net.last_finish_time()};
}

}  // namespace csca
