// Shallow-light trees (§2.2, Figure 5) — the paper's central construction.
//
// A spanning tree is shallow-light (SLT) when its diameter is O(script-D)
// and its weight is O(script-V), simultaneously approximating a
// shortest-path tree and a minimum spanning tree. Theorem 2.2: every
// graph has one; the algorithm walks the MST's Euler tour ("the line L"),
// places breakpoints wherever the tour distance since the last breakpoint
// exceeds q times the SPT distance, grafts the SPT paths between
// consecutive breakpoints onto the MST, and returns a shortest-path tree
// of the resulting subgraph. Lemma 2.4: w(T) <= (1 + 2/q) script-V.
// Lemma 2.5: depth <= (2q + 1) script-D (the paper states (q + 1)
// script-D; the argument as written bounds the breakpoint hop by
// q * dist(v(B_l), x, Ts) <= 2q script-D — our tests assert the provable
// bound and record the measured, typically much smaller, ratio).
#pragma once

#include <vector>

#include "graph/tree.h"

namespace csca {

struct ShallowLightTree {
  RootedTree tree;          ///< the SLT, rooted at the chosen root
  double q = 0;             ///< the weight/depth trade-off parameter
  std::vector<int> breakpoints;  ///< Euler-line indices B_1 = 0 < B_2 < ...
  std::vector<NodeId> euler_line;  ///< the line L: v(0), ..., v(2n-2)
  std::vector<char> subgraph_edges;  ///< mask of E' = MST + grafted paths

  Weight weight(const Graph& g) const { return tree.weight(g); }
  Weight depth(const Graph& g) const { return tree.height(g); }
  Weight diameter(const Graph& g) const { return tree.diameter(g); }
};

/// Runs the Figure 5 SLT algorithm. Requires g connected and q > 0.
ShallowLightTree build_slt(const Graph& g, NodeId root, double q);

}  // namespace csca
