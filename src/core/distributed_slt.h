// Distributed SLT construction (Theorem 2.7).
//
// The paper's recipe: build the MST with MST_centr (O(n * script-V)
// communication, O(n^2 * script-D) time), note that afterwards every
// vertex knows the whole MST, "stretch the MST into a line" *locally*
// (the Euler tour, breakpoint scan and path grafting are deterministic
// functions of information every vertex already has — the graph and the
// two trees), and finally run SPT_centr once more, restricted to the
// grafted subgraph G', to obtain the tree T. An SPT_centr run on G
// itself supplies T_S (also full-information afterwards). Overall:
// O(script-V * n^2) communication and O(script-D * n^2) time.
#pragma once

#include <functional>

#include "core/slt.h"
#include "sim/delay.h"
#include "sim/message.h"

namespace csca {

struct DistributedSltRun {
  ShallowLightTree slt;  ///< identical to the centralized build_slt output
  RunStats mst_stats;    ///< ledger of the MST_centr stage
  RunStats spt_stats;    ///< ledger of the SPT_centr-on-G stage (T_S)
  RunStats final_stats;  ///< ledger of the SPT_centr-on-G' stage (T)

  std::int64_t total_messages() const {
    return mst_stats.total_messages() + spt_stats.total_messages() +
           final_stats.total_messages();
  }
  Weight total_cost() const {
    return mst_stats.total_cost() + spt_stats.total_cost() +
           final_stats.total_cost();
  }
  double total_time() const {
    return mst_stats.completion_time + spt_stats.completion_time +
           final_stats.completion_time;
  }
};

using DelayFactory = std::function<std::unique_ptr<DelayModel>()>;

/// Runs the three distributed stages of Theorem 2.7 and cross-checks the
/// result against the centralized algorithm. Requires g connected, q > 0.
DistributedSltRun run_distributed_slt(const Graph& g, NodeId root, double q,
                                      const DelayFactory& delay,
                                      std::uint64_t seed = 1);

}  // namespace csca
