// Global function computation over a spanning tree (§2, Corollary 2.3).
//
// Given a spanning tree T known to all vertices (the model of §1.4.1),
// each vertex holds one argument; a convergecast folds the arguments
// toward the root and a broadcast returns the result, so every vertex
// outputs f(x_1, ..., x_n). Communication is exactly 2 w(T) and time is
// O(depth(T)) each way — run over a shallow-light tree this achieves the
// optimal O(script-V) / O(script-D) of Figure 1.
#pragma once

#include "core/global_function.h"
#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

class GlobalComputeProcess final : public Process {
 public:
  GlobalComputeProcess(const Graph& g, const RootedTree& tree, NodeId self,
                       const SymmetricFunction& f, std::int64_t input);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  bool has_result() const { return has_result_; }
  std::int64_t result() const {
    require(has_result_, "computation has not completed at this vertex");
    return result_;
  }

 private:
  enum MsgType { kUp = 0, kDown = 1 };

  void try_report(Context& ctx);

  NodeId self_;
  bool is_root_;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_edges_;
  int reports_pending_ = 0;
  SymmetricFunction f_;
  std::int64_t acc_;
  std::int64_t result_ = 0;
  bool has_result_ = false;
};

struct GlobalComputeRun {
  std::int64_t result = 0;
  RunStats stats;
  double completion_time = 0;  ///< when the last vertex learned the result
};

/// Computes f over the inputs (inputs[v] lives at vertex v) on the given
/// spanning tree; validates that every vertex outputs the same value.
GlobalComputeRun run_global_compute(const Graph& g, const RootedTree& tree,
                                    const SymmetricFunction& f,
                                    std::span<const std::int64_t> inputs,
                                    std::unique_ptr<DelayModel> delay,
                                    std::uint64_t seed = 1);

}  // namespace csca
