#include "check/invariants.h"

#include <cmath>
#include <sstream>

namespace csca {

namespace {
std::string at_time(double t) {
  std::ostringstream os;
  os << " (t=" << t << ")";
  return os.str();
}
}  // namespace

void DefaultInvariantChecker::ensure_sized(const Network& net) {
  if (sized_) return;
  sized_ = true;
  const auto m = static_cast<std::size_t>(net.graph().edge_count());
  channels_.resize(2 * m);
  sent_algorithm_.assign(m, 0);
  sent_control_.assign(m, 0);
}

void DefaultInvariantChecker::report(std::string what) {
  if (opts_.fail_fast) {
    ensure(false, "invariant violation: " + what);
  }
  if (violations_.size() < opts_.max_violations) {
    violations_.push_back(std::move(what));
  } else {
    ++suppressed_;
  }
}

std::size_t DefaultInvariantChecker::channel_of(const Network& net,
                                                NodeId from,
                                                EdgeId e) const {
  const Edge& edge = net.graph().edge(e);
  return static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
}

void DefaultInvariantChecker::on_send(const Network& net, NodeId from,
                                      EdgeId e, MsgClass cls,
                                      double delay, double arrival) {
  ensure_sized(net);
  const Graph& g = net.graph();
  if (e < 0 || e >= g.edge_count()) {
    std::ostringstream os;
    os << "send on out-of-range edge " << e << " by node " << from
       << at_time(net.now());
    report(os.str());
    return;
  }
  const Edge& edge = g.edge(e);
  if (edge.u != from && edge.v != from) {
    std::ostringstream os;
    os << "node " << from << " sent on non-incident edge " << e << " ("
       << edge.u << "-" << edge.v << ")" << at_time(net.now());
    report(os.str());
  }
  const auto w = static_cast<double>(edge.w);
  if (std::isnan(delay) || delay < 0.0 || delay > w) {
    std::ostringstream os;
    os << "delay model produced " << delay << " outside [0, " << w
       << "] on edge " << e << at_time(net.now());
    report(os.str());
  }
  if (net.finished(from) && from != delivering_to_) {
    std::ostringstream os;
    os << "spontaneous send by finished node " << from << " on edge "
       << e << at_time(net.now());
    report(os.str());
  }
  auto& chan = channels_[channel_of(net, from, e)];
  if (arrival < net.now() ||
      (!chan.empty() && arrival < chan.back())) {
    std::ostringstream os;
    os << "arrival " << arrival << " on edge " << e
       << " violates the FIFO clamp (now=" << net.now()
       << ", channel tail="
       << (chan.empty() ? net.now() : chan.back()) << ")";
    report(os.str());
  }
  chan.push_back(arrival);
  auto& tally = cls == MsgClass::kAlgorithm ? sent_algorithm_
                                            : sent_control_;
  ++tally[static_cast<std::size_t>(e)];
}

void DefaultInvariantChecker::on_self_schedule(const Network& net,
                                               NodeId v, double delay) {
  ensure_sized(net);
  ++self_schedules_seen_;
  if (std::isnan(delay) || delay < 0.0) {
    std::ostringstream os;
    os << "node " << v << " scheduled a self-delivery with delay "
       << delay << at_time(net.now());
    report(os.str());
  }
  if (net.finished(v) && v != delivering_to_) {
    std::ostringstream os;
    os << "spontaneous self-schedule by finished node " << v
       << at_time(net.now());
    report(os.str());
  }
}

void DefaultInvariantChecker::on_deliver(const Network& net, NodeId to,
                                         const Message& m, double t) {
  ensure_sized(net);
  ++deliveries_seen_;
  if (t < last_now_) {
    std::ostringstream os;
    os << "clock ran backwards: delivery at t=" << t << " after t="
       << last_now_;
    report(os.str());
  }
  last_now_ = t;
  if (m.edge == kNoEdge) {
    if (m.from != to) {
      std::ostringstream os;
      os << "self-delivery scheduled by node " << m.from
         << " delivered to node " << to << at_time(t);
      report(os.str());
    }
  } else if (m.edge < 0 || m.edge >= net.graph().edge_count()) {
    std::ostringstream os;
    os << "delivery over out-of-range edge " << m.edge << at_time(t);
    report(os.str());
  } else {
    auto& chan = channels_[channel_of(net, m.from, m.edge)];
    if (chan.empty()) {
      std::ostringstream os;
      os << "delivery to node " << to << " over edge " << m.edge
         << " without a matching send" << at_time(t);
      report(os.str());
    } else {
      if (chan.front() != t) {
        std::ostringstream os;
        os << "FIFO order violated on edge " << m.edge
           << ": oldest outstanding send arrives at " << chan.front()
           << " but a delivery happened" << at_time(t);
        report(os.str());
      }
      chan.pop_front();
    }
    if (net.graph().other(m.edge, m.from) != to) {
      std::ostringstream os;
      os << "edge message from node " << m.from << " over edge "
         << m.edge << " delivered to node " << to
         << ", not the opposite endpoint" << at_time(t);
      report(os.str());
    }
  }
  delivering_to_ = to;
}

void DefaultInvariantChecker::on_finish(const Network& net, NodeId v,
                                        double t) {
  ensure_sized(net);
  if (t != net.now()) {
    std::ostringstream os;
    os << "node " << v << " finish time " << t
       << " differs from the clock " << net.now();
    report(os.str());
  }
}

void DefaultInvariantChecker::check_final(const Network& net) {
  ensure_sized(net);
  const Graph& g = net.graph();
  const RunStats& stats = net.stats();

  // Ledger conservation: RunStats totals vs the per-edge counters, and
  // the engine's counters vs this checker's independent tally.
  std::int64_t algo_msgs = 0;
  std::int64_t ctrl_msgs = 0;
  Weight algo_cost = 0;
  Weight ctrl_cost = 0;
  std::int64_t total_sends = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto i = static_cast<std::size_t>(e);
    const std::int64_t a = net.edge_message_count(e, MsgClass::kAlgorithm);
    const std::int64_t c = net.edge_message_count(e, MsgClass::kControl);
    algo_msgs += a;
    ctrl_msgs += c;
    algo_cost += a * g.weight(e);
    ctrl_cost += c * g.weight(e);
    total_sends += a + c;
    if (a != sent_algorithm_[i] || c != sent_control_[i]) {
      std::ostringstream os;
      os << "edge " << e << " per-class counters (" << a << ", " << c
         << ") disagree with the observed sends ("
         << sent_algorithm_[i] << ", " << sent_control_[i] << ")";
      report(os.str());
    }
  }
  if (algo_msgs != stats.algorithm_messages ||
      ctrl_msgs != stats.control_messages ||
      algo_cost != stats.algorithm_cost ||
      ctrl_cost != stats.control_cost) {
    std::ostringstream os;
    os << "ledger conservation failed: per-edge sums give msgs=("
       << algo_msgs << ", " << ctrl_msgs << ") cost=(" << algo_cost
       << ", " << ctrl_cost << ") but RunStats holds msgs=("
       << stats.algorithm_messages << ", " << stats.control_messages
       << ") cost=(" << stats.algorithm_cost << ", "
       << stats.control_cost << ")";
    report(os.str());
  }
  if (stats.events != deliveries_seen_) {
    std::ostringstream os;
    os << "RunStats counts " << stats.events << " deliveries but "
       << deliveries_seen_ << " were observed (checker attached late?)";
    report(os.str());
  }
  if (net.idle()) {
    std::int64_t undelivered = 0;
    for (const auto& chan : channels_) {
      undelivered += static_cast<std::int64_t>(chan.size());
    }
    if (undelivered != 0) {
      std::ostringstream os;
      os << undelivered
         << " sent message(s) never delivered on a quiescent network";
      report(os.str());
    }
    if (total_sends + self_schedules_seen_ != deliveries_seen_) {
      std::ostringstream os;
      os << "event conservation failed: " << total_sends << " sends + "
         << self_schedules_seen_ << " self-schedules vs "
         << deliveries_seen_ << " deliveries at quiescence";
      report(os.str());
    }
  }
}

}  // namespace csca
