#include "check/invariants.h"

#include <cmath>
#include <sstream>

#include "fault/fault_injector.h"
#include "fault/reliable_link.h"

namespace csca {

namespace {
std::string at_time(double t) {
  std::ostringstream os;
  os << " (t=" << t << ")";
  return os.str();
}
}  // namespace

void DefaultInvariantChecker::ensure_sized(const Network& net) {
  if (sized_) return;
  sized_ = true;
  const auto m = static_cast<std::size_t>(net.graph().edge_count());
  channels_.resize(2 * m);
  dup_arrivals_.resize(2 * m);
  arq_expected_.assign(2 * m, 0);
  arq_buffered_.resize(2 * m);
  garbled_sent_.assign(2 * m, 0);
  arq_invalid_.assign(2 * m, 0);
  sent_algorithm_.assign(m, 0);
  sent_control_.assign(m, 0);
  sent_recovery_.assign(m, 0);
}

void DefaultInvariantChecker::report(std::string what) {
  if (opts_.fail_fast) {
    ensure(false, "invariant violation: " + what);
  }
  if (violations_.size() < opts_.max_violations) {
    violations_.push_back(std::move(what));
  } else {
    ++suppressed_;
  }
}

std::size_t DefaultInvariantChecker::channel_of(const Network& net,
                                                NodeId from,
                                                EdgeId e) const {
  const Edge& edge = net.graph().edge(e);
  return static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
}

void DefaultInvariantChecker::on_send(const Network& net, NodeId from,
                                      EdgeId e, MsgClass cls,
                                      double delay, double arrival) {
  ensure_sized(net);
  const Graph& g = net.graph();
  if (e < 0 || e >= g.edge_count()) {
    std::ostringstream os;
    os << "send on out-of-range edge " << e << " by node " << from
       << at_time(net.now());
    report(os.str());
    return;
  }
  const Edge& edge = g.edge(e);
  if (edge.u != from && edge.v != from) {
    std::ostringstream os;
    os << "node " << from << " sent on non-incident edge " << e << " ("
       << edge.u << "-" << edge.v << ")" << at_time(net.now());
    report(os.str());
  }
  const auto w = static_cast<double>(edge.w);
  if (std::isnan(delay) || delay < 0.0 || delay > w) {
    std::ostringstream os;
    os << "delay model produced " << delay << " outside [0, " << w
       << "] on edge " << e << at_time(net.now());
    report(os.str());
  }
  if (net.finished(from) && from != delivering_to_) {
    std::ostringstream os;
    os << "spontaneous send by finished node " << from << " on edge "
       << e << at_time(net.now());
    report(os.str());
  }
  if (faults_ != nullptr && faults_->crashed(from, net.now())) {
    std::ostringstream os;
    os << "send by node " << from << " on edge " << e
       << " after its crash" << at_time(net.now());
    report(os.str());
  }
  auto& chan = channels_[channel_of(net, from, e)];
  if (arrival < net.now() ||
      (!chan.empty() && arrival < chan.back())) {
    std::ostringstream os;
    os << "arrival " << arrival << " on edge " << e
       << " violates the FIFO clamp (now=" << net.now()
       << ", channel tail="
       << (chan.empty() ? net.now() : chan.back()) << ")";
    report(os.str());
  }
  chan.push_back(arrival);
  auto& tally = cls == MsgClass::kAlgorithm  ? sent_algorithm_
                : cls == MsgClass::kControl  ? sent_control_
                                             : sent_recovery_;
  ++tally[static_cast<std::size_t>(e)];
}

void DefaultInvariantChecker::on_self_schedule(const Network& net,
                                               NodeId v, double delay) {
  ensure_sized(net);
  ++self_schedules_seen_;
  if (std::isnan(delay) || delay < 0.0) {
    std::ostringstream os;
    os << "node " << v << " scheduled a self-delivery with delay "
       << delay << at_time(net.now());
    report(os.str());
  }
  if (net.finished(v) && v != delivering_to_) {
    std::ostringstream os;
    os << "spontaneous self-schedule by finished node " << v
       << at_time(net.now());
    report(os.str());
  }
}

void DefaultInvariantChecker::on_deliver(const Network& net, NodeId to,
                                         const Message& m, double t) {
  ensure_sized(net);
  ++deliveries_seen_;
  if (t < last_now_) {
    std::ostringstream os;
    os << "clock ran backwards: delivery at t=" << t << " after t="
       << last_now_;
    report(os.str());
  }
  last_now_ = t;
  if (m.edge == kNoEdge) {
    if (m.from != to) {
      std::ostringstream os;
      os << "self-delivery scheduled by node " << m.from
         << " delivered to node " << to << at_time(t);
      report(os.str());
    }
  } else if (m.edge < 0 || m.edge >= net.graph().edge_count()) {
    std::ostringstream os;
    os << "delivery over out-of-range edge " << m.edge << at_time(t);
    report(os.str());
  } else {
    const std::size_t ch = channel_of(net, m.from, m.edge);
    auto& chan = channels_[ch];
    auto& dups = dup_arrivals_[ch];
    if (!chan.empty() && chan.front() == t) {
      chan.pop_front();
    } else if (const auto dup_it = dups.find(t); dup_it != dups.end()) {
      // A phantom duplicate landing at its recorded arrival time.
      dups.erase(dup_it);
    } else if (chan.empty()) {
      std::ostringstream os;
      os << "delivery to node " << to << " over edge " << m.edge
         << " without a matching send" << at_time(t);
      report(os.str());
    } else {
      std::ostringstream os;
      os << "FIFO order violated on edge " << m.edge
         << ": oldest outstanding send arrives at " << chan.front()
         << " but a delivery happened" << at_time(t);
      report(os.str());
      chan.pop_front();
    }
    if (faults_ != nullptr) {
      if (faults_->link_down(m.edge, t)) {
        std::ostringstream os;
        os << "delivery over edge " << m.edge
           << " while the link is down" << at_time(t);
        report(os.str());
      }
      if (faults_->crashed(to, t)) {
        std::ostringstream os;
        os << "delivery to node " << to << " after its crash"
           << at_time(t);
        report(os.str());
      }
    }
    // Independent replay of the ARQ receiver: checksum-valid DATA
    // frame seqs must hand up a contiguous prefix per channel
    // (check_arq compares). Invalid frames are what receivers silently
    // discard, so they are tallied for the masking rule instead of
    // replayed.
    if (m.type == kArqData || m.type == kArqAck) {
      if (!arq_frame_valid(m)) {
        ++arq_invalid_[ch];
        ++invalid_seen_;
      } else if (m.type == kArqData) {
        std::int64_t& expected = arq_expected_[ch];
        if (const std::int64_t seq = m.data[0]; seq == expected) {
          ++expected;
          auto& buf = arq_buffered_[ch];
          while (buf.erase(expected) != 0) ++expected;
        } else if (seq > expected) {
          arq_buffered_[ch].insert(seq);
        }
      }
    }
    if (net.graph().other(m.edge, m.from) != to) {
      std::ostringstream os;
      os << "edge message from node " << m.from << " over edge "
         << m.edge << " delivered to node " << to
         << ", not the opposite endpoint" << at_time(t);
      report(os.str());
    }
  }
  delivering_to_ = to;
}

void DefaultInvariantChecker::on_drop(const Network& net, NodeId from,
                                      EdgeId e, MsgClass cls,
                                      FaultDropReason /*reason*/) {
  ensure_sized(net);
  ++drops_seen_;
  // The attempt is charged to the ledger even though nothing was
  // queued, so it joins the send tally — but not the channel queue.
  auto& tally = cls == MsgClass::kAlgorithm  ? sent_algorithm_
                : cls == MsgClass::kControl  ? sent_control_
                                             : sent_recovery_;
  ++tally[static_cast<std::size_t>(e)];
  const Edge& edge = net.graph().edge(e);
  if (edge.u != from && edge.v != from) {
    std::ostringstream os;
    os << "node " << from << " dropped-send on non-incident edge " << e
       << at_time(net.now());
    report(os.str());
  }
}

void DefaultInvariantChecker::on_duplicate(const Network& net,
                                           NodeId from, EdgeId e,
                                           double arrival) {
  ensure_sized(net);
  ++dups_seen_;
  if (arrival < net.now()) {
    std::ostringstream os;
    os << "duplicate on edge " << e << " scheduled into the past ("
       << arrival << ")" << at_time(net.now());
    report(os.str());
  }
  dup_arrivals_[channel_of(net, from, e)].insert(arrival);
}

void DefaultInvariantChecker::on_garble(const Network& net, NodeId from,
                                        EdgeId e, double arrival) {
  ensure_sized(net);
  ++garbles_seen_;
  if (arrival < net.now()) {
    std::ostringstream os;
    os << "garbled send on edge " << e << " scheduled into the past ("
       << arrival << ")" << at_time(net.now());
    report(os.str());
  }
  ++garbled_sent_[channel_of(net, from, e)];
}

void DefaultInvariantChecker::on_finish(const Network& net, NodeId v,
                                        double t) {
  ensure_sized(net);
  if (t != net.now()) {
    std::ostringstream os;
    os << "node " << v << " finish time " << t
       << " differs from the clock " << net.now();
    report(os.str());
  }
}

void DefaultInvariantChecker::check_final(const Network& net) {
  ensure_sized(net);
  const Graph& g = net.graph();
  const RunStats& stats = net.stats();

  // Ledger conservation: RunStats totals vs the per-edge counters, and
  // the engine's counters vs this checker's independent tally.
  std::int64_t algo_msgs = 0;
  std::int64_t ctrl_msgs = 0;
  std::int64_t rec_msgs = 0;
  Weight algo_cost = 0;
  Weight ctrl_cost = 0;
  Weight rec_cost = 0;
  std::int64_t total_sends = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto i = static_cast<std::size_t>(e);
    const std::int64_t a = net.edge_message_count(e, MsgClass::kAlgorithm);
    const std::int64_t c = net.edge_message_count(e, MsgClass::kControl);
    const std::int64_t r = net.edge_message_count(e, MsgClass::kRecovery);
    algo_msgs += a;
    ctrl_msgs += c;
    rec_msgs += r;
    algo_cost += a * g.weight(e);
    ctrl_cost += c * g.weight(e);
    rec_cost += r * g.weight(e);
    total_sends += a + c + r;
    if (a != sent_algorithm_[i] || c != sent_control_[i] ||
        r != sent_recovery_[i]) {
      std::ostringstream os;
      os << "edge " << e << " per-class counters (" << a << ", " << c
         << ", " << r << ") disagree with the observed sends ("
         << sent_algorithm_[i] << ", " << sent_control_[i] << ", "
         << sent_recovery_[i] << ")";
      report(os.str());
    }
  }
  if (algo_msgs != stats.algorithm_messages ||
      ctrl_msgs != stats.control_messages ||
      rec_msgs != stats.recovery_messages ||
      algo_cost != stats.algorithm_cost ||
      ctrl_cost != stats.control_cost ||
      rec_cost != stats.recovery_cost) {
    std::ostringstream os;
    os << "ledger conservation failed: per-edge sums give msgs=("
       << algo_msgs << ", " << ctrl_msgs << ", " << rec_msgs
       << ") cost=(" << algo_cost << ", " << ctrl_cost << ", "
       << rec_cost << ") but RunStats holds msgs=("
       << stats.algorithm_messages << ", " << stats.control_messages
       << ", " << stats.recovery_messages << ") cost=("
       << stats.algorithm_cost << ", " << stats.control_cost << ", "
       << stats.recovery_cost << ")";
    report(os.str());
  }
  if (stats.events != deliveries_seen_) {
    std::ostringstream os;
    os << "RunStats counts " << stats.events << " deliveries but "
       << deliveries_seen_ << " were observed (checker attached late?)";
    report(os.str());
  }
  if (net.idle()) {
    std::int64_t undelivered = 0;
    for (const auto& chan : channels_) {
      undelivered += static_cast<std::int64_t>(chan.size());
    }
    if (undelivered != 0) {
      std::ostringstream os;
      os << undelivered
         << " sent message(s) never delivered on a quiescent network";
      report(os.str());
    }
    std::int64_t undelivered_dups = 0;
    for (const auto& dups : dup_arrivals_) {
      undelivered_dups += static_cast<std::int64_t>(dups.size());
    }
    if (undelivered_dups != 0) {
      std::ostringstream os;
      os << undelivered_dups
         << " phantom duplicate(s) never delivered on a quiescent "
            "network";
      report(os.str());
    }
    // The garble masking rule: invalid ARQ frames can only come from
    // recorded garbles on the same directed channel (a duplicate of a
    // garbled frame repeats the corruption, but the fate bands are
    // disjoint, so a garbled send is never also duplicated).
    for (std::size_t ch = 0; ch < arq_invalid_.size(); ++ch) {
      if (arq_invalid_[ch] > garbled_sent_[ch]) {
        std::ostringstream os;
        os << "channel " << ch << " delivered " << arq_invalid_[ch]
           << " invalid ARQ frame(s) but only " << garbled_sent_[ch]
           << " garble(s) were recorded on it";
        report(os.str());
      }
    }
    // Attempts that were dropped never become deliveries; surviving
    // duplicates add deliveries the tally never saw as sends.
    if (total_sends - drops_seen_ + dups_seen_ + self_schedules_seen_ !=
        deliveries_seen_) {
      std::ostringstream os;
      os << "event conservation failed: " << total_sends << " sends - "
         << drops_seen_ << " drops + " << dups_seen_ << " duplicates + "
         << self_schedules_seen_ << " self-schedules vs "
         << deliveries_seen_ << " deliveries at quiescence";
      report(os.str());
    }
  }
}

void DefaultInvariantChecker::check_arq(ProcessHost& host) {
  const Graph& g = host.graph();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto* arq = dynamic_cast<ArqHost*>(&host.process(v));
    if (arq == nullptr) {
      std::ostringstream os;
      os << "check_arq: node " << v << " is not wrapped by arq_factory";
      report(os.str());
      continue;
    }
    for (const EdgeId e : g.incident(v)) {
      const NodeId peer_node = g.other(e, v);
      const Edge& edge = g.edge(e);
      // The directed channel carrying DATA from the peer to v.
      const std::size_t ch = static_cast<std::size_t>(2 * e) +
                             (peer_node == edge.u ? 0 : 1);
      const std::int64_t expected = arq->next_expected_in(e);
      const std::int64_t delivered = arq->delivered_up(e);
      if (delivered != expected) {
        std::ostringstream os;
        os << "ARQ exactly-once broken at node " << v << " edge " << e
           << ": delivered " << delivered << " inner messages but next "
           << "expected seq is " << expected;
        report(os.str());
      }
      if (sized_ && expected != arq_expected_[ch]) {
        std::ostringstream os;
        os << "ARQ receiver state at node " << v << " edge " << e
           << " (next expected " << expected
           << ") diverges from the checker's frame replay ("
           << arq_expected_[ch] << ")";
        report(os.str());
      }
      if (auto* peer = dynamic_cast<ArqHost*>(&host.process(peer_node));
          peer != nullptr && delivered > peer->data_sent(e)) {
        std::ostringstream os;
        os << "ARQ delivered " << delivered << " inner messages at node "
           << v << " edge " << e << " but the peer only framed "
           << peer->data_sent(e);
        report(os.str());
      }
    }
  }
}

}  // namespace csca
