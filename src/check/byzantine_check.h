// Byzantine containment checker.
//
// The fault model (fault/fault_plan.h) promises that byzantine
// corruption — equivocation and checksum-forging — originates *only*
// from the plan's configured corruption set, and only as the keyed
// per-channel draw stream dictates. This observer verifies that
// containment independently of the injector's own bookkeeping:
//
//   * every on_byzantine event names a sender inside the allowed
//     corruption set (a corruption attributed to an honest node is a
//     violation, reported with the node's id);
//   * per-sender tallies of equivocations and forgeries are exposed so
//     tests can assert that influence is bounded (and nonzero where the
//     plan says it must be);
//   * check_final replays the keyed byzantine stream against the
//     per-channel send counts this checker observed and requires the
//     observed corruption events to match the replay exactly — the
//     faulty influence is precisely the plan's draws, no more, no less.
//
// Attach to a Network via set_observer (it forwards the send/deliver
// hooks it does not use), give it the plan's corruption set (or an
// intentionally smaller set, to demonstrate a catch), and read
// ok()/violations() after the run. Sequential-engine only, like every
// InvariantObserver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"

namespace csca {

class FaultInjector;

class ByzantineContainmentChecker final : public InvariantObserver {
 public:
  /// `allowed` is the corruption set the checker will accept byzantine
  /// events from — normally FaultPlan::byzantine, but tests pass a
  /// smaller set to prove the catch fires.
  explicit ByzantineContainmentChecker(std::vector<NodeId> allowed);

  void on_send(const Network& net, NodeId from, EdgeId e, MsgClass cls,
               double delay, double arrival) override;
  void on_drop(const Network& net, NodeId from, EdgeId e, MsgClass cls,
               FaultDropReason reason) override;
  void on_byzantine(const Network& net, NodeId from, EdgeId e,
                    bool forged, double arrival) override;

  /// Enables the check_final stream replay (optional): the injector
  /// whose keyed draws the observed events must reproduce.
  void set_faults(const FaultInjector* f) { faults_ = f; }

  /// Replays the byzantine stream over the observed per-channel send
  /// counts and compares against the observed corruption tallies.
  /// Requires set_faults; a no-op without it.
  void check_final(const Network& net);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const {
    return violations_;
  }

  std::int64_t equivocations(NodeId v) const {
    return equivocations_[static_cast<std::size_t>(v)];
  }
  std::int64_t forgeries(NodeId v) const {
    return forgeries_[static_cast<std::size_t>(v)];
  }
  std::int64_t total_equivocations() const { return total_equiv_; }
  std::int64_t total_forgeries() const { return total_forge_; }

 private:
  void ensure_sized(const Network& net);
  void report(std::string what);
  void count_attempt(const Network& net, NodeId from, EdgeId e,
                     bool delivered);

  std::vector<NodeId> allowed_;
  std::vector<char> is_allowed_;  // materialized per node once sized
  std::vector<std::string> violations_;
  std::vector<std::int64_t> equivocations_;
  std::vector<std::int64_t> forgeries_;
  // Per directed channel, the attempt sequence in observed order: 1 for
  // a delivered send (on_send), 0 for a dropped one (on_drop). Both
  // consume a keyed count, but corruption only applies to delivered
  // attempts — check_final replays the stream over exactly this record.
  std::vector<std::vector<char>> attempts_;
  std::vector<std::int64_t> channel_equiv_;
  std::vector<std::int64_t> channel_forge_;
  std::int64_t total_equiv_ = 0;
  std::int64_t total_forge_ = 0;
  const FaultInjector* faults_ = nullptr;
  bool sized_ = false;
};

}  // namespace csca
