// Built-in check subjects: the repo's protocols wrapped for the
// schedule-exploration race detector.
//
// Each subject replays one protocol under an arbitrary ScheduleSpec
// with the invariant checker attached and digests the part of its
// output the model requires to be schedule-invariant:
//
//   flood      reach count + spanning-tree validity (the first-receipt
//              tree shape is legitimately schedule-dependent);
//   dfs        the full DFS tree + traversal weight (the token walk is
//              sequential, so the tree is schedule-invariant);
//   ghs        the MST edge set + weight (unique under the
//              deterministic total edge order), validated against the
//              Kruskal oracle; per-run leader agreement;
//   mst_fast   the same digest via the §8.3 parallel-guess scan;
//   spt_recur  SPT distances (strip method), validated against the
//              Dijkstra oracle;
//   spt_synch  SPT distances via synchronizer gamma_w (§9.1);
//   bf_alpha / bf_beta
//              the in-synch Bellman-Ford hosted under synchronizers
//              alpha and beta, distances validated against Dijkstra.
//
// Digest divergence on any of these is a schedule-sensitivity bug in
// the protocol (or the engine); tools/csca_check.cpp sweeps them.
#pragma once

#include "check/schedule_check.h"
#include "graph/families.h"

namespace csca {

/// All built-in subjects, in a stable order. Every graph handed to them
/// must be connected with n >= 2. Each subject carries both the
/// sequential runner and a run_par runner for the sharded engine.
/// The sweep families they replay over live in graph/families.h
/// (builtin_families) — one source of truth with the bench harness.
std::vector<CheckSubject> builtin_subjects();

}  // namespace csca
