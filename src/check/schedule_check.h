// Schedule-exploration race detector (the asynchronous analog of a
// data-race checker).
//
// The paper's correctness quantifier (§1.3) ranges over *every* delay
// assignment in [0, w(e)]: a protocol is correct only if its output is
// identical under all admissible schedules. A single test run fixes one
// schedule and so cannot distinguish "correct" from "correct under the
// schedule I happened to get". This module replays a protocol across a
// portfolio of delay models and seeds — the exact worst case, random
// uniform and two-point adversaries, and the deterministic per-edge
// EdgeFractionDelay — with the DefaultInvariantChecker attached to
// every run, and reports
//
//   * invariant violations, tagged with the schedule that produced them;
//   * digest divergences: the protocol-supplied output digest (e.g. an
//     MST edge set, SPT distances) differing between two schedules;
//   * errors: exceptions escaping a run (engine precondition failures,
//     protocol ensure()s), likewise tagged.
//
// Every finding carries the schedule name and network seed, so it
// reproduces exactly by re-running that one (subject, graph, schedule)
// triple. tools/csca_check.cpp sweeps the repo's protocols x graph
// families through this machinery; docs/checking.md is the manual.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "par/shard_engine.h"
#include "par/timewarp_engine.h"
#include "sim/network.h"

namespace csca {

/// One admissible schedule: a delay-model recipe plus the network seed
/// driving any randomness in it. The recipe is a factory because each
/// replay needs a fresh model. When make_faults is set, the run also
/// executes under the FaultPlan it builds for the graph (keyed off the
/// same seed), and the sweep switches to degraded-mode reporting: see
/// check_subject.
struct ScheduleSpec {
  std::string name;  ///< human-readable, parameters included
  std::uint64_t seed = 1;
  std::function<std::unique_ptr<DelayModel>()> make_delay;
  std::function<FaultPlan(const Graph&)> make_faults;  ///< optional
  /// Optional dynamic-topology schedule composed into the injector
  /// (liveness intervals only — single-run sweeps never cross an epoch
  /// boundary, so weight re-draws do not apply here; see
  /// fault/churn_plan.h). Active churn switches the sweep to
  /// degraded-mode reporting exactly like an active fault plan.
  std::function<ChurnPlan(const Graph&)> make_churn;
};

/// The standard portfolio (8 schedules): exact worst case, three
/// uniform draws, two two-point adversaries, two deterministic per-edge
/// fraction assignments. The exact schedule comes first and serves as
/// the digest reference.
std::vector<ScheduleSpec> default_portfolio();

/// Result of replaying a subject once under one schedule.
struct SubjectOutcome {
  std::string digest;  ///< schedule-invariant output fingerprint
  std::vector<std::string> violations;  ///< checker + subject findings
  /// Protocol-level oracle mismatches observed under an *active* fault
  /// plan. Faults are allowed to degrade a protocol's output (that is
  /// what the sweep measures), so these are reported separately from
  /// violations, which remain hard failures of the simulation model.
  std::vector<std::string> degraded;
  RunStats stats;      ///< the run's cost ledger
  int finished_nodes = 0;  ///< nodes that called finish() by end of run
  bool failed = false;  ///< an exception escaped the run
  std::string error;
};

/// Which parallel engine a sharded replay runs on. Both honor the same
/// bit-identity contract against the keyed sequential Network, so the
/// portfolio means the same thing on either — the backend dimension
/// exists to catch bugs specific to one engine's synchronization
/// (conservative windows vs optimistic rollback).
enum class ParBackend {
  kShard,     ///< conservative windows (par/shard_engine.h)
  kTimeWarp,  ///< optimistic rollback + GVT commit (par/timewarp_engine.h)
};

/// A protocol adapter: given a graph and a schedule, run the protocol
/// to completion with the invariant checker attached and digest its
/// output. The digest must cover exactly the schedule-invariant part of
/// the output (an MST edge set, distances — not a first-receipt tree).
/// run_par replays the same subject on the selected parallel engine
/// with the given shard count — same digest contract, but without the
/// sequential-only invariant observer.
struct CheckSubject {
  std::string name;
  std::function<SubjectOutcome(const Graph&, const ScheduleSpec&)> run;
  std::function<SubjectOutcome(const Graph&, const ScheduleSpec&, int,
                               ParBackend)>
      run_par;
};

/// One reportable finding of a schedule sweep.
struct CheckFinding {
  std::string subject;
  std::string graph;
  std::string schedule;
  std::uint64_t seed = 0;
  std::string kind;  ///< "invariant" | "divergence" | "error" | "degraded"
  std::string detail;
};

struct ScheduleCheckReport {
  int runs = 0;
  int runs_completed = 0;     ///< runs no exception escaped
  int runs_all_finished = 0;  ///< runs where every node finished
  /// Runs with at least one "degraded" finding. A single faulted run
  /// can surface many oracle mismatches (one per wrong distance, say);
  /// summaries that want "how many runs degraded" must use this, not
  /// the finding count, or one noisy run masquerades as several.
  int runs_degraded = 0;
  std::string reference_schedule;
  std::string reference_digest;
  std::vector<CheckFinding> findings;
  /// "degraded" findings are expected under an active fault plan and do
  /// not fail the sweep; everything else does.
  bool ok() const {
    for (const CheckFinding& f : findings) {
      if (f.kind != "degraded") return false;
    }
    return true;
  }
};

/// Replays `subject` on g under every schedule of the portfolio. The
/// first schedule's digest is the reference; later digests must match
/// it. graph_name labels findings. With shards > 0, runs go through
/// subject.run_par on the sharded engine instead (the digest contract
/// is engine-independent, so the report means the same thing).
///
/// Schedules with an active fault plan are exempt from the digest
/// comparison — which messages a keyed fault stream fates depends on
/// the delay schedule, so divergence between faulted schedules is
/// expected, not a bug — and their oracle mismatches surface as
/// "degraded" findings instead of "invariant" ones.
ScheduleCheckReport check_subject(const CheckSubject& subject,
                                  const Graph& g,
                                  const std::string& graph_name,
                                  std::span<const ScheduleSpec> portfolio,
                                  int shards = 0,
                                  ParBackend backend = ParBackend::kShard);

/// Digests read results through ProcessHost, so one digest closure
/// validates the sequential and the sharded engine bit-for-bit.
using DigestFn =
    std::function<std::string(ProcessHost&, std::vector<std::string>&)>;

/// Building block for plain-Process subjects: constructs a Network from
/// the factory under `spec`, attaches a DefaultInvariantChecker, runs
/// to quiescence, runs the final ledger checks, and applies `digest` to
/// the quiesced network. The digest callback may append protocol-level
/// validation failures (oracle mismatches, agreement violations) to the
/// violations list it is handed — under an active fault plan that list
/// is SubjectOutcome::degraded instead of violations. Exceptions become
/// a failed outcome. When spec.make_faults yields an active plan, a
/// FaultInjector is attached to both the network and the checker.
SubjectOutcome run_checked(const Graph& g, const ProcessFactory& factory,
                           const ScheduleSpec& spec, const DigestFn& digest);

/// Parallel counterpart of run_checked: the same factory and digest on
/// a ShardEngine with `shards` shards. The invariant observer is a
/// sequential-engine feature and is not attached; digest-level
/// validation (oracles, agreement) still runs.
SubjectOutcome run_on_shards(const Graph& g, const ProcessFactory& factory,
                             const ScheduleSpec& spec, int shards,
                             const DigestFn& digest);

/// Optimistic counterpart of run_on_shards: the same factory and digest
/// on a TimeWarpEngine. Deliveries that are speculated and rolled back
/// never reach the committed ledger the digest reads, so the outcome is
/// byte-comparable to both other engines.
SubjectOutcome run_on_timewarp(const Graph& g, const ProcessFactory& factory,
                               const ScheduleSpec& spec, int shards,
                               const DigestFn& digest);

}  // namespace csca
