#include "check/subjects.h"

#include <algorithm>
#include <sstream>

#include "check/invariants.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/tree.h"
#include "mst/ghs.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"
#include "spt/recur.h"
#include "sync/synchronizer.h"

namespace csca {

namespace {

std::string join(const std::vector<std::int64_t>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) os << ",";
    os << xs[i];
  }
  return os.str();
}

SubjectOutcome run_flood_subject(const Graph& g,
                                 const ScheduleSpec& spec) {
  return run_checked(
      g,
      [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); },
      spec, [&g](Network& net, std::vector<std::string>& violations) {
        int reached = 0;
        std::vector<EdgeId> parents(
            static_cast<std::size_t>(g.node_count()), kNoEdge);
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const auto& p = net.process_as<FloodProcess>(v);
          if (p.reached()) ++reached;
          parents[static_cast<std::size_t>(v)] = p.parent_edge();
        }
        bool spanning = false;
        try {
          spanning = RootedTree::from_parent_edges(g, 0,
                                                   std::move(parents))
                         .spanning();
        } catch (const std::exception& e) {
          violations.push_back(
              std::string("first-receipt edges are not a tree: ") +
              e.what());
        }
        std::ostringstream os;
        os << "reached=" << reached << "/" << g.node_count()
           << " spanning=" << (spanning ? 1 : 0);
        return os.str();
      });
}

SubjectOutcome run_dfs_subject(const Graph& g, const ScheduleSpec& spec) {
  return run_checked(
      g, [](NodeId v) { return std::make_unique<DfsProcess>(v, 0); },
      spec, [&g](Network& net, std::vector<std::string>&) {
        std::vector<std::int64_t> tree;
        int visited = 0;
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const auto& p = net.process_as<DfsProcess>(v);
          if (p.visited()) ++visited;
          if (p.parent_edge() != kNoEdge) tree.push_back(p.parent_edge());
        }
        std::sort(tree.begin(), tree.end());
        std::ostringstream os;
        os << "visited=" << visited << " tree=[" << join(tree) << "] w="
           << net.process_as<DfsProcess>(0).center_estimate()
           << " done=" << (net.process_as<DfsProcess>(0).done() ? 1 : 0);
        return os.str();
      });
}

SubjectOutcome run_ghs_subject(const Graph& g, const ScheduleSpec& spec,
                               GhsMode mode) {
  return run_checked(
      g,
      [&g, mode](NodeId v) {
        return std::make_unique<GhsProcess>(g, v, mode);
      },
      spec, [&g](Network& net, std::vector<std::string>& violations) {
        NodeId leader = kNoNode;
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const auto& p = net.process_as<GhsProcess>(v);
          if (!p.done()) {
            violations.push_back("node " + std::to_string(v) +
                                 " never terminated");
            return std::string("unterminated");
          }
          if (v == 0) {
            leader = p.leader();
          } else if (p.leader() != leader) {
            violations.push_back(
                "leader disagreement: node " + std::to_string(v) +
                " elected " + std::to_string(p.leader()) +
                ", node 0 elected " + std::to_string(leader));
          }
        }
        std::vector<std::int64_t> mst;
        Weight w = 0;
        for (EdgeId e = 0; e < g.edge_count(); ++e) {
          const auto& pu = net.process_as<GhsProcess>(g.edge(e).u);
          const auto& pv = net.process_as<GhsProcess>(g.edge(e).v);
          if (pu.branch(e) != pv.branch(e)) {
            violations.push_back("edge " + std::to_string(e) +
                                 " branch state disagrees between its "
                                 "endpoints");
          }
          if (pu.branch(e)) {
            mst.push_back(e);
            w += g.weight(e);
          }
        }
        std::vector<EdgeId> oracle = kruskal_mst(g);
        std::sort(oracle.begin(), oracle.end());
        if (!std::equal(mst.begin(), mst.end(), oracle.begin(),
                        oracle.end(), [](std::int64_t a, EdgeId b) {
                          return a == static_cast<std::int64_t>(b);
                        })) {
          violations.push_back(
              "computed MST differs from the Kruskal oracle");
        }
        std::ostringstream os;
        os << "mst=[" << join(mst) << "] w=" << w;
        return os.str();
      });
}

SubjectOutcome run_spt_recur_subject(const Graph& g,
                                     const ScheduleSpec& spec) {
  const Weight tau = std::max<Weight>(1, g.max_weight());
  return run_checked(
      g,
      [&g, tau](NodeId v) {
        return std::make_unique<SptRecurProcess>(g, v, 0, tau);
      },
      spec, [&g](Network& net, std::vector<std::string>& violations) {
        std::vector<std::int64_t> dist;
        for (NodeId v = 0; v < g.node_count(); ++v) {
          dist.push_back(net.process_as<SptRecurProcess>(v).dist());
        }
        const ShortestPaths sp = dijkstra(g, 0);
        if (dist != sp.dist) {
          violations.push_back(
              "distances differ from the Dijkstra oracle");
        }
        return "dist=[" + join(dist) + "]";
      });
}

// Shared driver for the synchronizer-hosted Bellman-Ford subjects: a
// reference run on the weighted synchronous engine supplies t_pi, then
// the hosted asynchronous run executes under `spec` with the invariant
// checker attached to the underlying network.
SubjectOutcome run_synchronized_bf(const Graph& g,
                                   const ScheduleSpec& spec,
                                   SynchronizerKind kind) {
  SubjectOutcome out;
  try {
    const Graph ng =
        kind == SynchronizerKind::kGammaW ? normalized_copy(g) : g;
    std::vector<Weight> orig_w(static_cast<std::size_t>(g.edge_count()));
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      orig_w[static_cast<std::size_t>(e)] = g.weight(e);
    }
    const auto factory = [&orig_w](NodeId v) {
      return std::make_unique<InSynchBellmanFord>(v, 0, &orig_w);
    };
    SyncEngine ref(ng, factory, kind == SynchronizerKind::kGammaW);
    const RunStats sync_stats = ref.run();
    const auto t_pi =
        static_cast<std::int64_t>(sync_stats.completion_time) + 1;

    SynchronizedNetwork snet(ng, factory, kind, /*k=*/2, t_pi,
                             spec.make_delay(), spec.seed);
    DefaultInvariantChecker checker;
    snet.network().set_observer(&checker);
    const SynchronizerRun run = snet.run();
    checker.check_final(snet.network());
    snet.network().set_observer(nullptr);
    out.violations = checker.violations();
    if (!run.hosted_all_finished) {
      out.violations.push_back(
          "hosted protocol unfinished after t_pi pulses");
    }

    const ShortestPaths sp = dijkstra(g, 0);
    std::vector<std::int64_t> dist;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const Weight d = snet.hosted_as<InSynchBellmanFord>(v).dist();
      dist.push_back(d);
      if (d != sp.dist[static_cast<std::size_t>(v)]) {
        out.violations.push_back(
            "distance at node " + std::to_string(v) + " is " +
            std::to_string(d) + ", Dijkstra oracle says " +
            std::to_string(sp.dist[static_cast<std::size_t>(v)]));
      }
    }
    out.digest = "dist=[" + join(dist) + "]";
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

}  // namespace

std::vector<CheckSubject> builtin_subjects() {
  std::vector<CheckSubject> out;
  out.push_back({"flood", run_flood_subject});
  out.push_back({"dfs", run_dfs_subject});
  out.push_back({"ghs", [](const Graph& g, const ScheduleSpec& s) {
                   return run_ghs_subject(g, s, GhsMode::kSerialScan);
                 }});
  out.push_back({"mst_fast", [](const Graph& g, const ScheduleSpec& s) {
                   return run_ghs_subject(g, s,
                                          GhsMode::kParallelGuess);
                 }});
  out.push_back({"spt_recur", run_spt_recur_subject});
  out.push_back({"spt_synch", [](const Graph& g, const ScheduleSpec& s) {
                   return run_synchronized_bf(
                       g, s, SynchronizerKind::kGammaW);
                 }});
  out.push_back({"bf_alpha", [](const Graph& g, const ScheduleSpec& s) {
                   return run_synchronized_bf(g, s,
                                              SynchronizerKind::kAlpha);
                 }});
  out.push_back({"bf_beta", [](const Graph& g, const ScheduleSpec& s) {
                   return run_synchronized_bf(g, s,
                                              SynchronizerKind::kBeta);
                 }});
  return out;
}

}  // namespace csca
