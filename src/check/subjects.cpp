#include "check/subjects.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "check/invariants.h"
#include "fault/fault_injector.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/tree.h"
#include "mst/ghs.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"
#include "spt/recur.h"
#include "sync/synchronizer.h"

namespace csca {

namespace {

std::string join(const std::vector<std::int64_t>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) os << ",";
    os << xs[i];
  }
  return os.str();
}

// Each plain subject is one (factory, digest) pair; run_checked and
// run_on_shards consume the same pair, which is what makes the
// cross-engine determinism contract checkable per subject. The digest
// closures capture the graph by reference: they are only invoked inside
// the run_* call, while the caller's graph is alive.

ProcessFactory flood_factory(const Graph&) {
  return [](NodeId v) { return std::make_unique<FloodProcess>(v, 0); };
}

DigestFn flood_digest(const Graph& g) {
  return [&g](ProcessHost& net, std::vector<std::string>& violations) {
    int reached = 0;
    std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                                kNoEdge);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = net.process_as<FloodProcess>(v);
      if (p.reached()) ++reached;
      parents[static_cast<std::size_t>(v)] = p.parent_edge();
    }
    bool spanning = false;
    try {
      spanning =
          RootedTree::from_parent_edges(g, 0, std::move(parents)).spanning();
    } catch (const std::exception& e) {
      violations.push_back(
          std::string("first-receipt edges are not a tree: ") + e.what());
    }
    std::ostringstream os;
    os << "reached=" << reached << "/" << g.node_count()
       << " spanning=" << (spanning ? 1 : 0);
    return os.str();
  };
}

ProcessFactory dfs_factory(const Graph&) {
  return [](NodeId v) { return std::make_unique<DfsProcess>(v, 0); };
}

DigestFn dfs_digest(const Graph& g) {
  return [&g](ProcessHost& net, std::vector<std::string>&) {
    std::vector<std::int64_t> tree;
    int visited = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = net.process_as<DfsProcess>(v);
      if (p.visited()) ++visited;
      if (p.parent_edge() != kNoEdge) tree.push_back(p.parent_edge());
    }
    std::sort(tree.begin(), tree.end());
    std::ostringstream os;
    os << "visited=" << visited << " tree=[" << join(tree) << "] w="
       << net.process_as<DfsProcess>(0).center_estimate()
       << " done=" << (net.process_as<DfsProcess>(0).done() ? 1 : 0);
    return os.str();
  };
}

ProcessFactory ghs_factory(const Graph& g, GhsMode mode) {
  return [&g, mode](NodeId v) {
    return std::make_unique<GhsProcess>(g, v, mode);
  };
}

DigestFn ghs_digest(const Graph& g) {
  return [&g](ProcessHost& net, std::vector<std::string>& violations) {
    NodeId leader = kNoNode;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = net.process_as<GhsProcess>(v);
      if (!p.done()) {
        violations.push_back("node " + std::to_string(v) +
                             " never terminated");
        return std::string("unterminated");
      }
      if (v == 0) {
        leader = p.leader();
      } else if (p.leader() != leader) {
        violations.push_back(
            "leader disagreement: node " + std::to_string(v) + " elected " +
            std::to_string(p.leader()) + ", node 0 elected " +
            std::to_string(leader));
      }
    }
    std::vector<std::int64_t> mst;
    Weight w = 0;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto& pu = net.process_as<GhsProcess>(g.edge(e).u);
      const auto& pv = net.process_as<GhsProcess>(g.edge(e).v);
      if (pu.branch(e) != pv.branch(e)) {
        violations.push_back("edge " + std::to_string(e) +
                             " branch state disagrees between its "
                             "endpoints");
      }
      if (pu.branch(e)) {
        mst.push_back(e);
        w += g.weight(e);
      }
    }
    std::vector<EdgeId> oracle = kruskal_mst(g);
    std::sort(oracle.begin(), oracle.end());
    if (!std::equal(mst.begin(), mst.end(), oracle.begin(), oracle.end(),
                    [](std::int64_t a, EdgeId b) {
                      return a == static_cast<std::int64_t>(b);
                    })) {
      violations.push_back("computed MST differs from the Kruskal oracle");
    }
    std::ostringstream os;
    os << "mst=[" << join(mst) << "] w=" << w;
    return os.str();
  };
}

ProcessFactory spt_recur_factory(const Graph& g) {
  const Weight tau = std::max<Weight>(1, g.max_weight());
  return [&g, tau](NodeId v) {
    return std::make_unique<SptRecurProcess>(g, v, 0, tau);
  };
}

DigestFn spt_recur_digest(const Graph& g) {
  return [&g](ProcessHost& net, std::vector<std::string>& violations) {
    std::vector<std::int64_t> dist;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      dist.push_back(net.process_as<SptRecurProcess>(v).dist());
    }
    const ShortestPaths sp = dijkstra(g, 0);
    if (dist != sp.dist) {
      violations.push_back("distances differ from the Dijkstra oracle");
    }
    return "dist=[" + join(dist) + "]";
  };
}

// Shared driver for the synchronizer-hosted Bellman-Ford subjects: a
// reference run on the weighted synchronous engine supplies t_pi, then
// the hosted asynchronous run executes under `spec` — on the sequential
// Network with the invariant checker attached (shards == 0), or on the
// selected parallel engine via the synchronizer's host_factory
// (shards > 0). The SynchronizedNetwork is built either way: it owns
// the shared coordination data (beta tree, gamma partitions) the hosts
// read.
SubjectOutcome run_synchronized_bf(const Graph& g, const ScheduleSpec& spec,
                                   SynchronizerKind kind, int shards,
                                   ParBackend backend) {
  SubjectOutcome out;
  try {
    const Graph ng =
        kind == SynchronizerKind::kGammaW ? normalized_copy(g) : g;
    std::vector<Weight> orig_w(static_cast<std::size_t>(g.edge_count()));
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      orig_w[static_cast<std::size_t>(e)] = g.weight(e);
    }
    const auto factory = [&orig_w](NodeId v) {
      return std::make_unique<InSynchBellmanFord>(v, 0, &orig_w);
    };
    // The t_pi reference run stays fault-free: it supplies the bound the
    // hosted (possibly faulted) run is judged against.
    SyncEngine ref(ng, factory, kind == SynchronizerKind::kGammaW);
    const RunStats sync_stats = ref.run();
    const auto t_pi =
        static_cast<std::int64_t>(sync_stats.completion_time) + 1;

    // Injector built against ng: outage/crash builtins scale their
    // times off edge weights, and ng is the graph the engine runs on.
    std::optional<FaultInjector> inj;
    if (spec.make_faults || spec.make_churn) {
      const FaultPlan plan =
          spec.make_faults ? spec.make_faults(ng) : FaultPlan{};
      if (spec.make_churn) {
        inj.emplace(plan, spec.make_churn(ng), ng, spec.seed);
      } else {
        inj.emplace(plan, ng, spec.seed);
      }
      if (!inj->active()) inj.reset();
    }
    // Under active faults, oracle shortfalls are expected degradation.
    std::vector<std::string>& oracle = inj ? out.degraded : out.violations;

    SynchronizedNetwork snet(ng, factory, kind, /*k=*/2, t_pi,
                             spec.make_delay(), spec.seed);
    ProcessHost* host = nullptr;
    std::unique_ptr<ShardEngine> par;
    std::unique_ptr<TimeWarpEngine> opt_par;
    int hosted_finished = 0;
    if (shards > 0) {
      if (backend == ParBackend::kTimeWarp) {
        opt_par = std::make_unique<TimeWarpEngine>(
            ng, snet.host_factory(factory), spec.make_delay(), spec.seed,
            TimeWarpEngine::Options{shards, 0, 256, {}});
        if (inj) opt_par->set_faults(&*inj);
        out.stats = opt_par->run();
        host = opt_par.get();
      } else {
        par = std::make_unique<ShardEngine>(
            ng, snet.host_factory(factory), spec.make_delay(), spec.seed,
            ShardEngine::Options{shards, 0, {}});
        if (inj) par->set_faults(&*inj);
        out.stats = par->run();
        host = par.get();
      }
      for (NodeId v = 0; v < ng.node_count(); ++v) {
        if (SynchronizedNetwork::hosted_finished_in(*host, v)) {
          ++hosted_finished;
        }
      }
      if (hosted_finished != ng.node_count()) {
        oracle.push_back("hosted protocol unfinished after t_pi pulses");
      }
    } else {
      DefaultInvariantChecker checker;
      if (inj) {
        snet.network().set_faults(&*inj);
        checker.set_faults(&*inj);
      }
      snet.network().set_observer(&checker);
      const SynchronizerRun run = snet.run();
      checker.check_final(snet.network());
      snet.network().set_observer(nullptr);
      out.violations = checker.violations();
      out.stats = run.stats;
      if (!run.hosted_all_finished) {
        oracle.push_back("hosted protocol unfinished after t_pi pulses");
      }
      host = &snet.network();
      for (NodeId v = 0; v < ng.node_count(); ++v) {
        if (SynchronizedNetwork::hosted_finished_in(*host, v)) {
          ++hosted_finished;
        }
      }
    }
    out.finished_nodes = hosted_finished;

    const ShortestPaths sp = dijkstra(g, 0);
    std::vector<std::int64_t> dist;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const Weight d = dynamic_cast<InSynchBellmanFord&>(
                           SynchronizedNetwork::hosted_in(*host, v))
                           .dist();
      dist.push_back(d);
      if (d != sp.dist[static_cast<std::size_t>(v)]) {
        oracle.push_back(
            "distance at node " + std::to_string(v) + " is " +
            std::to_string(d) + ", Dijkstra oracle says " +
            std::to_string(sp.dist[static_cast<std::size_t>(v)]));
      }
    }
    out.digest = "dist=[" + join(dist) + "]";
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

// Wraps a (factory, digest) pair into the sequential and parallel
// runners of one CheckSubject.
template <typename FactoryFn, typename DigestMakerFn>
CheckSubject plain_subject(std::string name, FactoryFn make_factory,
                           DigestMakerFn make_digest) {
  CheckSubject out;
  out.name = std::move(name);
  out.run = [make_factory, make_digest](const Graph& g,
                                        const ScheduleSpec& s) {
    return run_checked(g, make_factory(g), s, make_digest(g));
  };
  out.run_par = [make_factory, make_digest](const Graph& g,
                                            const ScheduleSpec& s, int shards,
                                            ParBackend backend) {
    return backend == ParBackend::kTimeWarp
               ? run_on_timewarp(g, make_factory(g), s, shards, make_digest(g))
               : run_on_shards(g, make_factory(g), s, shards, make_digest(g));
  };
  return out;
}

CheckSubject sync_subject(std::string name, SynchronizerKind kind) {
  CheckSubject out;
  out.name = std::move(name);
  out.run = [kind](const Graph& g, const ScheduleSpec& s) {
    return run_synchronized_bf(g, s, kind, /*shards=*/0, ParBackend::kShard);
  };
  out.run_par = [kind](const Graph& g, const ScheduleSpec& s, int shards,
                       ParBackend backend) {
    return run_synchronized_bf(g, s, kind, shards, backend);
  };
  return out;
}

}  // namespace

std::vector<CheckSubject> builtin_subjects() {
  std::vector<CheckSubject> out;
  out.push_back(plain_subject("flood", flood_factory, flood_digest));
  out.push_back(plain_subject("dfs", dfs_factory, dfs_digest));
  out.push_back(plain_subject(
      "ghs", [](const Graph& g) { return ghs_factory(g, GhsMode::kSerialScan); },
      ghs_digest));
  out.push_back(plain_subject(
      "mst_fast",
      [](const Graph& g) { return ghs_factory(g, GhsMode::kParallelGuess); },
      ghs_digest));
  out.push_back(
      plain_subject("spt_recur", spt_recur_factory, spt_recur_digest));
  out.push_back(sync_subject("spt_synch", SynchronizerKind::kGammaW));
  out.push_back(sync_subject("bf_alpha", SynchronizerKind::kAlpha));
  out.push_back(sync_subject("bf_beta", SynchronizerKind::kBeta));
  return out;
}

}  // namespace csca
