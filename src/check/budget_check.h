// The ARQ-aware controller invariant (docs/faults.md, docs/checking.md).
//
// With a ControlMeter threaded from RunEnv into both the controller's
// root and the ARQ wrap layer, a ControlledRun's permit counter must
// upper-bound everything the ledger billed:
//
//   (B1) total billed cost (algorithm + control) <= permits_issued;
//   (B2) control cost alone                      <= permits_issued;
//   (B3) a run that never exhausted stayed within the threshold:
//        !exhausted  =>  permits_issued <= threshold.
//
// B1 is the tentpole bound: every algorithm transmission consumed an
// explicitly issued permit, and every control transmission was metered
// into the implicit side of the counter, so the sum cannot escape it.
// The checks are exact (tolerance-free) for metered runs where all wire
// traffic passes through the metering ARQ layer; the fault_ctl bench
// table records them per row with tolerance 1.0 for the same reason.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"

namespace csca {

/// Verifies B1-B3 against a finished run. Returns human-readable
/// violation strings (empty = all bounds hold). `config` must be the
/// one the run was driven with (for the threshold).
std::vector<std::string> check_controller_budget(
    const ControlledRun& run, const ControllerConfig& config);

}  // namespace csca
