#include "check/byzantine_check.h"

#include <sstream>

#include "fault/fault_injector.h"

namespace csca {

ByzantineContainmentChecker::ByzantineContainmentChecker(
    std::vector<NodeId> allowed)
    : allowed_(std::move(allowed)) {}

void ByzantineContainmentChecker::ensure_sized(const Network& net) {
  if (sized_) return;
  sized_ = true;
  const auto n = static_cast<std::size_t>(net.graph().node_count());
  const auto m = static_cast<std::size_t>(net.graph().edge_count());
  is_allowed_.assign(n, 0);
  for (const NodeId v : allowed_) {
    if (v >= 0 && v < net.graph().node_count()) {
      is_allowed_[static_cast<std::size_t>(v)] = 1;
    }
  }
  equivocations_.assign(n, 0);
  forgeries_.assign(n, 0);
  attempts_.assign(2 * m, {});
  channel_equiv_.assign(2 * m, 0);
  channel_forge_.assign(2 * m, 0);
}

void ByzantineContainmentChecker::report(std::string what) {
  violations_.push_back(std::move(what));
}

void ByzantineContainmentChecker::count_attempt(const Network& net,
                                                NodeId from, EdgeId e,
                                                bool delivered) {
  ensure_sized(net);
  if (e < 0 || e >= net.graph().edge_count()) return;
  const Edge& edge = net.graph().edge(e);
  const std::size_t ch =
      static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
  attempts_[ch].push_back(delivered ? 1 : 0);
}

void ByzantineContainmentChecker::on_send(const Network& net, NodeId from,
                                          EdgeId e, MsgClass /*cls*/,
                                          double /*delay*/,
                                          double /*arrival*/) {
  count_attempt(net, from, e, true);
}

void ByzantineContainmentChecker::on_drop(const Network& net, NodeId from,
                                          EdgeId e, MsgClass /*cls*/,
                                          FaultDropReason /*reason*/) {
  count_attempt(net, from, e, false);
}

void ByzantineContainmentChecker::on_byzantine(const Network& net,
                                               NodeId from, EdgeId e,
                                               bool forged,
                                               double arrival) {
  ensure_sized(net);
  const char* kind = forged ? "forgery" : "equivocation";
  if (from < 0 || from >= net.graph().node_count()) {
    std::ostringstream os;
    os << "byzantine " << kind << " attributed to out-of-range node "
       << from;
    report(os.str());
    return;
  }
  if (is_allowed_[static_cast<std::size_t>(from)] == 0) {
    // The containment rule proper: corruption escaped the configured
    // corruption set. Name the node so the report is actionable.
    std::ostringstream os;
    os << "byzantine containment violated: " << kind << " by node "
       << from << " on edge " << e << " (t=" << arrival
       << "), which is outside the corruption set";
    report(os.str());
  }
  if (forged) {
    ++forgeries_[static_cast<std::size_t>(from)];
    ++total_forge_;
  } else {
    ++equivocations_[static_cast<std::size_t>(from)];
    ++total_equiv_;
  }
  const Edge& edge = net.graph().edge(e);
  const std::size_t ch =
      static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
  if (forged) {
    ++channel_forge_[ch];
  } else {
    ++channel_equiv_[ch];
  }
}

void ByzantineContainmentChecker::check_final(const Network& net) {
  ensure_sized(net);
  if (faults_ == nullptr) return;
  const Graph& g = net.graph();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    for (int dir = 0; dir < 2; ++dir) {
      const std::size_t ch = static_cast<std::size_t>(2 * e) +
                             static_cast<std::size_t>(dir);
      const NodeId sender = dir == 0 ? edge.u : edge.v;
      std::int64_t want_equiv = 0;
      std::int64_t want_forge = 0;
      if (faults_->byzantine(sender)) {
        const auto& attempts = attempts_[ch];
        for (std::size_t cnt = 0; cnt < attempts.size(); ++cnt) {
          if (attempts[cnt] == 0) continue;  // dropped: never corrupted
          switch (faults_->byzantine_fate(ch, cnt)) {
            case FaultInjector::ByzantineFate::kEquivocate:
              ++want_equiv;
              break;
            case FaultInjector::ByzantineFate::kForge:
              ++want_forge;
              break;
            case FaultInjector::ByzantineFate::kNone:
              break;
          }
        }
      }
      if (want_equiv != channel_equiv_[ch] ||
          want_forge != channel_forge_[ch]) {
        std::ostringstream os;
        os << "byzantine influence on channel " << ch << " (sender "
           << sender << ") diverges from the keyed stream: observed ("
           << channel_equiv_[ch] << " equivocations, "
           << channel_forge_[ch] << " forgeries) but the plan's draws "
           << "give (" << want_equiv << ", " << want_forge << ")";
        report(os.str());
      }
    }
  }
}

}  // namespace csca
