#include "check/schedule_check.h"

#include <optional>

#include "check/invariants.h"
#include "fault/fault_injector.h"

namespace csca {

namespace {

int count_finished(const ProcessHost& host, const Graph& g) {
  int n = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (host.finished(v)) ++n;
  }
  return n;
}

// Builds the injector for a faulted spec; nullopt when the spec has no
// plan or the plan is inactive (so the engine keeps its zero-cost
// fault-free path and byte-identical ledgers).
std::optional<FaultInjector> make_injector(const Graph& g,
                                           const ScheduleSpec& spec) {
  if (!spec.make_faults && !spec.make_churn) return std::nullopt;
  const FaultPlan plan =
      spec.make_faults ? spec.make_faults(g) : FaultPlan{};
  std::optional<FaultInjector> inj;
  if (spec.make_churn) {
    inj.emplace(plan, spec.make_churn(g), g, spec.seed);
  } else {
    inj.emplace(plan, g, spec.seed);
  }
  if (!inj->active()) return std::nullopt;
  return inj;
}

}  // namespace

std::vector<ScheduleSpec> default_portfolio() {
  std::vector<ScheduleSpec> out;
  out.push_back({"exact", 1, [] { return make_exact_delay(); }, {}, {}});
  out.push_back({"uniform[0,1)#101", 101,
                 [] { return make_uniform_delay(0, 1); }, {}, {}});
  out.push_back({"uniform[0,1)#202", 202,
                 [] { return make_uniform_delay(0, 1); }, {}, {}});
  out.push_back({"uniform[0,0.5)#303", 303,
                 [] { return make_uniform_delay(0, 0.5); }, {}, {}});
  out.push_back({"twopoint(0.5)#404", 404,
                 [] { return make_two_point_delay(0.5); }, {}, {}});
  out.push_back({"twopoint(0.9)#505", 505,
                 [] { return make_two_point_delay(0.9); }, {}, {}});
  out.push_back(
      {"edgefrac(7)", 7, [] { return make_edge_fraction_delay(7); }, {}, {}});
  out.push_back({"edgefrac(99)", 99,
                 [] { return make_edge_fraction_delay(99); }, {}, {}});
  return out;
}

SubjectOutcome run_checked(const Graph& g, const ProcessFactory& factory,
                           const ScheduleSpec& spec,
                           const DigestFn& digest) {
  SubjectOutcome out;
  try {
    Network net(g, factory, spec.make_delay(), spec.seed);
    DefaultInvariantChecker checker;
    const std::optional<FaultInjector> inj = make_injector(g, spec);
    if (inj) {
      net.set_faults(&*inj);
      checker.set_faults(&*inj);
    }
    net.set_observer(&checker);
    net.run();
    checker.check_final(net);
    net.set_observer(nullptr);
    out.violations = checker.violations();
    if (checker.suppressed() > 0) {
      out.violations.push_back(
          "... " + std::to_string(checker.suppressed()) +
          " further violation(s) suppressed");
    }
    out.stats = net.stats();
    out.finished_nodes = count_finished(net, g);
    // Under active faults, oracle mismatches the digest reports are
    // expected degradation, not simulation bugs: route them aside.
    out.digest = digest(net, inj ? out.degraded : out.violations);
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

SubjectOutcome run_on_shards(const Graph& g, const ProcessFactory& factory,
                             const ScheduleSpec& spec, int shards,
                             const DigestFn& digest) {
  SubjectOutcome out;
  try {
    ShardEngine eng(g, factory, spec.make_delay(), spec.seed,
                    ShardEngine::Options{shards, 0, {}});
    const std::optional<FaultInjector> inj = make_injector(g, spec);
    if (inj) eng.set_faults(&*inj);
    out.stats = eng.run();
    out.finished_nodes = count_finished(eng, g);
    out.digest = digest(eng, inj ? out.degraded : out.violations);
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

SubjectOutcome run_on_timewarp(const Graph& g, const ProcessFactory& factory,
                               const ScheduleSpec& spec, int shards,
                               const DigestFn& digest) {
  SubjectOutcome out;
  try {
    TimeWarpEngine eng(g, factory, spec.make_delay(), spec.seed,
                       TimeWarpEngine::Options{shards, 0, 256, {}});
    const std::optional<FaultInjector> inj = make_injector(g, spec);
    if (inj) eng.set_faults(&*inj);
    out.stats = eng.run();
    out.finished_nodes = count_finished(eng, g);
    out.digest = digest(eng, inj ? out.degraded : out.violations);
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  }
  return out;
}

ScheduleCheckReport check_subject(
    const CheckSubject& subject, const Graph& g,
    const std::string& graph_name,
    std::span<const ScheduleSpec> portfolio, int shards, ParBackend backend) {
  require(!portfolio.empty(), "schedule portfolio must not be empty");
  require(shards == 0 || subject.run_par != nullptr,
          "subject has no parallel runner");
  ScheduleCheckReport report;
  const auto finding = [&](const ScheduleSpec& spec, std::string kind,
                           std::string detail) {
    report.findings.push_back(CheckFinding{subject.name, graph_name,
                                           spec.name, spec.seed,
                                           std::move(kind),
                                           std::move(detail)});
  };
  bool have_reference = false;
  for (const ScheduleSpec& spec : portfolio) {
    const bool faulty =
        (spec.make_faults && spec.make_faults(g).active()) ||
        (spec.make_churn && spec.make_churn(g).active());
    const SubjectOutcome outcome =
        shards > 0 ? subject.run_par(g, spec, shards, backend)
                   : subject.run(g, spec);
    ++report.runs;
    if (outcome.failed) {
      // A protocol ensure() tripping under injected faults is expected
      // degradation (that is what ARQ is for); without faults it is a
      // hard error.
      finding(spec, faulty ? "degraded" : "error",
              "run failed: " + outcome.error);
      if (faulty) ++report.runs_degraded;
      continue;
    }
    ++report.runs_completed;
    if (outcome.finished_nodes == g.node_count()) {
      ++report.runs_all_finished;
    }
    for (const std::string& v : outcome.violations) {
      finding(spec, "invariant", v);
    }
    for (const std::string& d : outcome.degraded) {
      finding(spec, "degraded", d);
    }
    if (!outcome.degraded.empty()) ++report.runs_degraded;
    if (faulty) {
      // Which sends a keyed fault stream hits depends on the delay
      // schedule, so faulted digests legitimately differ per schedule:
      // no reference, no divergence findings.
      continue;
    }
    if (!have_reference) {
      // First schedule that completed: its digest is the reference.
      have_reference = true;
      report.reference_schedule = spec.name;
      report.reference_digest = outcome.digest;
    } else if (outcome.digest != report.reference_digest) {
      finding(spec, "divergence",
              "digest \"" + outcome.digest + "\" differs from " +
                  report.reference_schedule + "'s \"" +
                  report.reference_digest + "\"");
    }
  }
  return report;
}

}  // namespace csca
