// Default invariant checker for the asynchronous engine.
//
// Attach a DefaultInvariantChecker to a Network (Network::set_observer)
// before the first step and it mechanically re-verifies, at every event,
// the invariants the paper's model (§1.3) and the engine's FIFO-channel
// contract promise — independently of the engine's own bookkeeping:
//
//   * sends happen only on edges incident to the sender;
//   * DelayModel outputs are non-NaN and within [0, w(e)];
//   * per-directed-edge channels are FIFO: every delivery matches the
//     oldest outstanding send on its channel, at exactly the arrival
//     time the engine committed to at send time;
//   * the simulated clock never runs backwards;
//   * self-deliveries return to their scheduler, with delay >= 0;
//   * no *spontaneous* sends after a node's local finish(): a finished
//     node may still respond while a message is being delivered to it
//     (DFS reject replies, GHS halt stragglers), but must not originate
//     traffic from on_start after finishing;
//   * ledger conservation (check_final): the final RunStats totals
//     equal the sum over edges of per-class message counts times edge
//     weights, the engine's per-edge counters match the checker's
//     independent tally, and a quiescent network has no channel with an
//     undelivered send.
//
// Under fault injection (Network::set_faults) the checker adapts: drop
// notifications join the send tally (attempts are charged), duplicate
// deliveries match against recorded phantom arrivals, and event
// conservation accounts for both. Give the checker the same injector
// via set_faults and it additionally verifies that no send leaves a
// crashed node, nothing is delivered over a link that is down, and
// nothing reaches a crashed node. check_arq verifies exactly-once FIFO
// delivery above the reliable-link layer (fault/reliable_link.h)
// against an independent receiver model built from the observed DATA
// frames.
//
// Violations are collected as human-readable strings (or thrown
// immediately with fail_fast), so the schedule-exploration checker can
// report them alongside the schedule that produced them.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "sim/network.h"

namespace csca {

class DefaultInvariantChecker final : public InvariantObserver {
 public:
  struct Options {
    /// Throw InvariantError at the first violation instead of
    /// collecting it (useful to fail a test at the offending event).
    bool fail_fast = false;
    /// Cap on collected violation strings; the rest are counted only.
    std::size_t max_violations = 64;
  };

  DefaultInvariantChecker() = default;
  explicit DefaultInvariantChecker(Options opts) : opts_(opts) {}

  void on_send(const Network& net, NodeId from, EdgeId e, MsgClass cls,
               double delay, double arrival) override;
  void on_self_schedule(const Network& net, NodeId v,
                        double delay) override;
  void on_deliver(const Network& net, NodeId to, const Message& m,
                  double t) override;
  void on_finish(const Network& net, NodeId v, double t) override;
  void on_drop(const Network& net, NodeId from, EdgeId e, MsgClass cls,
               FaultDropReason reason) override;
  void on_duplicate(const Network& net, NodeId from, EdgeId e,
                    double arrival) override;
  void on_garble(const Network& net, NodeId from, EdgeId e,
                 double arrival) override;

  /// Gives the checker the injector attached to the network so it can
  /// independently verify the crash / outage rules (no sends from a
  /// crashed node, no delivery on a down link or to a crashed node).
  /// Optional; the drop/duplicate bookkeeping works without it.
  void set_faults(const FaultInjector* f) { faults_ = f; }

  /// End-of-run checks (ledger conservation, channel drain). Call after
  /// run(); the channel-drain check only applies when net.idle().
  void check_final(const Network& net);

  /// Exactly-once FIFO above the ARQ layer: every node's ArqHost
  /// receiver state (next expected seq, inner deliveries) must match
  /// the checker's independent per-channel replay of the DATA frames it
  /// observed, and never exceed what the peer's sender side framed.
  /// Call after run() on a host whose processes were built by
  /// arq_factory.
  void check_arq(ProcessHost& host);

  bool ok() const { return violations_.empty() && suppressed_ == 0; }
  const std::vector<std::string>& violations() const {
    return violations_;
  }
  /// Violations dropped beyond Options::max_violations.
  std::size_t suppressed() const { return suppressed_; }

  /// Garbled sends recorded via on_garble.
  std::int64_t garbles_seen() const { return garbles_seen_; }
  /// Checksum-invalid ARQ frames observed at delivery. The masking rule
  /// (check_final) requires, per channel, invalid deliveries <=
  /// recorded garbles: garbling is the only legal source of invalid
  /// frames, and everything the garbler touched that ARQ *can* mask is
  /// exactly what its checksums catch.
  std::int64_t invalid_arq_frames_seen() const { return invalid_seen_; }

 private:
  void ensure_sized(const Network& net);
  void report(std::string what);
  // Directed channel id for a message from `from` over edge e.
  std::size_t channel_of(const Network& net, NodeId from, EdgeId e) const;

  Options opts_;
  std::vector<std::string> violations_;
  std::size_t suppressed_ = 0;

  // Outstanding arrival times per directed channel, in send order.
  std::vector<std::deque<double>> channels_;
  // Phantom (duplicate) arrivals per directed channel, unordered: a
  // duplicate is clamped behind the original but later traffic can
  // still be delivered around it.
  std::vector<std::multiset<double>> dup_arrivals_;
  // Independent per-channel replay of ARQ DATA frames: next expected
  // seq and the out-of-order seqs seen so far. Only checksum-valid
  // frames replay — receivers discard invalid ones, and so does the
  // model.
  std::vector<std::int64_t> arq_expected_;
  std::vector<std::set<std::int64_t>> arq_buffered_;
  // Garbled sends and invalid-ARQ-frame deliveries per directed
  // channel (the masking rule compares them in check_final).
  std::vector<std::int64_t> garbled_sent_;
  std::vector<std::int64_t> arq_invalid_;
  // Independent per-edge tallies, indexed [class][edge].
  std::vector<std::int64_t> sent_algorithm_;
  std::vector<std::int64_t> sent_control_;
  std::vector<std::int64_t> sent_recovery_;
  std::int64_t deliveries_seen_ = 0;
  std::int64_t self_schedules_seen_ = 0;
  std::int64_t drops_seen_ = 0;
  std::int64_t dups_seen_ = 0;
  std::int64_t garbles_seen_ = 0;
  std::int64_t invalid_seen_ = 0;
  const FaultInjector* faults_ = nullptr;
  double last_now_ = 0.0;
  // Node currently having a message delivered to it; sends by it are
  // reactive and exempt from the post-finish rule.
  NodeId delivering_to_ = kNoNode;
  bool sized_ = false;
};

}  // namespace csca
