#include "check/budget_check.h"

#include <sstream>

namespace csca {

std::vector<std::string> check_controller_budget(
    const ControlledRun& run, const ControllerConfig& config) {
  std::vector<std::string> violations;
  const Weight total = run.stats.total_cost();
  const Weight control = run.stats.control_cost;
  if (total > run.permits_issued) {
    std::ostringstream os;
    os << "budget bound broken: total billed cost " << total
       << " (algorithm " << run.stats.algorithm_cost << " + control "
       << control << ") exceeds permits issued " << run.permits_issued;
    violations.push_back(os.str());
  }
  if (control > run.permits_issued) {
    std::ostringstream os;
    os << "control cost " << control << " exceeds permits issued "
       << run.permits_issued;
    violations.push_back(os.str());
  }
  if (!run.exhausted && run.permits_issued > config.threshold) {
    std::ostringstream os;
    os << "permits issued " << run.permits_issued
       << " overran the threshold " << config.threshold
       << " without the exhaustion signal firing";
    violations.push_back(os.str());
  }
  return violations;
}

}  // namespace csca
