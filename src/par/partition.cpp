#include "par/partition.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace csca {

namespace {

using Cand = std::pair<Weight, NodeId>;

// Max-heap of (attraction, node): attraction is the total weight of
// edges from `node` into the shard currently being grown. Entries go
// stale when a node's attraction grows or the node is assigned; stale
// entries are skipped on pop (lazy deletion). Ties prefer the smaller
// node id so the result is independent of heap internals.
bool cand_less(const Cand& a, const Cand& b) {
  return a.first < b.first || (a.first == b.first && a.second > b.second);
}

// The historical weighted-greedy BFS: grows shards one at a time to a
// ceil(n / k) node target. Runs verbatim for hub-free graphs — the
// delegate path below only wraps it with hub pre-assignment.
ShardPartition partition_greedy(const Graph& g, int k) {
  const int n = g.node_count();
  ShardPartition out;
  out.shard_of.assign(static_cast<std::size_t>(n), -1);
  const int target = (n + k - 1) / k;

  std::vector<Weight> attraction(static_cast<std::size_t>(n), 0);

  int assigned = 0;
  NodeId scan = 0;  // lowest possibly-unassigned node
  int shard = 0;
  while (assigned < n) {
    // Grow one shard to its target size. If the frontier exhausts early
    // (disconnected remainder), reseed the same shard from the next
    // unassigned node: each pass fills exactly min(target, remaining)
    // nodes, so the shard count never exceeds k.
    std::priority_queue<Cand, std::vector<Cand>, decltype(&cand_less)>
        frontier(&cand_less);
    std::fill(attraction.begin(), attraction.end(), Weight{0});
    int size = 0;
    while (size < target && assigned < n) {
      if (frontier.empty()) {
        while (out.shard_of[static_cast<std::size_t>(scan)] != -1) ++scan;
        frontier.push({Weight{0}, scan});
      }
      const auto [gain, v] = frontier.top();
      frontier.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (out.shard_of[vi] != -1 || gain != attraction[vi]) {
        continue;  // already assigned, or a stale entry
      }
      out.shard_of[vi] = shard;
      ++size;
      ++assigned;
      for (const Arc a : g.neighbors(v)) {
        const auto ui = static_cast<std::size_t>(a.node);
        if (out.shard_of[ui] != -1) continue;
        attraction[ui] += g.weight(a.edge);
        frontier.push({attraction[ui], a.node});
      }
    }
    ++shard;
  }
  out.shards = shard;
  return out;
}

// Delegate path: hubs are pre-assigned round-robin (descending degree),
// then each shard grows around its hubs — the pass's frontier is seeded
// from the hubs' neighborhoods, so leaves cluster with *a* hub while
// distinct hubs land on distinct workers.
ShardPartition partition_with_hubs(const Graph& g, int k,
                                   std::vector<NodeId> hubs) {
  const int n = g.node_count();
  ShardPartition out;
  out.shard_of.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    out.shard_of[static_cast<std::size_t>(hubs[i])] =
        static_cast<int>(i) % k;
  }
  int assigned = static_cast<int>(hubs.size());
  const int rest = n - assigned;
  const int target = (rest + k - 1) / k;

  std::vector<Weight> attraction(static_cast<std::size_t>(n), 0);
  NodeId scan = 0;
  for (int shard = 0; shard < k && assigned < n; ++shard) {
    std::priority_queue<Cand, std::vector<Cand>, decltype(&cand_less)>
        frontier(&cand_less);
    std::fill(attraction.begin(), attraction.end(), Weight{0});
    // Seed with the neighborhoods of this shard's hubs.
    for (std::size_t i = static_cast<std::size_t>(shard); i < hubs.size();
         i += static_cast<std::size_t>(k)) {
      for (const Arc a : g.neighbors(hubs[i])) {
        const auto ui = static_cast<std::size_t>(a.node);
        if (out.shard_of[ui] != -1) continue;
        attraction[ui] += g.weight(a.edge);
        frontier.push({attraction[ui], a.node});
      }
    }
    int size = 0;
    while (size < target && assigned < n) {
      if (frontier.empty()) {
        while (out.shard_of[static_cast<std::size_t>(scan)] != -1) ++scan;
        frontier.push({Weight{0}, scan});
      }
      const auto [gain, v] = frontier.top();
      frontier.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (out.shard_of[vi] != -1 || gain != attraction[vi]) continue;
      out.shard_of[vi] = shard;
      ++size;
      ++assigned;
      for (const Arc a : g.neighbors(v)) {
        const auto ui = static_cast<std::size_t>(a.node);
        if (out.shard_of[ui] != -1) continue;
        attraction[ui] += g.weight(a.edge);
        frontier.push({attraction[ui], a.node});
      }
    }
  }
  // k passes at ceil(rest / k) each cover every non-hub node; anything
  // else is a bug in the accounting above.
  require(assigned == n, "hub partition left nodes unassigned");

  // A shard can end up empty only in the degenerate all-hubs case with
  // fewer hubs than k; compact ids so the engine never sees an empty
  // shard.
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (int s : out.shard_of) ++count[static_cast<std::size_t>(s)];
  std::vector<int> remap(static_cast<std::size_t>(k), -1);
  int next = 0;
  for (int s = 0; s < k; ++s) {
    if (count[static_cast<std::size_t>(s)] > 0) {
      remap[static_cast<std::size_t>(s)] = next++;
    }
  }
  if (next != k) {
    for (int& s : out.shard_of) s = remap[static_cast<std::size_t>(s)];
  }
  out.shards = next;
  out.hubs = std::move(hubs);
  return out;
}

}  // namespace

std::vector<int> ShardPartition::sizes() const {
  std::vector<int> out(static_cast<std::size_t>(shards), 0);
  for (int s : shard_of) ++out[static_cast<std::size_t>(s)];
  return out;
}

ShardPartition partition_shards(const Graph& g, int k) {
  return partition_shards(g, k, PartitionOptions{});
}

ShardPartition partition_shards(const Graph& g, int k,
                                const PartitionOptions& opt) {
  require(k >= 1, "shard count must be >= 1");
  const int n = g.node_count();
  if (n == 0) {
    ShardPartition out;
    out.shards = 1;
    return out;
  }
  k = std::min(k, n);

  // Hub detection (see header). Meaningless at k = 1, and the absolute
  // degree floor keeps regular families on the historical path.
  std::vector<NodeId> hubs;
  if (k > 1 && opt.hub_factor > 0 && g.edge_count() > 0) {
    const double mean =
        2.0 * static_cast<double>(g.edge_count()) / static_cast<double>(n);
    const double cut = std::max(static_cast<double>(opt.hub_min_degree),
                                static_cast<double>(opt.hub_factor) * mean);
    for (NodeId v = 0; v < n; ++v) {
      if (static_cast<double>(g.degree(v)) >= cut) hubs.push_back(v);
    }
    std::sort(hubs.begin(), hubs.end(), [&](NodeId a, NodeId b) {
      return g.degree(a) > g.degree(b) ||
             (g.degree(a) == g.degree(b) && a < b);
    });
  }
  if (hubs.empty()) return partition_greedy(g, k);
  return partition_with_hubs(g, k, std::move(hubs));
}

}  // namespace csca
