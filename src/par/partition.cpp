#include "par/partition.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace csca {

std::vector<int> ShardPartition::sizes() const {
  std::vector<int> out(static_cast<std::size_t>(shards), 0);
  for (int s : shard_of) ++out[static_cast<std::size_t>(s)];
  return out;
}

ShardPartition partition_shards(const Graph& g, int k) {
  require(k >= 1, "shard count must be >= 1");
  const int n = g.node_count();
  ShardPartition out;
  out.shard_of.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) {
    out.shards = 1;
    return out;
  }
  k = std::min(k, n);
  const int target = (n + k - 1) / k;

  // Max-heap of (attraction, node): attraction is the total weight of
  // edges from `node` into the shard currently being grown. Entries go
  // stale when a node's attraction grows or the node is assigned;
  // stale entries are skipped on pop (lazy deletion). Ties prefer the
  // smaller node id so the result is independent of heap internals.
  using Cand = std::pair<Weight, NodeId>;
  const auto cand_less = [](const Cand& a, const Cand& b) {
    return a.first < b.first ||
           (a.first == b.first && a.second > b.second);
  };
  std::vector<Weight> attraction(static_cast<std::size_t>(n), 0);

  int assigned = 0;
  NodeId scan = 0;  // lowest possibly-unassigned node
  int shard = 0;
  while (assigned < n) {
    // Grow one shard to its target size. If the frontier exhausts early
    // (disconnected remainder), reseed the same shard from the next
    // unassigned node: each pass fills exactly min(target, remaining)
    // nodes, so the shard count never exceeds k.
    std::priority_queue<Cand, std::vector<Cand>, decltype(cand_less)>
        frontier(cand_less);
    std::fill(attraction.begin(), attraction.end(), Weight{0});
    int size = 0;
    while (size < target && assigned < n) {
      if (frontier.empty()) {
        while (out.shard_of[static_cast<std::size_t>(scan)] != -1) ++scan;
        frontier.push({Weight{0}, scan});
      }
      const auto [gain, v] = frontier.top();
      frontier.pop();
      const auto vi = static_cast<std::size_t>(v);
      if (out.shard_of[vi] != -1 || gain != attraction[vi]) {
        continue;  // already assigned, or a stale entry
      }
      out.shard_of[vi] = shard;
      ++size;
      ++assigned;
      for (EdgeId e : g.incident(v)) {
        const NodeId u = g.other(e, v);
        const auto ui = static_cast<std::size_t>(u);
        if (out.shard_of[ui] != -1) continue;
        attraction[ui] += g.weight(e);
        frontier.push({attraction[ui], u});
      }
    }
    ++shard;
  }
  out.shards = shard;
  return out;
}

}  // namespace csca
