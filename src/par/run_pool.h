// Multi-run execution harness: a fixed-size thread pool with a FIFO job
// queue and deterministic result merging.
//
// The sweeps this repo runs (tools/csca_check: subjects x families x
// schedules; bench seed sweeps) are embarrassingly parallel: every run
// owns its Network, draws from its own split RNG stream
// (Rng::split / derive_stream_seed), and writes one result slot. The
// pool supplies the missing piece — concurrency that is *invisible in
// the output*: map() returns results in submission order regardless of
// which worker finished first, and if jobs throw, the exception that
// propagates is the one from the earliest-submitted failing job, so a
// sweep reports the same first failure at any thread count.
//
// The sharded engine (par/shard_engine.h) reuses the pool as its
// per-round worker executor: each barrier round dispatches one job per
// shard and run_indexed()'s completion acts as the barrier (the pool's
// mutex hand-off orders everything written before the barrier before
// everything read after it).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/require.h"

namespace csca {

class RunPool {
 public:
  /// Spawns `threads` workers (>= 1). Hardware with fewer cores still
  /// gets `threads` workers — oversubscription only costs context
  /// switches, and determinism never depends on the worker count.
  explicit RunPool(int threads);
  ~RunPool();

  RunPool(const RunPool&) = delete;
  RunPool& operator=(const RunPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a job. Jobs must not throw (wrap and capture instead —
  /// map/run_indexed do); a throwing job terminates. May be called from
  /// worker threads (the sharded engine's rounds nest no jobs, but
  /// sweep jobs are free to).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has completed. Establishes a full
  /// happens-before edge between the completed jobs and the caller.
  void wait_all();

  /// Runs fn(0..n-1) across the pool and waits. Exceptions are captured
  /// per index; after completion the earliest-index exception (if any)
  /// is rethrown — the deterministic analog of fail-on-first-error.
  template <typename Fn>
  void run_indexed(std::size_t n, Fn&& fn) {
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
      submit([&fn, &errors, i] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    wait_all();
    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
  }

  /// Runs fn(0..n-1) across the pool and returns the results in index
  /// (= submission) order, however the jobs were interleaved. Same
  /// first-exception-wins contract as run_indexed.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    std::vector<std::invoke_result_t<Fn&, std::size_t>> results(n);
    run_indexed(n, [&fn, &results](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: job available or stop
  std::condition_variable done_cv_;   // waiters: queue drained and idle
  std::vector<std::function<void()>> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace csca
